//! # pmu-grid
//!
//! Transmission-grid modelling for the `pmu-outage` workspace: buses,
//! branches and generators; admittance matrices and weighted Laplacians;
//! connectivity analysis (islanding detection after line outages); a
//! MATPOWER-style case parser with the IEEE test systems used by the paper
//! (14, 30, 57 and 118 buses); and PDC cluster partitioning matching the
//! hierarchical PMU network of the paper's Fig. 1.
//!
//! The paper models the transmission grid as a graph `P(N, E)` whose edge
//! set is the physical power lines; a line outage removes an edge. This
//! crate is the concrete realization of that graph, together with the
//! electrical parameters the power-flow solver (`pmu-flow`) needs to turn
//! topology into voltage phasors.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cases;
pub mod cluster;
pub mod error;
pub mod network;
pub mod parser;
pub mod pmu_coverage;
pub mod synthetic;
pub mod ybus;

pub use error::GridError;
pub use network::{Branch, Bus, BusType, Gen, Network};

/// Convenience result alias for grid operations.
pub type Result<T> = std::result::Result<T, GridError>;
