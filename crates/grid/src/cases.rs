//! The IEEE test systems used in the paper's evaluation (Sec. V):
//! 14, 30, 57 and 118 buses with 20, 41, 80 and 186 branches respectively.
//!
//! `ieee14` and `ieee30` carry the canonical PSTCA electrical parameters,
//! embedded as MATPOWER-style case files and parsed by [`crate::parser`].
//! `ieee57` and `ieee118` are deterministic structure-faithful
//! reconstructions built by [`crate::synthetic`] (see DESIGN.md,
//! substitution #2).

use crate::network::Network;
use crate::parser::parse_case;
use crate::synthetic::{synthetic_network, SyntheticConfig};
use crate::Result;

/// Embedded MATPOWER text for the IEEE 14-bus system.
pub const CASE14_M: &str = include_str!("../data/case14.m");
/// Embedded MATPOWER text for the IEEE 30-bus system.
pub const CASE30_M: &str = include_str!("../data/case30.m");

/// The IEEE 14-bus test system (canonical parameters).
///
/// # Errors
/// Never fails in practice; the embedded case text is validated by tests.
pub fn ieee14() -> Result<Network> {
    parse_case("ieee14", CASE14_M)
}

/// The IEEE 30-bus test system (canonical parameters).
///
/// # Errors
/// Never fails in practice; the embedded case text is validated by tests.
pub fn ieee30() -> Result<Network> {
    parse_case("ieee30", CASE30_M)
}

/// Structure-faithful reconstruction of the IEEE 57-bus system
/// (57 buses / 80 branches).
///
/// # Errors
/// Never fails in practice; construction is validated by tests.
pub fn ieee57() -> Result<Network> {
    synthetic_network("ieee57", &SyntheticConfig::ieee57_like())
}

/// Structure-faithful reconstruction of the IEEE 118-bus system
/// (118 buses / 186 branches).
///
/// # Errors
/// Never fails in practice; construction is validated by tests.
pub fn ieee118() -> Result<Network> {
    synthetic_network("ieee118", &SyntheticConfig::ieee118_like())
}

/// Look a case up by name (`"ieee14" | "ieee30" | "ieee57" | "ieee118"`).
/// Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<Result<Network>> {
    match name {
        "ieee14" => Some(ieee14()),
        "ieee30" => Some(ieee30()),
        "ieee57" => Some(ieee57()),
        "ieee118" => Some(ieee118()),
        _ => None,
    }
}

/// The four evaluation systems in the order the paper plots them.
///
/// # Errors
/// Propagates any case construction failure (none occur in practice).
pub fn evaluation_suite() -> Result<Vec<Network>> {
    Ok(vec![ieee14()?, ieee30()?, ieee57()?, ieee118()?])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::BusType;

    #[test]
    fn ieee14_matches_paper_counts() {
        let net = ieee14().unwrap();
        assert_eq!(net.n_buses(), 14);
        assert_eq!(net.n_branches(), 20); // "20 power lines available"
        assert!(net.is_connected());
        assert_eq!(net.slack(), 0);
        assert_eq!(net.gens().len(), 5);
        // Spot-check canonical values.
        assert!((net.buses()[2].pd - 94.2).abs() < 1e-9); // bus 3 load
        assert!((net.branches()[0].x - 0.05917).abs() < 1e-9); // line 1-2
        assert!((net.branches()[7].tap - 0.978).abs() < 1e-9); // 4-7 xfmr
        assert!((net.buses()[8].bs - 19.0).abs() < 1e-9); // bus 9 shunt
    }

    #[test]
    fn ieee30_matches_paper_counts() {
        let net = ieee30().unwrap();
        assert_eq!(net.n_buses(), 30);
        assert_eq!(net.n_branches(), 41); // "41 power lines available"
        assert!(net.is_connected());
        let pv = net.buses().iter().filter(|b| b.bus_type == BusType::Pv).count();
        assert_eq!(pv, 5); // gens at 2,5,8,11,13 (1 is slack)
        assert!((net.total_load() - 283.4).abs() < 0.5);
    }

    #[test]
    fn ieee57_and_118_match_paper_counts() {
        let n57 = ieee57().unwrap();
        assert_eq!((n57.n_buses(), n57.n_branches()), (57, 80));
        let n118 = ieee118().unwrap();
        assert_eq!((n118.n_buses(), n118.n_branches()), (118, 186));
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("ieee14").unwrap().is_ok());
        assert!(by_name("ieee118").unwrap().is_ok());
        assert!(by_name("ieee9000").is_none());
    }

    #[test]
    fn evaluation_suite_is_ordered() {
        let suite = evaluation_suite().unwrap();
        let sizes: Vec<usize> = suite.iter().map(|n| n.n_buses()).collect();
        assert_eq!(sizes, vec![14, 30, 57, 118]);
    }

    #[test]
    fn ieee14_has_expected_valid_outages() {
        // Lines 7-8 (branch 13) islands bus 8 if removed: bus 8 hangs off
        // bus 7 only. Every other line is part of a mesh.
        let net = ieee14().unwrap();
        let valid = net.valid_outage_branches();
        assert!(!valid.contains(&13), "7-8 is a bridge to bus 8");
        assert!(valid.len() >= 18, "most lines are valid: {valid:?}");
    }
}
