//! PDC cluster partitioning.
//!
//! The paper's PMU network (Fig. 1) is hierarchical: groups of PMUs
//! covering a geographic region share a Phasor Data Concentrator. When a
//! PDC fails, *all* measurements of its cluster go missing at once — the
//! spatially-correlated missing-data pattern the detector must survive.
//! This module partitions the grid graph into `k` connected, roughly
//! balanced regions via greedy farthest-point seeding plus multi-source
//! BFS growth, producing the cluster structure detection groups are built
//! against (Eq. 8).

use crate::error::GridError;
use crate::network::Network;
use crate::Result;
use std::collections::VecDeque;

/// A partition of the grid's buses into PDC clusters.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// `members[c]` lists the buses of cluster `c`, ascending.
    members: Vec<Vec<usize>>,
    /// `assignment[bus]` is the cluster index of `bus`.
    assignment: Vec<usize>,
}

impl Clustering {
    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.members.len()
    }

    /// Buses of cluster `c`.
    pub fn members(&self, c: usize) -> &[usize] {
        &self.members[c]
    }

    /// Cluster index of `bus`.
    pub fn cluster_of(&self, bus: usize) -> usize {
        self.assignment[bus]
    }

    /// All clusters.
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.members
    }

    /// Buses *outside* cluster `c`, ascending.
    pub fn complement(&self, c: usize) -> Vec<usize> {
        (0..self.assignment.len()).filter(|&b| self.assignment[b] != c).collect()
    }
}

/// Partition the in-service grid into `k` connected clusters.
///
/// Seeds are chosen by greedy farthest-point sampling (bus 0 first, then
/// repeatedly the bus maximizing the hop distance to all chosen seeds);
/// clusters then grow by synchronized BFS, which keeps them connected and
/// roughly balanced. Deterministic for a given network.
///
/// # Errors
/// Returns [`GridError::InvalidNetwork`] when `k` is zero or exceeds the
/// bus count, or when the grid is disconnected.
pub fn partition_clusters(net: &Network, k: usize) -> Result<Clustering> {
    let n = net.n_buses();
    if k == 0 || k > n {
        return Err(GridError::InvalidNetwork(format!(
            "cluster count {k} invalid for {n} buses"
        )));
    }
    if !net.is_connected() {
        return Err(GridError::InvalidNetwork("cannot cluster a disconnected grid".into()));
    }

    // Greedy farthest-point seeding.
    let mut seeds = vec![0usize];
    let mut min_dist = net.bfs_distances(0);
    while seeds.len() < k {
        let far = (0..n)
            .max_by_key(|&b| min_dist[b])
            .expect("non-empty network");
        seeds.push(far);
        let d = net.bfs_distances(far);
        for b in 0..n {
            min_dist[b] = min_dist[b].min(d[b]);
        }
    }

    // Synchronized multi-source BFS growth.
    let mut assignment = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    for (c, &s) in seeds.iter().enumerate() {
        assignment[s] = c;
        queue.push_back(s);
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for br in net.branches().iter().filter(|b| b.status) {
        adj[br.from].push(br.to);
        adj[br.to].push(br.from);
    }
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if assignment[v] == usize::MAX {
                assignment[v] = assignment[u];
                queue.push_back(v);
            }
        }
    }

    let mut members = vec![Vec::new(); k];
    for (bus, &c) in assignment.iter().enumerate() {
        debug_assert_ne!(c, usize::MAX, "connected grid fully assigned");
        members[c].push(bus);
    }
    Ok(Clustering { members, assignment })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::{ieee14, ieee30};

    #[test]
    fn covers_every_bus_exactly_once() {
        let net = ieee14().unwrap();
        let cl = partition_clusters(&net, 3).unwrap();
        let mut seen = vec![false; net.n_buses()];
        for c in 0..cl.n_clusters() {
            for &b in cl.members(c) {
                assert!(!seen[b], "bus {b} in two clusters");
                seen[b] = true;
                assert_eq!(cl.cluster_of(b), c);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn clusters_are_connected_subgraphs() {
        let net = ieee30().unwrap();
        let cl = partition_clusters(&net, 4).unwrap();
        for c in 0..cl.n_clusters() {
            let members = cl.members(c);
            assert!(!members.is_empty());
            // BFS inside the cluster must reach every member.
            let inside = |b: usize| members.contains(&b);
            let mut seen = vec![members[0]];
            let mut queue = VecDeque::from([members[0]]);
            while let Some(u) = queue.pop_front() {
                for v in net.neighbors(u) {
                    if inside(v) && !seen.contains(&v) {
                        seen.push(v);
                        queue.push_back(v);
                    }
                }
            }
            assert_eq!(seen.len(), members.len(), "cluster {c} disconnected");
        }
    }

    #[test]
    fn roughly_balanced() {
        let net = ieee30().unwrap();
        let cl = partition_clusters(&net, 3).unwrap();
        let sizes: Vec<usize> = (0..3).map(|c| cl.members(c).len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max <= 4 * min.max(1), "unbalanced clusters: {sizes:?}");
    }

    #[test]
    fn complement_is_exact() {
        let net = ieee14().unwrap();
        let cl = partition_clusters(&net, 3).unwrap();
        for c in 0..3 {
            let comp = cl.complement(c);
            assert_eq!(comp.len() + cl.members(c).len(), net.n_buses());
            assert!(comp.iter().all(|&b| cl.cluster_of(b) != c));
        }
    }

    #[test]
    fn deterministic() {
        let net = ieee14().unwrap();
        let a = partition_clusters(&net, 3).unwrap();
        let b = partition_clusters(&net, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_cluster_counts() {
        let net = ieee14().unwrap();
        // k = 1: everything in one cluster.
        let cl = partition_clusters(&net, 1).unwrap();
        assert_eq!(cl.members(0).len(), 14);
        // k = n: singleton clusters.
        let cl = partition_clusters(&net, 14).unwrap();
        assert!((0..14).all(|c| cl.members(c).len() == 1));
        // invalid k.
        assert!(partition_clusters(&net, 0).is_err());
        assert!(partition_clusters(&net, 15).is_err());
    }
}
