//! Deterministic synthetic grid construction.
//!
//! The exact PSTCA tables for the IEEE 57- and 118-bus systems are not
//! redistributable inside this repository, so (per DESIGN.md substitution
//! #2) those cases are *structure-faithful reconstructions*: the correct
//! bus and branch counts, a connected meshed topology, impedances in the
//! same per-unit ranges as the canonical 14/30-bus cases, and a realistic
//! generator/load placement. All randomness is a seeded xorshift generator
//! so a given `(buses, branches, seed)` triple always produces the same
//! network.

// Indexed loops are the clearest expression of the dense numerical
// kernels in this module.
#![allow(clippy::needless_range_loop)]

use crate::error::GridError;
use crate::network::{Branch, Bus, BusType, Gen, Network};
use crate::Result;

/// Deterministic xorshift64* generator (self-contained; the grid crate has
/// no dependency on `rand`).
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Create a generator from a nonzero seed (zero is remapped).
    pub fn new(seed: u64) -> Self {
        XorShift64 { state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform usize in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Configuration for [`synthetic_network`].
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of buses.
    pub buses: usize,
    /// Total number of branches (must be ≥ `buses` for the ring backbone).
    pub branches: usize,
    /// Number of generator (PV) buses in addition to the slack.
    pub generators: usize,
    /// Mean active load per load bus (MW).
    pub mean_load_mw: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// Reconstruction of the IEEE 57-bus system's scale: 57 buses, 80
    /// branches, 8 PV generators (the real case has 7 generator buses; one
    /// extra keeps the lightly-meshed synthetic topology voltage-stable).
    pub fn ieee57_like() -> Self {
        SyntheticConfig { buses: 57, branches: 80, generators: 8, mean_load_mw: 14.0, seed: 57 }
    }

    /// Reconstruction of the IEEE 118-bus system's scale: 118 buses, 186
    /// branches. The real case has 54 generator buses; we keep a similarly
    /// generation-rich placement with 18 PV buses, which preserves the
    /// voltage-stiffness character while keeping the synthetic case easy to
    /// converge.
    pub fn ieee118_like() -> Self {
        SyntheticConfig { buses: 118, branches: 186, generators: 18, mean_load_mw: 20.0, seed: 118 }
    }
}

/// Build a deterministic synthetic meshed network.
///
/// Topology: a ring over all buses (guaranteeing 2-edge-connectivity, so
/// every single-line outage is a valid non-islanding case) plus
/// pseudo-random chords up to the requested branch count. Electrical
/// parameters are sampled from the empirical ranges of the canonical
/// 14/30-bus cases.
///
/// # Errors
/// Returns [`GridError::InvalidNetwork`] for inconsistent configuration
/// (fewer than 3 buses, or `branches < buses`).
pub fn synthetic_network(name: &str, cfg: &SyntheticConfig) -> Result<Network> {
    let n = cfg.buses;
    if n < 3 {
        return Err(GridError::InvalidNetwork("synthetic network needs >= 3 buses".into()));
    }
    if cfg.branches < n {
        return Err(GridError::InvalidNetwork(format!(
            "branch count {} below ring size {n}",
            cfg.branches
        )));
    }
    let mut rng = XorShift64::new(cfg.seed);

    // --- generator placement: slack at 0, PV buses spread evenly. ---
    let mut is_gen = vec![false; n];
    is_gen[0] = true;
    let spacing = (n as f64 / (cfg.generators.max(1) + 1) as f64).max(1.0);
    for g in 1..=cfg.generators {
        let pos = ((g as f64 * spacing) as usize).min(n - 1);
        is_gen[pos] = true;
    }

    // --- buses with loads. ---
    let mut buses = Vec::with_capacity(n);
    let mut total_load = 0.0;
    for i in 0..n {
        let bus_type = if i == 0 {
            BusType::Slack
        } else if is_gen[i] {
            BusType::Pv
        } else {
            BusType::Pq
        };
        // ~15% of load buses carry no load (substations), like real cases.
        let (pd, qd) = if bus_type == BusType::Pq && rng.next_f64() > 0.15 {
            let pd = rng.range(0.4 * cfg.mean_load_mw, 1.6 * cfg.mean_load_mw);
            (pd, pd * rng.range(0.15, 0.45))
        } else {
            (0.0, 0.0)
        };
        total_load += pd;
        buses.push(Bus {
            ext_id: i + 1,
            bus_type,
            pd,
            qd,
            gs: 0.0,
            bs: 0.0,
            base_kv: 135.0,
            vm: 1.0,
            va: 0.0,
        });
    }

    // --- ring backbone + chords. ---
    let mut edge_set: Vec<(usize, usize)> = Vec::with_capacity(cfg.branches);
    for i in 0..n {
        let j = (i + 1) % n;
        edge_set.push((i.min(j), i.max(j)));
    }
    let max_edges = n * (n - 1) / 2;
    if cfg.branches > max_edges {
        return Err(GridError::InvalidNetwork(format!(
            "branch count {} exceeds the {} distinct pairs of {n} buses",
            cfg.branches, max_edges
        )));
    }
    let mut guard = 0usize;
    while edge_set.len() < cfg.branches {
        guard += 1;
        if guard > 50 * cfg.branches {
            // Local chords exhausted (small or dense grids): fall back to
            // deterministic enumeration of any remaining pair.
            'outer: for a in 0..n {
                for b in (a + 1)..n {
                    if edge_set.len() >= cfg.branches {
                        break 'outer;
                    }
                    if !edge_set.contains(&(a, b)) {
                        edge_set.push((a, b));
                    }
                }
            }
            break;
        }
        let a = rng.below(n);
        // Prefer chords of moderate graph distance (2..n/3 hops along the
        // ring), mimicking the locality of real transmission layouts.
        let span = 2 + rng.below((n / 3).max(1));
        let b = (a + span) % n;
        let e = (a.min(b), a.max(b));
        if e.0 == e.1 || edge_set.contains(&e) {
            continue;
        }
        edge_set.push(e);
    }

    let mut branches = Vec::with_capacity(cfg.branches);
    for (f, t) in edge_set {
        let x = rng.range(0.04, 0.16);
        let r = x * rng.range(0.2, 0.4);
        let b = if rng.next_f64() < 0.4 { rng.range(0.0, 0.05) } else { 0.0 };
        branches.push(Branch { from: f, to: t, r, x, b, tap: 1.0, shift: 0.0, rate: 0.0, status: true });
    }

    // --- generators share the load evenly; slack absorbs losses. ---
    let gen_buses: Vec<usize> = (0..n).filter(|&i| is_gen[i]).collect();
    let share = total_load / gen_buses.len() as f64;
    let gens: Vec<Gen> = gen_buses
        .iter()
        .map(|&bus| Gen {
            bus,
            pg: if bus == 0 { 0.0 } else { share },
            qg: 0.0,
            vg: 1.0 + 0.01 * (1 + bus % 4) as f64, // 1.01 .. 1.04 p.u.
            qmax: 300.0,
            qmin: -300.0,
            status: true,
        })
        .collect();
    // PV bus voltage setpoints follow the generator.
    for g in &gens {
        buses[g.bus].vm = g.vg;
    }

    Network::new(name, 100.0, buses, branches, gens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ieee57_like_shape() {
        let net = synthetic_network("ieee57", &SyntheticConfig::ieee57_like()).unwrap();
        assert_eq!(net.n_buses(), 57);
        assert_eq!(net.n_branches(), 80);
        assert!(net.is_connected());
        // Ring backbone ⇒ every single outage is valid.
        assert_eq!(net.valid_outage_branches().len(), 80);
    }

    #[test]
    fn ieee118_like_shape() {
        let net = synthetic_network("ieee118", &SyntheticConfig::ieee118_like()).unwrap();
        assert_eq!(net.n_buses(), 118);
        assert_eq!(net.n_branches(), 186);
        assert!(net.is_connected());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = SyntheticConfig::ieee57_like();
        let a = synthetic_network("a", &cfg).unwrap();
        let b = synthetic_network("a", &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = SyntheticConfig::ieee57_like();
        let a = synthetic_network("a", &cfg).unwrap();
        cfg.seed = 1234;
        let b = synthetic_network("a", &cfg).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn generation_covers_load() {
        let net = synthetic_network("g", &SyntheticConfig::ieee57_like()).unwrap();
        let pg: f64 = net.gens().iter().map(|g| g.pg).sum();
        let load = net.total_load();
        // Non-slack generation covers most of the load (slack tops up).
        assert!(pg > 0.5 * load && pg <= load + 1e-9);
    }

    #[test]
    fn rejects_bad_config() {
        let cfg = SyntheticConfig { buses: 2, branches: 5, generators: 1, mean_load_mw: 10.0, seed: 1 };
        assert!(synthetic_network("x", &cfg).is_err());
        let cfg = SyntheticConfig { buses: 10, branches: 5, generators: 1, mean_load_mw: 10.0, seed: 1 };
        assert!(synthetic_network("x", &cfg).is_err());
    }

    #[test]
    fn impedances_in_realistic_ranges() {
        let net = synthetic_network("r", &SyntheticConfig::ieee118_like()).unwrap();
        for br in net.branches() {
            assert!(br.x >= 0.04 && br.x < 0.16);
            assert!(br.r >= 0.2 * 0.04 * 0.2 && br.r < 0.4 * 0.16);
            assert!(br.b >= 0.0 && br.b < 0.05);
        }
    }

    #[test]
    fn xorshift_is_uniformish() {
        let mut rng = XorShift64::new(7);
        let mut mean = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            mean += rng.next_f64();
        }
        mean /= N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        // below() stays in range.
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
        // Zero seed is remapped, not degenerate.
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
    }
}
