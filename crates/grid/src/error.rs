//! Error type for grid modelling operations.

use std::fmt;

/// Errors produced while building or manipulating grid models.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// A case file could not be parsed.
    Parse {
        /// Line number (1-based) where the problem was found, if known.
        line: Option<usize>,
        /// Description of the problem.
        msg: String,
    },
    /// The network definition is inconsistent (dangling branch, missing
    /// slack bus, duplicate bus id…).
    InvalidNetwork(String),
    /// A bus or branch index was out of range.
    IndexOutOfRange {
        /// What kind of element was addressed.
        kind: &'static str,
        /// The offending index.
        index: usize,
        /// Number of available elements.
        len: usize,
    },
    /// An operation would disconnect the network (islanding).
    WouldIsland {
        /// Branch index whose removal islands the grid.
        branch: usize,
    },
    /// A numerical routine failed.
    Numerics(String),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::Parse { line: Some(l), msg } => write!(f, "parse error at line {l}: {msg}"),
            GridError::Parse { line: None, msg } => write!(f, "parse error: {msg}"),
            GridError::InvalidNetwork(msg) => write!(f, "invalid network: {msg}"),
            GridError::IndexOutOfRange { kind, index, len } => {
                write!(f, "{kind} index {index} out of range (len {len})")
            }
            GridError::WouldIsland { branch } => {
                write!(f, "removing branch {branch} would island the grid")
            }
            GridError::Numerics(msg) => write!(f, "numerics failure: {msg}"),
        }
    }
}

impl std::error::Error for GridError {}

impl From<pmu_numerics::NumericsError> for GridError {
    fn from(e: pmu_numerics::NumericsError) -> Self {
        GridError::Numerics(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GridError::Parse { line: Some(3), msg: "bad".into() }
            .to_string()
            .contains("line 3"));
        assert!(GridError::Parse { line: None, msg: "bad".into() }.to_string().contains("bad"));
        assert!(GridError::InvalidNetwork("no slack".into()).to_string().contains("no slack"));
        assert!(GridError::IndexOutOfRange { kind: "bus", index: 9, len: 3 }
            .to_string()
            .contains("bus"));
        assert!(GridError::WouldIsland { branch: 7 }.to_string().contains("7"));
    }
}
