//! MATPOWER-style case-file parser.
//!
//! The IEEE test systems the paper evaluates on are distributed as
//! MATPOWER `.m` case files (`mpc.baseMVA`, `mpc.bus`, `mpc.gen`,
//! `mpc.branch` matrices). This parser understands that subset of MATLAB
//! syntax — enough to load the embedded cases in [`crate::cases`] and any
//! user-supplied file in the same format.

use crate::error::GridError;
use crate::network::{Branch, Bus, BusType, Gen, Network};
use crate::Result;
use std::collections::HashMap;

/// Minimum column counts per MATPOWER table.
const BUS_COLS: usize = 13;
const GEN_COLS: usize = 10;
const BRANCH_COLS: usize = 11;

/// Parse a MATPOWER-style case file into a [`Network`].
///
/// Supported syntax: `mpc.baseMVA = <number>;` and matrix assignments
/// `mpc.<table> = [ rows ];` with rows separated by `;` or newlines and
/// `%` line comments. Bus numbers may be arbitrary (they are mapped to
/// dense internal indices); the generator's voltage setpoint overrides the
/// bus voltage for PV/slack buses, as MATPOWER does.
///
/// # Errors
/// Returns [`GridError::Parse`] for malformed input and
/// [`GridError::InvalidNetwork`] when the parsed tables do not form a
/// consistent network.
pub fn parse_case(name: &str, text: &str) -> Result<Network> {
    let cleaned = strip_comments(text);
    let base_mva = parse_scalar(&cleaned, "baseMVA")?;
    let bus_rows = parse_table(&cleaned, "bus", BUS_COLS)?;
    let gen_rows = parse_table(&cleaned, "gen", GEN_COLS)?;
    let branch_rows = parse_table(&cleaned, "branch", BRANCH_COLS)?;

    // Map external bus numbers to dense internal indices, in file order.
    let mut ext_to_int: HashMap<usize, usize> = HashMap::new();
    let mut buses = Vec::with_capacity(bus_rows.len());
    for (i, row) in bus_rows.iter().enumerate() {
        let ext = row[0] as usize;
        if ext_to_int.insert(ext, i).is_some() {
            return Err(GridError::Parse {
                line: None,
                msg: format!("duplicate bus number {ext}"),
            });
        }
        let bus_type = match row[1] as i64 {
            1 => BusType::Pq,
            2 => BusType::Pv,
            3 => BusType::Slack,
            4 => BusType::Pq, // isolated buses are treated as PQ; validation
            // will reject them if actually disconnected.
            other => {
                return Err(GridError::Parse {
                    line: None,
                    msg: format!("bus {ext}: unknown bus type {other}"),
                })
            }
        };
        buses.push(Bus {
            ext_id: ext,
            bus_type,
            pd: row[2],
            qd: row[3],
            gs: row[4],
            bs: row[5],
            base_kv: row[9],
            vm: row[7],
            va: row[8],
        });
    }

    let lookup = |ext: f64, what: &str| -> Result<usize> {
        ext_to_int.get(&(ext as usize)).copied().ok_or_else(|| GridError::Parse {
            line: None,
            msg: format!("{what} references unknown bus {ext}"),
        })
    };

    let mut gens = Vec::with_capacity(gen_rows.len());
    for row in &gen_rows {
        let bus = lookup(row[0], "generator")?;
        let status = row[7] > 0.0;
        let g = Gen {
            bus,
            pg: row[1],
            qg: row[2],
            vg: row[5],
            qmax: row[3],
            qmin: row[4],
            status,
        };
        // MATPOWER semantics: the (in-service) generator's setpoint defines
        // the regulated voltage at its bus.
        if status && buses[bus].bus_type != BusType::Pq {
            buses[bus].vm = g.vg;
        }
        gens.push(g);
    }

    let mut branches = Vec::with_capacity(branch_rows.len());
    for row in &branch_rows {
        let from = lookup(row[0], "branch")?;
        let to = lookup(row[1], "branch")?;
        branches.push(Branch {
            from,
            to,
            r: row[2],
            x: row[3],
            b: row[4],
            tap: if row[8] == 0.0 { 1.0 } else { row[8] },
            shift: row[9],
            rate: row[5],
            status: row[10] > 0.0,
        });
    }

    Network::new(name, base_mva, buses, branches, gens)
}

/// Remove `%` comments (to end of line).
fn strip_comments(text: &str) -> String {
    text.lines()
        .map(|l| match l.find('%') {
            Some(p) => &l[..p],
            None => l,
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Parse `mpc.<key> = <number>;`.
fn parse_scalar(text: &str, key: &str) -> Result<f64> {
    let pat = format!("mpc.{key}");
    let start = text.find(&pat).ok_or_else(|| GridError::Parse {
        line: None,
        msg: format!("missing mpc.{key}"),
    })?;
    let rest = &text[start + pat.len()..];
    let eq = rest.find('=').ok_or_else(|| GridError::Parse {
        line: None,
        msg: format!("mpc.{key}: missing '='"),
    })?;
    let val: String = rest[eq + 1..]
        .chars()
        .take_while(|&c| c != ';' && c != '\n')
        .collect();
    val.trim().parse().map_err(|_| GridError::Parse {
        line: None,
        msg: format!("mpc.{key}: cannot parse number from {val:?}"),
    })
}

/// Parse `mpc.<key> = [ rows ];` into rows of floats, each with at least
/// `min_cols` columns.
fn parse_table(text: &str, key: &str, min_cols: usize) -> Result<Vec<Vec<f64>>> {
    let pat = format!("mpc.{key}");
    let start = text.find(&pat).ok_or_else(|| GridError::Parse {
        line: None,
        msg: format!("missing mpc.{key} table"),
    })?;
    let rest = &text[start..];
    let open = rest.find('[').ok_or_else(|| GridError::Parse {
        line: None,
        msg: format!("mpc.{key}: missing '['"),
    })?;
    let close = rest.find(']').ok_or_else(|| GridError::Parse {
        line: None,
        msg: format!("mpc.{key}: missing ']'"),
    })?;
    if close < open {
        return Err(GridError::Parse { line: None, msg: format!("mpc.{key}: ']' before '['") });
    }
    let body = &rest[open + 1..close];
    let mut rows = Vec::new();
    for raw_row in body.split([';', '\n']) {
        let trimmed = raw_row.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut row = Vec::new();
        for tok in trimmed.split_whitespace() {
            let v: f64 = tok.parse().map_err(|_| GridError::Parse {
                line: None,
                msg: format!("mpc.{key}: bad number {tok:?}"),
            })?;
            row.push(v);
        }
        if row.len() < min_cols {
            return Err(GridError::Parse {
                line: None,
                msg: format!(
                    "mpc.{key}: row has {} columns, expected at least {min_cols}",
                    row.len()
                ),
            });
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(GridError::Parse { line: None, msg: format!("mpc.{key}: empty table") });
    }
    Ok(rows)
}

/// Serialize a [`Network`] back to MATPOWER-style case text that
/// [`parse_case`] round-trips (external bus numbers, generator setpoints
/// and branch taps preserved).
pub fn write_case(net: &Network) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "function mpc = {}", net.name.replace(['\\', ' '], "_"));
    let _ = writeln!(s, "% exported by pmu-grid");
    let _ = writeln!(s, "mpc.version = '2';");
    let _ = writeln!(s, "mpc.baseMVA = {};", net.base_mva);

    let _ = writeln!(s, "\n% bus_i type Pd Qd Gs Bs area Vm Va baseKV zone Vmax Vmin");
    let _ = writeln!(s, "mpc.bus = [");
    for bus in net.buses() {
        let t = match bus.bus_type {
            BusType::Pq => 1,
            BusType::Pv => 2,
            BusType::Slack => 3,
        };
        let _ = writeln!(
            s,
            "  {} {} {} {} {} {} 1 {} {} {} 1 1.1 0.9;",
            bus.ext_id, t, bus.pd, bus.qd, bus.gs, bus.bs, bus.vm, bus.va, bus.base_kv
        );
    }
    let _ = writeln!(s, "];");

    let _ = writeln!(s, "\n% bus Pg Qg Qmax Qmin Vg mBase status Pmax Pmin");
    let _ = writeln!(s, "mpc.gen = [");
    for g in net.gens() {
        let _ = writeln!(
            s,
            "  {} {} {} {} {} {} {} {} 0 0;",
            net.buses()[g.bus].ext_id,
            g.pg,
            g.qg,
            g.qmax,
            g.qmin,
            g.vg,
            net.base_mva,
            i32::from(g.status)
        );
    }
    let _ = writeln!(s, "];");

    let _ = writeln!(s, "\n% fbus tbus r x b rateA rateB rateC ratio angle status");
    let _ = writeln!(s, "mpc.branch = [");
    for br in net.branches() {
        let _ = writeln!(
            s,
            "  {} {} {} {} {} {} 0 0 {} {} {};",
            net.buses()[br.from].ext_id,
            net.buses()[br.to].ext_id,
            br.r,
            br.x,
            br.b,
            br.rate,
            br.tap,
            br.shift,
            i32::from(br.status)
        );
    }
    let _ = writeln!(s, "];");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = r#"
function mpc = tiny
mpc.version = '2';
mpc.baseMVA = 100;
% bus_i type Pd Qd Gs Bs area Vm Va baseKV zone Vmax Vmin
mpc.bus = [
  1 3 0   0  0 0 1 1.05 0 135 1 1.06 0.94;
  2 1 50 10  0 0 1 1.00 0 135 1 1.06 0.94;
  3 2 20  5  0 0 1 1.02 0 135 1 1.06 0.94;
];
mpc.gen = [
  1 60 0 99 -99 1.05 100 1 200 0;
  3 15 0 50 -50 1.03 100 1 100 0;
];
mpc.branch = [
  1 2 0.02 0.2 0.04 0 0 0 0    0 1;
  2 3 0.01 0.1 0.02 0 0 0 0.98 0 1;
  1 3 0.03 0.3 0.00 0 0 0 0    0 1;
];
"#;

    #[test]
    fn parses_tiny_case() {
        let net = parse_case("tiny", TINY).unwrap();
        assert_eq!(net.n_buses(), 3);
        assert_eq!(net.n_branches(), 3);
        assert_eq!(net.base_mva, 100.0);
        assert_eq!(net.buses()[0].bus_type, BusType::Slack);
        assert_eq!(net.buses()[1].pd, 50.0);
        // Generator setpoint overrides bus Vm for PV bus 3.
        assert_eq!(net.buses()[2].vm, 1.03);
        // Tap 0 normalized to 1.
        assert_eq!(net.branches()[0].tap, 1.0);
        assert_eq!(net.branches()[1].tap, 0.98);
        assert_eq!(net.gens().len(), 2);
    }

    #[test]
    fn comments_are_ignored() {
        let with_comment = TINY.replace("mpc.baseMVA = 100;", "mpc.baseMVA = 100; % base");
        assert!(parse_case("tiny", &with_comment).is_ok());
    }

    #[test]
    fn missing_tables_error() {
        assert!(parse_case("x", "mpc.baseMVA = 100;").is_err());
        let no_base = TINY.replace("mpc.baseMVA = 100;", "");
        assert!(parse_case("x", &no_base).is_err());
    }

    #[test]
    fn malformed_numbers_error() {
        let bad = TINY.replace("0.02", "zero.zero2");
        match parse_case("x", &bad) {
            Err(GridError::Parse { msg, .. }) => assert!(msg.contains("bad number")),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn short_rows_error() {
        let bad = TINY.replace("1 2 0.02 0.2 0.04 0 0 0 0    0 1;", "1 2 0.02;");
        assert!(parse_case("x", &bad).is_err());
    }

    #[test]
    fn duplicate_bus_numbers_error() {
        let bad = TINY.replace("2 1 50 10", "1 1 50 10");
        assert!(parse_case("x", &bad).is_err());
    }

    #[test]
    fn unknown_bus_reference_errors() {
        let bad = TINY.replace("1 3 0.03 0.3", "1 9 0.03 0.3");
        assert!(parse_case("x", &bad).is_err());
    }

    #[test]
    fn non_contiguous_bus_numbers_are_remapped() {
        // Branch rows first: the bus-row pattern "  1 3 0" would otherwise
        // also match the prefix of branch row "  1 3 0.03".
        let renumbered = TINY
            .replace("  1 2 0.02", "  10 20 0.02")
            .replace("  2 3 0.01", "  20 30 0.01")
            .replace("  1 3 0.03", "  10 30 0.03")
            .replace("  1 60 0", "  10 60 0")
            .replace("  3 15 0", "  30 15 0")
            .replace("  1 3 0", "  10 3 0")
            .replace("  2 1 50", "  20 1 50")
            .replace("  3 2 20", "  30 2 20");
        let net = parse_case("renum", &renumbered).unwrap();
        assert_eq!(net.n_buses(), 3);
        assert_eq!(net.ext_to_internal(10), Some(0));
        assert_eq!(net.ext_to_internal(30), Some(2));
        assert_eq!(net.branches()[2].from, 0);
        assert_eq!(net.branches()[2].to, 2);
    }
}

#[cfg(test)]
mod write_tests {
    use super::*;
    use crate::cases::{ieee14, ieee30};

    #[test]
    fn roundtrip_preserves_network() {
        for net in [ieee14().unwrap(), ieee30().unwrap()] {
            let text = write_case(&net);
            let back = parse_case(&net.name, &text).unwrap();
            assert_eq!(back.n_buses(), net.n_buses());
            assert_eq!(back.n_branches(), net.n_branches());
            assert_eq!(back.base_mva, net.base_mva);
            for (a, b) in net.buses().iter().zip(back.buses()) {
                assert_eq!(a.ext_id, b.ext_id);
                assert_eq!(a.bus_type, b.bus_type);
                assert!((a.pd - b.pd).abs() < 1e-12);
                assert!((a.qd - b.qd).abs() < 1e-12);
                assert!((a.bs - b.bs).abs() < 1e-12);
            }
            for (a, b) in net.branches().iter().zip(back.branches()) {
                assert_eq!(a.from, b.from);
                assert_eq!(a.to, b.to);
                assert!((a.r - b.r).abs() < 1e-12);
                assert!((a.x - b.x).abs() < 1e-12);
                assert!((a.tap - b.tap).abs() < 1e-12);
                assert_eq!(a.status, b.status);
            }
            assert_eq!(net.gens().len(), back.gens().len());
        }
    }

    #[test]
    fn roundtrip_preserves_power_flow_solution() {
        use pmu_numerics::Matrix;
        let net = ieee14().unwrap();
        let back = parse_case("ieee14", &write_case(&net)).unwrap();
        // Identical Y-bus means identical physics.
        let y0 = crate::ybus::build_ybus(&net);
        let y1 = crate::ybus::build_ybus(&back);
        let d0 = Matrix::from_fn(14, 14, |r, c| (y0[(r, c)] - y1[(r, c)]).abs());
        assert!(d0.norm_max() < 1e-12);
    }

    #[test]
    fn outaged_branch_survives_roundtrip() {
        let net = ieee14().unwrap();
        let idx = net.valid_outage_branches()[0];
        let out = net.with_branch_outage(idx).unwrap();
        let back = parse_case("out", &write_case(&out)).unwrap();
        assert!(!back.branches()[idx].status);
        assert!(back.is_connected());
    }
}
