//! PMU sensor placement and network observability (coverage).
//!
//! The paper assumes "a proper deployment of PMUs in the grid in order to
//! provide complete observability" and cites its ref. \[13\] for placement.
//! This module provides the standard machinery behind that assumption: a
//! bus is *observable* if it hosts a PMU or neighbours one (a PMU measures
//! its bus voltage and, via branch currents, the voltages across every
//! incident line), and a greedy dominating-set heuristic chooses placements
//! that achieve full observability with few devices.
//!
//! Not to be confused with *software* observability: runtime tracing and
//! metrics for this codebase live in the `pmu-obs` crate. This module is
//! about the electrical-engineering property of the sensor network —
//! which buses a given PMU deployment can see.

use crate::network::Network;

/// Which buses a given PMU deployment observes: a bus is covered when it
/// hosts a PMU or is adjacent (over an in-service line) to one.
pub fn observed_buses(net: &Network, pmu_buses: &[usize]) -> Vec<bool> {
    let n = net.n_buses();
    let mut covered = vec![false; n];
    for &b in pmu_buses {
        if b >= n {
            continue;
        }
        covered[b] = true;
        for nb in net.neighbors(b) {
            covered[nb] = true;
        }
    }
    covered
}

/// `true` when the deployment observes every bus.
pub fn is_fully_observable(net: &Network, pmu_buses: &[usize]) -> bool {
    observed_buses(net, pmu_buses).iter().all(|&c| c)
}

/// Greedy minimum-dominating-set placement: repeatedly place a PMU at the
/// bus covering the most currently-uncovered buses (ties broken by lower
/// index, so the result is deterministic). Returns the chosen buses in
/// placement order; full observability is guaranteed for a connected grid.
pub fn greedy_placement(net: &Network) -> Vec<usize> {
    let n = net.n_buses();
    let mut covered = vec![false; n];
    let mut chosen = Vec::new();
    while covered.iter().any(|&c| !c) {
        let mut best = 0usize;
        let mut best_gain = 0usize;
        for b in 0..n {
            let mut gain = usize::from(!covered[b]);
            for nb in net.neighbors(b) {
                gain += usize::from(!covered[nb]);
            }
            if gain > best_gain {
                best_gain = gain;
                best = b;
            }
        }
        if best_gain == 0 {
            break; // Isolated leftovers (cannot happen on a connected grid).
        }
        chosen.push(best);
        covered[best] = true;
        for nb in net.neighbors(best) {
            covered[nb] = true;
        }
    }
    chosen
}

/// Coverage fraction of a deployment (1.0 = fully observable).
pub fn coverage(net: &Network, pmu_buses: &[usize]) -> f64 {
    let covered = observed_buses(net, pmu_buses);
    covered.iter().filter(|&&c| c).count() as f64 / covered.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::{ieee118, ieee14, ieee30, ieee57};

    #[test]
    fn full_deployment_is_fully_observable() {
        let net = ieee14().unwrap();
        let all: Vec<usize> = (0..14).collect();
        assert!(is_fully_observable(&net, &all));
        assert_eq!(coverage(&net, &all), 1.0);
    }

    #[test]
    fn empty_deployment_sees_nothing() {
        let net = ieee14().unwrap();
        assert!(!is_fully_observable(&net, &[]));
        assert_eq!(coverage(&net, &[]), 0.0);
    }

    #[test]
    fn single_pmu_covers_its_neighbourhood() {
        let net = ieee14().unwrap();
        // Bus 3 (internal) neighbours {1, 2, 4, 6, 8} in IEEE-14.
        let covered = observed_buses(&net, &[3]);
        assert!(covered[3]);
        for nb in net.neighbors(3) {
            assert!(covered[nb], "neighbour {nb} uncovered");
        }
        let far = (0..14).find(|&b| !covered[b]).expect("far bus exists");
        assert!(!net.neighbors(3).contains(&far));
    }

    #[test]
    fn greedy_placement_achieves_full_observability_everywhere() {
        for net in [ieee14().unwrap(), ieee30().unwrap(), ieee57().unwrap(), ieee118().unwrap()]
        {
            let placement = greedy_placement(&net);
            assert!(
                is_fully_observable(&net, &placement),
                "{}: greedy placement not observable",
                net.name
            );
            // Substantially fewer PMUs than buses (dominating sets of
            // meshed grids are small).
            assert!(
                placement.len() * 2 <= net.n_buses(),
                "{}: {} PMUs for {} buses",
                net.name,
                placement.len(),
                net.n_buses()
            );
        }
    }

    #[test]
    fn greedy_placement_is_deterministic() {
        let net = ieee30().unwrap();
        assert_eq!(greedy_placement(&net), greedy_placement(&net));
    }

    #[test]
    fn classic_ieee14_placement_size() {
        // The known minimum PMU placement for IEEE-14 under this rule is 4
        // devices; greedy should land at 4 (it does for this topology).
        let net = ieee14().unwrap();
        let placement = greedy_placement(&net);
        assert!(placement.len() <= 5, "greedy used {} PMUs", placement.len());
    }

    #[test]
    fn out_of_range_pmu_ignored() {
        let net = ieee14().unwrap();
        let covered = observed_buses(&net, &[99]);
        assert!(covered.iter().all(|&c| !c));
    }
}
