//! The core network model: buses, branches, generators, and the graph
//! operations the detector relies on (neighbourhoods, connectivity, and
//! line-outage application).

use crate::error::GridError;
use crate::Result;
use std::collections::VecDeque;

/// Role of a bus in the power-flow formulation.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusType {
    /// Reference bus: voltage magnitude and angle fixed.
    Slack,
    /// Generator bus: active power and voltage magnitude fixed.
    Pv,
    /// Load bus: active and reactive power fixed.
    Pq,
}

/// A power bus (node of the grid graph). All power quantities are in MW /
/// MVAr (converted to per-unit by the solver using the system MVA base).
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, PartialEq)]
pub struct Bus {
    /// External (case-file) bus number.
    pub ext_id: usize,
    /// Bus role.
    pub bus_type: BusType,
    /// Active power demand (MW).
    pub pd: f64,
    /// Reactive power demand (MVAr).
    pub qd: f64,
    /// Shunt conductance (MW at V = 1.0 p.u.).
    pub gs: f64,
    /// Shunt susceptance (MVAr at V = 1.0 p.u.).
    pub bs: f64,
    /// Base voltage (kV); informational.
    pub base_kv: f64,
    /// Initial / nominal voltage magnitude (p.u.).
    pub vm: f64,
    /// Initial / nominal voltage angle (degrees).
    pub va: f64,
}

/// A generator attached to a bus.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, PartialEq)]
pub struct Gen {
    /// Internal index of the bus this generator is attached to.
    pub bus: usize,
    /// Active power output (MW).
    pub pg: f64,
    /// Reactive power output (MVAr).
    pub qg: f64,
    /// Voltage magnitude setpoint (p.u.).
    pub vg: f64,
    /// Maximum reactive output (MVAr).
    pub qmax: f64,
    /// Minimum reactive output (MVAr).
    pub qmin: f64,
    /// In-service flag.
    pub status: bool,
}

/// A transmission line or transformer (edge of the grid graph).
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, PartialEq)]
pub struct Branch {
    /// Internal index of the from-bus.
    pub from: usize,
    /// Internal index of the to-bus.
    pub to: usize,
    /// Series resistance (p.u.).
    pub r: f64,
    /// Series reactance (p.u.).
    pub x: f64,
    /// Total line charging susceptance (p.u.).
    pub b: f64,
    /// Off-nominal tap ratio (`1.0` for a plain line; MATPOWER uses `0`
    /// to mean "no transformer", normalized to `1.0` at construction).
    pub tap: f64,
    /// Phase-shift angle (degrees).
    pub shift: f64,
    /// Thermal rating (MVA); `0.0` means unlimited. Used by the cascading
    /// failure simulator and N-1 security screening.
    pub rate: f64,
    /// In-service flag: `false` models a line outage.
    pub status: bool,
}

/// A complete transmission network.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    /// Human-readable case name (e.g. `"ieee14"`).
    pub name: String,
    /// System MVA base used for per-unit conversion.
    pub base_mva: f64,
    buses: Vec<Bus>,
    branches: Vec<Branch>,
    gens: Vec<Gen>,
}

impl Network {
    /// Assemble a network, validating consistency.
    ///
    /// # Errors
    /// Returns [`GridError::InvalidNetwork`] when a branch or generator
    /// references a missing bus, there is not exactly one slack bus, a
    /// branch has a non-positive reactance, or the in-service grid is
    /// disconnected.
    pub fn new(
        name: impl Into<String>,
        base_mva: f64,
        buses: Vec<Bus>,
        branches: Vec<Branch>,
        gens: Vec<Gen>,
    ) -> Result<Self> {
        let n = buses.len();
        if n == 0 {
            return Err(GridError::InvalidNetwork("no buses".into()));
        }
        let slack_count = buses.iter().filter(|b| b.bus_type == BusType::Slack).count();
        if slack_count != 1 {
            return Err(GridError::InvalidNetwork(format!(
                "expected exactly 1 slack bus, found {slack_count}"
            )));
        }
        for (i, br) in branches.iter().enumerate() {
            if br.from >= n || br.to >= n {
                return Err(GridError::InvalidNetwork(format!(
                    "branch {i} references missing bus ({} -> {})",
                    br.from, br.to
                )));
            }
            if br.from == br.to {
                return Err(GridError::InvalidNetwork(format!("branch {i} is a self-loop")));
            }
            if br.x <= 0.0 {
                return Err(GridError::InvalidNetwork(format!(
                    "branch {i} has non-positive reactance {}",
                    br.x
                )));
            }
        }
        for (i, g) in gens.iter().enumerate() {
            if g.bus >= n {
                return Err(GridError::InvalidNetwork(format!(
                    "generator {i} references missing bus {}",
                    g.bus
                )));
            }
        }
        let net = Network { name: name.into(), base_mva, buses, branches, gens };
        if !net.is_connected() {
            return Err(GridError::InvalidNetwork("in-service grid is disconnected".into()));
        }
        Ok(net)
    }

    /// Number of buses.
    #[inline]
    pub fn n_buses(&self) -> usize {
        self.buses.len()
    }

    /// Number of branches (including out-of-service ones).
    #[inline]
    pub fn n_branches(&self) -> usize {
        self.branches.len()
    }

    /// Borrow the bus list.
    #[inline]
    pub fn buses(&self) -> &[Bus] {
        &self.buses
    }

    /// Borrow the branch list.
    #[inline]
    pub fn branches(&self) -> &[Branch] {
        &self.branches
    }

    /// Borrow the generator list.
    #[inline]
    pub fn gens(&self) -> &[Gen] {
        &self.gens
    }

    /// Internal index of the slack bus.
    pub fn slack(&self) -> usize {
        self.buses
            .iter()
            .position(|b| b.bus_type == BusType::Slack)
            .expect("validated at construction")
    }

    /// Indices of in-service branches.
    pub fn active_branches(&self) -> Vec<usize> {
        (0..self.branches.len()).filter(|&i| self.branches[i].status).collect()
    }

    /// Neighbouring buses of `bus` over in-service branches (deduplicated,
    /// ascending).
    pub fn neighbors(&self, bus: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .branches
            .iter()
            .filter(|br| br.status)
            .filter_map(|br| {
                if br.from == bus {
                    Some(br.to)
                } else if br.to == bus {
                    Some(br.from)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Indices of in-service branches incident to `bus` — the set `E_i` of
    /// the paper (all power lines of node *i*).
    pub fn lines_of(&self, bus: usize) -> Vec<usize> {
        (0..self.branches.len())
            .filter(|&i| {
                let br = &self.branches[i];
                br.status && (br.from == bus || br.to == bus)
            })
            .collect()
    }

    /// Degree of `bus` over in-service branches.
    pub fn degree(&self, bus: usize) -> usize {
        self.lines_of(bus).len()
    }

    /// Connected components of the in-service grid; each component lists
    /// bus indices in ascending order, and components are sorted by their
    /// smallest member.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.n_buses();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for br in self.branches.iter().filter(|b| b.status) {
            adj[br.from].push(br.to);
            adj[br.to].push(br.from);
        }
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::from([start]);
            seen[start] = true;
            while let Some(u) = queue.pop_front() {
                comp.push(u);
                for &v in &adj[u] {
                    if !seen[v] {
                        seen[v] = true;
                        queue.push_back(v);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// `true` when every bus is reachable from every other over in-service
    /// branches.
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() == 1
    }

    /// BFS hop distances from `start` over in-service branches
    /// (`usize::MAX` for unreachable buses).
    pub fn bfs_distances(&self, start: usize) -> Vec<usize> {
        let n = self.n_buses();
        let mut dist = vec![usize::MAX; n];
        if start >= n {
            return dist;
        }
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for br in self.branches.iter().filter(|b| b.status) {
            adj[br.from].push(br.to);
            adj[br.to].push(br.from);
        }
        dist[start] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// A copy of the network with branch `idx` taken out of service — the
    /// paper's line outage `P(N, E \ {e_ij})`.
    ///
    /// # Errors
    /// Returns [`GridError::IndexOutOfRange`] for a bad index and
    /// [`GridError::WouldIsland`] when the removal disconnects the grid
    /// (the paper excludes islanding cases from evaluation).
    pub fn with_branch_outage(&self, idx: usize) -> Result<Network> {
        if idx >= self.branches.len() {
            return Err(GridError::IndexOutOfRange {
                kind: "branch",
                index: idx,
                len: self.branches.len(),
            });
        }
        let mut net = self.clone();
        net.branches[idx].status = false;
        if !net.is_connected() {
            return Err(GridError::WouldIsland { branch: idx });
        }
        net.name = format!("{}\\e{}", self.name, idx);
        Ok(net)
    }

    /// A copy with several branches taken out of service simultaneously.
    ///
    /// # Errors
    /// As [`Network::with_branch_outage`]; islanding is reported for the
    /// combined removal.
    pub fn with_branch_outages(&self, idxs: &[usize]) -> Result<Network> {
        let mut net = self.clone();
        for &idx in idxs {
            if idx >= self.branches.len() {
                return Err(GridError::IndexOutOfRange {
                    kind: "branch",
                    index: idx,
                    len: self.branches.len(),
                });
            }
            net.branches[idx].status = false;
        }
        if !net.is_connected() {
            return Err(GridError::WouldIsland { branch: idxs.first().copied().unwrap_or(0) });
        }
        Ok(net)
    }

    /// Branches whose individual removal keeps the grid connected — the
    /// paper's `E` valid single-line outage cases ("cases that … result in
    /// disconnecting the grid, i.e. islanding, are not considered").
    pub fn valid_outage_branches(&self) -> Vec<usize> {
        self.active_branches()
            .into_iter()
            .filter(|&i| self.with_branch_outage(i).is_ok())
            .collect()
    }

    /// Total active-power demand (MW).
    pub fn total_load(&self) -> f64 {
        self.buses.iter().map(|b| b.pd).sum()
    }

    /// Set the demand at a bus (MW / MVAr). Used by the load-process
    /// simulator to impose time-varying demand.
    ///
    /// # Errors
    /// Returns [`GridError::IndexOutOfRange`] for a bad bus index.
    pub fn set_load(&mut self, bus: usize, pd: f64, qd: f64) -> Result<()> {
        let n = self.buses.len();
        let b = self.buses.get_mut(bus).ok_or(GridError::IndexOutOfRange {
            kind: "bus",
            index: bus,
            len: n,
        })?;
        b.pd = pd;
        b.qd = qd;
        Ok(())
    }

    /// Set a generator's active-power output (MW). Used by the simulator to
    /// redispatch generation as load varies.
    ///
    /// # Errors
    /// Returns [`GridError::IndexOutOfRange`] for a bad generator index.
    pub fn set_gen_p(&mut self, gen: usize, pg: f64) -> Result<()> {
        let len = self.gens.len();
        let g = self.gens.get_mut(gen).ok_or(GridError::IndexOutOfRange {
            kind: "gen",
            index: gen,
            len,
        })?;
        g.pg = pg;
        Ok(())
    }

    /// Set a generator's reactive-power output (MVAr). Used by the power
    /// flow's reactive-limit enforcement when pinning a generator at its
    /// limit.
    ///
    /// # Errors
    /// Returns [`GridError::IndexOutOfRange`] for a bad generator index.
    pub fn set_gen_q(&mut self, gen: usize, qg: f64) -> Result<()> {
        let len = self.gens.len();
        let g = self.gens.get_mut(gen).ok_or(GridError::IndexOutOfRange {
            kind: "gen",
            index: gen,
            len,
        })?;
        g.qg = qg;
        Ok(())
    }

    /// Change a bus's role in the power-flow formulation. Used by
    /// reactive-limit enforcement (PV → PQ switching). Demoting the slack
    /// bus is rejected — a network must keep its reference.
    ///
    /// # Errors
    /// Returns [`GridError::IndexOutOfRange`] for a bad bus index and
    /// [`GridError::InvalidNetwork`] when the change would remove or
    /// duplicate the slack.
    pub fn set_bus_type(&mut self, bus: usize, bus_type: BusType) -> Result<()> {
        let n = self.buses.len();
        let current = self
            .buses
            .get(bus)
            .ok_or(GridError::IndexOutOfRange { kind: "bus", index: bus, len: n })?
            .bus_type;
        if current == BusType::Slack && bus_type != BusType::Slack {
            return Err(GridError::InvalidNetwork("cannot demote the slack bus".into()));
        }
        if current != BusType::Slack && bus_type == BusType::Slack {
            return Err(GridError::InvalidNetwork("network already has a slack bus".into()));
        }
        self.buses[bus].bus_type = bus_type;
        Ok(())
    }

    /// Map from external (case-file) bus numbers to internal indices.
    pub fn ext_to_internal(&self, ext: usize) -> Option<usize> {
        self.buses.iter().position(|b| b.ext_id == ext)
    }

    /// Content fingerprint of the full electrical model (name, MVA base,
    /// every bus/branch/generator parameter at raw `f64` bit level).
    ///
    /// Persisted model bundles carry this value so a trained detector is
    /// never silently applied to a topology it was not trained on — any
    /// parameter edit, added branch, or status flip changes the digest.
    pub fn fingerprint(&self) -> u64 {
        let mut h = pmu_numerics::hash::Fnv1a::new();
        h.write_str(&self.name);
        h.write_f64(self.base_mva);
        h.write_usize(self.buses.len());
        for b in &self.buses {
            h.write_usize(b.ext_id);
            h.write_u64(match b.bus_type {
                BusType::Slack => 0,
                BusType::Pv => 1,
                BusType::Pq => 2,
            });
            for v in [b.pd, b.qd, b.gs, b.bs, b.base_kv, b.vm, b.va] {
                h.write_f64(v);
            }
        }
        h.write_usize(self.branches.len());
        for br in &self.branches {
            h.write_usize(br.from);
            h.write_usize(br.to);
            for v in [br.r, br.x, br.b, br.tap, br.shift, br.rate] {
                h.write_f64(v);
            }
            h.write_u64(u64::from(br.status));
        }
        h.write_usize(self.gens.len());
        for g in &self.gens {
            h.write_usize(g.bus);
            for v in [g.pg, g.qg, g.vg, g.qmax, g.qmin] {
                h.write_f64(v);
            }
            h.write_u64(u64::from(g.status));
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-bus test fixture: ring 0-1-2-3-0 plus chord 0-2.
    pub(crate) fn ring4() -> Network {
        let mk_bus = |ext: usize, t: BusType| Bus {
            ext_id: ext,
            bus_type: t,
            pd: if t == BusType::Pq { 10.0 } else { 0.0 },
            qd: 2.0,
            gs: 0.0,
            bs: 0.0,
            base_kv: 135.0,
            vm: 1.0,
            va: 0.0,
        };
        let mk_br = |f: usize, t: usize| Branch {
            from: f,
            to: t,
            r: 0.01,
            x: 0.1,
            b: 0.02,
            tap: 1.0,
            shift: 0.0,
            rate: 0.0,
            status: true,
        };
        Network::new(
            "ring4",
            100.0,
            vec![
                mk_bus(1, BusType::Slack),
                mk_bus(2, BusType::Pv),
                mk_bus(3, BusType::Pq),
                mk_bus(4, BusType::Pq),
            ],
            vec![mk_br(0, 1), mk_br(1, 2), mk_br(2, 3), mk_br(3, 0), mk_br(0, 2)],
            vec![Gen {
                bus: 1,
                pg: 20.0,
                qg: 0.0,
                vg: 1.02,
                qmax: 50.0,
                qmin: -50.0,
                status: true,
            }],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let net = ring4();
        assert_eq!(net.n_buses(), 4);
        assert_eq!(net.n_branches(), 5);
        assert_eq!(net.slack(), 0);
        assert_eq!(net.total_load(), 20.0);
    }

    #[test]
    fn rejects_bad_networks() {
        let net = ring4();
        // No slack.
        let mut buses = net.buses().to_vec();
        buses[0].bus_type = BusType::Pq;
        assert!(Network::new("x", 100.0, buses, net.branches().to_vec(), vec![]).is_err());
        // Two slacks.
        let mut buses = net.buses().to_vec();
        buses[1].bus_type = BusType::Slack;
        assert!(Network::new("x", 100.0, buses, net.branches().to_vec(), vec![]).is_err());
        // Dangling branch.
        let mut branches = net.branches().to_vec();
        branches[0].to = 99;
        assert!(Network::new("x", 100.0, net.buses().to_vec(), branches, vec![]).is_err());
        // Self loop.
        let mut branches = net.branches().to_vec();
        branches[0].to = branches[0].from;
        assert!(Network::new("x", 100.0, net.buses().to_vec(), branches, vec![]).is_err());
        // Zero reactance.
        let mut branches = net.branches().to_vec();
        branches[0].x = 0.0;
        assert!(Network::new("x", 100.0, net.buses().to_vec(), branches, vec![]).is_err());
        // Disconnected.
        let branches = vec![net.branches()[0].clone()];
        assert!(Network::new("x", 100.0, net.buses().to_vec(), branches, vec![]).is_err());
        // Empty.
        assert!(Network::new("x", 100.0, vec![], vec![], vec![]).is_err());
        // Bad generator bus.
        let gens = vec![Gen { bus: 42, ..net.gens()[0].clone() }];
        assert!(Network::new("x", 100.0, net.buses().to_vec(), net.branches().to_vec(), gens)
            .is_err());
    }

    #[test]
    fn neighborhood_queries() {
        let net = ring4();
        assert_eq!(net.neighbors(0), vec![1, 2, 3]);
        assert_eq!(net.neighbors(1), vec![0, 2]);
        assert_eq!(net.degree(0), 3);
        assert_eq!(net.lines_of(2), vec![1, 2, 4]);
    }

    #[test]
    fn outage_application() {
        let net = ring4();
        let out = net.with_branch_outage(4).unwrap();
        assert!(!out.branches()[4].status);
        assert!(out.is_connected());
        assert_eq!(out.degree(0), 2);
        assert!(net.with_branch_outage(99).is_err());
    }

    #[test]
    fn islanding_detected() {
        // Remove both branches touching bus 3 → bus 3 islands.
        let net = ring4();
        let partial = net.with_branch_outage(2).unwrap();
        match partial.with_branch_outage(3) {
            Err(GridError::WouldIsland { branch: 3 }) => {}
            other => panic!("expected islanding, got {other:?}"),
        }
        // Multi-outage helper reports it too.
        assert!(net.with_branch_outages(&[2, 3]).is_err());
        assert!(net.with_branch_outages(&[2]).is_ok());
        assert!(net.with_branch_outages(&[99]).is_err());
    }

    #[test]
    fn valid_outage_branches_respects_topology() {
        // In ring4 every single branch can fail without islanding.
        let net = ring4();
        assert_eq!(net.valid_outage_branches(), vec![0, 1, 2, 3, 4]);
        // After removing the chord, the remaining ring still survives any
        // single failure... no wait: a pure 4-ring survives one failure.
        let ring = net.with_branch_outage(4).unwrap();
        assert_eq!(ring.valid_outage_branches().len(), 4);
        // But a tree does not survive any.
        let tree = ring.with_branch_outage(3).unwrap();
        assert!(tree.valid_outage_branches().is_empty());
    }

    #[test]
    fn bfs_distances_measure_hops() {
        let net = ring4().with_branch_outage(4).unwrap(); // plain ring
        let d = net.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 1]);
        assert!(net.bfs_distances(9).iter().all(|&x| x == usize::MAX));
    }

    #[test]
    fn components_after_severing() {
        let mut net = ring4();
        // Force-disconnect by flipping status directly (bypassing guards).
        net.branches[2].status = false;
        net.branches[3].status = false;
        let comps = net.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3]);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let net = ring4();
        let base = net.fingerprint();
        assert_eq!(base, ring4().fingerprint(), "fingerprint must be deterministic");
        // Any electrical edit changes the digest.
        let mut edited = net.clone();
        edited.set_load(2, 10.5, 2.0).unwrap();
        assert_ne!(base, edited.fingerprint());
        // A status flip (line outage) changes it too.
        let mut outaged = net.clone();
        outaged.branches[4].status = false;
        assert_ne!(base, outaged.fingerprint());
        // Renaming alone changes it (the name keys artifact lookup).
        let mut renamed = net.clone();
        renamed.name = "ring4b".into();
        assert_ne!(base, renamed.fingerprint());
    }

    #[test]
    fn ext_id_mapping() {
        let net = ring4();
        assert_eq!(net.ext_to_internal(1), Some(0));
        assert_eq!(net.ext_to_internal(4), Some(3));
        assert_eq!(net.ext_to_internal(99), None);
    }
}
