//! Admittance matrices and graph Laplacians.
//!
//! The paper's Eq. (1) writes the linearized grid response as
//! `X = Y⁺ P`, with `Y` a weighted Laplacian of the grid graph carrying the
//! line statuses. This module builds both the full complex bus admittance
//! matrix (for AC power flow) and the real susceptance Laplacian (for DC
//! power flow and Eq. (1) itself).

use crate::network::Network;
use pmu_numerics::{CMatrix, Complex64, CsrCMatrix, Matrix};

/// Build the complex bus admittance matrix (Y-bus) from in-service
/// branches and bus shunts, honouring off-nominal taps and phase shifts
/// (standard MATPOWER π-model).
pub fn build_ybus(net: &Network) -> CMatrix {
    let n = net.n_buses();
    let mut y = CMatrix::zeros(n, n);
    for br in net.branches().iter().filter(|b| b.status) {
        let ys = Complex64::ONE / Complex64::new(br.r, br.x);
        let bc_half = Complex64::new(0.0, br.b / 2.0);
        let tap = if br.tap == 0.0 { 1.0 } else { br.tap };
        let shift_rad = br.shift.to_radians();
        let t = Complex64::from_polar(tap, shift_rad);

        // π-model stamps. From-side sees the transformer.
        let yff = (ys + bc_half) / (tap * tap);
        let ytt = ys + bc_half;
        let yft = -(ys / t.conj());
        let ytf = -(ys / t);

        y[(br.from, br.from)] += yff;
        y[(br.to, br.to)] += ytt;
        y[(br.from, br.to)] += yft;
        y[(br.to, br.from)] += ytf;
    }
    for (i, bus) in net.buses().iter().enumerate() {
        y[(i, i)] += Complex64::new(bus.gs, bus.bs) / net.base_mva;
    }
    y
}

/// Build the bus admittance matrix in compressed sparse row form — same
/// stamps as [`build_ybus`], stored sparsely. At IEEE-118 size the Y-bus
/// is ~97% zero, and the AC power-flow fast path (`pmu_flow::AcSolver`)
/// iterates injections and Jacobian entries over exactly these nonzeros.
///
/// Stamps are pushed in the same branch-then-shunt order as the dense
/// builder and duplicate stamps are summed in insertion order, so every
/// entry is bit-identical to its dense counterpart.
pub fn build_ybus_sparse(net: &Network) -> CsrCMatrix {
    let n = net.n_buses();
    let branches_in = net.branches().iter().filter(|b| b.status).count();
    let mut triplets = Vec::with_capacity(4 * branches_in + n);
    for br in net.branches().iter().filter(|b| b.status) {
        let ys = Complex64::ONE / Complex64::new(br.r, br.x);
        let bc_half = Complex64::new(0.0, br.b / 2.0);
        let tap = if br.tap == 0.0 { 1.0 } else { br.tap };
        let shift_rad = br.shift.to_radians();
        let t = Complex64::from_polar(tap, shift_rad);

        triplets.push((br.from, br.from, (ys + bc_half) / (tap * tap)));
        triplets.push((br.to, br.to, ys + bc_half));
        triplets.push((br.from, br.to, -(ys / t.conj())));
        triplets.push((br.to, br.from, -(ys / t)));
    }
    for (i, bus) in net.buses().iter().enumerate() {
        if bus.gs != 0.0 || bus.bs != 0.0 {
            triplets.push((i, i, Complex64::new(bus.gs, bus.bs) / net.base_mva));
        }
    }
    CsrCMatrix::from_triplets(n, n, triplets).expect("bus indices are validated")
}

/// The weighted graph Laplacian with weights `1/x` over in-service
/// branches — the `Y` of the paper's Eq. (1) in its DC approximation.
///
/// Row sums are zero by construction; the matrix is singular with the
/// all-ones nullvector for a connected grid.
pub fn susceptance_laplacian(net: &Network) -> Matrix {
    let n = net.n_buses();
    let mut l = Matrix::zeros(n, n);
    for br in net.branches().iter().filter(|b| b.status) {
        let tap = if br.tap == 0.0 { 1.0 } else { br.tap };
        let w = 1.0 / (br.x * tap);
        l[(br.from, br.from)] += w;
        l[(br.to, br.to)] += w;
        l[(br.from, br.to)] -= w;
        l[(br.to, br.from)] -= w;
    }
    l
}

/// The DC power-flow B' matrix: the susceptance Laplacian with the slack
/// bus row/column deleted (non-singular for a connected grid). Returns the
/// matrix together with the list of non-slack bus indices in order.
pub fn dc_b_matrix(net: &Network) -> (Matrix, Vec<usize>) {
    let slack = net.slack();
    let keep: Vec<usize> = (0..net.n_buses()).filter(|&i| i != slack).collect();
    let l = susceptance_laplacian(net);
    let b = l.select_rows(&keep).select_columns(&keep);
    (b, keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Branch, Bus, BusType, Network};

    fn two_bus() -> Network {
        Network::new(
            "two",
            100.0,
            vec![
                Bus {
                    ext_id: 1,
                    bus_type: BusType::Slack,
                    pd: 0.0,
                    qd: 0.0,
                    gs: 0.0,
                    bs: 0.0,
                    base_kv: 135.0,
                    vm: 1.0,
                    va: 0.0,
                },
                Bus {
                    ext_id: 2,
                    bus_type: BusType::Pq,
                    pd: 50.0,
                    qd: 10.0,
                    gs: 0.0,
                    bs: 0.0,
                    base_kv: 135.0,
                    vm: 1.0,
                    va: 0.0,
                },
            ],
            vec![Branch {
                from: 0,
                to: 1,
                r: 0.02,
                x: 0.2,
                b: 0.04,
                tap: 1.0,
                shift: 0.0,
                rate: 0.0,
                status: true,
            }],
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn ybus_two_bus_line() {
        let net = two_bus();
        let y = build_ybus(&net);
        let ys = Complex64::ONE / Complex64::new(0.02, 0.2);
        // Diagonal = series + half charging.
        let expected_diag = ys + Complex64::new(0.0, 0.02);
        assert!((y[(0, 0)] - expected_diag).abs() < 1e-12);
        assert!((y[(1, 1)] - expected_diag).abs() < 1e-12);
        // Off-diagonal = -series.
        assert!((y[(0, 1)] + ys).abs() < 1e-12);
        assert!((y[(0, 1)] - y[(1, 0)]).abs() < 1e-12);
    }

    #[test]
    fn ybus_includes_bus_shunt() {
        let mut net = two_bus();
        {
            // Rebuild with a shunt at bus 1 (19 MVAr like IEEE-14 bus 9).
            let mut buses = net.buses().to_vec();
            buses[1].bs = 19.0;
            net = Network::new("two", 100.0, buses, net.branches().to_vec(), vec![]).unwrap();
        }
        let y = build_ybus(&net);
        let y0 = build_ybus(&two_bus());
        let delta = y[(1, 1)] - y0[(1, 1)];
        assert!((delta - Complex64::new(0.0, 0.19)).abs() < 1e-12);
    }

    #[test]
    fn ybus_tap_asymmetry() {
        let mut net = two_bus();
        {
            let mut branches = net.branches().to_vec();
            branches[0].tap = 0.95;
            net = Network::new("two", 100.0, net.buses().to_vec(), branches, vec![]).unwrap();
        }
        let y = build_ybus(&net);
        // With a tap but no shift, yft == ytf but yff != ytt.
        assert!((y[(0, 1)] - y[(1, 0)]).abs() < 1e-12);
        assert!((y[(0, 0)] - y[(1, 1)]).abs() > 1e-6);
    }

    #[test]
    fn ybus_phase_shift_breaks_symmetry() {
        let mut net = two_bus();
        {
            let mut branches = net.branches().to_vec();
            branches[0].shift = 10.0;
            net = Network::new("two", 100.0, net.buses().to_vec(), branches, vec![]).unwrap();
        }
        let y = build_ybus(&net);
        assert!((y[(0, 1)] - y[(1, 0)]).abs() > 1e-6);
    }

    #[test]
    fn sparse_ybus_matches_dense_bitwise() {
        for net in [
            crate::cases::ieee14().unwrap(),
            crate::cases::ieee57().unwrap(),
            two_bus(),
        ] {
            let dense = build_ybus(&net);
            let sparse = build_ybus_sparse(&net);
            assert_eq!(sparse.shape(), (net.n_buses(), net.n_buses()));
            let back = sparse.to_dense();
            for r in 0..net.n_buses() {
                for c in 0..net.n_buses() {
                    assert_eq!(
                        back[(r, c)].re,
                        dense[(r, c)].re,
                        "({r},{c}) re differs on {}",
                        net.name
                    );
                    assert_eq!(back[(r, c)].im, dense[(r, c)].im);
                }
            }
            // Genuinely sparse on real systems.
            if net.n_buses() > 10 {
                assert!(sparse.nnz() < net.n_buses() * net.n_buses() / 2);
            }
        }
        // An outage drops the branch's stamps from the pattern.
        let net = crate::cases::ieee14().unwrap();
        let idx = net.valid_outage_branches()[0];
        let out = net.with_branch_outage(idx).unwrap();
        assert!(build_ybus_sparse(&out).nnz() < build_ybus_sparse(&net).nnz());
    }

    #[test]
    fn laplacian_row_sums_zero() {
        let net = crate::cases::ieee14().unwrap();
        let l = susceptance_laplacian(&net);
        for r in 0..net.n_buses() {
            let sum: f64 = (0..net.n_buses()).map(|c| l[(r, c)]).sum();
            assert!(sum.abs() < 1e-9, "row {r} sums to {sum}");
        }
        // Symmetric.
        assert!(l.max_abs_diff(&l.transpose()) < 1e-12);
    }

    #[test]
    fn laplacian_reflects_outage() {
        let net = crate::cases::ieee14().unwrap();
        let l0 = susceptance_laplacian(&net);
        let idx = net.valid_outage_branches()[0];
        let out = net.with_branch_outage(idx).unwrap();
        let l1 = susceptance_laplacian(&out);
        let br = &net.branches()[idx];
        let w = 1.0 / br.x;
        assert!(((l0[(br.from, br.from)] - l1[(br.from, br.from)]) - w).abs() < 1e-9);
        assert!((l0[(br.from, br.to)] - l1[(br.from, br.to)] + w).abs() < 1e-9);
    }

    #[test]
    fn dc_b_matrix_is_invertible() {
        use pmu_numerics::lu::LuFactors;
        let net = two_bus();
        let (b, keep) = dc_b_matrix(&net);
        assert_eq!(b.shape(), (1, 1));
        assert_eq!(keep, vec![1]);
        assert!(LuFactors::factorize(&b).is_ok());
        let net14 = crate::cases::ieee14().unwrap();
        let (b14, keep14) = dc_b_matrix(&net14);
        assert_eq!(b14.rows(), 13);
        assert_eq!(keep14.len(), 13);
        assert!(LuFactors::factorize(&b14).is_ok());
    }
}
