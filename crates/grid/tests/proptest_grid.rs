//! Property-based tests for the grid model: graph invariants that must
//! hold for any synthetic network and any sequence of line outages.

use pmu_grid::pmu_coverage::{coverage, greedy_placement, is_fully_observable};
use pmu_grid::synthetic::{synthetic_network, SyntheticConfig};
use pmu_grid::ybus::{build_ybus, susceptance_laplacian};
use pmu_grid::Network;
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = SyntheticConfig> {
    (5usize..40, 0usize..20, 1usize..5, 5.0f64..25.0, 0u64..10_000).prop_map(
        |(buses, extra, gens, load, seed)| {
            let max_edges = buses * (buses - 1) / 2;
            SyntheticConfig {
                buses,
                branches: (buses + extra).min(max_edges),
                generators: gens.min(buses - 1),
                mean_load_mw: load,
                seed,
            }
        },
    )
}

fn build(cfg: &SyntheticConfig) -> Network {
    synthetic_network("prop", cfg).expect("synthetic networks are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn synthetic_networks_are_connected_with_exact_counts(cfg in config_strategy()) {
        let net = build(&cfg);
        prop_assert_eq!(net.n_buses(), cfg.buses);
        prop_assert_eq!(net.n_branches(), cfg.branches);
        prop_assert!(net.is_connected());
        prop_assert_eq!(net.connected_components().len(), 1);
        // Exactly one slack.
        prop_assert_eq!(net.slack(), 0);
    }

    #[test]
    fn degree_sum_equals_twice_edges(cfg in config_strategy()) {
        let net = build(&cfg);
        let degree_sum: usize = (0..net.n_buses()).map(|b| net.degree(b)).sum();
        prop_assert_eq!(degree_sum, 2 * net.active_branches().len());
    }

    #[test]
    fn laplacian_rows_sum_to_zero_and_symmetric(cfg in config_strategy()) {
        let net = build(&cfg);
        let l = susceptance_laplacian(&net);
        for r in 0..net.n_buses() {
            let sum: f64 = (0..net.n_buses()).map(|c| l[(r, c)]).sum();
            prop_assert!(sum.abs() < 1e-9, "row {} sums to {}", r, sum);
        }
        prop_assert!(l.max_abs_diff(&l.transpose()) < 1e-12);
        // Diagonal dominance (all weights positive).
        for r in 0..net.n_buses() {
            prop_assert!(l[(r, r)] >= 0.0);
        }
    }

    #[test]
    fn ybus_row_sums_equal_shunt_terms(cfg in config_strategy()) {
        // With no bus shunts, each Y-bus row sums to the line-charging
        // contribution only (series parts cancel for tap = 1).
        let net = build(&cfg);
        let y = build_ybus(&net);
        for r in 0..net.n_buses() {
            let mut sum = pmu_numerics::Complex64::ZERO;
            for c in 0..net.n_buses() {
                sum += y[(r, c)];
            }
            // Row sum = j * (sum of b/2 over incident branches).
            let b_half: f64 = net
                .branches()
                .iter()
                .filter(|br| br.status && (br.from == r || br.to == r))
                .map(|br| br.b / 2.0)
                .sum();
            prop_assert!((sum.re).abs() < 1e-9, "row {} re {}", r, sum.re);
            prop_assert!((sum.im - b_half).abs() < 1e-9, "row {} im {}", r, sum.im);
        }
    }

    #[test]
    fn valid_outages_never_island(cfg in config_strategy()) {
        let net = build(&cfg);
        for idx in net.valid_outage_branches() {
            let out = net.with_branch_outage(idx).expect("valid outage applies");
            prop_assert!(out.is_connected());
            // Reverse check: branches NOT in the valid list island the grid.
        }
        let valid = net.valid_outage_branches();
        for idx in net.active_branches() {
            if !valid.contains(&idx) {
                prop_assert!(net.with_branch_outage(idx).is_err());
            }
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_step(cfg in config_strategy()) {
        let net = build(&cfg);
        let d = net.bfs_distances(0);
        // Every bus reachable; adjacent buses differ by at most 1 hop.
        for (b, &dist) in d.iter().enumerate() {
            prop_assert!(dist != usize::MAX, "bus {} unreachable", b);
            for nb in net.neighbors(b) {
                prop_assert!(d[nb] + 1 >= dist && dist + 1 >= d[nb]);
            }
        }
    }

    #[test]
    fn greedy_placement_dominates(cfg in config_strategy()) {
        let net = build(&cfg);
        let placement = greedy_placement(&net);
        prop_assert!(is_fully_observable(&net, &placement));
        prop_assert_eq!(coverage(&net, &placement), 1.0);
        // Removing the last-placed PMU breaks the greedy cover's
        // guarantee only if it contributed; coverage stays <= 1.
        prop_assert!(coverage(&net, &placement[..placement.len() - 1]) <= 1.0);
    }

    #[test]
    fn clustering_partitions_for_any_k(cfg in config_strategy(), k in 1usize..6) {
        let net = build(&cfg);
        let k = k.min(net.n_buses());
        let cl = pmu_grid::cluster::partition_clusters(&net, k).unwrap();
        let mut seen = vec![false; net.n_buses()];
        for c in 0..cl.n_clusters() {
            for &b in cl.members(c) {
                prop_assert!(!seen[b], "bus {} assigned twice", b);
                seen[b] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
