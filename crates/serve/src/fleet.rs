//! The **fleet engine**: many grids, many feeds, one process.
//!
//! A [`Fleet`] hosts several trained bundles (one [`EngineCore`] per
//! grid) and shards every open feed session across a fixed set of
//! worker-aligned shards. Where the single-grid [`Engine`](crate::Engine)
//! keeps one global slot table, the fleet keeps **one
//! [`SessionTable`](crate::session::SessionTable) per shard, each behind
//! its own lock** — a push batch touches only the shards its feeds hash
//! to, and distinct shards drain fully in parallel with zero lock
//! contention between them.
//!
//! ## Routing
//!
//! Feeds are addressed by [`FeedKey`] (grid + 64-bit feed id). A feed's
//! *home shard* is `fnv1a(grid, feed) % shards` — deterministic, so the
//! same key always lands on the same shard until an explicit
//! [`Fleet::migrate_feed`] moves it. The router (one `RwLock` hash map)
//! resolves keys to `(shard, session)`; the push path takes it read-only.
//!
//! ## Backpressure
//!
//! Each shard has a bounded ingress budget ([`FleetConfig::queue_capacity`]).
//! Admission reserves room with a compare-exchange loop, so concurrent
//! batches can never overshoot the bound; samples that don't fit are
//! **shed** with [`ServeError::Overloaded`] (newest first — the tail of
//! the batch), counted in `serve.shed_total` and per shard. Load
//! shedding is loud and typed, never silent.
//!
//! ## Session mobility
//!
//! Sessions are serializable: [`Fleet::snapshot_feed`] captures a feed's
//! complete serving state as a checksummed
//! [`SessionSnapshot`](pmu_model::SessionSnapshot), and
//! [`Fleet::restore_feed`] resurrects it — in the same process, a
//! different shard, or a different process entirely — replaying the
//! subsequent sample stream **bit-identically**. Restores are
//! fingerprint-checked: a snapshot taken against one topology can never
//! be revived against another.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Instant;

use pmu_detect::stream::{StreamEvent, StreamingDetector};
use pmu_model::{ModelBundle, SessionSnapshot};
use pmu_numerics::hash::Fnv1a;
use pmu_numerics::par;
use pmu_obs::metrics::{Gauge, Histogram};
use pmu_sim::PhasorSample;

use crate::engine::{EngineConfig, EngineCore, ServeError};
use crate::session::{SessionHealth, SessionId, SessionState, SessionTable};

/// Handle to one grid registered in a [`Fleet`] (index into the fleet's
/// grid list; issued by [`Fleet::add_grid`], resolvable by name via
/// [`Fleet::grid`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridId(pub(crate) u32);

impl GridId {
    /// The grid's index in registration order.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for GridId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Fleet-wide feed address: which grid, which feed within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FeedKey {
    /// The hosting grid.
    pub grid: GridId,
    /// Caller-chosen 64-bit feed identifier, unique within the grid
    /// (a PMU id, a substation hash — the fleet only routes on it).
    pub feed: u64,
}

impl std::fmt::Display for FeedKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.f{}", self.grid, self.feed)
    }
}

/// Fleet construction knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of session shards. `0` (the default) means one shard per
    /// worker thread ([`par::num_threads`]), aligning shard parallelism
    /// with the pool that drains them.
    pub shards: usize,
    /// Per-shard bounded ingress budget: the maximum number of samples a
    /// shard accepts concurrently before the admission controller starts
    /// shedding with [`ServeError::Overloaded`].
    pub queue_capacity: usize,
}

impl Default for FleetConfig {
    /// One shard per worker, 4096-sample ingress budget per shard.
    fn default() -> Self {
        FleetConfig { shards: 0, queue_capacity: 4096 }
    }
}

/// A point-in-time view of one shard's load counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Sessions currently homed on this shard.
    pub sessions: usize,
    /// Samples admitted and not yet drained (instantaneous).
    pub inflight: usize,
    /// Total samples drained through this shard.
    pub drained: u64,
    /// Total samples shed by this shard's admission controller.
    pub shed: u64,
    /// p99 single-push latency on this shard, microseconds (from the
    /// per-shard HDR histogram; 0 before any push).
    pub push_p99_us: f64,
    /// Drain rate of the most recent non-empty drain, samples/second.
    pub drain_rate: f64,
}

/// One session shard: its table, its admission counters, and its
/// pre-resolved per-shard metric handles (names like
/// `serve.shard3.push_us`, leaked once per process and deduplicated by
/// the registry).
struct Shard {
    table: Mutex<SessionTable<FleetSession>>,
    /// Samples admitted and not yet drained; bounded by
    /// [`FleetConfig::queue_capacity`] via compare-exchange admission.
    inflight: AtomicUsize,
    drained: AtomicU64,
    shed: AtomicU64,
    /// Last non-empty drain's rate, samples/sec (f64 bits).
    drain_rate_bits: AtomicU64,
    push_us: &'static Histogram,
    inflight_gauge: &'static Gauge,
    drain_rate_gauge: &'static Gauge,
}

impl Shard {
    fn new(index: usize) -> Self {
        // Per-shard metric names are dynamic; the registry interns by
        // value, so leaking each name once per process is bounded by the
        // shard count.
        let leak = |suffix: &str| -> &'static str {
            Box::leak(format!("serve.shard{index}.{suffix}").into_boxed_str())
        };
        Shard {
            table: Mutex::new(SessionTable::new()),
            inflight: AtomicUsize::new(0),
            drained: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            drain_rate_bits: AtomicU64::new(0f64.to_bits()),
            push_us: pmu_obs::metrics::histogram(leak("push_us")),
            inflight_gauge: pmu_obs::metrics::gauge(leak("inflight")),
            drain_rate_gauge: pmu_obs::metrics::gauge(leak("drain_rate")),
        }
    }

    fn stats(&self, index: usize) -> ShardStats {
        ShardStats {
            shard: index,
            sessions: self.table.lock().unwrap_or_else(|p| p.into_inner()).active(),
            inflight: self.inflight.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            push_p99_us: if self.push_us.count() == 0 {
                0.0
            } else {
                self.push_us.quantile(0.99)
            },
            drain_rate: f64::from_bits(self.drain_rate_bits.load(Ordering::Relaxed)),
        }
    }
}

/// A session homed on a shard, remembering which grid's core pushes it.
struct FleetSession {
    grid: u32,
    state: SessionState,
}

struct GridEntry {
    name: String,
    core: EngineCore,
}

/// Where the router finds an open feed.
#[derive(Clone, Copy)]
struct Route {
    shard: u32,
    sid: SessionId,
}

/// Grid-qualified feed name used in incident dumps and mode-change
/// observations (e.g. `east.f7` — no `/`, it becomes part of a file
/// name).
struct FeedTag<'a>(&'a str, u64);

impl std::fmt::Display for FeedTag<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.f{}", self.0, self.1)
    }
}

/// A multi-grid serving fleet. See the [module docs](self).
///
/// All serving-path methods take `&self`: the fleet is `Arc`-shareable
/// with the observability endpoint and with concurrent pushers. Only
/// [`Fleet::add_grid`] (a boot-time operation) needs `&mut self`.
pub struct Fleet {
    grids: Vec<GridEntry>,
    shards: Vec<Shard>,
    router: RwLock<HashMap<FeedKey, Route>>,
    queue_capacity: usize,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("grids", &self.grids.len())
            .field("shards", &self.shards.len())
            .field("sessions_active", &self.sessions_active())
            .finish_non_exhaustive()
    }
}

impl Fleet {
    /// Stand up an empty fleet: `cfg.shards` session shards (or one per
    /// worker thread when 0) and no grids yet.
    pub fn new(cfg: FleetConfig) -> Self {
        let n = if cfg.shards == 0 { par::num_threads().max(1) } else { cfg.shards };
        pmu_obs::gauge!("serve.fleet_shards").set(n as f64);
        Fleet {
            grids: Vec::new(),
            shards: (0..n).map(Shard::new).collect(),
            router: RwLock::new(HashMap::new()),
            queue_capacity: cfg.queue_capacity.max(1),
        }
    }

    /// Register a grid under `name` and return its handle.
    ///
    /// # Errors
    /// [`ServeError::DuplicateGrid`] when the name is already taken.
    pub fn add_grid(
        &mut self,
        name: &str,
        bundle: ModelBundle,
        cfg: &EngineConfig,
    ) -> Result<GridId, ServeError> {
        if self.grids.iter().any(|g| g.name == name) {
            return Err(ServeError::DuplicateGrid(name.to_string()));
        }
        self.grids.push(GridEntry {
            name: name.to_string(),
            core: EngineCore::from_bundle(bundle, cfg),
        });
        pmu_obs::gauge!("serve.fleet_grids").set(self.grids.len() as f64);
        Ok(GridId(self.grids.len() as u32 - 1))
    }

    /// Look a grid up by name.
    pub fn grid(&self, name: &str) -> Option<GridId> {
        self.grids.iter().position(|g| g.name == name).map(|i| GridId(i as u32))
    }

    /// Registered grids in registration order, `(handle, name)`.
    pub fn grids(&self) -> Vec<(GridId, &str)> {
        self.grids
            .iter()
            .enumerate()
            .map(|(i, g)| (GridId(i as u32), g.name.as_str()))
            .collect()
    }

    /// A grid's registered name.
    pub fn grid_name(&self, id: GridId) -> &str {
        &self.grids[id.index()].name
    }

    /// System a grid's bundle was trained on (e.g. `"ieee14"`).
    pub fn grid_system(&self, id: GridId) -> &str {
        &self.grids[id.index()].core.system
    }

    /// Hex fingerprint of a grid's training topology.
    pub fn grid_fingerprint(&self, id: GridId) -> &str {
        &self.grids[id.index()].core.network_fingerprint
    }

    /// Node count a grid's detector serves.
    pub fn grid_nodes(&self, id: GridId) -> usize {
        self.grids[id.index()].core.detector.n_nodes()
    }

    /// Number of session shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard bounded ingress budget.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// The deterministic home shard of a feed key.
    pub fn home_shard(&self, key: FeedKey) -> usize {
        let mut h = Fnv1a::new();
        h.write_u64(key.grid.0 as u64);
        h.write_u64(key.feed);
        (h.finish() % self.shards.len() as u64) as usize
    }

    fn core(&self, key: FeedKey) -> Result<&EngineCore, ServeError> {
        self.grids
            .get(key.grid.index())
            .map(|g| &g.core)
            .ok_or_else(|| ServeError::UnknownGrid(key.grid.to_string()))
    }

    /// Open a streaming session for `key` on its home shard.
    ///
    /// # Errors
    /// [`ServeError::UnknownGrid`] for a foreign grid handle,
    /// [`ServeError::DuplicateFeed`] when the key is already open.
    pub fn open_feed(&self, key: FeedKey) -> Result<(), ServeError> {
        let state = self.core(key)?.new_session();
        self.install(key, state)
    }

    /// Route `state` to `key`'s home shard and register it, holding the
    /// router write lock across the insert so a concurrent open of the
    /// same key cannot double-register.
    fn install(&self, key: FeedKey, state: SessionState) -> Result<(), ServeError> {
        let shard_idx = self.home_shard(key);
        let mut router = self.router.write().unwrap_or_else(|p| p.into_inner());
        if router.contains_key(&key) {
            return Err(ServeError::DuplicateFeed(key));
        }
        let sid = {
            let mut table =
                self.shards[shard_idx].table.lock().unwrap_or_else(|p| p.into_inner());
            table.open(FleetSession { grid: key.grid.0, state })
        };
        router.insert(key, Route { shard: shard_idx as u32, sid });
        pmu_obs::counter!("serve.sessions_opened").inc();
        pmu_obs::gauge!("serve.sessions_active").set(router.len() as f64);
        Ok(())
    }

    /// Close a feed; `false` when the key is not open.
    pub fn close_feed(&self, key: FeedKey) -> bool {
        let mut router = self.router.write().unwrap_or_else(|p| p.into_inner());
        let Some(route) = router.remove(&key) else { return false };
        let closed = {
            let mut table = self.shards[route.shard as usize]
                .table
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            table.close(route.sid)
        };
        debug_assert!(closed, "router and shard tables must stay consistent");
        pmu_obs::counter!("serve.sessions_closed").inc();
        pmu_obs::gauge!("serve.sessions_active").set(router.len() as f64);
        true
    }

    /// Number of open feeds across all grids and shards.
    pub fn sessions_active(&self) -> usize {
        self.router.read().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Every open feed key, sorted by (grid, feed) for deterministic
    /// display.
    pub fn feeds(&self) -> Vec<FeedKey> {
        let router = self.router.read().unwrap_or_else(|p| p.into_inner());
        let mut keys: Vec<FeedKey> = router.keys().copied().collect();
        keys.sort_by_key(|k| (k.grid.0, k.feed));
        keys
    }

    /// Human-readable feed label for dashboards: `"<grid name>/f<feed>"`.
    pub fn feed_label(&self, key: FeedKey) -> String {
        format!("{}/f{}", self.grid_name(key.grid), key.feed)
    }

    /// Health of one feed, `None` when the key is not open.
    pub fn health(&self, key: FeedKey) -> Option<SessionHealth> {
        let route = {
            let router = self.router.read().unwrap_or_else(|p| p.into_inner());
            *router.get(&key)?
        };
        let table = self.shards[route.shard as usize]
            .table
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let session = table.resolve(route.sid)?;
        let session = session.lock().unwrap_or_else(|p| p.into_inner());
        Some(session.state.health())
    }

    /// Health of every open feed, sorted by (grid, feed).
    pub fn feed_healths(&self) -> Vec<(FeedKey, SessionHealth)> {
        self.feeds()
            .into_iter()
            .filter_map(|key| self.health(key).map(|h| (key, h)))
            .collect()
    }

    /// Advance many feeds by one tick. Entries are routed to their home
    /// shards; each shard admits up to its remaining ingress budget
    /// (shedding the excess, newest first, with
    /// [`ServeError::Overloaded`]) and drains sequentially under its own
    /// lock while distinct shards drain in parallel. Per-feed sample
    /// order is the input order; results come back in input order.
    ///
    /// Unknown keys fail their own entries with
    /// [`ServeError::UnknownFeed`]; guard rejections with
    /// [`ServeError::BadSample`] — exactly the single-engine semantics,
    /// per feed.
    pub fn push_batch(
        &self,
        batch: &[(FeedKey, PhasorSample)],
    ) -> Vec<Result<StreamEvent, ServeError>> {
        pmu_obs::counter!("serve.push_batches").inc();
        pmu_obs::counter!("serve.push_samples").add(batch.len() as u64);
        let mut sp = pmu_obs::span("serve.fleet_push_batch").with("samples", batch.len());
        let started = Instant::now();

        let mut out: Vec<Option<Result<StreamEvent, ServeError>>> = vec![None; batch.len()];

        // Resolve routes under one read lock; group positions per shard,
        // preserving batch order within each group.
        let mut per_shard: Vec<Vec<(usize, SessionId)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        {
            let router = self.router.read().unwrap_or_else(|p| p.into_inner());
            for (pos, (key, _)) in batch.iter().enumerate() {
                match router.get(key) {
                    Some(route) => per_shard[route.shard as usize].push((pos, route.sid)),
                    None => out[pos] = Some(Err(ServeError::UnknownFeed(*key))),
                }
            }
        }

        // Admission: reserve ingress room per shard with a CAS loop (so
        // concurrent batches cannot overshoot the bound), shed the rest.
        let mut work: Vec<(usize, Vec<(usize, SessionId)>)> = Vec::new();
        for (shard_idx, mut group) in per_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = &self.shards[shard_idx];
            let granted = loop {
                let cur = shard.inflight.load(Ordering::Relaxed);
                let room = self.queue_capacity.saturating_sub(cur);
                let take = group.len().min(room);
                if take == 0 {
                    break 0;
                }
                if shard
                    .inflight
                    .compare_exchange(cur, cur + take, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    break take;
                }
            };
            if granted < group.len() {
                let overflow = group.split_off(granted);
                shard.shed.fetch_add(overflow.len() as u64, Ordering::Relaxed);
                pmu_obs::counter!("serve.shed_total").add(overflow.len() as u64);
                for (pos, _) in overflow {
                    out[pos] = Some(Err(ServeError::Overloaded { shard: shard_idx }));
                }
            }
            shard.inflight_gauge.set(shard.inflight.load(Ordering::Relaxed) as f64);
            if !group.is_empty() {
                work.push((shard_idx, group));
            }
        }

        // Drain: one parallel task per shard with admitted work.
        let per_group: Vec<Vec<(usize, Result<StreamEvent, ServeError>)>> =
            par::par_map(&work, |(shard_idx, group)| {
                let shard = &self.shards[*shard_idx];
                let drain_started = Instant::now();
                let table = shard.table.lock().unwrap_or_else(|p| p.into_inner());
                let mut res = Vec::with_capacity(group.len());
                for &(pos, sid) in group {
                    let (key, sample) = &batch[pos];
                    let Some(slot) = table.resolve(sid) else {
                        // Closed between routing and drain.
                        res.push((pos, Err(ServeError::UnknownFeed(*key))));
                        continue;
                    };
                    let mut session = slot.lock().unwrap_or_else(|p| p.into_inner());
                    let core = &self.grids[session.grid as usize].core;
                    let tag = FeedTag(&self.grids[session.grid as usize].name, key.feed);
                    let t0 = Instant::now();
                    let event = core.push_one(sid.slot(), &tag, &mut session.state, sample);
                    shard.push_us.observe(t0.elapsed().as_secs_f64() * 1e6);
                    res.push((pos, event));
                }
                drop(table);
                let drained = group.len();
                shard.inflight.fetch_sub(drained, Ordering::Relaxed);
                shard.drained.fetch_add(drained as u64, Ordering::Relaxed);
                let secs = drain_started.elapsed().as_secs_f64();
                if secs > 0.0 {
                    let rate = drained as f64 / secs;
                    shard.drain_rate_bits.store(rate.to_bits(), Ordering::Relaxed);
                    shard.drain_rate_gauge.set(rate);
                }
                shard.inflight_gauge.set(shard.inflight.load(Ordering::Relaxed) as f64);
                res
            });

        for group in per_group {
            for (pos, event) in group {
                out[pos] = Some(event);
            }
        }
        sp.record("ms", started.elapsed().as_secs_f64() * 1e3);
        out.into_iter().map(|o| o.expect("every batch position classified")).collect()
    }

    /// Capture one feed's complete serving state as a checksummed,
    /// schema-versioned [`SessionSnapshot`].
    ///
    /// # Errors
    /// [`ServeError::UnknownFeed`] when the key is not open.
    pub fn snapshot_feed(&self, key: FeedKey) -> Result<SessionSnapshot, ServeError> {
        let route = {
            let router = self.router.read().unwrap_or_else(|p| p.into_inner());
            router.get(&key).copied().ok_or(ServeError::UnknownFeed(key))?
        };
        let core = self.core(key)?;
        let table = self.shards[route.shard as usize]
            .table
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let session = table.resolve(route.sid).ok_or(ServeError::UnknownFeed(key))?;
        let session = session.lock().unwrap_or_else(|p| p.into_inner());
        Ok(session.state.to_snapshot(
            &core.system,
            &core.network_fingerprint,
            self.grid_name(key.grid),
            key.feed,
        ))
    }

    /// Resurrect a snapshot into this fleet (home-shard placement) and
    /// return the key it is now serving under. The restored session
    /// replays subsequent samples bit-identically to the one that was
    /// snapshotted.
    ///
    /// # Errors
    /// [`ServeError::UnknownGrid`] when no grid carries the snapshot's
    /// grid name; [`ServeError::Snapshot`] when the snapshot's system or
    /// topology fingerprint disagrees with that grid's bundle, or its
    /// serialized state is corrupt; [`ServeError::DuplicateFeed`] when
    /// the key is already open.
    pub fn restore_feed(&self, snap: &SessionSnapshot) -> Result<FeedKey, ServeError> {
        let grid = self
            .grid(&snap.grid)
            .ok_or_else(|| ServeError::UnknownGrid(snap.grid.clone()))?;
        let core = &self.grids[grid.index()].core;
        if snap.system != core.system {
            return Err(ServeError::Snapshot(format!(
                "snapshot is for system {:?}, grid {:?} serves {:?}",
                snap.system, snap.grid, core.system
            )));
        }
        if snap.network_fingerprint != core.network_fingerprint {
            return Err(ServeError::Snapshot(format!(
                "snapshot topology fingerprint {} does not match grid {:?} ({})",
                snap.network_fingerprint, snap.grid, core.network_fingerprint
            )));
        }
        let feed = snap.feed_id().map_err(|e| ServeError::Snapshot(e.to_string()))?;
        let key = FeedKey { grid, feed };
        let monitor = StreamingDetector::restore(core.detector.clone(), &snap.stream)
            .map_err(|e| ServeError::Snapshot(e.to_string()))?;
        let state = SessionState::from_snapshot(monitor, snap).map_err(ServeError::Snapshot)?;
        self.install(key, state)?;
        pmu_obs::counter!("serve.sessions_restored").inc();
        Ok(key)
    }

    /// Move a feed's session to another shard without losing a sample of
    /// state: the session is lifted out of its current table (bumping
    /// the old slot's generation) and re-homed under `to_shard`, and the
    /// router is updated atomically with respect to pushes — a batch
    /// sees the feed on exactly one shard, before or after, never
    /// neither. Returns the shard it moved from.
    ///
    /// # Errors
    /// [`ServeError::UnknownFeed`] when the key is not open.
    ///
    /// # Panics
    /// When `to_shard` is out of range — shard indices are a caller-side
    /// programming concern, not a runtime input.
    pub fn migrate_feed(&self, key: FeedKey, to_shard: usize) -> Result<usize, ServeError> {
        assert!(to_shard < self.shards.len(), "shard {to_shard} out of range");
        let mut router = self.router.write().unwrap_or_else(|p| p.into_inner());
        let route = router.get_mut(&key).ok_or(ServeError::UnknownFeed(key))?;
        let from = route.shard as usize;
        if from == to_shard {
            return Ok(from);
        }
        // Lock the two tables in index order so concurrent migrations
        // cannot deadlock.
        let (lo, hi) = (from.min(to_shard), from.max(to_shard));
        let mut lo_table = self.shards[lo].table.lock().unwrap_or_else(|p| p.into_inner());
        let mut hi_table = self.shards[hi].table.lock().unwrap_or_else(|p| p.into_inner());
        let (src, dst): (&mut SessionTable<_>, &mut SessionTable<_>) = if from == lo {
            (&mut lo_table, &mut hi_table)
        } else {
            (&mut hi_table, &mut lo_table)
        };
        let session = src.take(route.sid).ok_or(ServeError::UnknownFeed(key))?;
        let sid = dst.open(session);
        route.shard = to_shard as u32;
        route.sid = sid;
        pmu_obs::counter!("serve.sessions_migrated").inc();
        Ok(from)
    }

    /// Per-shard load counters, ascending by shard index.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().enumerate().map(|(i, s)| s.stats(i)).collect()
    }

    /// Number of incident dumps attempted across all grids.
    pub fn incident_dumps_written(&self) -> u64 {
        self.grids.iter().map(|g| g.core.incident_dumps_written()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu_baseline::MlrConfig;
    use pmu_detect::detector::default_config_for;
    use pmu_detect::stream::StreamConfig;
    use pmu_sim::{generate_dataset, Dataset, GenConfig};

    fn tiny_dataset() -> Dataset {
        let net = pmu_grid::cases::ieee14().unwrap();
        let cfg = GenConfig { train_len: 10, test_len: 6, ..GenConfig::default() };
        generate_dataset(&net, &cfg).unwrap()
    }

    fn bundle_for(data: &Dataset) -> ModelBundle {
        let gen = GenConfig { train_len: 10, test_len: 6, ..GenConfig::default() };
        let det_cfg = default_config_for(&data.network);
        pmu_model::ModelBundle::train(data, &gen, &det_cfg, &MlrConfig::default()).unwrap()
    }

    fn two_grid_fleet(data: &Dataset, cfg: FleetConfig) -> (Fleet, GridId, GridId) {
        let bundle = bundle_for(data);
        let mut fleet = Fleet::new(cfg);
        let east = fleet.add_grid("east", bundle.clone(), &EngineConfig::default()).unwrap();
        let west = fleet.add_grid("west", bundle, &EngineConfig::default()).unwrap();
        (fleet, east, west)
    }

    #[test]
    fn fleet_serves_many_grids_and_matches_a_lone_session() {
        let data = tiny_dataset();
        let (fleet, east, west) =
            two_grid_fleet(&data, FleetConfig { shards: 2, ..FleetConfig::default() });
        assert_eq!(fleet.grid("east"), Some(east));
        assert_eq!(fleet.grid("west"), Some(west));
        assert_eq!(fleet.grid("north"), None);
        assert_eq!(fleet.grid_name(east), "east");
        assert_eq!(fleet.grid_system(west), "ieee14");
        assert!(!fleet.grid_fingerprint(east).is_empty());

        // 3 feeds per grid, deterministically sharded.
        let keys: Vec<FeedKey> = [east, west]
            .iter()
            .flat_map(|&g| (0..3u64).map(move |f| FeedKey { grid: g, feed: f }))
            .collect();
        for &k in &keys {
            fleet.open_feed(k).unwrap();
        }
        assert_eq!(fleet.sessions_active(), 6);
        assert_eq!(fleet.feeds(), keys, "feeds() sorts by (grid, feed)");
        assert_eq!(fleet.feed_label(keys[0]), "east/f0");

        // Interleave east outage traffic with west normal traffic across
        // several ticks; east feed 0 must replay exactly like a lone
        // streaming detector over the same samples.
        let case = &data.cases[0];
        let ticks = case.test.len().min(5);
        let mut east_events = Vec::new();
        for t in 0..ticks {
            let mut batch = Vec::new();
            for &k in &keys {
                let sample = if k.grid == east {
                    case.test.sample(t)
                } else {
                    data.normal_test.sample(t % data.normal_test.len())
                };
                batch.push((k, sample));
            }
            let events = fleet.push_batch(&batch);
            assert_eq!(events.len(), batch.len());
            east_events.push(events[0].clone().unwrap());
        }

        let bundle = bundle_for(&data);
        let mut reference =
            StreamingDetector::new(bundle.detector, StreamConfig::default());
        let expected: Vec<StreamEvent> =
            (0..ticks).map(|t| reference.push(&case.test.sample(t)).unwrap()).collect();
        assert_eq!(east_events, expected, "sharded feed must replay like a lone session");

        // Health is per feed; shard stats account every drained sample.
        let healths = fleet.feed_healths();
        assert_eq!(healths.len(), 6);
        assert!(healths.iter().all(|(_, h)| h.pushed == ticks));
        let stats = fleet.shard_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(
            stats.iter().map(|s| s.drained).sum::<u64>(),
            (6 * ticks) as u64,
            "every pushed sample is drained through some shard"
        );
        assert_eq!(stats.iter().map(|s| s.sessions).sum::<usize>(), 6);
        assert!(stats.iter().all(|s| s.inflight == 0), "drains settle to zero inflight");
    }

    #[test]
    fn unknown_and_duplicate_keys_are_typed_errors() {
        let data = tiny_dataset();
        let (fleet, east, _) = two_grid_fleet(&data, FleetConfig::default());
        let key = FeedKey { grid: east, feed: 9 };
        fleet.open_feed(key).unwrap();
        assert_eq!(fleet.open_feed(key), Err(ServeError::DuplicateFeed(key)));

        let ghost = FeedKey { grid: east, feed: 1000 };
        let sample = data.normal_test.sample(0);
        let events = fleet.push_batch(&[(ghost, sample.clone()), (key, sample.clone())]);
        assert_eq!(events[0], Err(ServeError::UnknownFeed(ghost)));
        assert!(events[1].is_ok(), "an unknown key fails only its own entry");

        assert!(fleet.close_feed(key));
        assert!(!fleet.close_feed(key), "double close reports false");
        let events = fleet.push_batch(&[(key, sample)]);
        assert_eq!(events[0], Err(ServeError::UnknownFeed(key)));
        assert!(fleet.health(key).is_none());
        assert!(matches!(fleet.snapshot_feed(key), Err(ServeError::UnknownFeed(_))));

        let mut fleet = fleet;
        let err = fleet.add_grid("east", bundle_for(&data), &EngineConfig::default());
        assert_eq!(err, Err(ServeError::DuplicateGrid("east".into())).map(|_: GridId| east));
    }

    #[test]
    fn overload_sheds_the_tail_with_typed_errors() {
        let data = tiny_dataset();
        let (fleet, east, _) = two_grid_fleet(
            &data,
            FleetConfig { shards: 1, queue_capacity: 4 },
        );
        let key = FeedKey { grid: east, feed: 0 };
        fleet.open_feed(key).unwrap();
        let sample = data.normal_test.sample(0);
        let batch: Vec<_> = (0..10).map(|_| (key, sample.clone())).collect();
        let events = fleet.push_batch(&batch);
        for ev in &events[..4] {
            assert!(ev.is_ok(), "admitted prefix drains normally: {ev:?}");
        }
        for ev in &events[4..] {
            assert_eq!(ev, &Err(ServeError::Overloaded { shard: 0 }));
        }
        let stats = &fleet.shard_stats()[0];
        assert_eq!(stats.shed, 6, "shed accounting matches ground truth");
        assert_eq!(stats.drained, 4);
        assert_eq!(stats.inflight, 0);
        assert_eq!(
            fleet.health(key).unwrap().pushed,
            4,
            "shed samples never reach the voting window"
        );

        // The budget is per call here (no concurrent pushers), so the
        // next batch is admitted again.
        let events = fleet.push_batch(&batch[..2]);
        assert!(events.iter().all(|e| e.is_ok()));
    }

    #[test]
    fn snapshot_restore_and_migration_preserve_the_event_stream() {
        let data = tiny_dataset();
        let (fleet, east, _) =
            two_grid_fleet(&data, FleetConfig { shards: 2, ..FleetConfig::default() });
        let key = FeedKey { grid: east, feed: 7 };
        fleet.open_feed(key).unwrap();

        // Phase A: drive into an outage so the snapshot carries a
        // non-trivial voting history and (likely) an active event.
        let case = &data.cases[0];
        let split = case.test.len() / 2;
        for t in 0..split {
            fleet.push_batch(&[(key, case.test.sample(t))]).remove(0).unwrap();
        }
        let snap = fleet.snapshot_feed(key).unwrap();
        assert_eq!(snap.grid, "east");
        assert_eq!(snap.feed_id().unwrap(), 7);

        // The envelope round trip is lossless (restart simulation).
        let revived = SessionSnapshot::from_json(&snap.to_json().unwrap()).unwrap();

        // A second fleet (same bundle, fresh process in spirit) restores
        // the feed; a third keeps the original session untouched as the
        // reference for the remaining tail.
        let (restored, _, _) =
            two_grid_fleet(&data, FleetConfig { shards: 2, ..FleetConfig::default() });
        assert_eq!(restored.restore_feed(&revived).unwrap(), key);
        assert_eq!(
            restored.restore_feed(&revived),
            Err(ServeError::DuplicateFeed(key)),
            "a key can be restored once"
        );

        // Tail replay: original vs restored, with a mid-tail migration on
        // the restored fleet — events must stay identical sample for
        // sample, across the shard move.
        let home = restored.home_shard(key);
        for t in split..case.test.len() {
            if t == split + 1 {
                let other = (home + 1) % restored.shard_count();
                assert_eq!(restored.migrate_feed(key, other).unwrap(), home);
            }
            let sample = case.test.sample(t);
            let a = fleet.push_batch(&[(key, sample.clone())]).remove(0).unwrap();
            let b = restored.push_batch(&[(key, sample)]).remove(0).unwrap();
            assert_eq!(a, b, "restored+migrated feed diverged at tick {t}");
        }
        assert_eq!(
            fleet.health(key).unwrap(),
            restored.health(key).unwrap(),
            "health counters agree after the full tail"
        );

        // Migrating an unknown key is a typed error; self-migration is a
        // no-op.
        let ghost = FeedKey { grid: east, feed: 9999 };
        assert_eq!(restored.migrate_feed(ghost, 0), Err(ServeError::UnknownFeed(ghost)));
        let now_home = (home + 1) % restored.shard_count();
        assert_eq!(restored.migrate_feed(key, now_home).unwrap(), now_home);
    }

    #[test]
    fn restores_are_fingerprint_checked() {
        let data = tiny_dataset();
        let (fleet, east, _) = two_grid_fleet(&data, FleetConfig::default());
        let key = FeedKey { grid: east, feed: 1 };
        fleet.open_feed(key).unwrap();
        fleet.push_batch(&[(key, data.normal_test.sample(0))]).remove(0).unwrap();
        let snap = fleet.snapshot_feed(key).unwrap();

        let (other, _, _) = two_grid_fleet(&data, FleetConfig::default());

        // Unknown grid name.
        let mut alien = snap.clone();
        alien.grid = "mars".into();
        assert_eq!(other.restore_feed(&alien), Err(ServeError::UnknownGrid("mars".into())));

        // Topology fingerprint skew.
        let mut skewed = snap.clone();
        skewed.network_fingerprint = "0000000000000000".into();
        assert!(matches!(other.restore_feed(&skewed), Err(ServeError::Snapshot(_))));

        // System skew.
        let mut wrong_sys = snap.clone();
        wrong_sys.system = "ieee300".into();
        assert!(matches!(other.restore_feed(&wrong_sys), Err(ServeError::Snapshot(_))));

        // Corrupt voting state (impossible config) is refused by the
        // stream-level restore.
        let mut corrupt = snap.clone();
        corrupt.stream.votes = corrupt.stream.window + 1;
        assert!(matches!(other.restore_feed(&corrupt), Err(ServeError::Snapshot(_))));

        // Corrupt serving-level tag.
        let mut bad_tag = snap;
        bad_tag.mode = "zombie".into();
        assert!(matches!(other.restore_feed(&bad_tag), Err(ServeError::Snapshot(_))));
    }

    #[test]
    fn display_and_defaults() {
        let key = FeedKey { grid: GridId(2), feed: 41 };
        assert_eq!(key.to_string(), "g2.f41");
        assert_eq!(GridId(2).index(), 2);
        let cfg = FleetConfig::default();
        assert_eq!(cfg.shards, 0);
        assert!(cfg.queue_capacity > 0);
        let fleet = Fleet::new(FleetConfig { shards: 3, queue_capacity: 0 });
        assert_eq!(fleet.shard_count(), 3);
        assert_eq!(fleet.queue_capacity(), 1, "capacity clamps to at least one");
        let auto = Fleet::new(FleetConfig::default());
        assert!(auto.shard_count() >= 1);
    }
}
