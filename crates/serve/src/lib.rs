//! # pmu-serve
//!
//! The online half of the train/serve split: a process-resident
//! [`Engine`] that loads a trained [`ModelBundle`](pmu_model::ModelBundle)
//! once and serves detection traffic from it — the paper's deployment
//! picture, where a PDC-side monitor consumes streaming phasors against
//! models learned offline (Sec. IV), at the scale the ROADMAP's
//! production north star asks for.
//!
//! Three serving shapes:
//!
//! - **Stateless** — [`Engine::detect`] / [`Engine::detect_batch`] score
//!   independent samples against the bundle's detector; batches fan out on
//!   the workspace thread pool (`pmu_numerics::par`).
//! - **Sessions** — [`Engine::open_session`] creates a per-feed
//!   [`StreamingDetector`](pmu_detect::stream::StreamingDetector) (k-of-m
//!   voting, raise/clear events, health snapshots); [`Engine::push_batch`]
//!   dispatches one tick of samples for many feeds in parallel while
//!   preserving per-feed sample order.
//! - **Fleet** — a [`Fleet`] hosts *many* grids in one process, shards
//!   feed sessions across worker-aligned per-shard tables ([`FeedKey`]
//!   routing), applies bounded-ingress admission control (shedding with
//!   [`ServeError::Overloaded`]), and makes sessions *mobile*:
//!   [`Fleet::snapshot_feed`] / [`Fleet::restore_feed`] round-trip a
//!   feed's complete serving state through a checksummed
//!   [`SessionSnapshot`](pmu_model::SessionSnapshot) bit-identically,
//!   and [`Fleet::migrate_feed`] re-homes a live session onto another
//!   shard with no event discontinuity.
//!
//! The serving path assumes unreliable telemetry: an ingestion guard
//! ([`Engine::validate_sample`]) refuses non-finite, truncated or
//! mask-skewed samples with [`ServeError::BadSample`]; sessions carry a
//! degraded-mode state machine ([`FeedMode`]) driven by recent missing
//! and rejection ratios; session handles are generation-tagged
//! ([`SessionId`]) so a handle outliving its slot fails instead of
//! addressing a stranger's feed; and bundle loads retry transient IO
//! per a bounded [`RetryPolicy`](pmu_model::RetryPolicy).
//!
//! Everything is observable: `serve.sessions_active`,
//! `serve.detect_latency_us`, `serve.samples_rejected`,
//! `serve.feed_mode` transitions, batch counters, and the bundle-load
//! metrics emitted by `pmu-model`. On top of the passive registry the
//! serve path carries production observability: per-feed flight-recorder
//! rings snapshotted into JSONL incident dumps when an anomaly fires
//! ([`IncidentConfig`]), and a scrapeable endpoint ([`ObsServer`])
//! serving Prometheus text at `/metrics` and JSON health at `/health`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod engine;
pub mod fleet;
pub mod http;
pub mod session;

pub use engine::{
    BadSampleReason, DegradeConfig, DegradeReason, Engine, EngineConfig, FeedMode,
    IncidentConfig, ServeError, SessionHealth, SessionId,
};
pub use fleet::{FeedKey, Fleet, FleetConfig, GridId, ShardStats};
pub use http::ObsServer;

/// Convenience result alias for serving operations.
pub type Result<T> = std::result::Result<T, ServeError>;
