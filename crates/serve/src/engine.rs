//! The serving engine: one loaded bundle, many concurrent consumers.
//!
//! ## Concurrency model
//!
//! The trained [`Detector`] is immutable after load, so stateless batch
//! detection shares one copy across the whole `par_map` fan-out. Sessions
//! are stateful (voting history, health counters); each lives behind its
//! own `Mutex` in a slot table, and [`Engine::push_batch`] groups a tick's
//! samples by session and runs *one parallel task per session*, so every
//! lock is uncontended and per-feed sample order is exactly the input
//! order. The crate keeps the workspace's `#![deny(unsafe_code)]` — the
//! slot-of-mutexes layout is what makes parallel mutation safe without it.

use std::sync::Mutex;
use std::time::Instant;

use pmu_detect::stream::{HealthSnapshot, StreamConfig, StreamEvent, StreamingDetector};
use pmu_detect::{DetectError, Detection, Detector};
use pmu_model::{ModelBundle, ModelError};
use pmu_numerics::par;
use pmu_sim::PhasorSample;

/// Microsecond latency buckets: single-sample detection sits well under a
/// 30 Hz reporting interval (33 ms), so the range centers on 10 µs – 10 ms.
const LATENCY_US_BOUNDS: &[f64] = &[10.0, 50.0, 100.0, 500.0, 1e3, 5e3, 1e4, 1e5, 1e6];

/// Typed serving failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The session id is not open (never opened, or already closed).
    UnknownSession(usize),
    /// The underlying detector rejected the sample.
    Detect(DetectError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServeError::Detect(e) => write!(f, "detect failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<DetectError> for ServeError {
    fn from(e: DetectError) -> Self {
        ServeError::Detect(e)
    }
}

/// Engine construction knobs.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Voting configuration every new session starts with.
    pub stream: StreamConfig,
}

/// A loaded bundle serving detection traffic.
pub struct Engine {
    system: String,
    network_fingerprint: String,
    detector: Detector,
    stream_cfg: StreamConfig,
    /// Session slot table; `None` slots are closed ids available for reuse.
    sessions: Vec<Option<Mutex<StreamingDetector>>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("system", &self.system)
            .field("sessions_active", &self.sessions_active())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Stand up an engine from an in-memory bundle.
    pub fn from_bundle(bundle: ModelBundle, cfg: EngineConfig) -> Self {
        pmu_obs::counter!("serve.engines_started").inc();
        Engine {
            system: bundle.system,
            network_fingerprint: bundle.network_fingerprint,
            detector: bundle.detector,
            stream_cfg: cfg.stream,
            sessions: Vec::new(),
        }
    }

    /// Load, verify and stand up an engine from a bundle file.
    ///
    /// # Errors
    /// Propagates every [`ModelError`] of
    /// [`ModelBundle::load`](pmu_model::ModelBundle::load) — a serving
    /// process must refuse to start on a corrupt or version-skewed
    /// artifact rather than panic mid-traffic.
    pub fn load(path: &std::path::Path, cfg: EngineConfig) -> Result<Self, ModelError> {
        let started = Instant::now();
        let bundle = ModelBundle::load(path)?;
        pmu_obs::histogram!("serve.engine_load_ms", &[1.0, 10.0, 100.0, 1e3, 1e4])
            .observe(started.elapsed().as_secs_f64() * 1e3);
        Ok(Self::from_bundle(bundle, cfg))
    }

    /// System the loaded bundle was trained on (e.g. `"ieee14"`).
    pub fn system(&self) -> &str {
        &self.system
    }

    /// Hex fingerprint of the training topology (provenance display).
    pub fn network_fingerprint(&self) -> &str {
        &self.network_fingerprint
    }

    /// The voting configuration new sessions start with.
    pub fn stream_config(&self) -> StreamConfig {
        self.stream_cfg
    }

    /// Borrow the underlying trained detector.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Open a per-feed streaming session and return its id. Ids of closed
    /// sessions are reused.
    pub fn open_session(&mut self) -> usize {
        let monitor = StreamingDetector::new(self.detector.clone(), self.stream_cfg);
        let id = match self.sessions.iter().position(Option::is_none) {
            Some(slot) => {
                self.sessions[slot] = Some(Mutex::new(monitor));
                slot
            }
            None => {
                self.sessions.push(Some(Mutex::new(monitor)));
                self.sessions.len() - 1
            }
        };
        pmu_obs::counter!("serve.sessions_opened").inc();
        pmu_obs::gauge!("serve.sessions_active").set(self.sessions_active() as f64);
        id
    }

    /// Close a session; `false` when the id was not open.
    pub fn close_session(&mut self, id: usize) -> bool {
        match self.sessions.get_mut(id) {
            Some(slot @ Some(_)) => {
                *slot = None;
                pmu_obs::counter!("serve.sessions_closed").inc();
                pmu_obs::gauge!("serve.sessions_active").set(self.sessions_active() as f64);
                true
            }
            _ => false,
        }
    }

    /// Number of open sessions.
    pub fn sessions_active(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_some()).count()
    }

    /// Ids of the currently open sessions, ascending.
    pub fn session_ids(&self) -> Vec<usize> {
        (0..self.sessions.len()).filter(|&i| self.sessions[i].is_some()).collect()
    }

    /// Health snapshot of one session, `None` when the id is not open.
    pub fn health(&self, id: usize) -> Option<HealthSnapshot> {
        self.sessions.get(id)?.as_ref().map(|m| {
            m.lock().unwrap_or_else(|p| p.into_inner()).health()
        })
    }

    /// Score one sample statelessly against the bundle's detector.
    ///
    /// # Errors
    /// [`ServeError::Detect`] when the detector rejects the sample (e.g.
    /// too little observed data to score).
    pub fn detect(&self, sample: &PhasorSample) -> Result<Detection, ServeError> {
        let started = Instant::now();
        let out = self.detector.detect(sample).map_err(ServeError::from);
        pmu_obs::counter!("serve.detect_calls").inc();
        pmu_obs::histogram!("serve.detect_latency_us", LATENCY_US_BOUNDS)
            .observe(started.elapsed().as_secs_f64() * 1e6);
        out
    }

    /// Score a batch of independent samples, fanning out on the workspace
    /// thread pool. Results come back in input order; per-sample failures
    /// stay per-sample.
    pub fn detect_batch(
        &self,
        samples: &[PhasorSample],
    ) -> Vec<Result<Detection, ServeError>> {
        pmu_obs::counter!("serve.batch_calls").inc();
        pmu_obs::counter!("serve.batch_samples").add(samples.len() as u64);
        let mut sp = pmu_obs::span("serve.detect_batch").with("samples", samples.len());
        let started = Instant::now();
        let out = par::par_map(samples, |sample| {
            let t0 = Instant::now();
            let verdict = self.detector.detect(sample).map_err(ServeError::from);
            pmu_obs::histogram!("serve.detect_latency_us", LATENCY_US_BOUNDS)
                .observe(t0.elapsed().as_secs_f64() * 1e6);
            verdict
        });
        sp.record("ms", started.elapsed().as_secs_f64() * 1e3);
        out
    }

    /// Advance many feeds by one tick: each `(session, sample)` pair is
    /// pushed into its session's voting window. Pairs are grouped by
    /// session and the groups run in parallel (one task per session), so
    /// samples of one feed apply in their input order while distinct feeds
    /// proceed concurrently. Results come back in input order.
    ///
    /// Unknown session ids fail their own entries with
    /// [`ServeError::UnknownSession`] without disturbing the rest of the
    /// batch.
    pub fn push_batch(
        &self,
        batch: &[(usize, PhasorSample)],
    ) -> Vec<Result<StreamEvent, ServeError>> {
        pmu_obs::counter!("serve.push_batches").inc();
        pmu_obs::counter!("serve.push_samples").add(batch.len() as u64);
        let mut sp = pmu_obs::span("serve.push_batch").with("samples", batch.len());
        let started = Instant::now();

        // Group batch positions by session id, preserving input order
        // within each group.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (pos, (sid, _)) in batch.iter().enumerate() {
            match groups.iter_mut().find(|(gsid, _)| gsid == sid) {
                Some((_, positions)) => positions.push(pos),
                None => groups.push((*sid, vec![pos])),
            }
        }

        let per_group: Vec<Vec<(usize, Result<StreamEvent, ServeError>)>> =
            par::par_map(&groups, |(sid, positions)| {
                let Some(slot) = self.sessions.get(*sid).and_then(Option::as_ref) else {
                    return positions
                        .iter()
                        .map(|&pos| (pos, Err(ServeError::UnknownSession(*sid))))
                        .collect();
                };
                let mut session = slot.lock().unwrap_or_else(|p| p.into_inner());
                positions
                    .iter()
                    .map(|&pos| {
                        let t0 = Instant::now();
                        let event =
                            session.push(&batch[pos].1).map_err(ServeError::from);
                        pmu_obs::histogram!("serve.detect_latency_us", LATENCY_US_BOUNDS)
                            .observe(t0.elapsed().as_secs_f64() * 1e6);
                        (pos, event)
                    })
                    .collect()
            });

        // Scatter group results back to input order.
        let mut out: Vec<Option<Result<StreamEvent, ServeError>>> = vec![None; batch.len()];
        for group in per_group {
            for (pos, event) in group {
                out[pos] = Some(event);
            }
        }
        sp.record("ms", started.elapsed().as_secs_f64() * 1e3);
        out.into_iter().map(|o| o.expect("every batch position scattered")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu_baseline::MlrConfig;
    use pmu_detect::detector::default_config_for;
    use pmu_sim::{generate_dataset, Dataset, GenConfig, Mask};

    fn tiny_dataset() -> Dataset {
        let net = pmu_grid::cases::ieee14().unwrap();
        let cfg = GenConfig { train_len: 10, test_len: 6, ..GenConfig::default() };
        generate_dataset(&net, &cfg).unwrap()
    }

    fn engine_for(data: &Dataset) -> Engine {
        let gen = GenConfig { train_len: 10, test_len: 6, ..GenConfig::default() };
        let det_cfg = default_config_for(&data.network);
        let bundle = pmu_model::ModelBundle::train(data, &gen, &det_cfg, &MlrConfig::default())
            .unwrap();
        Engine::from_bundle(bundle, EngineConfig::default())
    }

    #[test]
    fn stateless_batch_matches_sequential() {
        let data = tiny_dataset();
        let engine = engine_for(&data);
        let samples: Vec<_> = (0..data.normal_test.len())
            .map(|t| data.normal_test.sample(t))
            .chain((0..data.cases[0].test.len()).map(|t| data.cases[0].test.sample(t)))
            .collect();
        let batch = engine.detect_batch(&samples);
        assert_eq!(batch.len(), samples.len());
        for (sample, batched) in samples.iter().zip(&batch) {
            let direct = engine.detect(sample);
            assert_eq!(&direct, batched, "batch must agree with one-shot detection");
        }
    }

    #[test]
    fn session_lifecycle_and_id_reuse() {
        let data = tiny_dataset();
        let mut engine = engine_for(&data);
        assert_eq!(engine.sessions_active(), 0);
        let a = engine.open_session();
        let b = engine.open_session();
        assert_eq!((a, b), (0, 1));
        assert_eq!(engine.session_ids(), vec![0, 1]);
        assert!(engine.close_session(a));
        assert!(!engine.close_session(a), "double close must report false");
        assert_eq!(engine.sessions_active(), 1);
        assert_eq!(engine.open_session(), a, "closed slot must be reused");
        assert!(engine.health(b).is_some());
        assert!(engine.health(99).is_none());
    }

    #[test]
    fn push_batch_preserves_per_feed_order_and_state() {
        let data = tiny_dataset();
        let mut engine = engine_for(&data);
        let s0 = engine.open_session();
        let s1 = engine.open_session();

        // Feed s0 outage samples and s1 normal samples, interleaved in one
        // batch; compare against a sequential reference session.
        let case = &data.cases[0];
        let mut batch = Vec::new();
        for t in 0..case.test.len().min(5) {
            batch.push((s0, case.test.sample(t)));
            batch.push((s1, data.normal_test.sample(t.min(data.normal_test.len() - 1))));
        }
        let events = engine.push_batch(&batch);
        assert_eq!(events.len(), batch.len());

        let mut reference = StreamingDetector::new(
            engine.detector().clone(),
            engine.stream_config(),
        );
        let mut expected = Vec::new();
        for (sid, sample) in &batch {
            if *sid == s0 {
                expected.push(reference.push(sample).unwrap());
            }
        }
        let got: Vec<_> = batch
            .iter()
            .zip(&events)
            .filter(|((sid, _), _)| *sid == s0)
            .map(|(_, ev)| ev.clone().unwrap())
            .collect();
        assert_eq!(got, expected, "batched feed must replay exactly like a lone session");

        // Health reflects the traffic split.
        let h0 = engine.health(s0).unwrap();
        let h1 = engine.health(s1).unwrap();
        assert_eq!(h0.samples_seen + h1.samples_seen, batch.len());
    }

    #[test]
    fn unknown_sessions_fail_their_entries_only() {
        let data = tiny_dataset();
        let mut engine = engine_for(&data);
        let ok = engine.open_session();
        let sample = data.normal_test.sample(0);
        let batch =
            vec![(ok, sample.clone()), (7, sample.clone()), (ok, sample.clone())];
        let events = engine.push_batch(&batch);
        assert!(events[0].is_ok());
        assert_eq!(events[1], Err(ServeError::UnknownSession(7)));
        assert!(events[2].is_ok());
        assert_eq!(engine.health(ok).unwrap().samples_seen, 2);
    }

    #[test]
    fn masked_samples_flow_through_sessions() {
        let data = tiny_dataset();
        let mut engine = engine_for(&data);
        let sid = engine.open_session();
        let n = data.network.n_buses();
        // Black out most of the grid: the detector cannot score, and the
        // session absorbs the sample as a quiet vote instead of erroring.
        let mask = Mask::with_missing(n, &(0..n - 1).collect::<Vec<_>>());
        let dark = data.normal_test.sample(0).masked(&mask);
        let events = engine.push_batch(&[(sid, dark)]);
        assert!(events[0].is_ok());
        let health = engine.health(sid).unwrap();
        assert_eq!(health.missing_samples, 1);
    }
}
