//! The serving engine: one loaded bundle, many concurrent consumers.
//!
//! ## Concurrency model
//!
//! The trained [`Detector`] is immutable after load, so stateless batch
//! detection shares one copy across the whole `par_map` fan-out. Sessions
//! are stateful (voting history, health counters, degraded-mode machine);
//! each lives behind its own `Mutex` in a slot table, and
//! [`Engine::push_batch`] groups a tick's samples by session and runs *one
//! parallel task per session*, so every lock is uncontended and per-feed
//! sample order is exactly the input order. The crate keeps the
//! workspace's `#![deny(unsafe_code)]` — the slot-of-mutexes layout is
//! what makes parallel mutation safe without it.
//!
//! ## Robustness model
//!
//! The engine assumes the telemetry path is hostile (see
//! `pmu_sim::faults`): every inbound sample passes an **ingestion guard**
//! (finiteness, length, mask consistency) before it can reach a detector,
//! failing with [`ServeError::BadSample`]; sessions run a per-feed
//! **degraded-mode state machine** ([`FeedMode`]) driven by the recent
//! missing and rejection ratios; and bundle loads retry transient IO per
//! a bounded [`RetryPolicy`]. Session handles are **generation-tagged**
//! ([`SessionId`]), so a handle to a closed-and-reused slot fails with
//! [`ServeError::UnknownSession`] instead of silently reading a stranger's
//! feed.
//!
//! ## Layering
//!
//! The bundle-scoped, session-agnostic half of the engine lives in
//! [`EngineCore`]: the ingestion guard, the stateless detect paths, the
//! per-push pipeline and the incident machinery. `Engine` composes a core
//! with one [`SessionTable`](crate::session::SessionTable); the multi-grid
//! [`Fleet`](crate::Fleet) composes *many* cores with per-shard tables.
//! Both therefore serve byte-identical semantics per feed.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use pmu_detect::stream::{StreamConfig, StreamEvent, StreamingDetector};
use pmu_detect::{DetectError, Detection, Detector, ScoringCache};
use pmu_model::{ModelBundle, ModelError, RetryPolicy};
use pmu_numerics::par;
use pmu_obs::recorder::{label_id, write_incident_dump, LabelId, RecKind};
use pmu_obs::{Recorder, Value};
use pmu_sim::PhasorSample;

use crate::session::{Outcome, SessionState, SessionTable};
pub use crate::session::{DegradeConfig, DegradeReason, FeedMode, SessionHealth, SessionId};

/// Interned per-feed ring labels, resolved once per process.
fn push_labels() -> (LabelId, LabelId, LabelId, LabelId) {
    static LABELS: OnceLock<(LabelId, LabelId, LabelId, LabelId)> = OnceLock::new();
    *LABELS.get_or_init(|| {
        (
            label_id("serve.push_scored"),
            label_id("serve.push_missing"),
            label_id("serve.push_rejected"),
            label_id("serve.push_baddata"),
        )
    })
}

/// Why the ingestion guard refused a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BadSampleReason {
    /// An *observed* (unmasked) phasor is NaN or infinite.
    NonFinite {
        /// Node with the non-finite measurement.
        node: usize,
    },
    /// The phasor vector length does not match the serving topology
    /// (e.g. a message truncated in flight).
    WrongLength {
        /// Node count the loaded model serves.
        expected: usize,
        /// Node count the sample carried.
        got: usize,
    },
    /// The mask covers a different node count than the phasor vector.
    /// Unreachable through `PhasorSample`'s constructors; kept as defense
    /// in depth against future construction paths.
    MaskMismatch {
        /// Phasor vector length.
        nodes: usize,
        /// Mask length.
        mask: usize,
    },
}

impl BadSampleReason {
    /// Machine-stable tag used by the `serve.sample_rejected` observation.
    pub fn label(&self) -> &'static str {
        match self {
            BadSampleReason::NonFinite { .. } => "non_finite",
            BadSampleReason::WrongLength { .. } => "wrong_length",
            BadSampleReason::MaskMismatch { .. } => "mask_mismatch",
        }
    }
}

impl std::fmt::Display for BadSampleReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BadSampleReason::NonFinite { node } => {
                write!(f, "observed phasor at node {node} is NaN or infinite")
            }
            BadSampleReason::WrongLength { expected, got } => {
                write!(f, "sample has {got} nodes, model serves {expected}")
            }
            BadSampleReason::MaskMismatch { nodes, mask } => {
                write!(f, "mask covers {mask} nodes, sample has {nodes}")
            }
        }
    }
}

/// Typed serving failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The session handle is not open: never issued, closed, or stale
    /// (its slot was reused under a newer generation).
    UnknownSession(SessionId),
    /// The ingestion guard refused the sample before detection.
    BadSample(BadSampleReason),
    /// The underlying detector rejected the sample.
    Detect(DetectError),
    /// The fleet has no grid registered under this name.
    UnknownGrid(String),
    /// A grid with this name is already registered in the fleet.
    DuplicateGrid(String),
    /// The feed key is not open in the fleet (never opened, or closed).
    UnknownFeed(crate::fleet::FeedKey),
    /// The feed key is already open in the fleet.
    DuplicateFeed(crate::fleet::FeedKey),
    /// The shard's admission controller shed the sample: accepting it
    /// would exceed the shard's bounded ingress queue. Shed load is
    /// counted in `serve.shed_total`; the caller decides whether to
    /// retry, downsample, or drop.
    Overloaded {
        /// Index of the saturated shard.
        shard: usize,
    },
    /// A session snapshot is incompatible with this fleet (wrong
    /// topology fingerprint, unknown state tag, corrupt voting state).
    Snapshot(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServeError::BadSample(reason) => write!(f, "bad sample: {reason}"),
            ServeError::Detect(e) => write!(f, "detect failed: {e}"),
            ServeError::UnknownGrid(name) => write!(f, "unknown grid {name:?}"),
            ServeError::DuplicateGrid(name) => {
                write!(f, "grid {name:?} is already registered")
            }
            ServeError::UnknownFeed(key) => write!(f, "unknown feed {key}"),
            ServeError::DuplicateFeed(key) => write!(f, "feed {key} is already open"),
            ServeError::Overloaded { shard } => {
                write!(f, "shard {shard} is overloaded; sample shed")
            }
            ServeError::Snapshot(msg) => write!(f, "snapshot rejected: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<DetectError> for ServeError {
    fn from(e: DetectError) -> Self {
        ServeError::Detect(e)
    }
}

/// When and where the engine snapshots its flight-recorder rings to
/// JSONL incident dumps.
///
/// Dumps are written only when `dir` is set; the trigger flags choose
/// which anomalies open an incident. One incident stays open per
/// session until it returns to [`FeedMode::Healthy`] with no active
/// stream event, so a sustained anomaly produces exactly one dump, not
/// one per push.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentConfig {
    /// Directory incident dumps are written into (created on demand).
    /// `None` disables dumping entirely.
    pub dir: Option<PathBuf>,
    /// Dump when a session's voting window raises a stream event.
    pub on_raise: bool,
    /// Dump when a feed turns [`FeedMode::Degraded`].
    pub on_degraded: bool,
    /// Dump when a feed turns [`FeedMode::Dark`].
    pub on_dark: bool,
    /// Dump when a feed degrades specifically for
    /// [`DegradeReason::BadData`] — the bad-data screen is excising
    /// suspect channels faster than plausible for sensor noise, which
    /// usually means a miscalibrated or compromised PMU worth forensics
    /// even when `on_degraded` is off.
    pub on_bad_data: bool,
    /// Dump when the rejected fraction of a full degrade window reaches
    /// this ratio (`None` disables the rejection-spike trigger).
    pub reject_spike_ratio: Option<f64>,
    /// Dump when one push's detect latency exceeds this many
    /// microseconds (`None` disables the latency-SLO trigger).
    pub latency_slo_us: Option<f64>,
}

impl Default for IncidentConfig {
    /// Raise, Dark, bad-data degrades and a 50% rejection spike trigger;
    /// no latency SLO. Dumping stays off until a directory is configured.
    fn default() -> Self {
        IncidentConfig {
            dir: None,
            on_raise: true,
            on_degraded: false,
            on_dark: true,
            on_bad_data: true,
            reject_spike_ratio: Some(0.5),
            latency_slo_us: None,
        }
    }
}

/// Engine construction knobs.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Voting configuration every new session starts with.
    pub stream: StreamConfig,
    /// Degraded-mode thresholds every new session starts with.
    pub degrade: DegradeConfig,
    /// Retry policy for transient IO during [`Engine::load`].
    pub retry: RetryPolicy,
    /// Incident-dump triggers and destination.
    pub incident: IncidentConfig,
}

/// The bundle-scoped, session-agnostic half of a serving engine: the
/// trained detector, the ingestion guard, the per-push pipeline and the
/// incident machinery. Owns no session table — [`Engine`] pairs one core
/// with one table, [`Fleet`](crate::Fleet) pairs many cores with
/// per-shard tables, and both push through exactly this code.
pub(crate) struct EngineCore {
    pub(crate) system: String,
    pub(crate) network_fingerprint: String,
    pub(crate) detector: Detector,
    pub(crate) stream_cfg: StreamConfig,
    pub(crate) degrade_cfg: DegradeConfig,
    pub(crate) incident_cfg: IncidentConfig,
    /// Monotonic incident-dump sequence number (also the file-name
    /// prefix, so dump order is reconstructible from a directory
    /// listing).
    incident_seq: AtomicU64,
    /// Scoring memoization shared by the stateless detect paths: masks
    /// recur across batches, so per-mask restrictions are paid once per
    /// engine instead of once per call.
    cache: ScoringCache,
}

impl EngineCore {
    pub(crate) fn from_bundle(bundle: ModelBundle, cfg: &EngineConfig) -> Self {
        pmu_obs::counter!("serve.engines_started").inc();
        EngineCore {
            system: bundle.system,
            network_fingerprint: bundle.network_fingerprint,
            detector: bundle.detector,
            stream_cfg: cfg.stream,
            degrade_cfg: cfg.degrade.clone(),
            incident_cfg: cfg.incident.clone(),
            incident_seq: AtomicU64::new(0),
            cache: ScoringCache::new(),
        }
    }

    /// A fresh session state wrapping a new monitor on this core's
    /// detector and voting configuration.
    pub(crate) fn new_session(&self) -> SessionState {
        SessionState::new(StreamingDetector::new(self.detector.clone(), self.stream_cfg))
    }

    /// The ingestion guard's pure check (no observation side effects).
    pub(crate) fn validate_sample(&self, sample: &PhasorSample) -> Result<(), ServeError> {
        let expected = self.detector.n_nodes();
        let got = sample.n_nodes();
        if got != expected {
            return Err(ServeError::BadSample(BadSampleReason::WrongLength {
                expected,
                got,
            }));
        }
        if sample.mask().len() != got {
            return Err(ServeError::BadSample(BadSampleReason::MaskMismatch {
                nodes: got,
                mask: sample.mask().len(),
            }));
        }
        for node in sample.mask().observed() {
            if !sample.phasor_unchecked(node).is_finite() {
                return Err(ServeError::BadSample(BadSampleReason::NonFinite { node }));
            }
        }
        Ok(())
    }

    /// [`EngineCore::validate_sample`] plus the rejection observation.
    pub(crate) fn guard(&self, sample: &PhasorSample) -> Result<(), ServeError> {
        self.validate_sample(sample).inspect_err(|e| {
            if let ServeError::BadSample(reason) = e {
                pmu_obs::events::SampleRejected { reason: reason.label() }.emit();
            }
        })
    }

    /// Stateless one-shot detection (see [`Engine::detect`]).
    pub(crate) fn detect(&self, sample: &PhasorSample) -> Result<Detection, ServeError> {
        self.guard(sample)?;
        let started = Instant::now();
        let out =
            self.detector.detect_with_cache(sample, &self.cache).map_err(ServeError::from);
        let elapsed_us = started.elapsed().as_secs_f64() * 1e6;
        pmu_obs::counter!("serve.detect_calls").inc();
        pmu_obs::histogram!("serve.detect_latency_us").observe(elapsed_us);
        pmu_obs::record!(RecKind::Metric, "serve.detect", 1, elapsed_us);
        out
    }

    /// Stateless batch detection (see [`Engine::detect_batch`]).
    pub(crate) fn detect_batch(
        &self,
        samples: &[PhasorSample],
    ) -> Vec<Result<Detection, ServeError>> {
        pmu_obs::counter!("serve.batch_calls").inc();
        pmu_obs::counter!("serve.batch_samples").add(samples.len() as u64);
        let mut sp = pmu_obs::span("serve.detect_batch").with("samples", samples.len());
        let started = Instant::now();

        // Ingestion guard first: only validated samples reach the packed
        // detector path, and their positions are remembered for scatter.
        let mut out: Vec<Option<Result<Detection, ServeError>>> =
            samples.iter().map(|_| None).collect();
        let mut valid: Vec<usize> = Vec::with_capacity(samples.len());
        for (i, sample) in samples.iter().enumerate() {
            match self.guard(sample) {
                Ok(()) => valid.push(i),
                Err(e) => out[i] = Some(Err(e)),
            }
        }
        let accepted: Vec<PhasorSample> =
            valid.iter().map(|&i| samples[i].clone()).collect();
        let verdicts = self.detector.detect_batch_with_cache(&accepted, &self.cache);
        for (&i, v) in valid.iter().zip(verdicts) {
            out[i] = Some(v.map_err(ServeError::from));
        }

        let elapsed_us = started.elapsed().as_secs_f64() * 1e6;
        if !samples.is_empty() {
            // Individual latencies are not observable inside the packed
            // batch; a *count-weighted* observation of the per-sample
            // share keeps the histogram's count honest (one observation
            // per verdict, like the scalar path) so batch traffic can't
            // flatten the quantiles by under-counting.
            pmu_obs::histogram!("serve.detect_latency_us")
                .observe_n(elapsed_us / samples.len() as f64, samples.len() as u64);
        }
        pmu_obs::record!(RecKind::Metric, "serve.detect_batch", samples.len(), elapsed_us);
        sp.record("ms", elapsed_us / 1e3);
        out.into_iter().map(|o| o.expect("every sample classified")).collect()
    }

    /// One feed push: guard, vote, account, record into the per-feed
    /// ring, and evaluate the incident triggers. `slot` keys the
    /// mode-change observation; `who` names the feed in incident dumps
    /// (a [`SessionId`] for the engine, a grid-qualified feed label for
    /// the fleet).
    pub(crate) fn push_one(
        &self,
        slot: usize,
        who: &dyn std::fmt::Display,
        session: &mut SessionState,
        sample: &PhasorSample,
    ) -> Result<StreamEvent, ServeError> {
        let (scored_l, missing_l, rejected_l, baddata_l) = push_labels();
        let feed_tick = (session.pushed + session.rejected) as u64;
        let mode_before = session.mode;

        if let Err(e) = self.guard(sample) {
            session.rejected += 1;
            session.ring.record(RecKind::Event, rejected_l, feed_tick, 0);
            session.record(slot, &self.degrade_cfg, Outcome::Rejected);
            self.fire_triggers(who, session, mode_before, false, None);
            return Err(e);
        }

        let before = session.monitor.health();
        let t0 = Instant::now();
        let event = session.monitor.push(sample).map_err(ServeError::from);
        let latency_us = t0.elapsed().as_secs_f64() * 1e6;
        pmu_obs::histogram!("serve.detect_latency_us").observe(latency_us);
        session.pushed += 1;
        let after = session.monitor.health();
        let (outcome, label) = if after.missing_samples > before.missing_samples {
            (Outcome::Missing, missing_l)
        } else if after.bad_data_samples > before.bad_data_samples {
            (Outcome::BadData, baddata_l)
        } else {
            (Outcome::Scored, scored_l)
        };
        session.ring.record(RecKind::Event, label, feed_tick, latency_us as u64);
        session.record(slot, &self.degrade_cfg, outcome);
        let raised = matches!(event, Ok(StreamEvent::Raised { .. }));
        self.fire_triggers(who, session, mode_before, raised, Some(latency_us));
        event
    }

    /// Evaluate the incident triggers after one push. At most one dump is
    /// written per ongoing anomaly (`SessionState::incident_open`); the
    /// incident closes once the feed is Healthy again with no active
    /// stream event and no trigger firing this push.
    fn fire_triggers(
        &self,
        who: &dyn std::fmt::Display,
        session: &mut SessionState,
        mode_before: FeedMode,
        raised: bool,
        latency_us: Option<f64>,
    ) {
        let cfg = &self.incident_cfg;
        let mut trigger: Option<&'static str> = None;
        let baddata_mode = FeedMode::Degraded { reason: DegradeReason::BadData };
        if cfg.on_raise && raised {
            trigger = Some("stream_raised");
        } else if cfg.on_dark && session.mode.code() == 2 && mode_before.code() != 2 {
            trigger = Some("feed_dark");
        } else if cfg.on_bad_data
            && session.mode == baddata_mode
            && mode_before != baddata_mode
        {
            trigger = Some("feed_baddata");
        } else if cfg.on_degraded && session.mode.code() == 1 && mode_before.code() != 1 {
            trigger = Some("feed_degraded");
        }
        if trigger.is_none() {
            if let (Some(spike), Some(ratio)) =
                (cfg.reject_spike_ratio, session.rejected_ratio(&self.degrade_cfg))
            {
                if ratio >= spike {
                    trigger = Some("reject_spike");
                }
            }
        }
        if trigger.is_none() {
            if let (Some(slo), Some(us)) = (cfg.latency_slo_us, latency_us) {
                if us > slo {
                    trigger = Some("latency_slo");
                }
            }
        }

        match trigger {
            Some(t) if !session.incident_open => self.write_incident(who, session, t),
            Some(_) => {} // anomaly already dumped; stay quiet until it passes
            None => {
                if session.incident_open
                    && session.mode == FeedMode::Healthy
                    && !session.monitor.health().active
                {
                    session.incident_open = false;
                }
            }
        }
    }

    /// Snapshot the global and per-feed rings into one incident dump and
    /// mark the session's incident open. Write failures are counted and
    /// reported but never disturb the serving path; the incident still
    /// opens so a persistent IO failure cannot cause a dump storm.
    fn write_incident(
        &self,
        who: &dyn std::fmt::Display,
        session: &mut SessionState,
        trigger: &'static str,
    ) {
        let Some(dir) = self.incident_cfg.dir.as_ref() else { return };
        session.incident_open = true;
        let seq = self.incident_seq.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("incident-{seq:04}-{who}-{trigger}.jsonl"));
        let health = session.monitor.health();
        let context: [(&str, Value); 10] = [
            ("system", Value::from(self.system.as_str())),
            ("session", Value::from(who.to_string())),
            ("mode", Value::from(session.mode.label())),
            ("pushed", Value::from(session.pushed)),
            ("rejected", Value::from(session.rejected)),
            ("samples_seen", Value::from(health.samples_seen)),
            ("missing_samples", Value::from(health.missing_samples)),
            ("bad_data_samples", Value::from(health.bad_data_samples)),
            ("events_raised", Value::from(health.events_raised)),
            ("event_active", Value::from(health.active)),
        ];
        let rings: [(&str, &Recorder); 2] =
            [("global", pmu_obs::recorder::global()), ("feed", &session.ring)];
        match write_incident_dump(&path, trigger, &context, &rings) {
            Ok(stats) => {
                pmu_obs::counter!("serve.incident_dumps").inc();
                pmu_obs::info(&format!(
                    "incident dump {} ({} records, {} dropped)",
                    path.display(),
                    stats.records,
                    stats.dropped
                ));
            }
            Err(e) => {
                pmu_obs::counter!("serve.incident_dump_failures").inc();
                eprintln!("pmu-serve: incident dump {} failed: {e}", path.display());
            }
        }
    }

    /// Number of incident dumps this core has attempted to write.
    pub(crate) fn incident_dumps_written(&self) -> u64 {
        self.incident_seq.load(Ordering::Relaxed)
    }
}

/// A loaded bundle serving detection traffic.
pub struct Engine {
    core: EngineCore,
    /// Session slot table (O(1) open via a free list); closed slots are
    /// reused under a bumped generation.
    table: SessionTable<SessionState>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("system", &self.core.system)
            .field("sessions_active", &self.sessions_active())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Stand up an engine from an in-memory bundle.
    pub fn from_bundle(bundle: ModelBundle, cfg: EngineConfig) -> Self {
        Engine { core: EngineCore::from_bundle(bundle, &cfg), table: SessionTable::new() }
    }

    /// Load, verify and stand up an engine from a bundle file, retrying
    /// transient filesystem failures per the config's [`RetryPolicy`].
    ///
    /// # Errors
    /// Propagates every [`ModelError`] of
    /// [`ModelBundle::load`](pmu_model::ModelBundle::load) — a serving
    /// process must refuse to start on a corrupt or version-skewed
    /// artifact rather than panic mid-traffic. Only
    /// [`ModelError::Io`] is retried; verification failures are final.
    pub fn load(path: &std::path::Path, cfg: EngineConfig) -> Result<Self, ModelError> {
        let started = Instant::now();
        let bundle = ModelBundle::load_with_retry(path, &cfg.retry)?;
        pmu_obs::histogram!("serve.engine_load_ms")
            .observe(started.elapsed().as_secs_f64() * 1e3);
        Ok(Self::from_bundle(bundle, cfg))
    }

    /// System the loaded bundle was trained on (e.g. `"ieee14"`).
    pub fn system(&self) -> &str {
        &self.core.system
    }

    /// Hex fingerprint of the training topology (provenance display).
    pub fn network_fingerprint(&self) -> &str {
        &self.core.network_fingerprint
    }

    /// The voting configuration new sessions start with.
    pub fn stream_config(&self) -> StreamConfig {
        self.core.stream_cfg
    }

    /// The degraded-mode thresholds new sessions start with.
    pub fn degrade_config(&self) -> &DegradeConfig {
        &self.core.degrade_cfg
    }

    /// Borrow the underlying trained detector.
    pub fn detector(&self) -> &Detector {
        &self.core.detector
    }

    /// The ingestion guard: check an inbound sample against the serving
    /// topology without consuming it. [`Engine::push_batch`],
    /// [`Engine::detect`] and [`Engine::detect_batch`] all apply this
    /// before any detector math runs.
    ///
    /// # Errors
    /// [`ServeError::BadSample`] naming the violated invariant: wrong
    /// vector length, mask/vector skew, or a non-finite *observed* value
    /// (masked entries may hold anything — they are never read).
    pub fn validate_sample(&self, sample: &PhasorSample) -> Result<(), ServeError> {
        self.core.validate_sample(sample)
    }

    /// Open a per-feed streaming session and return its handle. Slots of
    /// closed sessions are reused (O(1) via the table's free list), but
    /// under a fresh generation — handles to previous occupants stay
    /// invalid.
    pub fn open_session(&mut self) -> SessionId {
        let id = self.table.open(self.core.new_session());
        pmu_obs::counter!("serve.sessions_opened").inc();
        pmu_obs::gauge!("serve.sessions_active").set(self.table.active() as f64);
        id
    }

    /// Close a session; `false` when the handle is not open (including
    /// stale handles of an already-reused slot). Closing bumps the slot
    /// generation, invalidating every outstanding handle to it.
    pub fn close_session(&mut self, id: SessionId) -> bool {
        let closed = self.table.close(id);
        if closed {
            pmu_obs::counter!("serve.sessions_closed").inc();
            pmu_obs::gauge!("serve.sessions_active").set(self.table.active() as f64);
        }
        closed
    }

    /// Number of open sessions.
    pub fn sessions_active(&self) -> usize {
        self.table.active()
    }

    /// Handles of the currently open sessions, ascending by slot.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.table.ids()
    }

    /// Health of one session, `None` when the handle is not open.
    pub fn health(&self, id: SessionId) -> Option<SessionHealth> {
        self.table
            .resolve(id)
            .map(|m| m.lock().unwrap_or_else(|p| p.into_inner()).health())
    }

    /// Score one sample statelessly against the bundle's detector.
    ///
    /// # Errors
    /// [`ServeError::BadSample`] when the ingestion guard refuses the
    /// sample; [`ServeError::Detect`] when the detector rejects it (e.g.
    /// too little observed data to score).
    pub fn detect(&self, sample: &PhasorSample) -> Result<Detection, ServeError> {
        self.core.detect(sample)
    }

    /// Score a batch of independent samples through the packed stage-1
    /// path: samples sharing a missing-data mask are scored against every
    /// learned subspace with one cache-blocked matmul, and the per-sample
    /// ranking tail fans out on the workspace thread pool inside the
    /// detector. Results come back in input order; per-sample failures
    /// stay per-sample and match what [`Engine::detect`] would report.
    pub fn detect_batch(
        &self,
        samples: &[PhasorSample],
    ) -> Vec<Result<Detection, ServeError>> {
        self.core.detect_batch(samples)
    }

    /// Advance many feeds by one tick: each `(session, sample)` pair is
    /// pushed into its session's voting window. Pairs are grouped by
    /// session and the groups run in parallel (one task per session), so
    /// samples of one feed apply in their input order while distinct feeds
    /// proceed concurrently. Results come back in input order.
    ///
    /// Unknown or stale session handles fail their own entries with
    /// [`ServeError::UnknownSession`]; samples the ingestion guard refuses
    /// fail theirs with [`ServeError::BadSample`] (counted against the
    /// session's degraded-mode window without reaching its voting
    /// history). Neither disturbs the rest of the batch.
    pub fn push_batch(
        &self,
        batch: &[(SessionId, PhasorSample)],
    ) -> Vec<Result<StreamEvent, ServeError>> {
        pmu_obs::counter!("serve.push_batches").inc();
        pmu_obs::counter!("serve.push_samples").add(batch.len() as u64);
        let mut sp = pmu_obs::span("serve.push_batch").with("samples", batch.len());
        let started = Instant::now();

        // Group batch positions by session id, preserving input order
        // within each group.
        let mut groups: Vec<(SessionId, Vec<usize>)> = Vec::new();
        for (pos, (sid, _)) in batch.iter().enumerate() {
            match groups.iter_mut().find(|(gsid, _)| gsid == sid) {
                Some((_, positions)) => positions.push(pos),
                None => groups.push((*sid, vec![pos])),
            }
        }

        let per_group: Vec<Vec<(usize, Result<StreamEvent, ServeError>)>> =
            par::par_map(&groups, |(sid, positions)| {
                let Some(slot) = self.table.resolve(*sid) else {
                    return positions
                        .iter()
                        .map(|&pos| (pos, Err(ServeError::UnknownSession(*sid))))
                        .collect();
                };
                let mut session = slot.lock().unwrap_or_else(|p| p.into_inner());
                positions
                    .iter()
                    .map(|&pos| {
                        (
                            pos,
                            self.core.push_one(
                                sid.slot(),
                                sid,
                                &mut session,
                                &batch[pos].1,
                            ),
                        )
                    })
                    .collect()
            });

        // Scatter group results back to input order.
        let mut out: Vec<Option<Result<StreamEvent, ServeError>>> = vec![None; batch.len()];
        for group in per_group {
            for (pos, event) in group {
                out[pos] = Some(event);
            }
        }
        sp.record("ms", started.elapsed().as_secs_f64() * 1e3);
        out.into_iter().map(|o| o.expect("every batch position scattered")).collect()
    }

    /// Health of every open session, ascending by slot — the `/health`
    /// endpoint's payload.
    pub fn session_healths(&self) -> Vec<(SessionId, SessionHealth)> {
        self.session_ids()
            .into_iter()
            .filter_map(|id| self.health(id).map(|h| (id, h)))
            .collect()
    }

    /// Number of incident dumps this engine has attempted to write.
    pub fn incident_dumps_written(&self) -> u64 {
        self.core.incident_dumps_written()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu_baseline::MlrConfig;
    use pmu_detect::detector::default_config_for;
    use pmu_numerics::Complex64;
    use pmu_sim::{generate_dataset, Dataset, GenConfig, Mask};

    fn tiny_dataset() -> Dataset {
        let net = pmu_grid::cases::ieee14().unwrap();
        let cfg = GenConfig { train_len: 10, test_len: 6, ..GenConfig::default() };
        generate_dataset(&net, &cfg).unwrap()
    }

    fn engine_for(data: &Dataset) -> Engine {
        let gen = GenConfig { train_len: 10, test_len: 6, ..GenConfig::default() };
        let det_cfg = default_config_for(&data.network);
        let bundle = pmu_model::ModelBundle::train(data, &gen, &det_cfg, &MlrConfig::default())
            .unwrap();
        Engine::from_bundle(bundle, EngineConfig::default())
    }

    #[test]
    fn stateless_batch_matches_sequential() {
        let data = tiny_dataset();
        let engine = engine_for(&data);
        let samples: Vec<_> = (0..data.normal_test.len())
            .map(|t| data.normal_test.sample(t))
            .chain((0..data.cases[0].test.len()).map(|t| data.cases[0].test.sample(t)))
            .collect();
        let batch = engine.detect_batch(&samples);
        assert_eq!(batch.len(), samples.len());
        for (sample, batched) in samples.iter().zip(&batch) {
            let direct = engine.detect(sample);
            assert_eq!(&direct, batched, "batch must agree with one-shot detection");
        }
    }

    #[test]
    fn session_lifecycle_reuses_slots_under_fresh_generations() {
        let data = tiny_dataset();
        let mut engine = engine_for(&data);
        assert_eq!(engine.sessions_active(), 0);
        let a = engine.open_session();
        let b = engine.open_session();
        assert_eq!((a.slot(), b.slot()), (0, 1));
        assert_eq!(engine.session_ids(), vec![a, b]);
        assert!(engine.close_session(a));
        assert!(!engine.close_session(a), "double close must report false");
        assert_eq!(engine.sessions_active(), 1);
        let c = engine.open_session();
        assert_eq!(c.slot(), a.slot(), "closed slot must be reused");
        assert_ne!(c, a, "reuse must issue a fresh generation");
        assert!(engine.health(b).is_some());
        assert!(engine.health(c).is_some());
        assert!(engine.health(a).is_none(), "stale handle resolves to nothing");
        assert!(
            engine.health(SessionId { slot: 99, generation: 0 }).is_none(),
            "never-issued slots are unknown"
        );
    }

    /// Regression for the session-id ABA bug: a handle held across its
    /// slot's close-and-reopen used to silently address the *new*
    /// occupant, cross-wiring two feeds' voting histories. Generation
    /// tags make the stale handle fail instead.
    #[test]
    fn stale_handle_cannot_reach_reused_slot() {
        let data = tiny_dataset();
        let mut engine = engine_for(&data);
        let stale = engine.open_session();
        assert!(engine.close_session(stale));
        let fresh = engine.open_session();
        assert_eq!(fresh.slot(), stale.slot(), "the slot really was reused");

        let sample = data.normal_test.sample(0);
        let events = engine.push_batch(&[(stale, sample.clone())]);
        assert_eq!(events[0], Err(ServeError::UnknownSession(stale)));
        assert_eq!(
            engine.health(fresh).unwrap().snapshot.samples_seen,
            0,
            "the new occupant must not receive the stale feed's traffic"
        );
        assert!(!engine.close_session(stale), "stale handle cannot close the new occupant");
        assert_eq!(engine.sessions_active(), 1);
    }

    #[test]
    fn push_batch_preserves_per_feed_order_and_state() {
        let data = tiny_dataset();
        let mut engine = engine_for(&data);
        let s0 = engine.open_session();
        let s1 = engine.open_session();

        // Feed s0 outage samples and s1 normal samples, interleaved in one
        // batch; compare against a sequential reference session.
        let case = &data.cases[0];
        let mut batch = Vec::new();
        for t in 0..case.test.len().min(5) {
            batch.push((s0, case.test.sample(t)));
            batch.push((s1, data.normal_test.sample(t.min(data.normal_test.len() - 1))));
        }
        let events = engine.push_batch(&batch);
        assert_eq!(events.len(), batch.len());

        let mut reference = StreamingDetector::new(
            engine.detector().clone(),
            engine.stream_config(),
        );
        let mut expected = Vec::new();
        for (sid, sample) in &batch {
            if *sid == s0 {
                expected.push(reference.push(sample).unwrap());
            }
        }
        let got: Vec<_> = batch
            .iter()
            .zip(&events)
            .filter(|((sid, _), _)| *sid == s0)
            .map(|(_, ev)| ev.clone().unwrap())
            .collect();
        assert_eq!(got, expected, "batched feed must replay exactly like a lone session");

        // Health reflects the traffic split.
        let h0 = engine.health(s0).unwrap();
        let h1 = engine.health(s1).unwrap();
        assert_eq!(h0.snapshot.samples_seen + h1.snapshot.samples_seen, batch.len());
        assert_eq!(h0.pushed + h1.pushed, batch.len());
        assert_eq!(h0.rejected + h1.rejected, 0);
    }

    #[test]
    fn unknown_sessions_fail_their_entries_only() {
        let data = tiny_dataset();
        let mut engine = engine_for(&data);
        let ok = engine.open_session();
        let bogus = SessionId { slot: 7, generation: 0 };
        let sample = data.normal_test.sample(0);
        let batch =
            vec![(ok, sample.clone()), (bogus, sample.clone()), (ok, sample.clone())];
        let events = engine.push_batch(&batch);
        assert!(events[0].is_ok());
        assert_eq!(events[1], Err(ServeError::UnknownSession(bogus)));
        assert!(events[2].is_ok());
        assert_eq!(engine.health(ok).unwrap().snapshot.samples_seen, 2);
    }

    #[test]
    fn masked_samples_flow_through_sessions() {
        let data = tiny_dataset();
        let mut engine = engine_for(&data);
        let sid = engine.open_session();
        let n = data.network.n_buses();
        // Black out most of the grid: the detector cannot score, and the
        // session absorbs the sample as vote-neutral instead of erroring.
        let mask = Mask::with_missing(n, &(0..n - 1).collect::<Vec<_>>());
        let dark = data.normal_test.sample(0).masked(&mask);
        let events = engine.push_batch(&[(sid, dark)]);
        assert!(events[0].is_ok());
        let health = engine.health(sid).unwrap();
        assert_eq!(health.snapshot.missing_samples, 1);
    }

    #[test]
    fn ingestion_guard_rejects_invalid_samples() {
        let data = tiny_dataset();
        let mut engine = engine_for(&data);
        let sid = engine.open_session();
        let n = engine.detector().n_nodes();

        // NaN in an observed slot: typed rejection naming the node.
        let mut phasors: Vec<Complex64> =
            (0..n).map(|_| Complex64::new(1.0, 0.0)).collect();
        phasors[3] = Complex64::new(f64::NAN, 0.0);
        let nan_sample = PhasorSample::complete(phasors.clone());
        assert_eq!(
            engine.detect(&nan_sample),
            Err(ServeError::BadSample(BadSampleReason::NonFinite { node: 3 }))
        );
        let events = engine.push_batch(&[(sid, nan_sample.clone())]);
        assert_eq!(
            events[0],
            Err(ServeError::BadSample(BadSampleReason::NonFinite { node: 3 }))
        );

        // The same NaN behind a mask is legal: masked slots are never read.
        phasors[3] = Complex64::new(f64::NAN, f64::NAN);
        let masked = PhasorSample::complete(phasors).masked(&Mask::with_missing(n, &[3]));
        assert!(engine.validate_sample(&masked).is_ok());

        // A truncated vector: typed length rejection.
        let short = PhasorSample::complete(vec![Complex64::new(1.0, 0.0); n - 2]);
        assert_eq!(
            engine.detect(&short),
            Err(ServeError::BadSample(BadSampleReason::WrongLength {
                expected: n,
                got: n - 2
            }))
        );
        let events = engine.push_batch(&[(sid, short)]);
        assert!(matches!(
            events[0],
            Err(ServeError::BadSample(BadSampleReason::WrongLength { .. }))
        ));

        // Rejected samples never reach the voting window, but the session
        // accounts for them.
        let h = engine.health(sid).unwrap();
        assert_eq!(h.snapshot.samples_seen, 0, "guard fires before the monitor");
        assert_eq!(h.rejected, 2);
        assert_eq!(h.pushed, 0);

        // Batch detection rejects per-sample without failing the batch.
        let good = data.normal_test.sample(0);
        let out = engine.detect_batch(&[good, nan_sample]);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(ServeError::BadSample(_))));
    }

    #[test]
    fn feed_mode_degrades_and_recovers() {
        let data = tiny_dataset();
        let mut engine = engine_for(&data);
        let sid = engine.open_session();
        let n = data.network.n_buses();
        let cfg = engine.degrade_config().clone();
        let dark_mask = Mask::with_missing(n, &(0..n - 1).collect::<Vec<_>>());

        // A fresh feed is healthy and stays healthy below a full window.
        assert_eq!(engine.health(sid).unwrap().mode, FeedMode::Healthy);

        // Blackout: a full window of unscorable samples turns the feed
        // Dark.
        for t in 0..cfg.window {
            let s = data.normal_test.sample(t % data.normal_test.len()).masked(&dark_mask);
            engine.push_batch(&[(sid, s)]);
        }
        assert_eq!(engine.health(sid).unwrap().mode, FeedMode::Dark);

        // Data returns: the bad ratio decays through Degraded back to
        // Healthy, monotonically.
        let mut seen_degraded = false;
        let mut recovered_at = None;
        for t in 0..2 * cfg.window {
            let s = data.normal_test.sample(t % data.normal_test.len());
            engine.push_batch(&[(sid, s)]);
            match engine.health(sid).unwrap().mode {
                FeedMode::Degraded { reason } => {
                    assert_eq!(reason, DegradeReason::MissingData);
                    assert!(recovered_at.is_none(), "no fallback after recovery");
                    seen_degraded = true;
                }
                FeedMode::Healthy => {
                    recovered_at.get_or_insert(t);
                }
                FeedMode::Dark => {
                    assert!(
                        !seen_degraded && recovered_at.is_none(),
                        "mode must not regress while clean data flows"
                    );
                }
            }
        }
        assert!(seen_degraded, "recovery passes through Degraded");
        assert!(recovered_at.is_some(), "feed returns to Healthy");

        // A short burst of invalid samples (above the degraded threshold,
        // below dark) degrades with the rejection reason.
        let nan =
            PhasorSample::complete(vec![Complex64::new(f64::NAN, 0.0); n]);
        let burst = (cfg.degraded_ratio * cfg.window as f64).ceil() as usize;
        for _ in 0..burst {
            let _ = engine.push_batch(&[(sid, nan.clone())]);
        }
        assert_eq!(
            engine.health(sid).unwrap().mode,
            FeedMode::Degraded { reason: DegradeReason::RejectedSamples },
        );
    }

    /// A plausible-but-corrupted feed: every push carries one channel
    /// with a rotated angle. The guard passes it (finite values), the
    /// bad-data screen excises it, and the session degrades with the
    /// `BadData` reason — not `Dark`, because detection still runs on
    /// the surviving channels.
    #[test]
    fn bad_data_feed_degrades_with_baddata_reason() {
        let data = tiny_dataset();
        let mut engine = engine_for(&data);
        let sid = engine.open_session();
        let n = data.network.n_buses();
        let cfg = engine.degrade_config().clone();
        for t in 0..cfg.window {
            let clean = data.normal_test.sample(t % data.normal_test.len());
            let phasors: Vec<Complex64> = (0..n)
                .map(|i| {
                    let z = clean.phasor_unchecked(i);
                    if i == 5 {
                        Complex64::from_polar(z.abs(), z.arg() + 1.0)
                    } else {
                        z
                    }
                })
                .collect();
            let events = engine.push_batch(&[(sid, PhasorSample::complete(phasors))]);
            assert!(events[0].is_ok(), "corrupted-but-finite samples pass the guard");
        }
        let h = engine.health(sid).unwrap();
        assert!(
            h.snapshot.bad_data_samples * 2 >= cfg.window,
            "screen fired on only {} of {} pushes",
            h.snapshot.bad_data_samples,
            cfg.window
        );
        assert_eq!(h.mode, FeedMode::Degraded { reason: DegradeReason::BadData });
        assert_eq!(h.rejected, 0, "bad data is excised, not rejected");
    }

    #[test]
    fn session_id_display_and_error_messages() {
        let id = SessionId { slot: 4, generation: 2 };
        assert_eq!(id.to_string(), "s4.g2");
        assert_eq!(id.slot(), 4);
        assert_eq!(id.generation(), 2);
        let e = ServeError::UnknownSession(id);
        assert!(e.to_string().contains("s4.g2"));
        let e = ServeError::BadSample(BadSampleReason::NonFinite { node: 9 });
        assert!(e.to_string().contains("node 9"));
        let e = ServeError::BadSample(BadSampleReason::WrongLength { expected: 14, got: 3 });
        assert!(e.to_string().contains("14"));
        assert!(e.to_string().contains('3'));
        let e = ServeError::BadSample(BadSampleReason::MaskMismatch { nodes: 5, mask: 4 });
        assert!(e.to_string().contains("mask"));
        assert_eq!(BadSampleReason::NonFinite { node: 0 }.label(), "non_finite");
        let key = crate::fleet::FeedKey { grid: crate::fleet::GridId(0), feed: 7 };
        assert!(ServeError::UnknownFeed(key).to_string().contains("g0.f7"));
        assert!(ServeError::DuplicateFeed(key).to_string().contains("g0.f7"));
        assert!(ServeError::UnknownGrid("west".into()).to_string().contains("west"));
        assert!(ServeError::DuplicateGrid("west".into()).to_string().contains("west"));
        assert!(ServeError::Overloaded { shard: 3 }.to_string().contains("shard 3"));
        assert!(ServeError::Snapshot("skew".into()).to_string().contains("skew"));
    }
}
