//! A zero-dependency scrape endpoint for the serving engine.
//!
//! [`ObsServer`] binds a `std::net::TcpListener` and answers two routes:
//!
//! - `GET /metrics` — the process metrics registry in Prometheus text
//!   exposition format 0.0.4 ([`pmu_obs::prometheus_text`]), plus one
//!   `serve_feed_mode{session="sN.gM"}` gauge line per open session
//!   (0 healthy, 1 degraded, 2 dark).
//! - `GET /health` — a JSON document with the engine identity, active
//!   session count, detect-latency and per-stage quantiles, shortlist
//!   hit/fallback counts, and one entry per session (mode, pushed,
//!   rejected, missing, events, alarm state).
//!
//! The server is deliberately minimal: blocking accept loop on one
//! thread, one request per connection (`Connection: close`), no
//! keep-alive, no TLS, HTTP/1.0-style responses. It exists so `serve
//! --listen` can be scraped by Prometheus or `curl` without pulling a
//! web framework into a `std`-only workspace; it is not a general web
//! server and must only be bound to trusted interfaces.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::Engine;

/// Metric names whose quantiles `/health` reports, with the JSON keys
/// they surface under.
const HEALTH_QUANTILE_METRICS: &[(&str, &str)] = &[
    ("serve.detect_latency_us", "detect_latency_us"),
    ("detect.stage1_us", "stage1_us"),
    ("detect.stage2_us", "stage2_us"),
    ("detect.stage3_us", "stage3_us"),
];

/// A running scrape endpoint. Dropping the handle stops the accept loop
/// and joins the serving thread.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl ObsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9464`; port `0` picks a free port)
    /// and start answering scrapes against `engine` on a background
    /// thread.
    ///
    /// # Errors
    /// Propagates the bind failure (`EADDRINUSE`, privileged port, …).
    pub fn bind(addr: &str, engine: Arc<Engine>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Poll the stop flag between accepts instead of blocking forever:
        // a short accept timeout keeps shutdown prompt without spinning.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_seen = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("pmu-obs-http".into())
            .spawn(move || {
                while !stop_seen.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            pmu_obs::counter!("serve.http_requests").inc();
                            if let Err(e) = handle_connection(stream, &engine) {
                                pmu_obs::counter!("serve.http_errors").inc();
                                pmu_obs::info(&format!("obs endpoint error: {e}"));
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(20)),
                    }
                }
            })?;
        Ok(ObsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the accept loop to stop and join the serving thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Read one request, route it, write one response, close.
fn handle_connection(mut stream: TcpStream, engine: &Engine) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 2048];
    let n = stream.read(&mut buf)?;
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");

    let (status, content_type, body) = match path {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", metrics_body(engine)),
        "/health" => ("200 OK", "application/json", health_body(engine)),
        _ => ("404 Not Found", "text/plain", String::from("not found\n")),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// The `/metrics` payload: the registry exposition plus per-session
/// feed-mode gauges (labelled series do not fit the scalar registry).
fn metrics_body(engine: &Engine) -> String {
    let mut out = pmu_obs::prometheus_text();
    let sessions = engine.session_healths();
    if !sessions.is_empty() {
        out.push_str("# TYPE serve_feed_mode gauge\n");
        out.push_str("# HELP serve_feed_mode Per-session degraded-mode state (0 healthy, 1 degraded, 2 dark).\n");
        for (id, health) in &sessions {
            out.push_str(&format!(
                "serve_feed_mode{{session=\"{id}\"}} {}\n",
                health.mode.code()
            ));
        }
    }
    out
}

/// The `/health` payload: hand-written JSON (the workspace has no serde)
/// via the same escaping helper the trace sink uses.
fn health_body(engine: &Engine) -> String {
    let mut out = String::with_capacity(1024);
    out.push('{');
    push_str_field(&mut out, "system", engine.system());
    out.push(',');
    push_str_field(&mut out, "fingerprint", engine.network_fingerprint());
    let sessions = engine.session_healths();
    out.push_str(&format!(",\"sessions_active\":{}", sessions.len()));
    out.push_str(&format!(
        ",\"incident_dumps\":{}",
        engine.incident_dumps_written()
    ));

    out.push_str(",\"detect\":{");
    for (i, (metric, key)) in HEALTH_QUANTILE_METRICS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // The `histogram!` macro caches per call site, which would pin
        // this loop to its first metric — use the registry function.
        let h = pmu_obs::metrics::histogram(metric);
        out.push_str(&format!(
            "\"{key}\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            h.count(),
            json_f64(h.quantile(0.5)),
            json_f64(h.quantile(0.9)),
            json_f64(h.quantile(0.99)),
        ));
    }
    out.push_str(&format!(
        ",\"shortlist_hits\":{},\"shortlist_fallbacks\":{}",
        pmu_obs::counter!("detect.shortlist_hits").get(),
        pmu_obs::counter!("detect.shortlist_fallbacks").get(),
    ));
    out.push('}');

    out.push_str(",\"sessions\":[");
    for (i, (id, h)) in sessions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_str_field(&mut out, "id", &id.to_string());
        out.push(',');
        push_str_field(&mut out, "mode", h.mode.label());
        out.push_str(&format!(
            ",\"pushed\":{},\"rejected\":{},\"samples_seen\":{},\"missing_samples\":{},\
             \"events_raised\":{},\"events_cleared\":{},\"alarm_streak\":{},\"active\":{}}}",
            h.pushed,
            h.rejected,
            h.snapshot.samples_seen,
            h.snapshot.missing_samples,
            h.snapshot.events_raised,
            h.snapshot.events_cleared,
            h.snapshot.alarm_streak,
            h.snapshot.active,
        ));
    }
    out.push_str("]}");
    out
}

/// Append `"key":"escaped value"` to a JSON object under construction.
fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    let escaped: String = value
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    out.push('"');
    out.push_str(&escaped);
    out.push('"');
}

/// JSON has no NaN/Infinity literals; an empty histogram reports `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::from("null")
    }
}
