//! A zero-dependency scrape endpoint for the serving engine and fleet.
//!
//! [`ObsServer`] binds a `std::net::TcpListener` and answers two routes:
//!
//! - `GET /metrics` — the process metrics registry in Prometheus text
//!   exposition format 0.0.4 ([`pmu_obs::prometheus_text`]), plus one
//!   `serve_feed_mode{session="..."}` gauge line per open session
//!   (0 healthy, 1 degraded, 2 dark). Session labels are `sN.gM` when
//!   serving an [`Engine`], `grid/fN` when serving a [`Fleet`].
//! - `GET /health` — a JSON document with the serving identity, active
//!   session count, detect-latency and per-stage quantiles, shortlist
//!   hit/fallback counts, and one entry per session (mode, pushed,
//!   rejected, missing, events, alarm state). The fleet flavour adds
//!   per-grid provenance and per-shard load counters (inflight, drained,
//!   shed, p99 push latency, drain rate).
//!
//! The server is deliberately minimal: blocking accept loop on one
//! thread, one request per connection (`Connection: close`), no
//! keep-alive, no TLS, HTTP/1.0-style responses. It exists so `serve
//! --listen` can be scraped by Prometheus or `curl` without pulling a
//! web framework into a `std`-only workspace; it is not a general web
//! server and must only be bound to trusted interfaces. Both directions
//! of each connection carry timeouts (500 ms read, 2 s write), so a
//! client that connects and stalls — or reads its response at a crawl —
//! delays later scrapes by at most that bound instead of wedging the
//! accept loop forever.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::Engine;
use crate::fleet::Fleet;
use crate::session::SessionHealth;

/// Metric names whose quantiles `/health` reports, with the JSON keys
/// they surface under.
const HEALTH_QUANTILE_METRICS: &[(&str, &str)] = &[
    ("serve.detect_latency_us", "detect_latency_us"),
    ("detect.stage1_us", "stage1_us"),
    ("detect.stage2_us", "stage2_us"),
    ("detect.stage3_us", "stage3_us"),
];

/// What the endpoint scrapes: one engine or a whole fleet.
enum Target {
    Engine(Arc<Engine>),
    Fleet(Arc<Fleet>),
}

impl Target {
    /// `(label, health)` for every open session, in stable display order.
    fn session_healths(&self) -> Vec<(String, SessionHealth)> {
        match self {
            Target::Engine(engine) => engine
                .session_healths()
                .into_iter()
                .map(|(id, h)| (id.to_string(), h))
                .collect(),
            Target::Fleet(fleet) => fleet
                .feed_healths()
                .into_iter()
                .map(|(key, h)| (fleet.feed_label(key), h))
                .collect(),
        }
    }
}

/// A running scrape endpoint. Dropping the handle stops the accept loop
/// and joins the serving thread.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl ObsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9464`; port `0` picks a free port)
    /// and start answering scrapes against `engine` on a background
    /// thread.
    ///
    /// # Errors
    /// Propagates the bind failure (`EADDRINUSE`, privileged port, …).
    pub fn bind(addr: &str, engine: Arc<Engine>) -> std::io::Result<Self> {
        Self::bind_target(addr, Target::Engine(engine))
    }

    /// Bind `addr` and start answering scrapes against a whole fleet.
    ///
    /// # Errors
    /// Propagates the bind failure (`EADDRINUSE`, privileged port, …).
    pub fn bind_fleet(addr: &str, fleet: Arc<Fleet>) -> std::io::Result<Self> {
        Self::bind_target(addr, Target::Fleet(fleet))
    }

    fn bind_target(addr: &str, target: Target) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Poll the stop flag between accepts instead of blocking forever:
        // a short accept timeout keeps shutdown prompt without spinning.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_seen = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("pmu-obs-http".into())
            .spawn(move || {
                while !stop_seen.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            pmu_obs::counter!("serve.http_requests").inc();
                            if let Err(e) = handle_connection(stream, &target) {
                                pmu_obs::counter!("serve.http_errors").inc();
                                pmu_obs::info(&format!("obs endpoint error: {e}"));
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(20)),
                    }
                }
            })?;
        Ok(ObsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the accept loop to stop and join the serving thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Read one request, route it, write one response, close. Both
/// directions are bounded: a stalled sender trips the 500 ms read
/// timeout, a non-draining receiver the 2 s write timeout — either way
/// the single accept loop gets its thread back and later scrapes
/// proceed (pinned by `slow_clients_cannot_block_subsequent_scrapes`).
fn handle_connection(mut stream: TcpStream, target: &Target) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 2048];
    let n = stream.read(&mut buf)?;
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");

    let (status, content_type, body) = match path {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", metrics_body(target)),
        "/health" => ("200 OK", "application/json", health_body(target)),
        _ => ("404 Not Found", "text/plain", String::from("not found\n")),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// The `/metrics` payload: the registry exposition plus per-session
/// feed-mode gauges (labelled series do not fit the scalar registry).
fn metrics_body(target: &Target) -> String {
    let mut out = pmu_obs::prometheus_text();
    let sessions = target.session_healths();
    if !sessions.is_empty() {
        out.push_str("# TYPE serve_feed_mode gauge\n");
        out.push_str("# HELP serve_feed_mode Per-session degraded-mode state (0 healthy, 1 degraded, 2 dark).\n");
        for (label, health) in &sessions {
            out.push_str(&format!(
                "serve_feed_mode{{session=\"{label}\"}} {}\n",
                health.mode.code()
            ));
        }
    }
    out
}

/// The `/health` payload: hand-written JSON (the workspace has no serde)
/// via the same escaping helper the trace sink uses.
fn health_body(target: &Target) -> String {
    let mut out = String::with_capacity(1024);
    out.push('{');
    match target {
        Target::Engine(engine) => {
            push_str_field(&mut out, "system", engine.system());
            out.push(',');
            push_str_field(&mut out, "fingerprint", engine.network_fingerprint());
        }
        Target::Fleet(fleet) => {
            let systems: Vec<&str> =
                fleet.grids().iter().map(|&(id, _)| fleet.grid_system(id)).collect();
            push_str_field(&mut out, "system", &systems.join(","));
            out.push_str(",\"grids\":[");
            for (i, (id, name)) in fleet.grids().into_iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('{');
                push_str_field(&mut out, "name", name);
                out.push(',');
                push_str_field(&mut out, "system", fleet.grid_system(id));
                out.push(',');
                push_str_field(&mut out, "fingerprint", fleet.grid_fingerprint(id));
                out.push_str(&format!(",\"nodes\":{}}}", fleet.grid_nodes(id)));
            }
            out.push(']');
            out.push_str(",\"shards\":[");
            for (i, s) in fleet.shard_stats().into_iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"shard\":{},\"sessions\":{},\"inflight\":{},\"drained\":{},\
                     \"shed\":{},\"push_p99_us\":{},\"drain_rate\":{}}}",
                    s.shard,
                    s.sessions,
                    s.inflight,
                    s.drained,
                    s.shed,
                    json_f64(s.push_p99_us),
                    json_f64(s.drain_rate),
                ));
            }
            out.push(']');
        }
    }
    let sessions = target.session_healths();
    out.push_str(&format!(",\"sessions_active\":{}", sessions.len()));
    let dumps = match target {
        Target::Engine(engine) => engine.incident_dumps_written(),
        Target::Fleet(fleet) => fleet.incident_dumps_written(),
    };
    out.push_str(&format!(",\"incident_dumps\":{dumps}"));

    out.push_str(",\"detect\":{");
    for (i, (metric, key)) in HEALTH_QUANTILE_METRICS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // The `histogram!` macro caches per call site, which would pin
        // this loop to its first metric — use the registry function.
        let h = pmu_obs::metrics::histogram(metric);
        out.push_str(&format!(
            "\"{key}\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            h.count(),
            json_f64(h.quantile(0.5)),
            json_f64(h.quantile(0.9)),
            json_f64(h.quantile(0.99)),
        ));
    }
    out.push_str(&format!(
        ",\"shortlist_hits\":{},\"shortlist_fallbacks\":{}",
        pmu_obs::counter!("detect.shortlist_hits").get(),
        pmu_obs::counter!("detect.shortlist_fallbacks").get(),
    ));
    out.push('}');

    out.push_str(",\"sessions\":[");
    for (i, (label, h)) in sessions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_str_field(&mut out, "id", label);
        out.push(',');
        push_str_field(&mut out, "mode", h.mode.label());
        out.push_str(&format!(
            ",\"pushed\":{},\"rejected\":{},\"samples_seen\":{},\"missing_samples\":{},\
             \"bad_data_samples\":{},\"events_raised\":{},\"events_cleared\":{},\
             \"alarm_streak\":{},\"active\":{}}}",
            h.pushed,
            h.rejected,
            h.snapshot.samples_seen,
            h.snapshot.missing_samples,
            h.snapshot.bad_data_samples,
            h.snapshot.events_raised,
            h.snapshot.events_cleared,
            h.snapshot.alarm_streak,
            h.snapshot.active,
        ));
    }
    out.push_str("]}");
    out
}

/// Append `"key":"escaped value"` to a JSON object under construction.
fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    let escaped: String = value
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    out.push('"');
    out.push_str(&escaped);
    out.push('"');
}

/// JSON has no NaN/Infinity literals; an empty histogram reports `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::from("null")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::fleet::{FeedKey, FleetConfig};
    use pmu_baseline::MlrConfig;
    use pmu_detect::detector::default_config_for;
    use pmu_sim::{generate_dataset, GenConfig};
    use std::time::Instant;

    fn tiny_bundle() -> pmu_model::ModelBundle {
        let net = pmu_grid::cases::ieee14().unwrap();
        let gen = GenConfig { train_len: 10, test_len: 6, ..GenConfig::default() };
        let data = generate_dataset(&net, &gen).unwrap();
        pmu_model::ModelBundle::train(&data, &gen, &default_config_for(&data.network), &MlrConfig::default())
            .unwrap()
    }

    /// One full scrape: request `path`, drain the response, return it.
    fn scrape(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut body = String::new();
        let _ = stream.read_to_string(&mut body);
        body
    }

    /// Satellite regression: the endpoint serves one connection at a
    /// time, so a client that connects and then stalls (sends nothing)
    /// used to be able to wedge the accept loop for as long as it
    /// pleased. The per-connection read/write timeouts bound the damage:
    /// a well-behaved scrape issued *behind* two misbehaving clients
    /// must still complete, promptly.
    #[test]
    fn slow_clients_cannot_block_subsequent_scrapes() {
        let engine =
            Arc::new(Engine::from_bundle(tiny_bundle(), EngineConfig::default()));
        let server = ObsServer::bind("127.0.0.1:0", engine).unwrap();
        let addr = server.addr();

        // Client 1 connects and never sends a byte: the 500 ms read
        // timeout must reclaim the serving thread.
        let stalled = TcpStream::connect(addr).unwrap();
        // Client 2 sends a torn request prefix and goes silent.
        let mut torn = TcpStream::connect(addr).unwrap();
        torn.write_all(b"GET /met").unwrap();

        // The scrape queued behind both must complete within a couple of
        // read-timeout budgets, not hang until the rude clients leave.
        let t0 = Instant::now();
        let response = scrape(addr, "/metrics");
        let elapsed = t0.elapsed();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "got: {response:.100?}");
        assert!(
            response.contains("serve_http_requests"),
            "registry exposition missing from body"
        );
        assert!(
            elapsed < Duration::from_secs(4),
            "scrape behind stalled clients took {elapsed:?}"
        );
        drop(stalled);
        drop(torn);
    }

    #[test]
    fn fleet_endpoint_reports_grids_shards_and_feed_modes() {
        let mut fleet = Fleet::new(FleetConfig { shards: 2, ..FleetConfig::default() });
        let bundle = tiny_bundle();
        let east = fleet.add_grid("east", bundle.clone(), &EngineConfig::default()).unwrap();
        let west = fleet.add_grid("west", bundle, &EngineConfig::default()).unwrap();
        let fleet = Arc::new(fleet);
        fleet.open_feed(FeedKey { grid: east, feed: 0 }).unwrap();
        fleet.open_feed(FeedKey { grid: west, feed: 3 }).unwrap();

        let server = ObsServer::bind_fleet("127.0.0.1:0", Arc::clone(&fleet)).unwrap();
        let health = scrape(server.addr(), "/health");
        assert!(health.contains("\"system\":\"ieee14,ieee14\""), "got: {health}");
        assert!(health.contains("\"name\":\"east\""));
        assert!(health.contains("\"name\":\"west\""));
        assert!(health.contains("\"sessions_active\":2"));
        assert!(health.contains("\"shards\":[{\"shard\":0,"));
        assert!(health.contains("\"id\":\"east/f0\""));
        assert!(health.contains("\"id\":\"west/f3\""));
        assert!(health.contains("\"bad_data_samples\":0"), "got: {health}");

        let metrics = scrape(server.addr(), "/metrics");
        assert!(metrics.contains("serve_feed_mode{session=\"east/f0\"} 0"));
        assert!(metrics.contains("serve_feed_mode{session=\"west/f3\"} 0"));

        let miss = scrape(server.addr(), "/nope");
        assert!(miss.starts_with("HTTP/1.1 404"));
    }
}
