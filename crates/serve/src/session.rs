//! Session-layer building blocks shared by the single-grid [`Engine`]
//! and the multi-grid [`Fleet`]: generation-tagged handles, the slot
//! table with an O(1) free list, and the per-feed serving state
//! (voting monitor + degraded-mode machine + flight-recorder ring).
//!
//! [`Engine`]: crate::Engine
//! [`Fleet`]: crate::Fleet

use std::collections::VecDeque;
use std::sync::Mutex;

use pmu_detect::stream::{HealthSnapshot, StreamingDetector};
use pmu_model::SessionSnapshot;
use pmu_obs::Recorder;

/// Capacity of each session's per-feed flight-recorder ring: enough to
/// hold several degrade windows of push history around an anomaly.
pub(crate) const FEED_RING_CAPACITY: usize = 128;

/// A generation-tagged handle to an open session.
///
/// Slots are reused after a close, but each reuse bumps the slot's
/// generation, so a stale handle held across a close/reopen can never
/// address the new occupant (the classic ABA hazard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId {
    pub(crate) slot: u32,
    pub(crate) generation: u32,
}

impl SessionId {
    /// The slot-table index (stable across the handle's lifetime).
    pub fn slot(&self) -> usize {
        self.slot as usize
    }

    /// The slot generation this handle was issued under.
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}.g{}", self.slot, self.generation)
    }
}

/// One slot of a session table. The generation survives the occupant:
/// it is bumped on every close, which is what invalidates stale handles.
#[derive(Debug)]
struct Slot<S> {
    generation: u32,
    state: Option<Mutex<S>>,
}

/// A generation-tagged slot table with an O(1) free list.
///
/// The original engine scanned the whole slot vector for a vacancy on
/// every open — linear in table size, quadratic for a churn-heavy
/// workload opening thousands of sessions. The table now keeps a stack
/// of free slot indices: open pops (or grows), close pushes, both O(1).
/// The invariant tying them together: a slot is in `free` **iff** its
/// `state` is `None`, so `active() = slots.len() - free.len()` without a
/// scan. Generation tagging is untouched — the ABA tests that pin it
/// run against exactly this code via [`Engine`](crate::Engine).
#[derive(Debug)]
pub(crate) struct SessionTable<S> {
    slots: Vec<Slot<S>>,
    /// Indices of vacant slots (LIFO: the most recently closed slot is
    /// reused first, keeping the table compact under churn).
    free: Vec<u32>,
}

impl<S> SessionTable<S> {
    pub(crate) fn new() -> Self {
        SessionTable { slots: Vec::new(), free: Vec::new() }
    }

    /// Insert `state` into a free slot (O(1)) and return its handle.
    pub(crate) fn open(&mut self, state: S) -> SessionId {
        let slot = match self.free.pop() {
            Some(i) => {
                debug_assert!(self.slots[i as usize].state.is_none());
                self.slots[i as usize].state = Some(Mutex::new(state));
                i as usize
            }
            None => {
                self.slots.push(Slot { generation: 0, state: Some(Mutex::new(state)) });
                self.slots.len() - 1
            }
        };
        SessionId { slot: slot as u32, generation: self.slots[slot].generation }
    }

    /// Close a session; `false` when the handle is not open (including
    /// stale handles of an already-reused slot). Closing bumps the slot
    /// generation, invalidating every outstanding handle to it.
    pub(crate) fn close(&mut self, id: SessionId) -> bool {
        self.take(id).is_some()
    }

    /// Close a session and hand back its state (the migration path).
    /// `None` when the handle is not open.
    pub(crate) fn take(&mut self, id: SessionId) -> Option<S> {
        let slot = self.slots.get_mut(id.slot())?;
        if slot.generation != id.generation || slot.state.is_none() {
            return None;
        }
        let state = slot.state.take().expect("checked above");
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.slot);
        Some(state.into_inner().unwrap_or_else(|p| p.into_inner()))
    }

    /// Resolve a handle to its live slot, or `None` when closed/stale.
    pub(crate) fn resolve(&self, id: SessionId) -> Option<&Mutex<S>> {
        let slot = self.slots.get(id.slot())?;
        if slot.generation != id.generation {
            return None;
        }
        slot.state.as_ref()
    }

    /// Number of open sessions — O(1) via the free-list invariant.
    pub(crate) fn active(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Handles of the currently open sessions, ascending by slot.
    pub(crate) fn ids(&self) -> Vec<SessionId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state.is_some())
            .map(|(i, s)| SessionId { slot: i as u32, generation: s.generation })
            .collect()
    }
}

/// A serving session's degraded-mode state.
///
/// Driven by the ratios of unscorable and rejected samples over the last
/// [`DegradeConfig::window`] pushes. `Dark` means the feed is effectively
/// blind (almost nothing scorable arrives); `Degraded` means enough data
/// still flows to detect, but the operator should distrust latency and
/// localization quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedMode {
    /// The feed delivers scorable data at a healthy rate.
    Healthy,
    /// A concerning fraction of recent samples was unscorable or rejected.
    Degraded {
        /// The dominant cause.
        reason: DegradeReason,
    },
    /// Nearly nothing scorable arrives; detection is effectively blind.
    Dark,
}

/// What pushed a feed out of [`FeedMode::Healthy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The detector could not score enough recent samples (masked data).
    MissingData,
    /// The ingestion guard rejected enough recent samples (invalid data).
    RejectedSamples,
    /// The bad-data screen excised suspect channels from enough recent
    /// samples: the feed is delivering *plausible but corrupted*
    /// measurements, so localization quality is suspect even though
    /// detection keeps running on the surviving channels.
    BadData,
}

impl FeedMode {
    /// Mode label used by the `serve.feed_mode` observation.
    pub fn label(&self) -> &'static str {
        match self {
            FeedMode::Healthy => "healthy",
            FeedMode::Degraded { .. } => "degraded",
            FeedMode::Dark => "dark",
        }
    }

    /// Numeric severity used by the `/metrics` feed-mode gauge and in
    /// flight-recorder operands: 0 healthy, 1 degraded, 2 dark.
    pub fn code(&self) -> u64 {
        match self {
            FeedMode::Healthy => 0,
            FeedMode::Degraded { .. } => 1,
            FeedMode::Dark => 2,
        }
    }

    /// Machine-stable tag persisted in session snapshots. Unlike
    /// [`FeedMode::label`] this distinguishes the degrade reasons, so the
    /// round trip is lossless.
    pub(crate) fn tag(&self) -> &'static str {
        match self {
            FeedMode::Healthy => "healthy",
            FeedMode::Degraded { reason: DegradeReason::MissingData } => "degraded_missing",
            FeedMode::Degraded { reason: DegradeReason::RejectedSamples } => {
                "degraded_rejected"
            }
            FeedMode::Degraded { reason: DegradeReason::BadData } => "degraded_baddata",
            FeedMode::Dark => "dark",
        }
    }

    /// Parse a [`FeedMode::tag`] back; `None` for an unknown tag.
    pub(crate) fn from_tag(tag: &str) -> Option<FeedMode> {
        match tag {
            "healthy" => Some(FeedMode::Healthy),
            "degraded_missing" => {
                Some(FeedMode::Degraded { reason: DegradeReason::MissingData })
            }
            "degraded_rejected" => {
                Some(FeedMode::Degraded { reason: DegradeReason::RejectedSamples })
            }
            "degraded_baddata" => {
                Some(FeedMode::Degraded { reason: DegradeReason::BadData })
            }
            "dark" => Some(FeedMode::Dark),
            _ => None,
        }
    }
}

/// Thresholds of the per-session degraded-mode state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeConfig {
    /// How many recent pushes the ratios are computed over. The mode
    /// never leaves `Healthy` before a full window has accumulated.
    pub window: usize,
    /// Bad-sample ratio (unscorable + rejected) at which the feed turns
    /// [`FeedMode::Degraded`].
    pub degraded_ratio: f64,
    /// Bad-sample ratio at which the feed turns [`FeedMode::Dark`].
    pub dark_ratio: f64,
}

impl Default for DegradeConfig {
    /// An 8-push window; a quarter bad degrades, three quarters is dark.
    fn default() -> Self {
        DegradeConfig { window: 8, degraded_ratio: 0.25, dark_ratio: 0.75 }
    }
}

/// Health of one serving session: the detector-level snapshot plus the
/// serving-level degraded-mode state and ingestion counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionHealth {
    /// The wrapped [`StreamingDetector`]'s counters.
    pub snapshot: HealthSnapshot,
    /// Current degraded-mode state.
    pub mode: FeedMode,
    /// Samples accepted into the voting window.
    pub pushed: usize,
    /// Samples refused by the ingestion guard.
    pub rejected: usize,
}

/// What one push contributed to the degraded-mode window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Outcome {
    /// Validated and scored.
    Scored,
    /// Validated but unscorable (vote-neutral for the detector).
    Missing,
    /// Refused by the ingestion guard.
    Rejected,
    /// Scored, but only after the bad-data screen excised at least one
    /// suspect channel. The verdict stands; the feed's trustworthiness
    /// does not.
    BadData,
}

impl Outcome {
    /// Machine-stable tag persisted in session snapshots.
    fn tag(&self) -> &'static str {
        match self {
            Outcome::Scored => "scored",
            Outcome::Missing => "missing",
            Outcome::Rejected => "rejected",
            Outcome::BadData => "baddata",
        }
    }

    /// Parse an [`Outcome::tag`] back; `None` for an unknown tag.
    fn from_tag(tag: &str) -> Option<Outcome> {
        match tag {
            "scored" => Some(Outcome::Scored),
            "missing" => Some(Outcome::Missing),
            "rejected" => Some(Outcome::Rejected),
            "baddata" => Some(Outcome::BadData),
            _ => None,
        }
    }
}

/// Per-session mutable state: the voting monitor plus the serving-level
/// degraded-mode machine and the per-feed flight-recorder ring.
#[derive(Debug)]
pub(crate) struct SessionState {
    pub(crate) monitor: StreamingDetector,
    pub(crate) mode: FeedMode,
    pub(crate) recent: VecDeque<Outcome>,
    pub(crate) pushed: usize,
    pub(crate) rejected: usize,
    /// Per-feed flight recorder: one compact record per push outcome,
    /// snapshotted alongside the global ring into incident dumps.
    pub(crate) ring: Recorder,
    /// `true` while an incident dump has been written for the ongoing
    /// anomaly; cleared when the feed is Healthy with no active event,
    /// so one anomaly produces one dump.
    pub(crate) incident_open: bool,
}

impl SessionState {
    pub(crate) fn new(monitor: StreamingDetector) -> Self {
        SessionState {
            monitor,
            mode: FeedMode::Healthy,
            recent: VecDeque::new(),
            pushed: 0,
            rejected: 0,
            ring: Recorder::new(FEED_RING_CAPACITY),
            incident_open: false,
        }
    }

    /// Ratio of guard-rejected pushes over the degrade window, `None`
    /// before a full window has accumulated.
    pub(crate) fn rejected_ratio(&self, cfg: &DegradeConfig) -> Option<f64> {
        if self.recent.len() < cfg.window.max(1) {
            return None;
        }
        let rejected =
            self.recent.iter().filter(|o| **o == Outcome::Rejected).count() as f64;
        Some(rejected / self.recent.len() as f64)
    }

    /// Record one push outcome and advance the mode machine, emitting a
    /// [`pmu_obs::events::FeedModeChanged`] observation on transitions.
    pub(crate) fn record(&mut self, slot: usize, cfg: &DegradeConfig, outcome: Outcome) {
        if self.recent.len() == cfg.window.max(1) {
            self.recent.pop_front();
        }
        self.recent.push_back(outcome);
        let next = self.decide(cfg);
        if next != self.mode {
            let reason = match next {
                FeedMode::Healthy => "recovered",
                FeedMode::Degraded { reason: DegradeReason::MissingData } => "missing_ratio",
                FeedMode::Degraded { reason: DegradeReason::RejectedSamples } => {
                    "reject_ratio"
                }
                FeedMode::Degraded { reason: DegradeReason::BadData } => "baddata_ratio",
                FeedMode::Dark => "blackout",
            };
            pmu_obs::events::FeedModeChanged {
                session: slot,
                from: self.mode.label(),
                to: next.label(),
                reason,
            }
            .emit();
            self.mode = next;
        }
    }

    fn decide(&self, cfg: &DegradeConfig) -> FeedMode {
        if self.recent.len() < cfg.window.max(1) {
            return FeedMode::Healthy;
        }
        let n = self.recent.len() as f64;
        let missing =
            self.recent.iter().filter(|o| **o == Outcome::Missing).count() as f64 / n;
        let rejected =
            self.recent.iter().filter(|o| **o == Outcome::Rejected).count() as f64 / n;
        let baddata =
            self.recent.iter().filter(|o| **o == Outcome::BadData).count() as f64 / n;
        // Bad-data pushes still yield verdicts (on the surviving
        // channels), so they can degrade a feed but never darken it:
        // `Dark` is reserved for feeds detection is actually blind on.
        let unscorable = missing + rejected;
        if unscorable >= cfg.dark_ratio {
            FeedMode::Dark
        } else if unscorable + baddata >= cfg.degraded_ratio {
            let worst = if rejected > missing {
                (rejected, DegradeReason::RejectedSamples)
            } else {
                (missing, DegradeReason::MissingData)
            };
            let reason =
                if baddata > worst.0 { DegradeReason::BadData } else { worst.1 };
            FeedMode::Degraded { reason }
        } else {
            FeedMode::Healthy
        }
    }

    pub(crate) fn health(&self) -> SessionHealth {
        SessionHealth {
            snapshot: self.monitor.health(),
            mode: self.mode,
            pushed: self.pushed,
            rejected: self.rejected,
        }
    }

    /// Capture this session as a persistent [`SessionSnapshot`]. The
    /// flight-recorder ring is deliberately excluded (diagnostics, not
    /// behaviour); everything the push path reads is included.
    pub(crate) fn to_snapshot(
        &self,
        system: &str,
        network_fingerprint: &str,
        grid: &str,
        feed: u64,
    ) -> SessionSnapshot {
        SessionSnapshot {
            system: system.to_string(),
            network_fingerprint: network_fingerprint.to_string(),
            grid: grid.to_string(),
            feed: SessionSnapshot::feed_hex(feed),
            mode: self.mode.tag().to_string(),
            recent: self.recent.iter().map(|o| o.tag().to_string()).collect(),
            pushed: self.pushed,
            rejected: self.rejected,
            incident_open: self.incident_open,
            stream: self.monitor.snapshot(),
        }
    }

    /// Rebuild a session from a snapshot and an already-restored voting
    /// monitor. The ring starts empty (it is diagnostics, not state).
    ///
    /// # Errors
    /// A description of the offending field when the snapshot carries an
    /// unknown mode or outcome tag.
    pub(crate) fn from_snapshot(
        monitor: StreamingDetector,
        snap: &SessionSnapshot,
    ) -> Result<Self, String> {
        let mode = FeedMode::from_tag(&snap.mode)
            .ok_or_else(|| format!("unknown feed-mode tag {:?}", snap.mode))?;
        let recent = snap
            .recent
            .iter()
            .map(|t| {
                Outcome::from_tag(t).ok_or_else(|| format!("unknown outcome tag {t:?}"))
            })
            .collect::<Result<VecDeque<_>, _>>()?;
        Ok(SessionState {
            monitor,
            mode,
            recent,
            pushed: snap.pushed,
            rejected: snap.rejected,
            ring: Recorder::new(FEED_RING_CAPACITY),
            incident_open: snap.incident_open,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The free list reuses slots O(1) while preserving the generation
    /// semantics the engine-level ABA tests pin.
    #[test]
    fn free_list_reuses_slots_with_fresh_generations() {
        let mut table: SessionTable<u32> = SessionTable::new();
        let a = table.open(1);
        let b = table.open(2);
        let c = table.open(3);
        assert_eq!((a.slot(), b.slot(), c.slot()), (0, 1, 2));
        assert_eq!(table.active(), 3);

        assert!(table.close(b));
        assert!(!table.close(b), "double close reports false");
        assert_eq!(table.active(), 2);
        // LIFO reuse: the most recently freed slot comes back first.
        let d = table.open(4);
        assert_eq!(d.slot(), b.slot());
        assert_ne!(d.generation(), b.generation(), "reuse bumps the generation");
        assert!(table.resolve(b).is_none(), "stale handle resolves to nothing");
        assert_eq!(*table.resolve(d).unwrap().lock().unwrap(), 4);
        assert_eq!(table.ids(), vec![a, d, c]);

        // Deep churn: many close/open cycles never grow the table.
        for i in 0..100u32 {
            assert!(table.close(table.ids()[0]));
            table.open(i);
            assert_eq!(table.active(), 3);
        }
        assert!(table.slots.len() <= 3, "churn must not grow the table");
    }

    #[test]
    fn take_hands_back_state_for_migration() {
        let mut table: SessionTable<String> = SessionTable::new();
        let id = table.open("payload".into());
        assert_eq!(table.take(id).as_deref(), Some("payload"));
        assert_eq!(table.take(id), None, "second take finds nothing");
        assert_eq!(table.active(), 0);
        let reused = table.open("next".into());
        assert_eq!(reused.slot(), id.slot());
        assert_ne!(reused.generation(), id.generation());
    }

    #[test]
    fn mode_and_outcome_tags_roundtrip() {
        for mode in [
            FeedMode::Healthy,
            FeedMode::Degraded { reason: DegradeReason::MissingData },
            FeedMode::Degraded { reason: DegradeReason::RejectedSamples },
            FeedMode::Degraded { reason: DegradeReason::BadData },
            FeedMode::Dark,
        ] {
            assert_eq!(FeedMode::from_tag(mode.tag()), Some(mode));
        }
        assert_eq!(FeedMode::from_tag("zombie"), None);
        for outcome in
            [Outcome::Scored, Outcome::Missing, Outcome::Rejected, Outcome::BadData]
        {
            assert_eq!(Outcome::from_tag(outcome.tag()), Some(outcome));
        }
        assert_eq!(Outcome::from_tag(""), None);
    }
}
