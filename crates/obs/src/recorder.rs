//! Always-on flight recorder: lock-free fixed-capacity ring buffers of
//! compact timestamped records, plus the JSONL "incident dump" writer
//! that snapshots them when an anomaly fires.
//!
//! ## Design
//!
//! A [`Recorder`] is a seqlock-style ring of fixed-size slots made
//! entirely of `AtomicU64` words (no `unsafe`). Each slot is five
//! words: a sequence word followed by four payload words (timestamp,
//! kind+label, and two free operands). A writer claims a position with
//! one `fetch_add` on the global cursor, marks the slot odd, writes the
//! payload, then marks it even with a value that encodes the position —
//! so a reader can detect both in-progress writes (odd) and slots
//! overwritten by a lap (wrong position) without ever blocking a
//! writer. Lost slots are *counted*, not silently skipped: snapshots
//! report them and bump the `obs.recorder_dropped` counter.
//!
//! Record labels are interned `&'static str`s ([`label_id`]); the hot
//! path stores a small integer id, and the [`record!`](crate::record!)
//! macro caches the id per call site, so recording is one `fetch_add`
//! plus six relaxed stores — cheap enough to leave on in production
//! (perfbench's `obs_overhead` entry pins it below 1% of an
//! `engine_batch` detect).
//!
//! Unlike tracing and metrics the recorder defaults to **on**: its
//! value is precisely that the window *before* an anomaly is already
//! captured when the anomaly fires. [`set_recorder_enabled`] exists for
//! overhead A/B measurement, not for normal operation.

use crate::counter;
use crate::trace::{write_json_string, write_json_value, Value};
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static RECORDER_ENABLED: AtomicBool = AtomicBool::new(true);

/// `true` when flight-recorder writes are being captured (the default).
#[inline]
pub fn recorder_enabled() -> bool {
    RECORDER_ENABLED.load(Ordering::Relaxed)
}

/// Turn flight recording on or off process-wide. Only overhead
/// measurement should turn it off: a disabled recorder cannot explain
/// an incident.
pub fn set_recorder_enabled(on: bool) {
    RECORDER_ENABLED.store(on, Ordering::SeqCst);
}

fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Microseconds since the process-wide recorder epoch (first use).
pub fn now_us() -> u64 {
    process_start().elapsed().as_micros() as u64
}

/// Interned label table. Labels are `&'static str`s fixed at call
/// sites, so the table is bounded by the instrumentation vocabulary.
static LABELS: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// A compact handle to an interned record label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelId(u32);

/// Intern `name` and return its id (idempotent). Cold: takes a lock.
/// Hot call sites cache the id via the [`record!`](crate::record!)
/// macro.
pub fn label_id(name: &'static str) -> LabelId {
    let mut table = LABELS.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(i) = table.iter().position(|&n| n == name) {
        return LabelId(i as u32);
    }
    table.push(name);
    LabelId((table.len() - 1) as u32)
}

/// Resolve an interned label id back to its string.
pub fn label_name(id: LabelId) -> Option<&'static str> {
    let table = LABELS.lock().unwrap_or_else(|p| p.into_inner());
    table.get(id.0 as usize).copied()
}

/// What a flight-recorder record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecKind {
    /// A span exit: `a` = duration in µs, `b` = caller-defined.
    Span,
    /// A domain event (stream raise/clear, mode change, rejection…).
    Event,
    /// A metric delta or sampled value.
    Metric,
    /// A fault-injection tag from the simulation layer: `a` = tick.
    Fault,
    /// Free-form breadcrumb.
    Note,
}

impl RecKind {
    fn to_u64(self) -> u64 {
        match self {
            RecKind::Span => 0,
            RecKind::Event => 1,
            RecKind::Metric => 2,
            RecKind::Fault => 3,
            RecKind::Note => 4,
        }
    }

    fn from_u64(v: u64) -> RecKind {
        match v {
            0 => RecKind::Span,
            1 => RecKind::Event,
            2 => RecKind::Metric,
            3 => RecKind::Fault,
            _ => RecKind::Note,
        }
    }

    /// Stable lowercase tag used in incident dumps.
    pub fn label(&self) -> &'static str {
        match self {
            RecKind::Span => "span",
            RecKind::Event => "event",
            RecKind::Metric => "metric",
            RecKind::Fault => "fault",
            RecKind::Note => "note",
        }
    }
}

/// One decoded flight-recorder record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Position in the recorder's total write sequence.
    pub pos: u64,
    /// Microseconds since the recorder epoch.
    pub t_us: u64,
    /// Record kind.
    pub kind: RecKind,
    /// Interned label.
    pub label: &'static str,
    /// First operand (meaning depends on `kind`/`label`).
    pub a: u64,
    /// Second operand.
    pub b: u64,
}

/// A consistent read of a recorder's retained window.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Decoded records, oldest first.
    pub records: Vec<Record>,
    /// Slots in the window that were lost to concurrent writes (torn,
    /// in-progress, or lapped while reading).
    pub dropped: u64,
    /// Total records ever written to the recorder.
    pub written: u64,
}

/// Words per slot: sequence + timestamp + kind/label + two operands.
const SLOT_WORDS: usize = 5;

/// A lock-free fixed-capacity ring buffer of compact records.
#[derive(Debug)]
pub struct Recorder {
    words: Vec<AtomicU64>,
    capacity: u64,
    cursor: AtomicU64,
}

impl Recorder {
    /// Create a recorder retaining the last `capacity` records.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "recorder capacity must be positive");
        Recorder {
            words: (0..capacity * SLOT_WORDS).map(|_| AtomicU64::new(0)).collect(),
            capacity: capacity as u64,
            cursor: AtomicU64::new(0),
        }
    }

    /// Retained record capacity.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Total records ever written (not just retained).
    pub fn written(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Append one record. Never blocks; concurrent writers interleave
    /// through the atomic cursor. No-op while the recorder is disabled.
    pub fn record(&self, kind: RecKind, label: LabelId, a: u64, b: u64) {
        if !recorder_enabled() {
            return;
        }
        let pos = self.cursor.fetch_add(1, Ordering::Relaxed);
        let base = ((pos % self.capacity) as usize) * SLOT_WORDS;
        // Seqlock write protocol: odd marks the slot in-progress; the
        // release fence keeps payload stores from becoming visible
        // before it. The final even value encodes the position, so a
        // reader can tell a lapped slot from the one it expects.
        self.words[base].store(2 * pos + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        self.words[base + 1].store(now_us(), Ordering::Relaxed);
        self.words[base + 2].store((kind.to_u64() << 32) | label.0 as u64, Ordering::Relaxed);
        self.words[base + 3].store(a, Ordering::Relaxed);
        self.words[base + 4].store(b, Ordering::Relaxed);
        self.words[base].store(2 * pos + 2, Ordering::Release);
    }

    /// Read the retained window without blocking writers. Slots being
    /// rewritten (or lapped mid-read) are counted as `dropped` and
    /// added to the `obs.recorder_dropped` counter.
    pub fn snapshot(&self) -> Snapshot {
        let end = self.cursor.load(Ordering::Acquire);
        let start = end.saturating_sub(self.capacity);
        let mut records = Vec::with_capacity((end - start) as usize);
        let mut dropped = 0u64;
        for pos in start..end {
            let base = ((pos % self.capacity) as usize) * SLOT_WORDS;
            let s1 = self.words[base].load(Ordering::Acquire);
            if s1 != 2 * pos + 2 {
                dropped += 1;
                continue;
            }
            let t_us = self.words[base + 1].load(Ordering::Relaxed);
            let kind_label = self.words[base + 2].load(Ordering::Relaxed);
            let a = self.words[base + 3].load(Ordering::Relaxed);
            let b = self.words[base + 4].load(Ordering::Relaxed);
            // Seqlock read protocol: the acquire fence orders the
            // payload loads before the sequence re-check.
            fence(Ordering::Acquire);
            let s2 = self.words[base].load(Ordering::Relaxed);
            if s2 != s1 {
                dropped += 1;
                continue;
            }
            let label = match label_name(LabelId((kind_label & 0xffff_ffff) as u32)) {
                Some(l) => l,
                None => {
                    dropped += 1;
                    continue;
                }
            };
            records.push(Record {
                pos,
                t_us,
                kind: RecKind::from_u64(kind_label >> 32),
                label,
                a,
                b,
            });
        }
        if dropped > 0 {
            counter!("obs.recorder_dropped").add(dropped);
        }
        Snapshot { records, dropped, written: end }
    }

    /// Forget all retained records and restart the write sequence.
    /// Intended for tests and between-incident hygiene; not safe to
    /// call concurrently with writers (their slots may be miscounted as
    /// dropped in the next snapshot, never torn).
    pub fn clear(&self) {
        self.cursor.store(0, Ordering::SeqCst);
        for w in &self.words {
            w.store(0, Ordering::SeqCst);
        }
    }
}

/// The process-global flight recorder (capacity 4096). Domain events
/// ([`crate::events`]) and serve-path breadcrumbs all land here; per-feed
/// rings in `pmu-serve` complement it with per-session context.
pub fn global() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let _ = process_start(); // pin the epoch no later than first use
        Recorder::new(4096)
    })
}

/// Append a record to the [`global`] recorder, interning the label once
/// per call site.
///
/// ```
/// use pmu_obs::recorder::RecKind;
/// pmu_obs::record!(RecKind::Note, "example.tick", 7, 0);
/// ```
#[macro_export]
macro_rules! record {
    ($kind:expr, $label:expr, $a:expr, $b:expr) => {{
        static LABEL: std::sync::OnceLock<$crate::recorder::LabelId> = std::sync::OnceLock::new();
        let id = *LABEL.get_or_init(|| $crate::recorder::label_id($label));
        $crate::recorder::global().record($kind, id, $a as u64, $b as u64);
    }};
}

/// Counts written by [`write_incident_dump`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncidentStats {
    /// Records serialized across all rings.
    pub records: usize,
    /// Slots lost to concurrent writes across all rings.
    pub dropped: u64,
}

/// Snapshot `rings` and serialize them to `path` as a JSONL incident
/// dump: a header line with the trigger and caller context, one line
/// per record, and a trailer with loss accounting. Bumps the
/// `obs.incident_dumps` counter.
///
/// Line schema:
///
/// ```json
/// {"t":"incident","trigger":"feed_dark","at_us":123,"fields":{...}}
/// {"t":"rec","ring":"feed","pos":7,"at_us":88,"kind":"event","label":"serve.push_rejected","a":4,"b":0}
/// {"t":"incident_end","records":42,"dropped":0}
/// ```
pub fn write_incident_dump(
    path: &Path,
    trigger: &str,
    context: &[(&str, Value)],
    rings: &[(&str, &Recorder)],
) -> io::Result<IncidentStats> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut out = String::new();
    out.push_str("{\"t\":\"incident\",\"trigger\":");
    write_json_string(&mut out, trigger);
    let _ = write!(out, ",\"at_us\":{}", now_us());
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in context.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(&mut out, k);
        out.push(':');
        write_json_value(&mut out, v);
    }
    out.push_str("}}\n");

    let mut stats = IncidentStats { records: 0, dropped: 0 };
    for (ring_name, ring) in rings {
        let snap = ring.snapshot();
        stats.dropped += snap.dropped;
        for rec in &snap.records {
            out.push_str("{\"t\":\"rec\",\"ring\":");
            write_json_string(&mut out, ring_name);
            let _ = write!(out, ",\"pos\":{},\"at_us\":{},\"kind\":\"{}\",\"label\":",
                rec.pos, rec.t_us, rec.kind.label());
            write_json_string(&mut out, rec.label);
            let _ = write!(out, ",\"a\":{},\"b\":{}}}", rec.a, rec.b);
            out.push('\n');
            stats.records += 1;
        }
    }
    let _ = writeln!(
        out,
        "{{\"t\":\"incident_end\",\"records\":{},\"dropped\":{}}}",
        stats.records, stats.dropped
    );

    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())?;
    file.flush()?;
    counter!("obs.incident_dumps").inc();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_in_order() {
        let r = Recorder::new(16);
        let l = label_id("test.rec_roundtrip");
        r.record(RecKind::Event, l, 1, 10);
        r.record(RecKind::Fault, l, 2, 20);
        let snap = r.snapshot();
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.written, 2);
        assert_eq!(snap.records.len(), 2);
        assert_eq!(snap.records[0].a, 1);
        assert_eq!(snap.records[0].kind, RecKind::Event);
        assert_eq!(snap.records[1].b, 20);
        assert_eq!(snap.records[1].kind, RecKind::Fault);
        assert_eq!(snap.records[0].label, "test.rec_roundtrip");
        assert!(snap.records[0].t_us <= snap.records[1].t_us);
    }

    #[test]
    fn ring_retains_only_last_capacity_records() {
        let r = Recorder::new(8);
        let l = label_id("test.rec_wrap");
        for i in 0..100u64 {
            r.record(RecKind::Note, l, i, 0);
        }
        let snap = r.snapshot();
        assert_eq!(snap.written, 100);
        assert_eq!(snap.records.len(), 8);
        let got: Vec<u64> = snap.records.iter().map(|r| r.a).collect();
        assert_eq!(got, (92..100).collect::<Vec<_>>());
    }

    #[test]
    fn disabled_recorder_writes_nothing() {
        let _guard = crate::testutil::lock();
        let r = Recorder::new(8);
        let l = label_id("test.rec_disabled");
        set_recorder_enabled(false);
        r.record(RecKind::Note, l, 1, 1);
        set_recorder_enabled(true);
        assert_eq!(r.snapshot().written, 0);
    }

    #[test]
    fn clear_restarts_the_sequence() {
        let r = Recorder::new(4);
        let l = label_id("test.rec_clear");
        for i in 0..10u64 {
            r.record(RecKind::Note, l, i, 0);
        }
        r.clear();
        assert_eq!(r.snapshot().written, 0);
        r.record(RecKind::Note, l, 42, 0);
        let snap = r.snapshot();
        assert_eq!(snap.records.len(), 1);
        assert_eq!(snap.records[0].a, 42);
    }

    #[test]
    fn incident_dump_serializes_header_records_trailer() {
        let r = Recorder::new(8);
        let l = label_id("test.rec_dump");
        r.record(RecKind::Fault, l, 6, 3);
        let dir = std::env::temp_dir().join("pmu_obs_recorder_test");
        let path = dir.join("incident-test.jsonl");
        let stats = write_incident_dump(
            &path,
            "unit_test",
            &[("session", Value::U64(0)), ("mode", Value::Str("dark".into()))],
            &[("unit", &r)],
        )
        .unwrap();
        assert_eq!(stats.records, 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"trigger\":\"unit_test\""));
        assert!(lines[0].contains("\"mode\":\"dark\""));
        assert!(lines[1].contains("\"kind\":\"fault\""));
        assert!(lines[1].contains("\"label\":\"test.rec_dump\""));
        assert!(lines[2].contains("\"records\":1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn global_record_macro_lands_in_global_ring() {
        crate::record!(RecKind::Note, "test.rec_global", 5, 6);
        let snap = global().snapshot();
        assert!(snap.records.iter().any(|r| r.label == "test.rec_global" && r.a == 5));
    }
}
