//! Global metrics registry: counters, gauges and fixed-bucket
//! histograms, all updated with relaxed atomics and guarded by a single
//! enabled flag so disabled runs pay one load and a branch per call.
//!
//! Handles are `&'static` — registered entries are leaked once per
//! distinct metric name (bounded by the instrumentation vocabulary) so
//! hot paths never re-lock the registry; cache the handle in a
//! `OnceLock` via the [`counter!`](crate::counter!) /
//! [`gauge!`](crate::gauge!) / [`histogram!`](crate::histogram!)
//! macros.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// `true` when metric updates are being recorded.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Turn metric recording on or off process-wide.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.store(on, Ordering::SeqCst);
}

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    fn new(name: &'static str) -> Self {
        Counter { name, value: AtomicU64::new(0) }
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add one (no-op while metrics are disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` (no-op while metrics are disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if metrics_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    bits: AtomicU64,
}

impl Gauge {
    fn new(name: &'static str) -> Self {
        Gauge { name, bits: AtomicU64::new(0f64.to_bits()) }
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Set the gauge (no-op while metrics are disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if metrics_enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Atomically `current op v` on an `AtomicU64` holding `f64` bits.
fn atomic_f64_update(bits: &AtomicU64, v: f64, op: impl Fn(f64, f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let new = op(f64::from_bits(cur), v).to_bits();
        match bits.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// A fixed-bucket histogram.
///
/// `bounds` are ascending inclusive upper edges; an implicit `+inf`
/// bucket catches everything above the last edge. Also tracks count,
/// sum, min and max for the summary table.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    fn new(name: &'static str, bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name}: bucket bounds must be strictly ascending"
        );
        Histogram {
            name,
            bounds: bounds.to_vec(),
            counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            total: AtomicU64::new(0),
        }
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one observation (no-op while metrics are disabled).
    pub fn observe(&self, v: f64) {
        if !metrics_enabled() {
            return;
        }
        let idx = self.bucket_index(v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, v, |a, b| a + b);
        atomic_f64_update(&self.min_bits, v, f64::min);
        atomic_f64_update(&self.max_bits, v, f64::max);
    }

    /// Index of the bucket `v` falls into (last = overflow).
    pub fn bucket_index(&self, v: f64) -> usize {
        self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len())
    }

    /// Upper bucket edges (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket observation counts (`bounds().len() + 1` entries).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        f64::from_bits(self.min_bits.load(Ordering::Relaxed))
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits.store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits.store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

struct Registry {
    counters: Vec<&'static Counter>,
    gauges: Vec<&'static Gauge>,
    histograms: Vec<&'static Histogram>,
}

static REGISTRY: Mutex<Registry> =
    Mutex::new(Registry { counters: Vec::new(), gauges: Vec::new(), histograms: Vec::new() });

fn registry() -> std::sync::MutexGuard<'static, Registry> {
    match REGISTRY.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Get or register the counter named `name`.
///
/// Each distinct name is registered (and leaked) once; hot call sites
/// should cache the handle via the [`counter!`](crate::counter!) macro.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry();
    if let Some(c) = reg.counters.iter().find(|c| c.name == name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::new(name)));
    reg.counters.push(c);
    c
}

/// Get or register the gauge named `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = registry();
    if let Some(g) = reg.gauges.iter().find(|g| g.name == name) {
        return g;
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge::new(name)));
    reg.gauges.push(g);
    g
}

/// Get or register the histogram named `name` with the given bucket
/// edges. If the name is already registered, the existing histogram is
/// returned and `bounds` is ignored (first registration wins).
pub fn histogram(name: &'static str, bounds: &[f64]) -> &'static Histogram {
    let mut reg = registry();
    if let Some(h) = reg.histograms.iter().find(|h| h.name == name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new(name, bounds)));
    reg.histograms.push(h);
    h
}

/// Cached-handle form of [`counter()`](counter): resolves the registry
/// lookup once per call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Counter> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::counter($name))
    }};
}

/// Cached-handle form of [`gauge()`](gauge).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Gauge> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::gauge($name))
    }};
}

/// Cached-handle form of [`histogram()`](histogram).
#[macro_export]
macro_rules! histogram {
    ($name:expr, $bounds:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Histogram> =
            std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::histogram($name, $bounds))
    }};
}

/// Zero every registered metric (registrations persist). For tests and
/// for perfbench runs that measure several configurations in sequence.
pub fn reset_metrics() {
    let reg = registry();
    for c in &reg.counters {
        c.reset();
    }
    for g in &reg.gauges {
        g.reset();
    }
    for h in &reg.histograms {
        h.reset();
    }
}

/// Format a compact numeric cell for the summary table.
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        "-".to_string()
    } else if v == v.trunc() && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() < 0.001 {
        // Sub-millesimal values (mismatch norms, tolerances) would all
        // round to 0.000; scientific keeps them distinguishable.
        format!("{v:.2e}")
    } else {
        format!("{v:.3}")
    }
}

/// The formatted end-of-run metrics summary table.
///
/// Rows are sorted by metric name so output is deterministic. Metrics
/// with zero activity are omitted; returns a one-line note when nothing
/// was recorded.
pub fn metrics_summary() -> String {
    let reg = registry();
    let mut out = String::new();
    let rule = "=".repeat(72);
    let _ = writeln!(out, "{rule}");
    let _ = writeln!(out, "pmu-obs metrics summary");
    let _ = writeln!(out, "{rule}");

    let mut counters: Vec<_> = reg.counters.iter().filter(|c| c.get() > 0).collect();
    counters.sort_by_key(|c| c.name);
    let mut gauges: Vec<_> = reg.gauges.iter().filter(|g| g.get() != 0.0).collect();
    gauges.sort_by_key(|g| g.name);
    let mut histograms: Vec<_> = reg.histograms.iter().filter(|h| h.count() > 0).collect();
    histograms.sort_by_key(|h| h.name);

    if counters.is_empty() && gauges.is_empty() && histograms.is_empty() {
        let _ = writeln!(out, "(no metrics recorded)");
        return out;
    }

    if !counters.is_empty() {
        let _ = writeln!(out, "counters");
        for c in counters {
            let _ = writeln!(out, "  {:<44} {:>12}", c.name(), c.get());
        }
    }
    if !gauges.is_empty() {
        let _ = writeln!(out, "gauges");
        for g in gauges {
            let _ = writeln!(out, "  {:<44} {:>12}", g.name(), fmt_num(g.get()));
        }
    }
    if !histograms.is_empty() {
        let _ = writeln!(
            out,
            "histograms {:>40} {:>10} {:>10} {:>10}",
            "count", "min", "mean", "max"
        );
        for h in histograms {
            let _ = writeln!(
                out,
                "  {:<44} {:>8} {:>10} {:>10} {:>10}",
                h.name(),
                h.count(),
                fmt_num(h.min()),
                fmt_num(h.mean()),
                fmt_num(h.max())
            );
            let counts = h.bucket_counts();
            let mut parts: Vec<String> = Vec::new();
            for (i, &n) in counts.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let label = if i < h.bounds().len() {
                    format!("<={}", fmt_num(h.bounds()[i]))
                } else {
                    "+inf".to_string()
                };
                parts.push(format!("{label}:{n}"));
            }
            if !parts.is_empty() {
                let _ = writeln!(out, "      buckets  {}", parts.join("  "));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Metrics state is process-global and shared across tests in this
    // binary; each test uses uniquely named metrics and toggles the
    // enabled flag around its own assertions.

    #[test]
    fn histogram_bucketing_edges_and_overflow() {
        let _guard = crate::testutil::lock();
        let h = histogram("test.hist_edges", &[1.0, 2.0, 4.0]);
        // Inclusive upper edges.
        assert_eq!(h.bucket_index(0.5), 0);
        assert_eq!(h.bucket_index(1.0), 0);
        assert_eq!(h.bucket_index(1.0000001), 1);
        assert_eq!(h.bucket_index(2.0), 1);
        assert_eq!(h.bucket_index(3.0), 2);
        assert_eq!(h.bucket_index(4.0), 2);
        assert_eq!(h.bucket_index(100.0), 3); // overflow bucket

        set_metrics_enabled(true);
        for v in [0.5, 1.0, 2.0, 3.0, 9.0, 9.0] {
            h.observe(v);
        }
        set_metrics_enabled(false);
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 2]);
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 24.5).abs() < 1e-12);
        assert!((h.mean() - 24.5 / 6.0).abs() < 1e-12);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 9.0);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let _guard = crate::testutil::lock();
        set_metrics_enabled(false);
        let c = counter("test.disabled_counter");
        let h = histogram("test.disabled_hist", &[1.0]);
        let g = gauge("test.disabled_gauge");
        c.inc();
        c.add(10);
        h.observe(0.5);
        g.set(3.0);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn registration_is_idempotent() {
        let a = counter("test.idem");
        let b = counter("test.idem");
        assert!(std::ptr::eq(a, b));
        let h1 = histogram("test.idem_h", &[1.0, 2.0]);
        let h2 = histogram("test.idem_h", &[9.0]); // bounds ignored on re-get
        assert!(std::ptr::eq(h1, h2));
        assert_eq!(h2.bounds(), &[1.0, 2.0]);
    }

    #[test]
    fn macros_cache_handles() {
        let a = counter!("test.macro_counter");
        let b = counter!("test.macro_counter");
        assert!(std::ptr::eq(a, b));
        let h = histogram!("test.macro_hist", &[1.0, 10.0]);
        assert_eq!(h.bounds().len(), 2);
        let g = gauge!("test.macro_gauge");
        assert_eq!(g.name(), "test.macro_gauge");
    }

    #[test]
    fn summary_contains_active_metrics_only() {
        let _guard = crate::testutil::lock();
        set_metrics_enabled(true);
        counter("test.summary_active").add(3);
        let _ = counter("test.summary_inactive");
        gauge("test.summary_gauge").set(2.5);
        let h = histogram("test.summary_hist", &[10.0, 20.0]);
        h.observe(5.0);
        h.observe(15.0);
        set_metrics_enabled(false);

        let s = metrics_summary();
        assert!(s.contains("test.summary_active"));
        assert!(s.contains("3"));
        assert!(!s.contains("test.summary_inactive"));
        assert!(s.contains("test.summary_gauge"));
        assert!(s.contains("2.5"));
        assert!(s.contains("test.summary_hist"));
        assert!(s.contains("<=10:1"));
        assert!(s.contains("<=20:1"));

        // Reset zeroes values but keeps registrations.
        reset_metrics();
        assert_eq!(counter("test.summary_active").get(), 0);
        assert_eq!(histogram("test.summary_hist", &[]).count(), 0);
    }

    #[test]
    fn concurrent_updates_are_accounted() {
        let _guard = crate::testutil::lock();
        set_metrics_enabled(true);
        let c = counter("test.concurrent");
        let h = histogram("test.concurrent_h", &[100.0]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i as f64 % 7.0);
                    }
                });
            }
        });
        set_metrics_enabled(false);
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn bad_bounds_panic() {
        let _ = histogram("test.bad_bounds", &[2.0, 1.0]);
    }
}
