//! Global metrics registry: counters, gauges and log-linear
//! (HDR-style) quantile histograms, all updated with relaxed atomics
//! and guarded by a single enabled flag so disabled runs pay one load
//! and a branch per call.
//!
//! Handles are `&'static` — registered entries are **leaked by design**
//! (one `Box::leak` per distinct metric name, bounded by the
//! instrumentation vocabulary) so hot paths never re-lock the registry;
//! cache the handle in a `OnceLock` via the [`counter!`](crate::counter!)
//! / [`gauge!`](crate::gauge!) / [`histogram!`](crate::histogram!)
//! macros. Re-registering a name returns the first entry; registering a
//! histogram name under a *different* [`HistogramSpec`] trips a debug
//! assertion (first registration wins in release builds).
//!
//! ## Histogram layout
//!
//! Buckets are log-linear: each power of two (octave) between
//! `2^min_exp` and `2^(max_exp+1)` is split into `2^subbucket_bits`
//! linear sub-buckets keyed directly off the `f64` exponent and top
//! mantissa bits, plus one underflow and one overflow bucket. With the
//! default 16 sub-buckets per octave, any quantile estimate is within
//! 1/16 ≈ 6.25% of the true value — accurate enough for p50/p90/p99/
//! p999 latency tracking without per-call-site bucket tuning.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// `true` when metric updates are being recorded.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Turn metric recording on or off process-wide.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.store(on, Ordering::SeqCst);
}

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    fn new(name: &'static str) -> Self {
        Counter { name, value: AtomicU64::new(0) }
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add one (no-op while metrics are disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` (no-op while metrics are disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if metrics_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    bits: AtomicU64,
}

impl Gauge {
    fn new(name: &'static str) -> Self {
        Gauge { name, bits: AtomicU64::new(0f64.to_bits()) }
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Set the gauge (no-op while metrics are disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if metrics_enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Atomically `current op v` on an `AtomicU64` holding `f64` bits.
fn atomic_f64_update(bits: &AtomicU64, v: f64, op: impl Fn(f64, f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let new = op(f64::from_bits(cur), v).to_bits();
        match bits.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Log-linear bucket layout of a [`Histogram`].
///
/// Values in `[2^min_exp, 2^(max_exp+1))` land in one of
/// `2^subbucket_bits` linear sub-buckets per octave; anything below
/// (including zero and negatives) lands in the underflow bucket and
/// anything at or above in the overflow bucket. The default covers
/// `[2^-14, 2^40)` ≈ `[6.1e-5, 1.1e12)` at ≤ 6.25% relative error —
/// wide enough for sub-microsecond timings through multi-hour counts
/// with one shared layout, so call sites never pick bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSpec {
    /// log2 of the linear sub-buckets per octave (4 → 16 sub-buckets,
    /// ≤ 1/16 relative quantile error). Must be in `1..=8`.
    pub subbucket_bits: u32,
    /// Lowest tracked octave: values below `2^min_exp` underflow.
    /// Must be ≥ -1022 so tracked values are never subnormal.
    pub min_exp: i32,
    /// Highest tracked octave: values ≥ `2^(max_exp+1)` overflow.
    pub max_exp: i32,
}

impl Default for HistogramSpec {
    fn default() -> Self {
        HistogramSpec { subbucket_bits: 4, min_exp: -14, max_exp: 39 }
    }
}

impl HistogramSpec {
    fn validate(&self, name: &str) {
        assert!(
            (1..=8).contains(&self.subbucket_bits),
            "histogram {name}: subbucket_bits must be in 1..=8"
        );
        assert!(
            self.min_exp >= -1022 && self.min_exp <= self.max_exp,
            "histogram {name}: need -1022 <= min_exp <= max_exp"
        );
    }

    /// Linear sub-buckets per octave.
    pub fn subbuckets(&self) -> usize {
        1 << self.subbucket_bits
    }

    /// Tracked octaves (powers of two) between underflow and overflow.
    pub fn octaves(&self) -> usize {
        (self.max_exp - self.min_exp + 1) as usize
    }

    /// Total bucket count including underflow and overflow.
    pub fn num_buckets(&self) -> usize {
        self.octaves() * self.subbuckets() + 2
    }
}

/// A log-linear quantile histogram (HDR-style).
///
/// Tracks per-bucket counts plus exact count, sum, min and max.
/// Quantile estimates ([`quantile`](Histogram::quantile)) are bucket
/// upper edges clamped into `[min, max]`, so relative error is bounded
/// by the sub-bucket width (6.25% at the default layout). NaN
/// observations are dropped.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    spec: HistogramSpec,
    /// `2^min_exp`, cached for the underflow test on the hot path.
    min_value: f64,
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    fn new(name: &'static str, spec: HistogramSpec) -> Self {
        spec.validate(name);
        Histogram {
            name,
            spec,
            min_value: (2.0f64).powi(spec.min_exp),
            counts: (0..spec.num_buckets()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            total: AtomicU64::new(0),
        }
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The bucket layout this histogram was registered with.
    pub fn spec(&self) -> HistogramSpec {
        self.spec
    }

    /// Record one observation (no-op while metrics are disabled).
    #[inline]
    pub fn observe(&self, v: f64) {
        self.observe_n(v, 1);
    }

    /// Record `n` observations of the same value `v` in one update —
    /// the count-weighted form batch paths use so per-sample quantiles
    /// stay honest without `n` separate CAS loops. No-op while metrics
    /// are disabled, when `n == 0`, or when `v` is NaN.
    pub fn observe_n(&self, v: f64, n: u64) {
        if !metrics_enabled() || n == 0 || v.is_nan() {
            return;
        }
        let idx = self.bucket_index(v);
        self.counts[idx].fetch_add(n, Ordering::Relaxed);
        self.total.fetch_add(n, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, v * n as f64, |a, b| a + b);
        atomic_f64_update(&self.min_bits, v, f64::min);
        atomic_f64_update(&self.max_bits, v, f64::max);
    }

    /// Index of the bucket `v` falls into (0 = underflow, last =
    /// overflow), computed from the `f64` exponent and top mantissa
    /// bits — no search.
    pub fn bucket_index(&self, v: f64) -> usize {
        if v.is_nan() || v < self.min_value {
            return 0;
        }
        if v.is_infinite() {
            return self.counts.len() - 1;
        }
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if exp > self.spec.max_exp {
            return self.counts.len() - 1;
        }
        let sb_bits = self.spec.subbucket_bits;
        let sub = ((bits >> (52 - sb_bits)) & ((1u64 << sb_bits) - 1)) as usize;
        1 + (exp - self.spec.min_exp) as usize * self.spec.subbuckets() + sub
    }

    /// Inclusive upper edge of bucket `idx` (`+inf` for the overflow
    /// bucket; the underflow bucket's edge is `2^min_exp`).
    pub fn bucket_upper(&self, idx: usize) -> f64 {
        if idx == 0 {
            return self.min_value;
        }
        if idx >= self.counts.len() - 1 {
            return f64::INFINITY;
        }
        let i = idx - 1;
        let sb = self.spec.subbuckets();
        let octave = (i / sb) as i32 + self.spec.min_exp;
        let sub = (i % sb) as f64;
        (2.0f64).powi(octave) * (1.0 + (sub + 1.0) / sb as f64)
    }

    /// Buckets with at least one observation, as `(upper_edge, count)`.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then(|| (self.bucket_upper(i), n))
            })
            .collect()
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`). Returns the upper
    /// edge of the bucket holding the target rank, clamped into
    /// `[min, max]`; NaN when the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return f64::NAN;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum >= target {
                return self.bucket_upper(i).clamp(self.min(), self.max());
            }
        }
        // Concurrent updates can leave `total` ahead of the bucket sum.
        self.max()
    }

    /// Fold another histogram's observations into this one. Both must
    /// share the same [`HistogramSpec`] (debug-asserted; mismatched
    /// merges in release builds fold what aligns).
    pub fn merge_from(&self, other: &Histogram) {
        debug_assert_eq!(
            self.spec, other.spec,
            "histogram {}: merge_from({}) with mismatched layout",
            self.name, other.name
        );
        for (dst, src) in self.counts.iter().zip(&other.counts) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        let n = other.total.load(Ordering::Relaxed);
        if n == 0 {
            return;
        }
        self.total.fetch_add(n, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, other.sum(), |a, b| a + b);
        atomic_f64_update(&self.min_bits, other.min(), f64::min);
        atomic_f64_update(&self.max_bits, other.max(), f64::max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        f64::from_bits(self.min_bits.load(Ordering::Relaxed))
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        // Min/max reset to their empty sentinels too, so a summary
        // after reset never reports stale extremes.
        self.min_bits.store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits.store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

struct Registry {
    counters: Vec<&'static Counter>,
    gauges: Vec<&'static Gauge>,
    histograms: Vec<&'static Histogram>,
}

static REGISTRY: Mutex<Registry> =
    Mutex::new(Registry { counters: Vec::new(), gauges: Vec::new(), histograms: Vec::new() });

fn registry() -> std::sync::MutexGuard<'static, Registry> {
    match REGISTRY.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Get or register the counter named `name`.
///
/// Each distinct name is registered (and intentionally leaked via
/// `Box::leak`) once; hot call sites should cache the handle via the
/// [`counter!`](crate::counter!) macro.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry();
    if let Some(c) = reg.counters.iter().find(|c| c.name == name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::new(name)));
    reg.counters.push(c);
    c
}

/// Get or register the gauge named `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = registry();
    if let Some(g) = reg.gauges.iter().find(|g| g.name == name) {
        return g;
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge::new(name)));
    reg.gauges.push(g);
    g
}

/// Get or register the histogram named `name` with the default
/// log-linear layout. On re-get the existing histogram is returned
/// whatever its layout.
pub fn histogram(name: &'static str) -> &'static Histogram {
    get_or_register_histogram(name, HistogramSpec::default(), false)
}

/// Get or register the histogram named `name` with an explicit layout.
/// First registration wins; a re-registration under a *different* spec
/// trips a debug assertion (and is ignored in release builds).
pub fn histogram_with(name: &'static str, spec: HistogramSpec) -> &'static Histogram {
    get_or_register_histogram(name, spec, true)
}

fn get_or_register_histogram(
    name: &'static str,
    spec: HistogramSpec,
    check_spec: bool,
) -> &'static Histogram {
    let mut reg = registry();
    if let Some(h) = reg.histograms.iter().find(|h| h.name == name) {
        if check_spec {
            debug_assert_eq!(
                h.spec, spec,
                "histogram {name}: re-registered with a mismatched layout \
                 (first registration wins)"
            );
        }
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new(name, spec)));
    reg.histograms.push(h);
    h
}

/// Run `f` over every registered metric, in registration order. For
/// renderers (summary table, Prometheus exposition) that need a
/// consistent snapshot of the registry.
pub(crate) fn with_registry<R>(
    f: impl FnOnce(&[&'static Counter], &[&'static Gauge], &[&'static Histogram]) -> R,
) -> R {
    let reg = registry();
    f(&reg.counters, &reg.gauges, &reg.histograms)
}

/// Cached-handle form of [`counter()`](counter): resolves the registry
/// lookup once per call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Counter> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::counter($name))
    }};
}

/// Cached-handle form of [`gauge()`](gauge).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Gauge> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::gauge($name))
    }};
}

/// Cached-handle form of [`histogram()`](histogram) /
/// [`histogram_with()`](histogram_with). The one-argument form uses the
/// default log-linear layout; pass a [`HistogramSpec`] to override.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Histogram> =
            std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::histogram($name))
    }};
    ($name:expr, $spec:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Histogram> =
            std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::histogram_with($name, $spec))
    }};
}

/// Zero every registered metric (registrations persist — they are
/// leaked by design). Histograms drop their min/max watermarks back to
/// the empty sentinels as well. For tests and for perfbench runs that
/// measure several configurations in sequence.
pub fn reset_metrics() {
    let reg = registry();
    for c in &reg.counters {
        c.reset();
    }
    for g in &reg.gauges {
        g.reset();
    }
    for h in &reg.histograms {
        h.reset();
    }
}

/// Format a compact numeric cell for the summary table.
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        "-".to_string()
    } else if v == v.trunc() && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() < 0.001 {
        // Sub-millesimal values (mismatch norms, tolerances) would all
        // round to 0.000; scientific keeps them distinguishable.
        format!("{v:.2e}")
    } else {
        format!("{v:.3}")
    }
}

/// The formatted end-of-run metrics summary table.
///
/// Rows are sorted by metric name so output is deterministic.
/// Histogram rows carry the p50/p90/p99 quantile estimates next to the
/// exact min/mean/max. Metrics with zero activity are omitted; returns
/// a one-line note when nothing was recorded.
pub fn metrics_summary() -> String {
    let reg = registry();
    let mut out = String::new();
    let rule = "=".repeat(100);
    let _ = writeln!(out, "{rule}");
    let _ = writeln!(out, "pmu-obs metrics summary");
    let _ = writeln!(out, "{rule}");

    let mut counters: Vec<_> = reg.counters.iter().filter(|c| c.get() > 0).collect();
    counters.sort_by_key(|c| c.name);
    let mut gauges: Vec<_> = reg.gauges.iter().filter(|g| g.get() != 0.0).collect();
    gauges.sort_by_key(|g| g.name);
    let mut histograms: Vec<_> = reg.histograms.iter().filter(|h| h.count() > 0).collect();
    histograms.sort_by_key(|h| h.name);

    if counters.is_empty() && gauges.is_empty() && histograms.is_empty() {
        let _ = writeln!(out, "(no metrics recorded)");
        return out;
    }

    if !counters.is_empty() {
        let _ = writeln!(out, "counters");
        for c in counters {
            let _ = writeln!(out, "  {:<44} {:>12}", c.name(), c.get());
        }
    }
    if !gauges.is_empty() {
        let _ = writeln!(out, "gauges");
        for g in gauges {
            let _ = writeln!(out, "  {:<44} {:>12}", g.name(), fmt_num(g.get()));
        }
    }
    if !histograms.is_empty() {
        let _ = writeln!(
            out,
            "histograms {:>33} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "count", "min", "mean", "p50", "p90", "p99", "max"
        );
        for h in histograms {
            let _ = writeln!(
                out,
                "  {:<42} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                h.name(),
                h.count(),
                fmt_num(h.min()),
                fmt_num(h.mean()),
                fmt_num(h.quantile(0.50)),
                fmt_num(h.quantile(0.90)),
                fmt_num(h.quantile(0.99)),
                fmt_num(h.max())
            );
        }
    }
    out
}

/// Sanitize a metric name into the Prometheus identifier charset
/// (`[a-zA-Z0-9_:]`, non-digit first character).
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

fn prometheus_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

/// Render every registered metric in the Prometheus text exposition
/// format (version 0.0.4). Counters and gauges become single samples;
/// histograms are rendered as summaries with `quantile` labels
/// (p50/p90/p99/p999) plus `_sum`, `_count`, `_min` and `_max` series.
/// Output is sorted by metric name so scrapes are diffable.
pub fn prometheus_text() -> String {
    with_registry(|counters, gauges, histograms| {
        let mut out = String::new();
        let mut counters: Vec<_> = counters.to_vec();
        counters.sort_by_key(|c| c.name());
        for c in counters {
            let n = prometheus_name(c.name());
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {}", c.get());
        }
        let mut gauges: Vec<_> = gauges.to_vec();
        gauges.sort_by_key(|g| g.name());
        for g in gauges {
            let n = prometheus_name(g.name());
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", prometheus_f64(g.get()));
        }
        let mut histograms: Vec<_> = histograms.to_vec();
        histograms.sort_by_key(|h| h.name());
        for h in histograms {
            let n = prometheus_name(h.name());
            let _ = writeln!(out, "# TYPE {n} summary");
            for (label, q) in
                [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99), ("0.999", 0.999)]
            {
                let _ = writeln!(
                    out,
                    "{n}{{quantile=\"{label}\"}} {}",
                    prometheus_f64(h.quantile(q))
                );
            }
            let _ = writeln!(out, "{n}_sum {}", prometheus_f64(h.sum()));
            let _ = writeln!(out, "{n}_count {}", h.count());
            let _ = writeln!(out, "{n}_min {}", prometheus_f64(h.min()));
            let _ = writeln!(out, "{n}_max {}", prometheus_f64(h.max()));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Metrics state is process-global and shared across tests in this
    // binary; each test uses uniquely named metrics and toggles the
    // enabled flag around its own assertions.

    #[test]
    fn bucket_index_is_monotone_and_edges_hold() {
        let h = histogram("test.hist_layout");
        // Underflow catches zero, negatives and tiny values.
        assert_eq!(h.bucket_index(0.0), 0);
        assert_eq!(h.bucket_index(-5.0), 0);
        assert_eq!(h.bucket_index(1e-9), 0);
        // Overflow catches huge and infinite values.
        assert_eq!(h.bucket_index(1e18), h.spec().num_buckets() - 1);
        assert_eq!(h.bucket_index(f64::INFINITY), h.spec().num_buckets() - 1);
        // Monotone: a larger value never maps to an earlier bucket.
        let mut prev = 0usize;
        let mut v = 1e-4;
        while v < 1e12 {
            let idx = h.bucket_index(v);
            assert!(idx >= prev, "bucket_index not monotone at {v}");
            prev = idx;
            v *= 1.37;
        }
        // Every value is at or below its bucket's upper edge, and the
        // edge is within one sub-bucket width (6.25%) of the value.
        for v in [1.0, 3.5, 17.0, 999.0, 1.25e6] {
            let idx = h.bucket_index(v);
            let upper = h.bucket_upper(idx);
            assert!(v <= upper, "{v} above its bucket edge {upper}");
            assert!(upper <= v * (1.0 + 1.0 / 16.0) + 1e-12, "{v} edge {upper} too loose");
        }
    }

    #[test]
    fn quantiles_are_within_layout_error() {
        let _guard = crate::testutil::lock();
        let h = histogram("test.hist_quantiles");
        assert!(h.quantile(0.5).is_nan(), "empty histogram must report NaN quantiles");
        set_metrics_enabled(true);
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        set_metrics_enabled(false);
        for (q, truth) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0), (0.999, 999.0)] {
            let est = h.quantile(q);
            let rel = (est - truth).abs() / truth;
            assert!(rel <= 1.0 / 16.0 + 1e-9, "q={q}: est {est} vs {truth} (rel {rel})");
        }
        // Quantile estimates are clamped into the observed range.
        assert!(h.quantile(0.0) >= 1.0);
        assert!(h.quantile(1.0) <= 1000.0);
        assert_eq!(h.count(), 1000);
        assert!((h.sum() - 500_500.0).abs() < 1e-6);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 1000.0);
        h.reset();
    }

    #[test]
    fn observe_n_weights_counts_and_sum() {
        let _guard = crate::testutil::lock();
        let h = histogram("test.hist_weighted");
        set_metrics_enabled(true);
        h.observe_n(10.0, 99);
        h.observe_n(1000.0, 1);
        h.observe_n(5.0, 0); // no-op
        h.observe_n(f64::NAN, 7); // dropped
        set_metrics_enabled(false);
        assert_eq!(h.count(), 100);
        assert!((h.sum() - (990.0 + 1000.0)).abs() < 1e-9);
        // With 99 of 100 observations at 10, p50/p90 sit at 10 and p99+
        // must see the tail value.
        assert!(h.quantile(0.5) <= 10.0 * (1.0 + 1.0 / 16.0));
        assert!(h.quantile(0.995) >= 999.0);
        h.reset();
    }

    #[test]
    fn merge_folds_counts_and_extremes() {
        let _guard = crate::testutil::lock();
        let a = histogram("test.hist_merge_a");
        let b = histogram("test.hist_merge_b");
        set_metrics_enabled(true);
        for i in 1..=100 {
            a.observe(i as f64);
            b.observe((i + 900) as f64);
        }
        set_metrics_enabled(false);
        a.merge_from(b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 1000.0);
        let p99 = a.quantile(0.99);
        assert!((p99 - 996.0).abs() / 996.0 <= 1.0 / 16.0 + 1e-9, "merged p99 {p99}");
        a.reset();
        b.reset();
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let _guard = crate::testutil::lock();
        set_metrics_enabled(false);
        let c = counter("test.disabled_counter");
        let h = histogram("test.disabled_hist");
        let g = gauge("test.disabled_gauge");
        c.inc();
        c.add(10);
        h.observe(0.5);
        g.set(3.0);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn registration_is_idempotent() {
        let a = counter("test.idem");
        let b = counter("test.idem");
        assert!(std::ptr::eq(a, b));
        let h1 = histogram("test.idem_h");
        let h2 = histogram("test.idem_h");
        assert!(std::ptr::eq(h1, h2));
        let spec = HistogramSpec { subbucket_bits: 2, min_exp: 0, max_exp: 10 };
        let h3 = histogram_with("test.idem_h_spec", spec);
        let h4 = histogram_with("test.idem_h_spec", spec); // same spec: fine
        assert!(std::ptr::eq(h3, h4));
        assert_eq!(h3.spec(), spec);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "mismatched layout")]
    fn mismatched_respec_trips_debug_assertion() {
        let _ = histogram_with(
            "test.respec",
            HistogramSpec { subbucket_bits: 2, min_exp: 0, max_exp: 10 },
        );
        let _ = histogram_with(
            "test.respec",
            HistogramSpec { subbucket_bits: 3, min_exp: 0, max_exp: 10 },
        );
    }

    #[test]
    fn macros_cache_handles() {
        let a = counter!("test.macro_counter");
        let b = counter!("test.macro_counter");
        assert!(std::ptr::eq(a, b));
        let h = histogram!("test.macro_hist");
        assert_eq!(h.name(), "test.macro_hist");
        let h2 = histogram!(
            "test.macro_hist_spec",
            HistogramSpec { subbucket_bits: 5, min_exp: -4, max_exp: 20 }
        );
        assert_eq!(h2.spec().subbucket_bits, 5);
        let g = gauge!("test.macro_gauge");
        assert_eq!(g.name(), "test.macro_gauge");
    }

    #[test]
    fn summary_contains_active_metrics_only() {
        let _guard = crate::testutil::lock();
        set_metrics_enabled(true);
        counter("test.summary_active").add(3);
        let _ = counter("test.summary_inactive");
        gauge("test.summary_gauge").set(2.5);
        let h = histogram("test.summary_hist");
        h.observe(5.0);
        h.observe(15.0);
        set_metrics_enabled(false);

        let s = metrics_summary();
        assert!(s.contains("test.summary_active"));
        assert!(s.contains("3"));
        assert!(!s.contains("test.summary_inactive"));
        assert!(s.contains("test.summary_gauge"));
        assert!(s.contains("2.5"));
        assert!(s.contains("test.summary_hist"));
        assert!(s.contains("p99"));

        // Reset zeroes values AND histogram min/max watermarks, but
        // keeps registrations.
        reset_metrics();
        assert_eq!(counter("test.summary_active").get(), 0);
        assert_eq!(histogram("test.summary_hist").count(), 0);
        assert_eq!(histogram("test.summary_hist").min(), f64::INFINITY);
        assert_eq!(histogram("test.summary_hist").max(), f64::NEG_INFINITY);
    }

    #[test]
    fn prometheus_text_renders_quantiles() {
        let _guard = crate::testutil::lock();
        set_metrics_enabled(true);
        counter("test.prom_counter").add(7);
        gauge("test.prom_gauge").set(1.5);
        let h = histogram("test.prom.hist_us");
        for i in 1..=100 {
            h.observe(i as f64);
        }
        set_metrics_enabled(false);

        let text = prometheus_text();
        assert!(text.contains("# TYPE test_prom_counter counter"));
        assert!(text.contains("test_prom_counter 7"));
        assert!(text.contains("# TYPE test_prom_gauge gauge"));
        assert!(text.contains("test_prom_gauge 1.5"));
        assert!(text.contains("# TYPE test_prom_hist_us summary"));
        assert!(text.contains("test_prom_hist_us{quantile=\"0.99\"}"));
        assert!(text.contains("test_prom_hist_us_count 100"));
        // The exposition and the summary table must agree on the p99.
        let line = text
            .lines()
            .find(|l| l.starts_with("test_prom_hist_us{quantile=\"0.99\"}"))
            .unwrap();
        let exposed: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
        assert_eq!(exposed, h.quantile(0.99));
        reset_metrics();
    }

    #[test]
    fn concurrent_updates_are_accounted() {
        let _guard = crate::testutil::lock();
        set_metrics_enabled(true);
        let c = counter("test.concurrent");
        let h = histogram("test.concurrent_h");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i as f64 % 7.0);
                    }
                });
            }
        });
        set_metrics_enabled(false);
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        c.reset();
        h.reset();
    }

    #[test]
    #[should_panic(expected = "subbucket_bits")]
    fn bad_spec_panics() {
        let _ = histogram_with(
            "test.bad_spec",
            HistogramSpec { subbucket_bits: 0, min_exp: 0, max_exp: 1 },
        );
    }
}
