//! Typed event records for domain signals.
//!
//! Each type documents one line of the JSONL schema and knows how to
//! emit itself: the trace record (when a sink is installed) *and* its
//! companion metrics (when metrics are enabled), so call sites stay a
//! single `Event { .. }.emit()` line and the schema has one home.
//!
//! | type | trace name | companion metrics |
//! |---|---|---|
//! | [`NrSolve`] | `flow.nr_solve` | `flow.nr_solves`, `flow.nr_diverged`, `flow.nr_iterations`, `flow.nr_mismatch` |
//! | [`QLimitPin`] | `flow.q_limit_pin` | `flow.q_limit_pins` |
//! | [`SvdComputed`] | — (span `numerics.svd` for large inputs) | `numerics.svd_calls`, `numerics.svd_sweeps` |
//! | [`EigenComputed`] | — | `numerics.eigen_calls`, `numerics.eigen_sweeps` |
//! | [`WorkerStats`] | `par.worker` | `par.tasks`, `par.worker_busy_us`, `par.worker_idle_us` |
//! | [`StreamRaised`] | `detect.stream_raised` | `detect.stream_raised` |
//! | [`StreamRelocalized`] | `detect.stream_relocalized` | `detect.stream_relocalized` |
//! | [`StreamCleared`] | `detect.stream_cleared` | `detect.stream_cleared` |
//! | [`SampleRejected`] | `serve.sample_rejected` | `serve.samples_rejected`, `serve.rejected_<reason>` |
//! | [`FeedModeChanged`] | `serve.feed_mode` | `serve.mode_transitions`, `serve.feeds_degraded`, `serve.feeds_dark`, `serve.feeds_recovered` |
//! | [`BundleSaved`] | `model.bundle_saved` | `model.bundle_saved`, `model.bundle_save_ms`, `model.bundle_bytes` |
//! | [`BundleLoaded`] | `model.bundle_loaded` | `model.bundle_loaded`, `model.bundle_load_ms` |

use crate::recorder::RecKind;
use crate::trace::{event, Value};
use crate::{counter, histogram, record};

/// One Newton–Raphson AC power-flow solve completed (or gave up).
#[derive(Debug, Clone)]
pub struct NrSolve {
    /// Bus count of the solved network.
    pub buses: usize,
    /// Newton iterations used (the budget, when diverged).
    pub iterations: usize,
    /// Final infinity-norm power mismatch (p.u.).
    pub mismatch: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

impl NrSolve {
    /// Record the trace event and companion metrics.
    pub fn emit(&self) {
        counter!("flow.nr_solves").inc();
        if !self.converged {
            counter!("flow.nr_diverged").inc();
        }
        histogram!("flow.nr_iterations").observe(self.iterations as f64);
        histogram!("flow.nr_mismatch").observe(self.mismatch);
        event(
            "flow.nr_solve",
            &[
                ("buses", self.buses.into()),
                ("iterations", self.iterations.into()),
                ("mismatch", self.mismatch.into()),
                ("converged", self.converged.into()),
            ],
        );
    }
}

/// A PV bus was pinned at a violated reactive limit and demoted to PQ
/// (MATPOWER-style `ENFORCE_Q_LIMS` outer round).
#[derive(Debug, Clone)]
pub struct QLimitPin {
    /// Internal bus index that was demoted.
    pub bus: usize,
    /// The aggregate limit (MVAr) the bus generators were pinned at.
    pub q_mvar: f64,
}

impl QLimitPin {
    /// Record the trace event and companion metrics.
    pub fn emit(&self) {
        counter!("flow.q_limit_pins").inc();
        event(
            "flow.q_limit_pin",
            &[("bus", self.bus.into()), ("q_mvar", self.q_mvar.into())],
        );
    }
}

/// One Jacobi SVD completed. High call volume — metrics only (the
/// caller opens a `numerics.svd` span for large inputs).
#[derive(Debug, Clone)]
pub struct SvdComputed {
    /// Input rows.
    pub rows: usize,
    /// Input columns.
    pub cols: usize,
    /// Jacobi sweeps used.
    pub sweeps: usize,
}

impl SvdComputed {
    /// Record companion metrics.
    pub fn emit(&self) {
        counter!("numerics.svd_calls").inc();
        histogram!("numerics.svd_sweeps").observe(self.sweeps as f64);
        histogram!("numerics.svd_elems").observe((self.rows * self.cols) as f64);
    }
}

/// One symmetric Jacobi eigendecomposition completed. Metrics only.
#[derive(Debug, Clone)]
pub struct EigenComputed {
    /// Matrix dimension.
    pub n: usize,
    /// Jacobi sweeps used.
    pub sweeps: usize,
}

impl EigenComputed {
    /// Record companion metrics.
    pub fn emit(&self) {
        counter!("numerics.eigen_calls").inc();
        histogram!("numerics.eigen_sweeps").observe(self.sweeps as f64);
    }
}

/// Per-worker accounting of one `par_map` fan-out: how many items the
/// worker pulled and how its wall time split into busy vs. idle.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Worker index within this fan-out (0-based).
    pub worker: usize,
    /// Items this worker executed.
    pub tasks: usize,
    /// Time spent inside the mapped closure (µs).
    pub busy_us: u64,
    /// Wall time minus busy time: startup, scheduling, tail wait (µs).
    pub idle_us: u64,
}

impl WorkerStats {
    /// Record the trace event and companion metrics.
    pub fn emit(&self) {
        counter!("par.tasks").add(self.tasks as u64);
        histogram!("par.worker_busy_us").observe(self.busy_us as f64);
        histogram!("par.worker_idle_us").observe(self.idle_us as f64);
        event(
            "par.worker",
            &[
                ("worker", self.worker.into()),
                ("tasks", self.tasks.into()),
                ("busy_us", self.busy_us.into()),
                ("idle_us", self.idle_us.into()),
            ],
        );
    }
}

/// The streaming detector confirmed an outage event.
#[derive(Debug, Clone)]
pub struct StreamRaised {
    /// Majority-voted outaged lines.
    pub lines: Vec<usize>,
    /// Samples processed when the event fired.
    pub samples_seen: usize,
}

impl StreamRaised {
    /// Record the trace event, companion metrics and a flight-recorder
    /// record (`a` = samples seen, `b` = outaged-line count).
    pub fn emit(&self) {
        counter!("detect.stream_raised").inc();
        record!(RecKind::Event, "detect.stream_raised", self.samples_seen, self.lines.len());
        event(
            "detect.stream_raised",
            &[
                ("lines", Value::from(&self.lines[..])),
                ("samples_seen", self.samples_seen.into()),
            ],
        );
    }
}

/// The streaming detector refreshed the localization of its active event
/// (the event stays raised; only the majority line set changed).
#[derive(Debug, Clone)]
pub struct StreamRelocalized {
    /// The refreshed majority-voted line set.
    pub lines: Vec<usize>,
    /// Samples processed when the localization shifted.
    pub samples_seen: usize,
}

impl StreamRelocalized {
    /// Record the trace event, companion metrics and a flight-recorder
    /// record (`a` = samples seen, `b` = outaged-line count).
    pub fn emit(&self) {
        counter!("detect.stream_relocalized").inc();
        record!(
            RecKind::Event,
            "detect.stream_relocalized",
            self.samples_seen,
            self.lines.len()
        );
        event(
            "detect.stream_relocalized",
            &[
                ("lines", Value::from(&self.lines[..])),
                ("samples_seen", self.samples_seen.into()),
            ],
        );
    }
}

/// The serving ingestion guard rejected an inbound sample before it could
/// reach the detector (non-finite values, wrong length, mask skew).
#[derive(Debug, Clone)]
pub struct SampleRejected {
    /// Short machine-stable reason tag (`"non_finite"`, `"wrong_length"`,
    /// `"mask_mismatch"`), doubling as the per-reason counter suffix.
    pub reason: &'static str,
}

impl SampleRejected {
    /// Record the trace event, companion metrics and a flight-recorder
    /// record (`a` = reason code: 0 non_finite, 1 wrong_length, 2 other).
    pub fn emit(&self) {
        counter!("serve.samples_rejected").inc();
        let code = match self.reason {
            "non_finite" => {
                counter!("serve.rejected_non_finite").inc();
                0u64
            }
            "wrong_length" => {
                counter!("serve.rejected_wrong_length").inc();
                1
            }
            _ => {
                counter!("serve.rejected_other").inc();
                2
            }
        };
        record!(RecKind::Event, "serve.sample_rejected", code, 0);
        event("serve.sample_rejected", &[("reason", Value::from(self.reason))]);
    }
}

/// A serving session's degraded-mode state machine transitioned.
#[derive(Debug, Clone)]
pub struct FeedModeChanged {
    /// Session slot the feed lives in.
    pub session: usize,
    /// Mode label left (`"healthy"` / `"degraded"` / `"dark"`).
    pub from: &'static str,
    /// Mode label entered.
    pub to: &'static str,
    /// What drove the transition (e.g. `"missing_ratio"`).
    pub reason: &'static str,
}

impl FeedModeChanged {
    /// Record the trace event, companion metrics and a flight-recorder
    /// record (`a` = session slot, `b` = mode entered: 0 healthy,
    /// 1 degraded, 2 dark).
    pub fn emit(&self) {
        counter!("serve.mode_transitions").inc();
        let code = match self.to {
            "degraded" => {
                counter!("serve.feeds_degraded").inc();
                1u64
            }
            "dark" => {
                counter!("serve.feeds_dark").inc();
                2
            }
            _ => {
                counter!("serve.feeds_recovered").inc();
                0
            }
        };
        record!(RecKind::Event, "serve.feed_mode", self.session, code);
        event(
            "serve.feed_mode",
            &[
                ("session", self.session.into()),
                ("from", Value::from(self.from)),
                ("to", Value::from(self.to)),
                ("reason", Value::from(self.reason)),
            ],
        );
    }
}

/// The streaming detector cleared its active outage event.
#[derive(Debug, Clone)]
pub struct StreamCleared {
    /// Samples processed when the event cleared.
    pub samples_seen: usize,
}

impl StreamCleared {
    /// Record the trace event, companion metrics and a flight-recorder
    /// record (`a` = samples seen).
    pub fn emit(&self) {
        counter!("detect.stream_cleared").inc();
        record!(RecKind::Event, "detect.stream_cleared", self.samples_seen, 0);
        event("detect.stream_cleared", &[("samples_seen", self.samples_seen.into())]);
    }
}

/// A trained model bundle was serialized to the artifact store (or an
/// explicit path).
#[derive(Debug, Clone)]
pub struct BundleSaved {
    /// System the bundle was trained on (e.g. `"ieee14"`).
    pub system: String,
    /// Serialized size in bytes.
    pub bytes: usize,
    /// Wall-clock serialization + write time (milliseconds).
    pub ms: f64,
}

impl BundleSaved {
    /// Record the trace event and companion metrics.
    pub fn emit(&self) {
        counter!("model.bundle_saved").inc();
        histogram!("model.bundle_save_ms").observe(self.ms);
        histogram!("model.bundle_bytes").observe(self.bytes as f64);
        event(
            "model.bundle_saved",
            &[
                ("system", Value::from(self.system.as_str())),
                ("bytes", self.bytes.into()),
                ("ms", self.ms.into()),
            ],
        );
    }
}

/// A model bundle was deserialized and verified — either straight from an
/// explicit path or through an artifact-store lookup (`cache_hit` marks
/// store lookups that let the caller skip training; the store's
/// `model.store_hit`/`model.store_miss` counters track lookup outcomes
/// separately).
#[derive(Debug, Clone)]
pub struct BundleLoaded {
    /// System the bundle serves.
    pub system: String,
    /// Serialized size in bytes.
    pub bytes: usize,
    /// Wall-clock read + parse + verify time (milliseconds).
    pub ms: f64,
    /// `true` when this load came out of an artifact-store lookup
    /// (training was skipped because of it).
    pub cache_hit: bool,
}

impl BundleLoaded {
    /// Record the trace event and companion metrics.
    pub fn emit(&self) {
        counter!("model.bundle_loaded").inc();
        histogram!("model.bundle_load_ms").observe(self.ms);
        event(
            "model.bundle_loaded",
            &[
                ("system", Value::from(self.system.as_str())),
                ("bytes", self.bytes.into()),
                ("ms", self.ms.into()),
                ("cache_hit", self.cache_hit.into()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{metrics_summary, reset_metrics, set_metrics_enabled};

    #[test]
    fn typed_events_drive_companion_metrics() {
        let _guard = crate::testutil::lock();
        reset_metrics();
        set_metrics_enabled(true);
        NrSolve { buses: 14, iterations: 3, mismatch: 1e-9, converged: true }.emit();
        NrSolve { buses: 14, iterations: 30, mismatch: 0.5, converged: false }.emit();
        SvdComputed { rows: 14, cols: 16, sweeps: 7 }.emit();
        EigenComputed { n: 2, sweeps: 2 }.emit();
        WorkerStats { worker: 0, tasks: 5, busy_us: 100, idle_us: 10 }.emit();
        StreamRaised { lines: vec![3, 7], samples_seen: 42 }.emit();
        StreamRelocalized { lines: vec![4], samples_seen: 45 }.emit();
        StreamCleared { samples_seen: 50 }.emit();
        SampleRejected { reason: "non_finite" }.emit();
        SampleRejected { reason: "wrong_length" }.emit();
        FeedModeChanged { session: 0, from: "healthy", to: "dark", reason: "missing_ratio" }
            .emit();
        FeedModeChanged { session: 0, from: "dark", to: "healthy", reason: "recovered" }
            .emit();
        set_metrics_enabled(false);

        assert_eq!(crate::counter("flow.nr_solves").get(), 2);
        assert_eq!(crate::counter("flow.nr_diverged").get(), 1);
        assert_eq!(crate::counter("numerics.svd_calls").get(), 1);
        assert_eq!(crate::counter("numerics.eigen_calls").get(), 1);
        assert_eq!(crate::counter("par.tasks").get(), 5);
        assert_eq!(crate::counter("detect.stream_raised").get(), 1);
        assert_eq!(crate::counter("detect.stream_relocalized").get(), 1);
        assert_eq!(crate::counter("detect.stream_cleared").get(), 1);
        assert_eq!(crate::counter("serve.samples_rejected").get(), 2);
        assert_eq!(crate::counter("serve.rejected_non_finite").get(), 1);
        assert_eq!(crate::counter("serve.rejected_wrong_length").get(), 1);
        assert_eq!(crate::counter("serve.mode_transitions").get(), 2);
        assert_eq!(crate::counter("serve.feeds_dark").get(), 1);
        assert_eq!(crate::counter("serve.feeds_recovered").get(), 1);

        let s = metrics_summary();
        assert!(s.contains("flow.nr_iterations"));
        assert!(s.contains("numerics.svd_sweeps"));
        reset_metrics();
    }
}
