//! # pmu-obs
//!
//! Zero-dependency structured tracing and metrics for the `pmu-outage`
//! workspace. Online PMU-based outage detectors are monitoring systems:
//! a deployment needs to see Newton–Raphson convergence behaviour, SVD
//! sweep costs, per-stage wall clock, worker-pool utilization and
//! streaming-detector health as first-class signals, not ad-hoc prints.
//! This crate is the shared substrate every layer reports through.
//!
//! Built on `std` only (the workspace has no crates.io access, so
//! `tracing`/`metrics` are not options). Three facilities:
//!
//! 1. **Spans** ([`span`]) — nested wall-clock timing with a thread-safe
//!    JSONL sink. A span is a drop guard: it records its start time when
//!    opened and writes one JSON line when closed. Install a sink with
//!    [`install_trace_path`] (the `repro --trace PATH` flag) or the
//!    `PMU_TRACE` environment variable via [`init_from_env`].
//! 2. **Metrics** ([`counter`], [`gauge`], [`histogram`]) — a global
//!    registry of atomically-updated counters, gauges and log-linear
//!    (HDR-style) quantile histograms, with a formatted end-of-run
//!    summary table ([`metrics_summary`]) and a Prometheus text
//!    exposition renderer ([`prometheus_text`]).
//! 3. **Typed events** ([`events`]) — structured records for domain
//!    signals (NR solves, reactive-limit pins, SVD sweeps, worker-pool
//!    stats, streaming raise/clear), so the JSONL schema has one home.
//! 4. **Flight recorder** ([`recorder`]) — always-on lock-free ring
//!    buffers of compact timestamped records, snapshotted to JSONL
//!    "incident dumps" when an anomaly fires. Unlike the other
//!    facilities it defaults to *on*; [`set_recorder_enabled`] is for
//!    overhead measurement.
//!
//! ## Cost model
//!
//! Everything is guarded by a process-wide `static` enabled flag
//! ([`enabled`]). With no sink installed and metrics not enabled, every
//! instrumentation call is one relaxed atomic load and a branch — no
//! clock reads, no allocation, no locks. `perfbench` pins the disabled
//! overhead at < 2% on the hot kernels.
//!
//! ## Determinism
//!
//! Trace output is deterministic modulo timestamps: span and event
//! names are `'static` strings fixed at the call site, every record
//! carries a per-thread sequence number so ordering *within a worker*
//! is stable, and the run header records the seed and worker count.
//! Only `dur_us` values and the interleaving of lines from different
//! workers vary between runs; `sort -t'"' -k4` (by worker, then seq)
//! makes two runs diffable.
//!
//! ## Record schema
//!
//! One JSON object per line. Common fields: `t` (record type), `w`
//! (worker/thread label), `seq` (per-thread sequence number), `depth`
//! (span-nesting depth at emission).
//!
//! ```json
//! {"t":"header","fields":{"seed":12648430,"threads":4}}
//! {"t":"span","name":"eval.system_setup","w":0,"seq":3,"depth":1,"dur_us":15310,"fields":{"system":"ieee14"}}
//! {"t":"event","name":"flow.nr_solve","w":0,"seq":4,"depth":2,"fields":{"iterations":4,"mismatch":2.1e-11,"buses":14}}
//! {"t":"log","w":0,"seq":5,"depth":0,"msg":"running fig5 (complete data)..."}
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod events;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use metrics::{
    counter, gauge, histogram, histogram_with, metrics_enabled, metrics_summary,
    prometheus_text, reset_metrics, set_metrics_enabled, Counter, Gauge, Histogram,
    HistogramSpec,
};
pub use recorder::{recorder_enabled, set_recorder_enabled, RecKind, Recorder};
pub use trace::{
    enabled, event, flush_trace, info, init_from_env, install_trace_path,
    install_trace_writer, span, trace_enabled, uninstall_trace, write_header, Span, Value,
};

/// Serializes tests that toggle the process-global enabled flags.
#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn lock() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }
}
