//! Span-based structured tracing with a thread-safe JSONL sink.
//!
//! All state is process-global: one sink, one enabled flag, per-thread
//! sequence numbers and span depth. When no sink is installed every call
//! is a relaxed atomic load and a branch.

use crate::metrics::set_metrics_enabled;
use std::cell::Cell;
use std::fmt::Write as _;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Whether a trace sink is installed.
static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
/// The installed sink (JSONL writer). `None` when tracing is off.
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);
/// Next worker label to hand out (thread labels are assigned lazily in
/// first-emission order, so their numeric values are arbitrary; ordering
/// is only meaningful *within* one worker).
static NEXT_WORKER: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static WORKER: Cell<usize> = const { Cell::new(usize::MAX) };
    static SEQ: Cell<u64> = const { Cell::new(0) };
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// `true` when a trace sink is installed.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// `true` when any instrumentation (tracing or metrics) is active.
#[inline]
pub fn enabled() -> bool {
    trace_enabled() || crate::metrics::metrics_enabled()
}

/// A field value attached to a span, event or header record.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite serializes as `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Array of values.
    Arr(Vec<Value>),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<&[usize]> for Value {
    fn from(v: &[usize]) -> Self {
        Value::Arr(v.iter().map(|&x| Value::U64(x as u64)).collect())
    }
}

pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn write_json_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => write_json_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_value(out, item);
            }
            out.push(']');
        }
    }
}

fn write_fields(out: &mut String, fields: &[(&'static str, Value)]) {
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(out, k);
        out.push(':');
        write_json_value(out, v);
    }
    out.push('}');
}

/// The worker label of the calling thread (assigned on first emission).
fn worker_id() -> usize {
    WORKER.with(|w| {
        let v = w.get();
        if v != usize::MAX {
            v
        } else {
            let id = NEXT_WORKER.fetch_add(1, Ordering::Relaxed);
            w.set(id);
            id
        }
    })
}

fn next_seq() -> u64 {
    SEQ.with(|s| {
        let v = s.get();
        s.set(v + 1);
        v
    })
}

/// Write one record line to the sink (no-op when tracing is off).
fn emit_line(line: &str) {
    let mut guard = match SINK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(sink) = guard.as_mut() {
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.write_all(b"\n");
    }
}

fn emit_record(
    kind: &str,
    name: Option<&str>,
    depth: usize,
    dur_us: Option<u64>,
    fields: &[(&'static str, Value)],
    msg: Option<&str>,
) {
    let mut line = String::with_capacity(96);
    line.push_str("{\"t\":\"");
    line.push_str(kind);
    line.push('"');
    if let Some(n) = name {
        line.push_str(",\"name\":");
        write_json_string(&mut line, n);
    }
    let _ = write!(line, ",\"w\":{},\"seq\":{},\"depth\":{}", worker_id(), next_seq(), depth);
    if let Some(d) = dur_us {
        let _ = write!(line, ",\"dur_us\":{d}");
    }
    if let Some(m) = msg {
        line.push_str(",\"msg\":");
        write_json_string(&mut line, m);
    }
    if !fields.is_empty() {
        write_fields(&mut line, fields);
    }
    line.push('}');
    emit_line(&line);
}

/// A drop guard measuring the wall clock of a region of code.
///
/// Created with [`span`]; writes one `{"t":"span",...}` line when
/// dropped. Inert (no clock read, no allocation) while tracing is off.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(&'static str, Value)>,
}

impl Span {
    /// An inert span that records nothing (useful for conditional
    /// instrumentation of hot paths).
    pub fn disabled(name: &'static str) -> Span {
        Span { name, start: None, fields: Vec::new() }
    }

    /// `true` when this span will emit a record on drop.
    pub fn active(&self) -> bool {
        self.start.is_some()
    }

    /// Attach a field (builder form). No-op on an inert span.
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.record(key, value);
        self
    }

    /// Attach a field after creation. No-op on an inert span.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if self.start.is_some() {
            self.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_us = start.elapsed().as_micros() as u64;
        // Depth was incremented when the span opened; report the open
        // depth, then restore.
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v.saturating_sub(1));
            v
        });
        emit_record("span", Some(self.name), depth, Some(dur_us), &self.fields, None);
    }
}

/// Open a named span. The returned guard writes one JSONL record with
/// the measured duration when dropped. Use stable, call-site-fixed
/// names (`"layer.operation"`) so traces stay diffable across runs.
pub fn span(name: &'static str) -> Span {
    if !trace_enabled() {
        return Span::disabled(name);
    }
    DEPTH.with(|d| d.set(d.get() + 1));
    Span { name, start: Some(Instant::now()), fields: Vec::new() }
}

/// Emit a named event record with structured fields.
///
/// Prefer the typed wrappers in [`crate::events`] for domain signals;
/// this is the escape hatch for one-off instrumentation.
pub fn event(name: &'static str, fields: &[(&'static str, Value)]) {
    if !trace_enabled() {
        return;
    }
    let depth = DEPTH.with(|d| d.get());
    emit_record("event", Some(name), depth, None, fields, None);
}

/// Human-facing progress line: always printed to stderr, and also
/// recorded as a `{"t":"log"}` record when tracing is on. This replaces
/// the ad-hoc `eprintln!` progress output in the binaries.
pub fn info(msg: &str) {
    eprintln!("{msg}");
    if trace_enabled() {
        let depth = DEPTH.with(|d| d.get());
        emit_record("log", None, depth, None, &[], Some(msg));
    }
}

/// Write the run header record (`{"t":"header","fields":{...}}`).
///
/// Call right after installing a sink, recording at least the run seed
/// and worker count so traces are attributable and diffable.
pub fn write_header(fields: &[(&'static str, Value)]) {
    if !trace_enabled() {
        return;
    }
    let mut line = String::from("{\"t\":\"header\"");
    if !fields.is_empty() {
        write_fields(&mut line, fields);
    }
    line.push('}');
    emit_line(&line);
}

/// Install a JSONL sink writing to the file at `path` (truncating it),
/// and enable tracing and metrics.
///
/// # Errors
/// Returns the I/O error when the file cannot be created.
pub fn install_trace_path(path: &str) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    install_trace_writer(Box::new(BufWriter::new(file)));
    Ok(())
}

/// Install an arbitrary sink (used by tests). Enables tracing and
/// metrics.
pub fn install_trace_writer(sink: Box<dyn Write + Send>) {
    let mut guard = match SINK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *guard = Some(sink);
    drop(guard);
    TRACE_ENABLED.store(true, Ordering::SeqCst);
    set_metrics_enabled(true);
}

/// Flush the sink (if any).
pub fn flush_trace() {
    let mut guard = match SINK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(sink) = guard.as_mut() {
        let _ = sink.flush();
    }
}

/// Disable tracing and drop the sink (flushing it first). Metrics stay
/// enabled; clear them separately with
/// [`crate::metrics::set_metrics_enabled`].
pub fn uninstall_trace() {
    TRACE_ENABLED.store(false, Ordering::SeqCst);
    let mut guard = match SINK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(mut sink) = guard.take() {
        let _ = sink.flush();
    }
}

/// Initialise from the environment: `PMU_TRACE=path` installs a JSONL
/// sink (and enables metrics); `PMU_METRICS=1` enables metrics alone.
pub fn init_from_env() {
    if let Ok(path) = std::env::var("PMU_TRACE") {
        if !path.is_empty() {
            if let Err(e) = install_trace_path(&path) {
                eprintln!("pmu-obs: cannot open PMU_TRACE={path}: {e}");
            }
        }
    }
    if let Ok(v) = std::env::var("PMU_METRICS") {
        if v == "1" || v.eq_ignore_ascii_case("true") {
            set_metrics_enabled(true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A sink capturing lines into shared memory.
    #[derive(Clone)]
    struct Capture(Arc<StdMutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn capture_trace(f: impl FnOnce()) -> String {
        let buf = Arc::new(StdMutex::new(Vec::new()));
        install_trace_writer(Box::new(Capture(buf.clone())));
        f();
        uninstall_trace();
        set_metrics_enabled(false);
        let bytes = buf.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    // The trace sink is process-global, so all sink-touching assertions
    // live in this single test (Rust runs tests in one process).
    #[test]
    fn spans_events_and_header_roundtrip() {
        let _guard = crate::testutil::lock();
        let out = capture_trace(|| {
            write_header(&[("seed", Value::U64(7)), ("threads", Value::U64(2))]);
            {
                let _outer = span("test.outer").with("system", "ieee14");
                {
                    let mut inner = span("test.inner");
                    inner.record("k", 3usize);
                    assert!(inner.active());
                }
                event("test.event", &[("x", Value::F64(1.5)), ("ok", Value::Bool(true))]);
            }
            info("progress line");
        });

        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5, "header + 2 spans + event + log: {out}");
        assert!(lines[0].starts_with("{\"t\":\"header\""));
        assert!(lines[0].contains("\"seed\":7"));
        // Inner span closes before outer: it appears first, at depth 2.
        assert!(lines[1].contains("\"name\":\"test.inner\""));
        assert!(lines[1].contains("\"depth\":2"));
        assert!(lines[1].contains("\"fields\":{\"k\":3}"));
        assert!(lines[2].contains("\"name\":\"test.event\""));
        assert!(lines[2].contains("\"x\":1.5"));
        assert!(lines[2].contains("\"ok\":true"));
        assert!(lines[3].contains("\"name\":\"test.outer\""));
        assert!(lines[3].contains("\"depth\":1"));
        assert!(lines[3].contains("\"system\":\"ieee14\""));
        assert!(lines[3].contains("\"dur_us\":"));
        assert!(lines[4].contains("\"t\":\"log\""));
        assert!(lines[4].contains("\"msg\":\"progress line\""));

        // Per-thread sequence numbers are strictly increasing.
        let seqs: Vec<u64> = lines[1..]
            .iter()
            .map(|l| {
                let i = l.find("\"seq\":").unwrap() + 6;
                l[i..].chars().take_while(|c| c.is_ascii_digit()).collect::<String>().parse().unwrap()
            })
            .collect();
        for pair in seqs.windows(2) {
            assert!(pair[1] > pair[0], "seqs not increasing: {seqs:?}");
        }

        // After uninstall, everything is inert again.
        assert!(!trace_enabled());
        let s = span("test.after");
        assert!(!s.active());
    }

    #[test]
    fn json_string_escaping() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn json_value_forms() {
        let mut out = String::new();
        write_json_value(
            &mut out,
            &Value::Arr(vec![Value::U64(1), Value::F64(2.0), Value::F64(f64::NAN)]),
        );
        assert_eq!(out, "[1,2.0,null]");
        let v: Value = (&[3usize, 5][..]).into();
        let mut out2 = String::new();
        write_json_value(&mut out2, &v);
        assert_eq!(out2, "[3,5]");
    }
}
