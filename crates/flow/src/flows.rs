//! Per-branch complex power flows from a solved AC state.
//!
//! Useful for diagnostics, for the examples, and for validating the solver
//! (sending-end minus receiving-end flow equals line losses, which must be
//! non-negative for real line parameters).

use crate::ac::AcSolution;
use pmu_grid::Network;
use pmu_numerics::Complex64;

/// Complex power flow on one branch, in per-unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchFlow {
    /// Complex power injected at the from-bus into the branch.
    pub s_from: Complex64,
    /// Complex power injected at the to-bus into the branch.
    pub s_to: Complex64,
}

impl BranchFlow {
    /// Active losses on the branch (p.u.): `Re(S_from + S_to)`.
    pub fn p_loss(&self) -> f64 {
        self.s_from.re + self.s_to.re
    }
}

/// Compute flows on every branch. Out-of-service branches yield zero flow.
pub fn branch_flows(net: &Network, sol: &AcSolution) -> Vec<BranchFlow> {
    net.branches()
        .iter()
        .map(|br| {
            if !br.status {
                return BranchFlow { s_from: Complex64::ZERO, s_to: Complex64::ZERO };
            }
            let ys = Complex64::ONE / Complex64::new(br.r, br.x);
            let bc_half = Complex64::new(0.0, br.b / 2.0);
            let tap = if br.tap == 0.0 { 1.0 } else { br.tap };
            let t = Complex64::from_polar(tap, br.shift.to_radians());

            let vf = sol.phasor(br.from);
            let vt = sol.phasor(br.to);

            // Branch admittance stamps (π-model with transformer on from side).
            let yff = (ys + bc_half) / (tap * tap);
            let yft = -(ys / t.conj());
            let ytf = -(ys / t);
            let ytt = ys + bc_half;

            let if_ = yff * vf + yft * vt;
            let it = ytf * vf + ytt * vt;
            BranchFlow { s_from: vf * if_.conj(), s_to: vt * it.conj() }
        })
        .collect()
}

/// Total active losses over all in-service branches (p.u.).
pub fn total_losses(net: &Network, sol: &AcSolution) -> f64 {
    branch_flows(net, sol).iter().map(BranchFlow::p_loss).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::{solve_ac, AcConfig};
    use pmu_grid::cases::ieee14;

    #[test]
    fn losses_are_nonnegative_per_branch() {
        let net = ieee14().unwrap();
        let sol = solve_ac(&net, &AcConfig::default()).unwrap();
        for (i, f) in branch_flows(&net, &sol).iter().enumerate() {
            assert!(f.p_loss() > -1e-9, "branch {i} has negative loss {}", f.p_loss());
        }
    }

    #[test]
    fn total_losses_match_slack_balance() {
        // Generation − load = losses.
        let net = ieee14().unwrap();
        let sol = solve_ac(&net, &AcConfig::default()).unwrap();
        let base = net.base_mva;
        let mut gen_p: f64 =
            net.gens().iter().filter(|g| g.status).map(|g| g.pg / base).sum();
        // The slack generator's actual output replaces its scheduled one.
        let slack_sched: f64 = net
            .gens()
            .iter()
            .filter(|g| g.status && g.bus == net.slack())
            .map(|g| g.pg / base)
            .sum();
        gen_p = gen_p - slack_sched + sol.slack_p;
        let load_p: f64 = net.buses().iter().map(|b| b.pd / base).sum();
        let losses = total_losses(&net, &sol);
        assert!(
            (gen_p - load_p - losses).abs() < 1e-6,
            "gen {gen_p} - load {load_p} != losses {losses}"
        );
    }

    #[test]
    fn out_of_service_branch_has_zero_flow() {
        let net = ieee14().unwrap();
        let idx = net.valid_outage_branches()[0];
        let out_net = net.with_branch_outage(idx).unwrap();
        let sol = solve_ac(&out_net, &AcConfig::default()).unwrap();
        let flows = branch_flows(&out_net, &sol);
        assert_eq!(flows[idx].s_from, Complex64::ZERO);
        assert_eq!(flows[idx].s_to, Complex64::ZERO);
    }

    #[test]
    fn ieee14_loss_magnitude_is_realistic() {
        // Canonical IEEE-14 losses are ≈ 13.4 MW (0.134 p.u.).
        let net = ieee14().unwrap();
        let sol = solve_ac(&net, &AcConfig::default()).unwrap();
        let losses = total_losses(&net, &sol);
        assert!(losses > 0.10 && losses < 0.16, "losses {losses} p.u.");
    }
}
