//! # pmu-flow
//!
//! Steady-state power-flow solvers — the workspace's substitute for
//! MATPOWER's `runpf` (DESIGN.md substitution #1). The paper generates its
//! training and test synchrophasors by solving the **AC** power flow for
//! every load realization and line-outage topology; this crate provides
//! that solver (full Newton–Raphson in polar coordinates) plus the DC
//! linearization used for comparison and for Eq. (1)'s `X = Y⁺ P` view.
//!
//! - [`ac`] — Newton–Raphson AC power flow.
//! - [`dc`] — DC (linearized) power flow.
//! - [`fdpf`] — fast-decoupled (XB) power flow.
//! - [`cascade`] — overload-cascade simulation and N-1 screening.
//! - [`flows`] — per-branch complex power flows from a solved state.
//! - [`error`] — solver error type.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod ac;
pub mod cascade;
pub mod dc;
pub mod error;
pub mod fdpf;
pub mod flows;

pub use ac::{
    default_linear_solver, set_default_linear_solver, solve_ac, AcConfig, AcSolution,
    AcSolver, LinearSolver,
};
pub use dc::{solve_dc, DcSolution};
pub use fdpf::{solve_fdpf, FdpfConfig, FdpfSolution};
pub use error::FlowError;

/// Convenience result alias for solver operations.
pub type Result<T> = std::result::Result<T, FlowError>;
