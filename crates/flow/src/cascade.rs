//! Cascading-failure simulation and N-1 security screening.
//!
//! The paper's introduction motivates timely outage detection with exactly
//! this failure mode: "The incurred topology change, due to even a few
//! line failures, may lead the power grid to reach an unplanned
//! operational state that develops into a cascade failure" (its refs. \[2\],
//! \[3\]). This module provides the standard overload-tripping cascade
//! model: remove the triggering line(s), re-solve the (DC) power flow,
//! trip every branch loaded beyond its thermal rating, and repeat until
//! the grid quiets down or falls apart — producing the multi-stage outage
//! sequences the streaming detector is drilled against.
//!
//! Because the embedded IEEE case files carry no thermal ratings
//! (`rate = 0` means unlimited), [`assign_ratings`] synthesizes a
//! consistent set: each line is rated at `margin ×` its base-case loading
//! (with a floor), the standard construction in the cascading-failure
//! literature.

use crate::dc::solve_dc;
use crate::error::FlowError;
use crate::Result;
use pmu_grid::Network;

/// Result of one cascade simulation.
#[derive(Debug, Clone)]
pub struct CascadeReport {
    /// Branches tripped at each stage; stage 0 is the trigger set.
    pub stages: Vec<Vec<usize>>,
    /// `true` when the cascade ended by islanding the grid (the power flow
    /// could no longer be solved on the connected remainder).
    pub islanded: bool,
    /// The last *connected* network state. When `islanded` is false this
    /// has every tripped branch out of service; when `islanded` is true
    /// the final stage's branches are still in service here — removing
    /// them is what split the grid.
    pub final_state: Network,
}

impl CascadeReport {
    /// Total number of branches lost (including the triggers).
    pub fn total_tripped(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// All lost branches in trip order.
    pub fn all_tripped(&self) -> Vec<usize> {
        self.stages.iter().flatten().copied().collect()
    }
}

/// Configuration of the cascade model.
#[derive(Debug, Clone)]
pub struct CascadeConfig {
    /// A branch trips when `|flow| > overload_factor × rate`. `1.0` trips
    /// exactly at the rating; values slightly above model relay tolerance.
    pub overload_factor: f64,
    /// Stage budget (a cascade longer than this is reported as-is).
    pub max_stages: usize,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig { overload_factor: 1.0, max_stages: 20 }
    }
}

/// Copy `net` with every in-service branch rated at `margin ×` its
/// base-case DC loading, floored at `floor_mva`. Transformers and lines
/// that carry (almost) nothing get the floor.
///
/// # Errors
/// Propagates DC solve failures on the base case.
pub fn assign_ratings(net: &Network, margin: f64, floor_mva: f64) -> Result<Network> {
    let dc = solve_dc(net)?;
    let buses = net.buses().to_vec();
    let mut branches = net.branches().to_vec();
    let gens = net.gens().to_vec();
    for (i, br) in branches.iter_mut().enumerate() {
        let loading_mva = dc.branch_flow[i].abs() * net.base_mva;
        br.rate = (margin * loading_mva).max(floor_mva);
    }
    Network::new(net.name.clone(), net.base_mva, buses, branches, gens)
        .map_err(|e| FlowError::Grid(e.to_string()))
}

/// Simulate an overload cascade triggered by removing `triggers`.
///
/// # Errors
/// Returns [`FlowError::Grid`] when a trigger index is invalid. Islanding
/// mid-cascade is *not* an error — it ends the cascade with
/// `islanded = true`.
pub fn simulate_cascade(
    net: &Network,
    triggers: &[usize],
    cfg: &CascadeConfig,
) -> Result<CascadeReport> {
    let mut state = net
        .with_branch_outages(triggers)
        .map_err(|e| FlowError::Grid(e.to_string()))?;
    let mut stages = vec![triggers.to_vec()];
    let mut islanded = false;

    for _ in 0..cfg.max_stages {
        let dc = match solve_dc(&state) {
            Ok(d) => d,
            Err(_) => {
                islanded = true;
                break;
            }
        };
        // Find overloaded branches.
        let tripped: Vec<usize> = state
            .branches()
            .iter()
            .enumerate()
            .filter(|(i, br)| {
                br.status
                    && br.rate > 0.0
                    && dc.branch_flow[*i].abs() * state.base_mva
                        > cfg.overload_factor * br.rate
            })
            .map(|(i, _)| i)
            .collect();
        if tripped.is_empty() {
            break;
        }
        match state.with_branch_outages(&tripped) {
            Ok(next) => state = next,
            Err(_) => {
                // The combined trip islands the grid.
                islanded = true;
                stages.push(tripped);
                return Ok(CascadeReport { stages, islanded, final_state: state });
            }
        }
        stages.push(tripped);
    }
    Ok(CascadeReport { stages, islanded, final_state: state })
}

/// N-1 security screen: for every valid single-line outage, report the
/// branches the DC flow would overload. An empty result means the system
/// is N-1 secure at the given ratings.
///
/// # Errors
/// Propagates DC solve failures.
pub fn n1_screen(net: &Network, overload_factor: f64) -> Result<Vec<(usize, Vec<usize>)>> {
    let mut findings = Vec::new();
    for idx in net.valid_outage_branches() {
        let out = match net.with_branch_outage(idx) {
            Ok(o) => o,
            Err(_) => continue,
        };
        let dc = solve_dc(&out)?;
        let overloads: Vec<usize> = out
            .branches()
            .iter()
            .enumerate()
            .filter(|(i, br)| {
                br.status
                    && br.rate > 0.0
                    && dc.branch_flow[*i].abs() * out.base_mva > overload_factor * br.rate
            })
            .map(|(i, _)| i)
            .collect();
        if !overloads.is_empty() {
            findings.push((idx, overloads));
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu_grid::cases::{ieee14, ieee30};

    #[test]
    fn ratings_cover_base_case() {
        let net = ieee14().unwrap();
        let rated = assign_ratings(&net, 1.5, 10.0).unwrap();
        let dc = solve_dc(&rated).unwrap();
        for (i, br) in rated.branches().iter().enumerate() {
            assert!(br.rate >= 10.0, "floor respected");
            let loading = dc.branch_flow[i].abs() * rated.base_mva;
            assert!(
                loading <= br.rate + 1e-9,
                "branch {i}: base loading {loading} exceeds rating {}",
                br.rate
            );
        }
    }

    #[test]
    fn generous_ratings_mean_no_cascade() {
        let net = assign_ratings(&ieee14().unwrap(), 5.0, 50.0).unwrap();
        let trigger = net.valid_outage_branches()[0];
        let rep = simulate_cascade(&net, &[trigger], &CascadeConfig::default()).unwrap();
        assert_eq!(rep.total_tripped(), 1, "only the trigger trips");
        assert!(!rep.islanded);
        assert_eq!(rep.stages.len(), 1);
        assert_eq!(rep.all_tripped(), vec![trigger]);
    }

    #[test]
    fn tight_ratings_produce_a_cascade() {
        // Margin 1.05 on IEEE-30: removing the most loaded line overloads
        // its parallel paths, which trip in turn.
        let net = assign_ratings(&ieee30().unwrap(), 1.05, 1.0).unwrap();
        let dc = solve_dc(&net).unwrap();
        let trigger = (0..net.n_branches())
            .filter(|&i| net.valid_outage_branches().contains(&i))
            .max_by(|&a, &b| {
                dc.branch_flow[a].abs().partial_cmp(&dc.branch_flow[b].abs()).unwrap()
            })
            .unwrap();
        let rep = simulate_cascade(&net, &[trigger], &CascadeConfig::default()).unwrap();
        assert!(
            rep.total_tripped() > 1,
            "tight ratings must propagate beyond the trigger"
        );
        // Stage 0 is exactly the trigger.
        assert_eq!(rep.stages[0], vec![trigger]);
        // Final (connected) state has every applied stage out of service;
        // when the cascade ended in islanding, the last stage was never
        // applied.
        let applied_stages =
            if rep.islanded { &rep.stages[..rep.stages.len() - 1] } else { &rep.stages[..] };
        for idx in applied_stages.iter().flatten() {
            assert!(!rep.final_state.branches()[*idx].status);
        }
        assert!(rep.final_state.is_connected());
    }

    #[test]
    fn n1_screen_flags_tight_systems_only() {
        let loose = assign_ratings(&ieee14().unwrap(), 5.0, 50.0).unwrap();
        assert!(n1_screen(&loose, 1.0).unwrap().is_empty(), "loose ratings are N-1 secure");
        let tight = assign_ratings(&ieee14().unwrap(), 1.02, 1.0).unwrap();
        let findings = n1_screen(&tight, 1.0).unwrap();
        assert!(!findings.is_empty(), "2% margins cannot be N-1 secure");
        // Findings reference real branches.
        for (outage, overloads) in &findings {
            assert!(tight.valid_outage_branches().contains(outage));
            assert!(!overloads.is_empty());
        }
    }

    #[test]
    fn invalid_trigger_rejected() {
        let net = ieee14().unwrap();
        assert!(simulate_cascade(&net, &[999], &CascadeConfig::default()).is_err());
    }
}
