//! Fast-decoupled power flow (Stott & Alsac, XB scheme).
//!
//! The workhorse of real-time control centers: the P–θ and Q–V halves of
//! the power-flow equations are decoupled and solved alternately against
//! *constant* susceptance matrices `B'` and `B''`, factorized once. Each
//! iteration is dramatically cheaper than a Newton step (two triangular
//! solves instead of a fresh Jacobian + LU), at the cost of more, linearly
//! converging iterations — the classic trade the `pmu-bench` suite
//! measures against [`crate::ac`].

use crate::error::FlowError;
use crate::Result;
use pmu_grid::ybus::build_ybus;
use pmu_grid::{BusType, Network};
use pmu_numerics::lu::LuFactors;
use pmu_numerics::{Complex64, Matrix, Vector};

/// Configuration of the fast-decoupled solver.
#[derive(Debug, Clone)]
pub struct FdpfConfig {
    /// Convergence tolerance on the power mismatch (p.u.).
    pub tol: f64,
    /// Maximum half-iteration sweeps (one sweep = P–θ then Q–V).
    pub max_sweeps: usize,
}

impl Default for FdpfConfig {
    fn default() -> Self {
        FdpfConfig { tol: 1e-8, max_sweeps: 60 }
    }
}

/// A converged fast-decoupled state (same contents as an AC solution).
#[derive(Debug, Clone)]
pub struct FdpfSolution {
    /// Voltage magnitudes (p.u.).
    pub vm: Vec<f64>,
    /// Voltage angles (radians).
    pub va: Vec<f64>,
    /// Sweeps used.
    pub sweeps: usize,
    /// Final infinity-norm mismatch (p.u.).
    pub max_mismatch: f64,
}

/// `B'`: the P–θ matrix over PV+PQ buses — series susceptances only
/// (XB scheme: resistances ignored in `B'`).
fn b_prime(net: &Network, pvpq: &[usize]) -> Matrix {
    let n = net.n_buses();
    let mut full = Matrix::zeros(n, n);
    for br in net.branches().iter().filter(|b| b.status) {
        let w = 1.0 / br.x;
        full[(br.from, br.from)] += w;
        full[(br.to, br.to)] += w;
        full[(br.from, br.to)] -= w;
        full[(br.to, br.from)] -= w;
    }
    full.select_rows(pvpq).select_columns(pvpq)
}

/// `B''`: the Q–V matrix over PQ buses — the imaginary part of the Y-bus
/// (shunts and taps included), negated.
fn b_double_prime(net: &Network, pq: &[usize]) -> Matrix {
    let ybus = build_ybus(net);
    let neg_imag = Matrix::from_fn(net.n_buses(), net.n_buses(), |r, c| -ybus[(r, c)].im);
    neg_imag.select_rows(pq).select_columns(pq)
}

/// Specified net injections in per-unit (shared with the Newton solver's
/// conventions).
fn specified(net: &Network) -> (Vec<f64>, Vec<f64>) {
    let n = net.n_buses();
    let base = net.base_mva;
    let mut p = vec![0.0; n];
    let mut q = vec![0.0; n];
    for (i, bus) in net.buses().iter().enumerate() {
        p[i] -= bus.pd / base;
        q[i] -= bus.qd / base;
    }
    for g in net.gens().iter().filter(|g| g.status) {
        p[g.bus] += g.pg / base;
        q[g.bus] += g.qg / base;
    }
    (p, q)
}

/// Computed injections at the current state.
fn injections(
    ybus: &pmu_numerics::CMatrix,
    vm: &[f64],
    va: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    let n = vm.len();
    let mut p = vec![0.0; n];
    let mut q = vec![0.0; n];
    for i in 0..n {
        let mut pi = 0.0;
        let mut qi = 0.0;
        for j in 0..n {
            let y = ybus[(i, j)];
            if y == Complex64::ZERO {
                continue;
            }
            let (s, c) = (va[i] - va[j]).sin_cos();
            pi += vm[i] * vm[j] * (y.re * c + y.im * s);
            qi += vm[i] * vm[j] * (y.re * s - y.im * c);
        }
        p[i] = pi;
        q[i] = qi;
    }
    (p, q)
}

/// Solve the power flow with the fast-decoupled XB scheme.
///
/// # Errors
/// Returns [`FlowError::Diverged`] when the sweep budget is exhausted and
/// [`FlowError::SingularJacobian`] when `B'`/`B''` cannot be factorized.
pub fn solve_fdpf(net: &Network, cfg: &FdpfConfig) -> Result<FdpfSolution> {
    let n = net.n_buses();
    let slack = net.slack();
    let pvpq: Vec<usize> = (0..n).filter(|&i| i != slack).collect();
    let pq: Vec<usize> =
        (0..n).filter(|&i| net.buses()[i].bus_type == BusType::Pq).collect();

    let ybus = build_ybus(net);
    let lu_bp = LuFactors::factorize(&b_prime(net, &pvpq))?;
    let lu_bpp = if pq.is_empty() {
        None
    } else {
        Some(LuFactors::factorize(&b_double_prime(net, &pq))?)
    };

    let mut vm: Vec<f64> = net.buses().iter().map(|b| b.vm).collect();
    let mut va: Vec<f64> = net.buses().iter().map(|b| b.va.to_radians()).collect();
    let (p_spec, q_spec) = specified(net);

    let mut mismatch = f64::INFINITY;
    for sweep in 0..=cfg.max_sweeps {
        let (p_calc, q_calc) = injections(&ybus, &vm, &va);
        // Normalized mismatches ΔP/V (pvpq) and ΔQ/V (pq).
        let dp = Vector::from_fn(pvpq.len(), |k| {
            let b = pvpq[k];
            (p_spec[b] - p_calc[b]) / vm[b]
        });
        // Raw mismatch for the convergence check.
        let raw = pvpq
            .iter()
            .map(|&b| (p_spec[b] - p_calc[b]).abs())
            .chain(pq.iter().map(|&b| (q_spec[b] - q_calc[b]).abs()))
            .fold(0.0_f64, f64::max);
        mismatch = raw;
        if mismatch < cfg.tol {
            return Ok(FdpfSolution { vm, va, sweeps: sweep, max_mismatch: mismatch });
        }
        if sweep == cfg.max_sweeps {
            break;
        }

        // P–θ half step.
        let dtheta = lu_bp.solve(&dp)?;
        for (k, &b) in pvpq.iter().enumerate() {
            va[b] += dtheta[k];
        }
        // Q–V half step.
        if let Some(lu) = &lu_bpp {
            let (_, q_calc) = injections(&ybus, &vm, &va);
            let dq2 = Vector::from_fn(pq.len(), |k| {
                let b = pq[k];
                (q_spec[b] - q_calc[b]) / vm[b]
            });
            let dv = lu.solve(&dq2)?;
            for (k, &b) in pq.iter().enumerate() {
                vm[b] = (vm[b] + dv[k]).max(0.1);
            }
        }
    }
    Err(FlowError::Diverged { iters: cfg.max_sweeps, mismatch })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::{solve_ac, AcConfig};
    use pmu_grid::cases::{ieee118, ieee14, ieee30};

    #[test]
    fn agrees_with_newton_on_every_system() {
        for net in [ieee14().unwrap(), ieee30().unwrap(), ieee118().unwrap()] {
            let nr = solve_ac(&net, &AcConfig::default()).unwrap();
            let fd = solve_fdpf(&net, &FdpfConfig::default()).unwrap();
            assert!(fd.max_mismatch < 1e-8, "{}", net.name);
            for b in 0..net.n_buses() {
                assert!(
                    (nr.vm[b] - fd.vm[b]).abs() < 1e-6,
                    "{}: bus {b} Vm {} vs {}",
                    net.name,
                    nr.vm[b],
                    fd.vm[b]
                );
                assert!(
                    (nr.va[b] - fd.va[b]).abs() < 1e-6,
                    "{}: bus {b} Va {} vs {}",
                    net.name,
                    nr.va[b],
                    fd.va[b]
                );
            }
        }
    }

    #[test]
    fn takes_more_but_cheaper_iterations() {
        let net = ieee30().unwrap();
        let nr = solve_ac(&net, &AcConfig::default()).unwrap();
        let fd = solve_fdpf(&net, &FdpfConfig::default()).unwrap();
        assert!(
            fd.sweeps >= nr.iterations,
            "fast-decoupled should take at least as many sweeps ({} vs {})",
            fd.sweeps,
            nr.iterations
        );
        assert!(fd.sweeps < 40, "but still converge briskly ({} sweeps)", fd.sweeps);
    }

    #[test]
    fn divergence_reported_on_absurd_load() {
        let mut net = ieee14().unwrap();
        net.set_load(13, 80_000.0, 30_000.0).unwrap();
        match solve_fdpf(&net, &FdpfConfig { max_sweeps: 15, ..FdpfConfig::default() }) {
            Err(FlowError::Diverged { .. }) | Err(FlowError::SingularJacobian(_)) => {}
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn outage_state_matches_newton_too() {
        let net = ieee14().unwrap();
        let idx = net.valid_outage_branches()[2];
        let out = net.with_branch_outage(idx).unwrap();
        let nr = solve_ac(&out, &AcConfig::default()).unwrap();
        let fd = solve_fdpf(&out, &FdpfConfig::default()).unwrap();
        for b in 0..14 {
            assert!((nr.va[b] - fd.va[b]).abs() < 1e-6);
        }
    }
}
