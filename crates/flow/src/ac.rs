//! Full Newton–Raphson AC power flow in polar coordinates.
//!
//! The paper's data pipeline uses the AC model ("The AC model is used,
//! instead of the DC approximation, when calculating synchrophasors").
//! This module mirrors MATPOWER's `runpf` with the standard polar
//! formulation: mismatch equations for P at every PV/PQ bus and Q at every
//! PQ bus, the full Jacobian, and a dense LU solve per iteration.

// Indexed loops are the clearest expression of the dense numerical
// kernels in this module.
#![allow(clippy::needless_range_loop)]

use crate::error::FlowError;
use crate::Result;
use pmu_grid::{BusType, Network};
use pmu_numerics::lu::LuFactors;
use pmu_numerics::{CMatrix, Complex64, Matrix, Vector};

/// Configuration of the Newton–Raphson solver.
#[derive(Debug, Clone)]
pub struct AcConfig {
    /// Convergence tolerance on the infinity norm of the power mismatch
    /// (p.u.).
    pub tol: f64,
    /// Maximum Newton iterations.
    pub max_iter: usize,
    /// Start from a flat profile (`V = 1`, `θ = 0`) instead of the case's
    /// stored voltage estimate. A warm start from the case values converges
    /// in fewer iterations.
    pub flat_start: bool,
    /// Enforce generator reactive limits: after convergence, PV buses
    /// whose aggregate Q output violates its [qmin, qmax] range are
    /// switched to PQ at the violated limit and the flow is re-solved
    /// (up to a few outer rounds), as MATPOWER's `ENFORCE_Q_LIMS` does.
    pub enforce_q_limits: bool,
}

impl Default for AcConfig {
    fn default() -> Self {
        AcConfig { tol: 1e-8, max_iter: 30, flat_start: false, enforce_q_limits: false }
    }
}

/// A converged AC power-flow state.
#[derive(Debug, Clone)]
pub struct AcSolution {
    /// Voltage magnitudes (p.u.), indexed by internal bus index.
    pub vm: Vec<f64>,
    /// Voltage angles (radians).
    pub va: Vec<f64>,
    /// Newton iterations used.
    pub iterations: usize,
    /// Final infinity-norm power mismatch (p.u.).
    pub max_mismatch: f64,
    /// Active power injected by the slack bus (p.u.), covering losses.
    pub slack_p: f64,
}

impl AcSolution {
    /// The complex voltage phasor at `bus`.
    pub fn phasor(&self, bus: usize) -> Complex64 {
        Complex64::from_polar(self.vm[bus], self.va[bus])
    }

    /// All phasors in bus order.
    pub fn phasors(&self) -> Vec<Complex64> {
        (0..self.vm.len()).map(|b| self.phasor(b)).collect()
    }
}

/// Net specified injections in per-unit: `(P_spec, Q_spec)` per bus, where
/// `P = (ΣPg - Pd)/base` and `Q = (ΣQg - Qd)/base`.
fn specified_injections(net: &Network) -> (Vec<f64>, Vec<f64>) {
    let n = net.n_buses();
    let base = net.base_mva;
    let mut p = vec![0.0; n];
    let mut q = vec![0.0; n];
    for (i, bus) in net.buses().iter().enumerate() {
        p[i] -= bus.pd / base;
        q[i] -= bus.qd / base;
    }
    for g in net.gens().iter().filter(|g| g.status) {
        p[g.bus] += g.pg / base;
        q[g.bus] += g.qg / base;
    }
    (p, q)
}

/// Computed injections `(P, Q)` at every bus for the current state.
fn computed_injections(
    ybus: &CMatrix,
    vm: &[f64],
    va: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    let n = vm.len();
    let mut p = vec![0.0; n];
    let mut q = vec![0.0; n];
    for i in 0..n {
        let mut pi = 0.0;
        let mut qi = 0.0;
        for j in 0..n {
            let y = ybus[(i, j)];
            if y == Complex64::ZERO {
                continue;
            }
            let theta = va[i] - va[j];
            let (s, c) = theta.sin_cos();
            pi += vm[i] * vm[j] * (y.re * c + y.im * s);
            qi += vm[i] * vm[j] * (y.re * s - y.im * c);
        }
        p[i] = pi;
        q[i] = qi;
    }
    (p, q)
}

/// Solve the AC power flow for `net`.
///
/// # Errors
/// Returns [`FlowError::Diverged`] when the mismatch tolerance is not met
/// within the iteration budget, and [`FlowError::SingularJacobian`] when a
/// Newton step cannot be computed.
pub fn solve_ac(net: &Network, cfg: &AcConfig) -> Result<AcSolution> {
    let _span = pmu_obs::span("flow.solve_ac").with("buses", net.n_buses());
    if !cfg.enforce_q_limits {
        return solve_ac_unconstrained(net, cfg);
    }
    // Outer PV→PQ switching loop (MATPOWER's ENFORCE_Q_LIMS): after each
    // converged solve, the worst reactive-limit violator is pinned at its
    // limit and demoted to PQ, until no violations remain.
    const MAX_ROUNDS: usize = 6;
    let mut work = net.clone();
    for _ in 0..MAX_ROUNDS {
        let sol = solve_ac_unconstrained(&work, cfg)?;
        match worst_q_violation(&work, &sol) {
            None => return Ok(sol),
            Some((bus, pinned_q)) => {
                pmu_obs::events::QLimitPin { bus, q_mvar: pinned_q }.emit();
                // Pin every in-service generator at the bus so their
                // aggregate reactive output equals the violated limit.
                let gen_idx: Vec<usize> = work
                    .gens()
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.status && g.bus == bus)
                    .map(|(i, _)| i)
                    .collect();
                let share = pinned_q / gen_idx.len().max(1) as f64;
                for gi in gen_idx {
                    work.set_gen_q(gi, share)?;
                }
                work.set_bus_type(bus, pmu_grid::BusType::Pq)?;
            }
        }
    }
    solve_ac_unconstrained(&work, cfg)
}

/// The aggregate reactive output (MVAr) each PV bus must supply in the
/// solved state, against its aggregate limits; returns the worst violator
/// as `(bus, limit_to_pin_at)`.
fn worst_q_violation(net: &Network, sol: &AcSolution) -> Option<(usize, f64)> {
    let ybus = pmu_grid::ybus::build_ybus(net);
    let (_, q_calc) = computed_injections(&ybus, &sol.vm, &sol.va);
    let base = net.base_mva;
    let mut worst: Option<(usize, f64, f64)> = None; // (bus, pin, violation)
    for (bus, b) in net.buses().iter().enumerate() {
        if b.bus_type != BusType::Pv {
            continue;
        }
        let gens: Vec<&pmu_grid::Gen> =
            net.gens().iter().filter(|g| g.status && g.bus == bus).collect();
        if gens.is_empty() {
            continue;
        }
        let qmax: f64 = gens.iter().map(|g| g.qmax).sum();
        let qmin: f64 = gens.iter().map(|g| g.qmin).sum();
        // Required generator output = injection + demand.
        let q_gen = q_calc[bus] * base + b.qd;
        let (pin, violation) = if q_gen > qmax {
            (qmax, q_gen - qmax)
        } else if q_gen < qmin {
            (qmin, qmin - q_gen)
        } else {
            continue;
        };
        if worst.map(|(_, _, v)| violation > v).unwrap_or(true) {
            worst = Some((bus, pin, violation));
        }
    }
    worst.map(|(bus, pin, _)| (bus, pin))
}

/// Solve the AC power flow without reactive-limit enforcement.
fn solve_ac_unconstrained(net: &Network, cfg: &AcConfig) -> Result<AcSolution> {
    let n = net.n_buses();
    let ybus = pmu_grid::ybus::build_ybus(net);
    let slack = net.slack();

    // Index sets: angles unknown at PV+PQ, magnitudes unknown at PQ.
    let pvpq: Vec<usize> = (0..n).filter(|&i| i != slack).collect();
    let pq: Vec<usize> =
        (0..n).filter(|&i| net.buses()[i].bus_type == BusType::Pq).collect();
    let n_ang = pvpq.len();
    let n_mag = pq.len();

    // Position of each bus inside the unknown vectors.
    let mut ang_pos = vec![usize::MAX; n];
    for (k, &b) in pvpq.iter().enumerate() {
        ang_pos[b] = k;
    }
    let mut mag_pos = vec![usize::MAX; n];
    for (k, &b) in pq.iter().enumerate() {
        mag_pos[b] = k;
    }

    // Initial state.
    let mut vm: Vec<f64> = net
        .buses()
        .iter()
        .map(|b| if cfg.flat_start && b.bus_type == BusType::Pq { 1.0 } else { b.vm })
        .collect();
    let mut va: Vec<f64> = net
        .buses()
        .iter()
        .map(|b| if cfg.flat_start { 0.0 } else { b.va.to_radians() })
        .collect();

    let (p_spec, q_spec) = specified_injections(net);

    let mut mismatch_norm = f64::INFINITY;
    for iter in 0..=cfg.max_iter {
        let (p_calc, q_calc) = computed_injections(&ybus, &vm, &va);

        // Mismatch vector [ΔP_pvpq; ΔQ_pq].
        let mut f = Vector::zeros(n_ang + n_mag);
        for (k, &b) in pvpq.iter().enumerate() {
            f[k] = p_spec[b] - p_calc[b];
        }
        for (k, &b) in pq.iter().enumerate() {
            f[n_ang + k] = q_spec[b] - q_calc[b];
        }
        mismatch_norm = f.norm_inf();
        if mismatch_norm < cfg.tol {
            let slack_p = p_calc[slack];
            pmu_obs::events::NrSolve {
                buses: n,
                iterations: iter,
                mismatch: mismatch_norm,
                converged: true,
            }
            .emit();
            return Ok(AcSolution {
                vm,
                va,
                iterations: iter,
                max_mismatch: mismatch_norm,
                slack_p,
            });
        }
        if iter == cfg.max_iter {
            break;
        }

        // Jacobian blocks: [H N; K L] with
        //   H = dP/dθ (pvpq × pvpq), N = dP/dV (pvpq × pq),
        //   K = dQ/dθ (pq × pvpq),   L = dQ/dV (pq × pq).
        let dim = n_ang + n_mag;
        let mut jac = Matrix::zeros(dim, dim);
        for i in 0..n {
            let gii = ybus[(i, i)].re;
            let bii = ybus[(i, i)].im;
            let api = ang_pos[i];
            let mpi = mag_pos[i];
            for j in 0..n {
                let y = ybus[(i, j)];
                if y == Complex64::ZERO && i != j {
                    continue;
                }
                let apj = ang_pos[j];
                let mpj = mag_pos[j];
                if i == j {
                    if api != usize::MAX {
                        jac[(api, api)] = -q_calc[i] - bii * vm[i] * vm[i];
                        if mpi != usize::MAX {
                            jac[(api, n_ang + mpi)] = p_calc[i] / vm[i] + gii * vm[i];
                        }
                    }
                    if mpi != usize::MAX {
                        jac[(n_ang + mpi, api)] = p_calc[i] - gii * vm[i] * vm[i];
                        jac[(n_ang + mpi, n_ang + mpi)] = q_calc[i] / vm[i] - bii * vm[i];
                    }
                } else {
                    let theta = va[i] - va[j];
                    let (s, c) = theta.sin_cos();
                    let gc_bs = y.re * c + y.im * s; // G cosθ + B sinθ
                    let gs_bc = y.re * s - y.im * c; // G sinθ - B cosθ
                    if api != usize::MAX && apj != usize::MAX {
                        jac[(api, apj)] = vm[i] * vm[j] * gs_bc;
                    }
                    if api != usize::MAX && mpj != usize::MAX {
                        jac[(api, n_ang + mpj)] = vm[i] * gc_bs;
                    }
                    if mpi != usize::MAX && apj != usize::MAX {
                        jac[(n_ang + mpi, apj)] = -vm[i] * vm[j] * gc_bs;
                    }
                    if mpi != usize::MAX && mpj != usize::MAX {
                        jac[(n_ang + mpi, n_ang + mpj)] = vm[i] * gs_bc;
                    }
                }
            }
        }

        let lu = LuFactors::factorize(&jac)?;
        let dx = lu.solve(&f)?;
        for (k, &b) in pvpq.iter().enumerate() {
            va[b] += dx[k];
        }
        for (k, &b) in pq.iter().enumerate() {
            vm[b] += dx[n_ang + k];
            // Guard against pathological steps through zero voltage.
            if vm[b] < 0.1 {
                vm[b] = 0.1;
            }
        }
    }
    pmu_obs::events::NrSolve {
        buses: n,
        iterations: cfg.max_iter,
        mismatch: mismatch_norm,
        converged: false,
    }
    .emit();
    Err(FlowError::Diverged { iters: cfg.max_iter, mismatch: mismatch_norm })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu_grid::cases::{ieee14, ieee30, ieee57};

    #[test]
    fn two_bus_analytic() {
        // Slack 1.0∠0 feeding a PQ load over x = 0.1 p.u. (lossless).
        // P = (V1 V2 / X) sin(δ). With P_load = 0.5 p.u., V2 solves the
        // classic quadratic; just verify the solver satisfies the equations.
        use pmu_grid::{Branch, Bus, BusType, Network};
        let net = Network::new(
            "two",
            100.0,
            vec![
                Bus { ext_id: 1, bus_type: BusType::Slack, pd: 0.0, qd: 0.0, gs: 0.0, bs: 0.0, base_kv: 135.0, vm: 1.0, va: 0.0 },
                Bus { ext_id: 2, bus_type: BusType::Pq, pd: 50.0, qd: 10.0, gs: 0.0, bs: 0.0, base_kv: 135.0, vm: 1.0, va: 0.0 },
            ],
            vec![Branch { from: 0, to: 1, r: 0.0, x: 0.1, b: 0.0, tap: 1.0, shift: 0.0, rate: 0.0, status: true }],
            vec![],
        )
        .unwrap();
        let sol = solve_ac(&net, &AcConfig::default()).unwrap();
        assert!(sol.max_mismatch < 1e-8);
        // Receiving-end P equals the load.
        let ybus = pmu_grid::ybus::build_ybus(&net);
        let (p, q) = computed_injections(&ybus, &sol.vm, &sol.va);
        assert!((p[1] + 0.5).abs() < 1e-8);
        assert!((q[1] + 0.1).abs() < 1e-8);
        // Slack supplies the load (lossless line ⇒ exactly 0.5).
        assert!((sol.slack_p - 0.5).abs() < 1e-8);
        // Voltage sags below 1, angle lags.
        assert!(sol.vm[1] < 1.0);
        assert!(sol.va[1] < 0.0);
    }

    #[test]
    fn ieee14_converges_to_canonical_state() {
        let net = ieee14().unwrap();
        let sol = solve_ac(&net, &AcConfig::default()).unwrap();
        assert!(sol.max_mismatch < 1e-8);
        assert!(sol.iterations <= 6, "took {} iterations", sol.iterations);
        // Canonical solved state: bus 3 at 1.010 p.u., -12.72°.
        assert!((sol.vm[2] - 1.010).abs() < 1e-3);
        assert!((sol.va[2].to_degrees() + 12.72).abs() < 0.3);
        // Bus 14 around 1.036 p.u., -16.04°.
        assert!((sol.vm[13] - 1.036).abs() < 5e-3);
        assert!((sol.va[13].to_degrees() + 16.04).abs() < 0.5);
        // Slack covers losses: P1 ≈ 2.324 p.u.
        assert!((sol.slack_p - 2.324).abs() < 0.02, "slack {}", sol.slack_p);
    }

    #[test]
    fn ieee14_flat_start_converges() {
        let net = ieee14().unwrap();
        let cfg = AcConfig { flat_start: true, ..AcConfig::default() };
        let sol = solve_ac(&net, &cfg).unwrap();
        let warm = solve_ac(&net, &AcConfig::default()).unwrap();
        for b in 0..14 {
            assert!((sol.vm[b] - warm.vm[b]).abs() < 1e-7);
            assert!((sol.va[b] - warm.va[b]).abs() < 1e-7);
        }
    }

    #[test]
    fn ieee30_and_synthetic_converge() {
        let sol30 = solve_ac(&ieee30().unwrap(), &AcConfig::default()).unwrap();
        assert!(sol30.max_mismatch < 1e-8);
        assert!(sol30.vm.iter().all(|&v| v > 0.9 && v < 1.15));
        let sol57 = solve_ac(&ieee57().unwrap(), &AcConfig::default()).unwrap();
        assert!(sol57.max_mismatch < 1e-8);
        assert!(sol57.vm.iter().all(|&v| v > 0.8 && v < 1.2));
    }

    #[test]
    fn outage_changes_the_solution() {
        let net = ieee14().unwrap();
        let base = solve_ac(&net, &AcConfig::default()).unwrap();
        let idx = net.valid_outage_branches()[0];
        let out_net = net.with_branch_outage(idx).unwrap();
        let out = solve_ac(&out_net, &AcConfig::default()).unwrap();
        let max_delta = (0..14)
            .map(|b| (base.va[b] - out.va[b]).abs())
            .fold(0.0_f64, f64::max);
        assert!(max_delta > 1e-3, "outage must visibly shift angles");
    }

    #[test]
    fn pv_bus_magnitude_is_held() {
        let net = ieee14().unwrap();
        let sol = solve_ac(&net, &AcConfig::default()).unwrap();
        // PV buses keep their setpoints (2:1.045, 3:1.010, 6:1.070, 8:1.090).
        assert!((sol.vm[1] - 1.045).abs() < 1e-9);
        assert!((sol.vm[5] - 1.070).abs() < 1e-9);
        assert!((sol.vm[7] - 1.090).abs() < 1e-9);
    }

    #[test]
    fn divergence_is_reported() {
        // Absurd load forces divergence.
        let mut net = ieee14().unwrap();
        net.set_load(13, 50_000.0, 20_000.0).unwrap();
        match solve_ac(&net, &AcConfig { max_iter: 10, ..AcConfig::default() }) {
            Err(FlowError::Diverged { .. }) | Err(FlowError::SingularJacobian(_)) => {}
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn phasors_match_polar_state() {
        let net = ieee14().unwrap();
        let sol = solve_ac(&net, &AcConfig::default()).unwrap();
        let ph = sol.phasors();
        assert_eq!(ph.len(), 14);
        for b in 0..14 {
            assert!((ph[b].abs() - sol.vm[b]).abs() < 1e-12);
            assert!((ph[b].arg() - sol.va[b]).abs() < 1e-12);
        }
    }
}

#[cfg(test)]
mod q_limit_tests {
    use super::*;
    use pmu_grid::cases::ieee14;

    /// Required aggregate generator Q (MVAr) per bus in a solved state.
    fn gen_q(net: &Network, sol: &AcSolution, bus: usize) -> f64 {
        let ybus = pmu_grid::ybus::build_ybus(net);
        let (_, q_calc) = computed_injections(&ybus, &sol.vm, &sol.va);
        q_calc[bus] * net.base_mva + net.buses()[bus].qd
    }

    /// IEEE-14 with bus 6's generator given an artificially tight Q range,
    /// forcing a violation at the nominal operating point.
    fn tight_case() -> (Network, usize) {
        let net = ieee14().unwrap();
        let mut buses = net.buses().to_vec();
        let branches = net.branches().to_vec();
        let mut gens = net.gens().to_vec();
        // Generator at bus 6 (internal 5): clamp qmax to 2 MVAr (it needs
        // ~12 at nominal conditions).
        let gi = gens.iter().position(|g| g.bus == 5).unwrap();
        gens[gi].qmax = 2.0;
        gens[gi].qmin = -2.0;
        buses[5].vm = net.buses()[5].vm;
        let net2 = Network::new("tight", net.base_mva, buses, branches, gens).unwrap();
        (net2, 5)
    }

    #[test]
    fn without_enforcement_the_limit_is_violated() {
        let (net, bus) = tight_case();
        let sol = solve_ac(&net, &AcConfig::default()).unwrap();
        assert!(gen_q(&net, &sol, bus) > 2.0 + 1e-6, "fixture must violate qmax");
        // PV magnitude held exactly at setpoint.
        assert!((sol.vm[bus] - net.buses()[bus].vm).abs() < 1e-12);
    }

    #[test]
    fn enforcement_pins_q_and_releases_voltage() {
        let (net, bus) = tight_case();
        let cfg = AcConfig { enforce_q_limits: true, ..AcConfig::default() };
        let sol = solve_ac(&net, &cfg).unwrap();
        assert!(sol.max_mismatch < 1e-8);
        // The enforced solution was computed on a modified network where
        // the bus is PQ with Q pinned at the limit; verify the physical
        // outcome on the original network's state: the bus voltage drops
        // below its setpoint (the generator can no longer hold it).
        assert!(
            sol.vm[bus] < net.buses()[bus].vm - 1e-4,
            "voltage should sag: {} vs setpoint {}",
            sol.vm[bus],
            net.buses()[bus].vm
        );
        // And the required Q at the bus equals the pinned limit.
        let mut pinned = net.clone();
        pinned.set_bus_type(bus, BusType::Pq).unwrap();
        let q = gen_q(&pinned, &sol, bus);
        assert!((q - 2.0).abs() < 0.05, "Q pinned near the 2 MVAr limit, got {q}");
    }

    #[test]
    fn enforcement_is_a_noop_when_limits_are_loose() {
        let net = ieee14().unwrap();
        let plain = solve_ac(&net, &AcConfig::default()).unwrap();
        let enforced = solve_ac(
            &net,
            &AcConfig { enforce_q_limits: true, ..AcConfig::default() },
        )
        .unwrap();
        // IEEE-14's canonical limits are (slightly) violated at bus 3 in
        // the exact case data; if no switching occurred the states agree
        // bit-for-bit, otherwise voltages differ only modestly.
        for b in 0..14 {
            assert!((plain.vm[b] - enforced.vm[b]).abs() < 0.05);
        }
    }

    #[test]
    fn slack_is_never_demoted() {
        let mut net = ieee14().unwrap();
        assert!(net.set_bus_type(net.slack(), BusType::Pq).is_err());
        assert!(net.set_bus_type(1, BusType::Slack).is_err());
        assert!(net.set_bus_type(99, BusType::Pq).is_err());
        // Legal change works.
        net.set_bus_type(1, BusType::Pq).unwrap();
        assert_eq!(net.buses()[1].bus_type, BusType::Pq);
    }
}
