//! Full Newton–Raphson AC power flow in polar coordinates.
//!
//! The paper's data pipeline uses the AC model ("The AC model is used,
//! instead of the DC approximation, when calculating synchrophasors").
//! This module mirrors MATPOWER's `runpf` with the standard polar
//! formulation: mismatch equations for P at every PV/PQ bus and Q at every
//! PQ bus, and the full Jacobian solved per iteration.
//!
//! Two linear-algebra paths back the Newton step:
//!
//! - **Sparse (default).** The Jacobian inherits the grid graph's
//!   sparsity (~99% zero at IEEE-118), and its *pattern* is fixed across
//!   Newton iterations and across load realizations of one topology.
//!   [`AcSolver`] builds the CSR Y-bus, the Jacobian skeleton, and the
//!   symbolic LU (RCM ordering) once per (system, outage) topology, then
//!   refactors numerics only — the inner loop is allocation-free after
//!   warm-up. If a static pivot ever underflows (no row exchanges are
//!   possible on a fixed pattern), the step falls back to the dense
//!   pivoted LU for that iteration.
//! - **Dense.** The original dense-Jacobian + partial-pivoting path,
//!   retained behind [`LinearSolver::Dense`] for parity testing exactly
//!   like `matmul_reference` backs the blocked matmul.

// Indexed loops are the clearest expression of the dense numerical
// kernels in this module.
#![allow(clippy::needless_range_loop)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::error::FlowError;
use crate::Result;
use pmu_grid::{BusType, Network};
use pmu_numerics::lu::LuFactors;
use pmu_numerics::sparse_lu::{SparseLu, SymbolicLu};
use pmu_numerics::{CMatrix, Complex64, CsrCMatrix, CsrMatrix, Matrix, Vector};

/// Which linear-algebra path the Newton step uses.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearSolver {
    /// CSR Jacobian, RCM-ordered sparse LU with symbolic pattern reuse.
    Sparse,
    /// Dense Jacobian and dense LU with partial pivoting (the reference
    /// path, kept for parity testing).
    Dense,
}

/// Process-wide default for [`AcConfig::default`]'s `linear_solver`:
/// `0` = unset (env / sparse), `1` = sparse, `2` = dense.
static DEFAULT_SOLVER: AtomicU8 = AtomicU8::new(0);

/// Override the linear solver that [`AcConfig::default`] selects
/// (`None` clears the override). Used by `repro --dense-flow` and parity
/// harnesses; explicit `AcConfig { linear_solver, .. }` always wins.
pub fn set_default_linear_solver(solver: Option<LinearSolver>) {
    let code = match solver {
        None => 0,
        Some(LinearSolver::Sparse) => 1,
        Some(LinearSolver::Dense) => 2,
    };
    DEFAULT_SOLVER.store(code, Ordering::SeqCst);
}

/// The solver [`AcConfig::default`] resolves to: the
/// [`set_default_linear_solver`] override, then the `PMU_DENSE_FLOW`
/// environment variable (any value but `0`/empty selects dense), then
/// sparse.
pub fn default_linear_solver() -> LinearSolver {
    match DEFAULT_SOLVER.load(Ordering::SeqCst) {
        1 => LinearSolver::Sparse,
        2 => LinearSolver::Dense,
        _ => {
            static ENV_DENSE: OnceLock<bool> = OnceLock::new();
            let dense = *ENV_DENSE.get_or_init(|| {
                std::env::var("PMU_DENSE_FLOW")
                    .map(|v| !v.trim().is_empty() && v.trim() != "0")
                    .unwrap_or(false)
            });
            if dense { LinearSolver::Dense } else { LinearSolver::Sparse }
        }
    }
}

/// Configuration of the Newton–Raphson solver.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, PartialEq)]
pub struct AcConfig {
    /// Convergence tolerance on the infinity norm of the power mismatch
    /// (p.u.).
    pub tol: f64,
    /// Maximum Newton iterations.
    pub max_iter: usize,
    /// Start from a flat profile (`V = 1`, `θ = 0`) instead of the case's
    /// stored voltage estimate. A warm start from the case values converges
    /// in fewer iterations.
    pub flat_start: bool,
    /// Enforce generator reactive limits: after convergence, PV buses
    /// whose aggregate Q output violates its [qmin, qmax] range are
    /// switched to PQ at the violated limit and the flow is re-solved
    /// (up to a few outer rounds), as MATPOWER's `ENFORCE_Q_LIMS` does.
    pub enforce_q_limits: bool,
    /// Linear-algebra path for the Newton step. Defaults to
    /// [`default_linear_solver`] (sparse unless overridden).
    pub linear_solver: LinearSolver,
    /// Reuse the previous converged state of an [`AcSolver`] as the
    /// initial guess for the next `solve` call. Consecutive solves in a
    /// simulated window differ only by small load/dispatch increments, so
    /// warm starting roughly halves the Newton iterations; PV/slack
    /// setpoints are still refreshed from the network every call, and a
    /// failed solve always cold-starts the next one. Off by default —
    /// one-shot `solve_ac` callers and the micro benches measure the
    /// cold-start cost; scenario generation opts in.
    pub warm_start: bool,
}

impl Default for AcConfig {
    fn default() -> Self {
        AcConfig {
            tol: 1e-8,
            max_iter: 30,
            flat_start: false,
            enforce_q_limits: false,
            linear_solver: default_linear_solver(),
            warm_start: false,
        }
    }
}

/// A converged AC power-flow state.
#[derive(Debug, Clone)]
pub struct AcSolution {
    /// Voltage magnitudes (p.u.), indexed by internal bus index.
    pub vm: Vec<f64>,
    /// Voltage angles (radians).
    pub va: Vec<f64>,
    /// Newton iterations used.
    pub iterations: usize,
    /// Final infinity-norm power mismatch (p.u.).
    pub max_mismatch: f64,
    /// Active power injected by the slack bus (p.u.), covering losses.
    pub slack_p: f64,
}

impl AcSolution {
    /// The complex voltage phasor at `bus`.
    pub fn phasor(&self, bus: usize) -> Complex64 {
        Complex64::from_polar(self.vm[bus], self.va[bus])
    }

    /// All phasors in bus order.
    pub fn phasors(&self) -> Vec<Complex64> {
        (0..self.vm.len()).map(|b| self.phasor(b)).collect()
    }
}

/// Net specified injections in per-unit: `(P_spec, Q_spec)` per bus, where
/// `P = (ΣPg - Pd)/base` and `Q = (ΣQg - Qd)/base`.
fn specified_injections_into(net: &Network, p: &mut [f64], q: &mut [f64]) {
    let base = net.base_mva;
    for (i, bus) in net.buses().iter().enumerate() {
        p[i] = -bus.pd / base;
        q[i] = -bus.qd / base;
    }
    for g in net.gens().iter().filter(|g| g.status) {
        p[g.bus] += g.pg / base;
        q[g.bus] += g.qg / base;
    }
}

/// Computed injections `(P, Q)` at every bus for the current state.
fn computed_injections(
    ybus: &CMatrix,
    vm: &[f64],
    va: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    let n = vm.len();
    let mut p = vec![0.0; n];
    let mut q = vec![0.0; n];
    for i in 0..n {
        let mut pi = 0.0;
        let mut qi = 0.0;
        for j in 0..n {
            let y = ybus[(i, j)];
            if y == Complex64::ZERO {
                continue;
            }
            let theta = va[i] - va[j];
            let (s, c) = theta.sin_cos();
            pi += vm[i] * vm[j] * (y.re * c + y.im * s);
            qi += vm[i] * vm[j] * (y.re * s - y.im * c);
        }
        p[i] = pi;
        q[i] = qi;
    }
    (p, q)
}

/// Solve the AC power flow for `net`.
///
/// # Errors
/// Returns [`FlowError::Diverged`] when the mismatch tolerance is not met
/// within the iteration budget, and [`FlowError::SingularJacobian`] when a
/// Newton step cannot be computed.
pub fn solve_ac(net: &Network, cfg: &AcConfig) -> Result<AcSolution> {
    let _span = pmu_obs::span("flow.solve_ac").with("buses", net.n_buses());
    if !cfg.enforce_q_limits {
        return solve_ac_unconstrained(net, cfg);
    }
    // Outer PV→PQ switching loop (MATPOWER's ENFORCE_Q_LIMS): after each
    // converged solve, the worst reactive-limit violator is pinned at its
    // limit and demoted to PQ, until no violations remain.
    const MAX_ROUNDS: usize = 6;
    let mut work = net.clone();
    for _ in 0..MAX_ROUNDS {
        let sol = solve_ac_unconstrained(&work, cfg)?;
        match worst_q_violation(&work, &sol) {
            None => return Ok(sol),
            Some((bus, pinned_q)) => {
                pmu_obs::events::QLimitPin { bus, q_mvar: pinned_q }.emit();
                // Pin every in-service generator at the bus so their
                // aggregate reactive output equals the violated limit.
                let gen_idx: Vec<usize> = work
                    .gens()
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.status && g.bus == bus)
                    .map(|(i, _)| i)
                    .collect();
                let share = pinned_q / gen_idx.len().max(1) as f64;
                for gi in gen_idx {
                    work.set_gen_q(gi, share)?;
                }
                work.set_bus_type(bus, pmu_grid::BusType::Pq)?;
            }
        }
    }
    solve_ac_unconstrained(&work, cfg)
}

/// The aggregate reactive output (MVAr) each PV bus must supply in the
/// solved state, against its aggregate limits; returns the worst violator
/// as `(bus, limit_to_pin_at)`.
fn worst_q_violation(net: &Network, sol: &AcSolution) -> Option<(usize, f64)> {
    let ybus = pmu_grid::ybus::build_ybus(net);
    let (_, q_calc) = computed_injections(&ybus, &sol.vm, &sol.va);
    let base = net.base_mva;
    let mut worst: Option<(usize, f64, f64)> = None; // (bus, pin, violation)
    for (bus, b) in net.buses().iter().enumerate() {
        if b.bus_type != BusType::Pv {
            continue;
        }
        let gens: Vec<&pmu_grid::Gen> =
            net.gens().iter().filter(|g| g.status && g.bus == bus).collect();
        if gens.is_empty() {
            continue;
        }
        let qmax: f64 = gens.iter().map(|g| g.qmax).sum();
        let qmin: f64 = gens.iter().map(|g| g.qmin).sum();
        // Required generator output = injection + demand.
        let q_gen = q_calc[bus] * base + b.qd;
        let (pin, violation) = if q_gen > qmax {
            (qmax, q_gen - qmax)
        } else if q_gen < qmin {
            (qmin, qmin - q_gen)
        } else {
            continue;
        };
        if worst.map(|(_, _, v)| violation > v).unwrap_or(true) {
            worst = Some((bus, pin, violation));
        }
    }
    worst.map(|(bus, pin, _)| (bus, pin))
}

/// Solve the AC power flow without reactive-limit enforcement.
fn solve_ac_unconstrained(net: &Network, cfg: &AcConfig) -> Result<AcSolution> {
    AcSolver::new(net, cfg).solve(net)
}

/// A reusable Newton–Raphson solver bound to one network *topology*.
///
/// Construction caches everything that depends only on the topology and
/// bus-type assignment: the sparse Y-bus, the unknown index sets, the
/// Jacobian's CSR skeleton with precomputed stamp slots, and the
/// symbolic LU (fill pattern + RCM ordering). [`AcSolver::solve`] then
/// accepts any network with the **same topology** — in practice the same
/// grid with different loads/dispatch, e.g. consecutive OU draws of one
/// (system, outage) scenario window — and only refactors numerics, so
/// the Newton inner loop performs no allocations after warm-up.
///
/// For one-shot solves use [`solve_ac`], which builds a throwaway
/// `AcSolver` internally.
pub struct AcSolver {
    cfg: AcConfig,
    n: usize,
    slack: usize,
    ybus: CsrCMatrix,
    pvpq: Vec<usize>,
    pq: Vec<usize>,
    n_ang: usize,
    dim: usize,
    /// Jacobian CSR skeleton (fixed pattern; values rewritten per
    /// iteration). `None` on the dense path.
    jac: Option<CsrMatrix>,
    /// Per Y-bus nonzero, the flat value slots of its four Jacobian
    /// stamps `[H, N, K, L]` (`usize::MAX` = block absent for this bus
    /// pair), in Y-bus CSR order.
    stamps: Vec<[usize; 4]>,
    /// Symbolic factorization of the Jacobian pattern (sparse path).
    symbolic: Option<SymbolicLu>,
    /// Numeric factors, allocated on first use and refactored in place.
    lu: Option<SparseLu>,
    // Preallocated per-iteration scratch.
    p_calc: Vec<f64>,
    q_calc: Vec<f64>,
    p_spec: Vec<f64>,
    q_spec: Vec<f64>,
    f: Vec<f64>,
    dx: Vec<f64>,
    scratch: Vec<f64>,
    vm: Vec<f64>,
    va: Vec<f64>,
    /// `vm`/`va` hold a converged state from the previous `solve` call
    /// (the warm-start precondition; cleared on entry, set on success).
    warm_ready: bool,
}

impl AcSolver {
    /// Build a solver for `net`'s topology under `cfg`.
    pub fn new(net: &Network, cfg: &AcConfig) -> AcSolver {
        let n = net.n_buses();
        let ybus = pmu_grid::ybus::build_ybus_sparse(net);
        let slack = net.slack();

        // Index sets: angles unknown at PV+PQ, magnitudes unknown at PQ.
        let pvpq: Vec<usize> = (0..n).filter(|&i| i != slack).collect();
        let pq: Vec<usize> =
            (0..n).filter(|&i| net.buses()[i].bus_type == BusType::Pq).collect();
        let n_ang = pvpq.len();
        let dim = n_ang + pq.len();

        let mut ang_pos = vec![usize::MAX; n];
        for (k, &b) in pvpq.iter().enumerate() {
            ang_pos[b] = k;
        }
        let mut mag_pos = vec![usize::MAX; n];
        for (k, &b) in pq.iter().enumerate() {
            mag_pos[b] = k;
        }

        let (jac, stamps, symbolic) = if cfg.linear_solver == LinearSolver::Sparse {
            // Jacobian skeleton: every Y-bus nonzero (i, j) contributes
            // up to four entries, one per block [H N; K L], present when
            // the respective unknowns exist.
            let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(4 * ybus.nnz());
            for i in 0..n {
                let (cols, _) = ybus.row(i);
                for &j in cols {
                    let (api, mpi) = (ang_pos[i], mag_pos[i]);
                    let (apj, mpj) = (ang_pos[j], mag_pos[j]);
                    if api != usize::MAX && apj != usize::MAX {
                        triplets.push((api, apj, 0.0));
                    }
                    if api != usize::MAX && mpj != usize::MAX {
                        triplets.push((api, n_ang + mpj, 0.0));
                    }
                    if mpi != usize::MAX && apj != usize::MAX {
                        triplets.push((n_ang + mpi, apj, 0.0));
                    }
                    if mpi != usize::MAX && mpj != usize::MAX {
                        triplets.push((n_ang + mpi, n_ang + mpj, 0.0));
                    }
                }
            }
            let jac = CsrMatrix::from_triplets(dim, dim, triplets)
                .expect("stamp indices are within the Jacobian dimension");
            let mut stamps = Vec::with_capacity(ybus.nnz());
            for i in 0..n {
                let (cols, _) = ybus.row(i);
                for &j in cols {
                    let (api, mpi) = (ang_pos[i], mag_pos[i]);
                    let (apj, mpj) = (ang_pos[j], mag_pos[j]);
                    let slot = |r: usize, c: usize| -> usize {
                        if r == usize::MAX || c == usize::MAX {
                            return usize::MAX;
                        }
                        jac.position(r, c).expect("stamp was inserted above")
                    };
                    stamps.push([
                        slot(api, apj),
                        slot(api, if mpj == usize::MAX { usize::MAX } else { n_ang + mpj }),
                        slot(if mpi == usize::MAX { usize::MAX } else { n_ang + mpi }, apj),
                        slot(
                            if mpi == usize::MAX { usize::MAX } else { n_ang + mpi },
                            if mpj == usize::MAX { usize::MAX } else { n_ang + mpj },
                        ),
                    ]);
                }
            }
            let symbolic =
                SymbolicLu::analyze(&jac).expect("Jacobian skeleton is square");
            (Some(jac), stamps, Some(symbolic))
        } else {
            (None, Vec::new(), None)
        };

        AcSolver {
            cfg: cfg.clone(),
            n,
            slack,
            ybus,
            pvpq,
            pq,
            n_ang,
            dim,
            jac,
            stamps,
            symbolic,
            lu: None,
            p_calc: vec![0.0; n],
            q_calc: vec![0.0; n],
            p_spec: vec![0.0; n],
            q_spec: vec![0.0; n],
            f: vec![0.0; dim],
            dx: vec![0.0; dim],
            scratch: vec![0.0; dim],
            vm: vec![0.0; n],
            va: vec![0.0; n],
            warm_ready: false,
        }
    }

    /// Injections `(P, Q)` for the current state, over the Y-bus
    /// nonzeros only. Visits the same nonzero contributions in the same
    /// ascending-column order as the dense `computed_injections`, so the
    /// sums are bit-identical.
    fn injections(&mut self) {
        for i in 0..self.n {
            let (cols, yvals) = self.ybus.row(i);
            let mut pi = 0.0;
            let mut qi = 0.0;
            for (&j, &y) in cols.iter().zip(yvals) {
                let theta = self.va[i] - self.va[j];
                let (s, c) = theta.sin_cos();
                pi += self.vm[i] * self.vm[j] * (y.re * c + y.im * s);
                qi += self.vm[i] * self.vm[j] * (y.re * s - y.im * c);
            }
            self.p_calc[i] = pi;
            self.q_calc[i] = qi;
        }
    }

    /// Rewrite the sparse Jacobian's values for the current state.
    fn assemble_sparse(&mut self) {
        let jac = self.jac.as_mut().expect("sparse path");
        let vals = jac.values_mut();
        let mut flat = 0usize;
        for i in 0..self.n {
            let (cols, yvals) = self.ybus.row(i);
            for (&j, &y) in cols.iter().zip(yvals) {
                let st = self.stamps[flat];
                flat += 1;
                if i == j {
                    let (gii, bii) = (y.re, y.im);
                    if st[0] != usize::MAX {
                        vals[st[0]] = -self.q_calc[i] - bii * self.vm[i] * self.vm[i];
                    }
                    if st[1] != usize::MAX {
                        vals[st[1]] = self.p_calc[i] / self.vm[i] + gii * self.vm[i];
                    }
                    if st[2] != usize::MAX {
                        vals[st[2]] = self.p_calc[i] - gii * self.vm[i] * self.vm[i];
                    }
                    if st[3] != usize::MAX {
                        vals[st[3]] = self.q_calc[i] / self.vm[i] - bii * self.vm[i];
                    }
                } else {
                    let theta = self.va[i] - self.va[j];
                    let (s, c) = theta.sin_cos();
                    let gc_bs = y.re * c + y.im * s; // G cosθ + B sinθ
                    let gs_bc = y.re * s - y.im * c; // G sinθ - B cosθ
                    if st[0] != usize::MAX {
                        vals[st[0]] = self.vm[i] * self.vm[j] * gs_bc;
                    }
                    if st[1] != usize::MAX {
                        vals[st[1]] = self.vm[i] * gc_bs;
                    }
                    if st[2] != usize::MAX {
                        vals[st[2]] = -self.vm[i] * self.vm[j] * gc_bs;
                    }
                    if st[3] != usize::MAX {
                        vals[st[3]] = self.vm[i] * gs_bc;
                    }
                }
            }
        }
    }

    /// Assemble the dense Jacobian (reference path; allocates).
    fn assemble_dense(&self) -> Matrix {
        let mut jac = Matrix::zeros(self.dim, self.dim);
        let mut ang_pos = vec![usize::MAX; self.n];
        for (k, &b) in self.pvpq.iter().enumerate() {
            ang_pos[b] = k;
        }
        let mut mag_pos = vec![usize::MAX; self.n];
        for (k, &b) in self.pq.iter().enumerate() {
            mag_pos[b] = k;
        }
        let n_ang = self.n_ang;
        for i in 0..self.n {
            let (cols, yvals) = self.ybus.row(i);
            let (api, mpi) = (ang_pos[i], mag_pos[i]);
            for (&j, &y) in cols.iter().zip(yvals) {
                let (apj, mpj) = (ang_pos[j], mag_pos[j]);
                if i == j {
                    let (gii, bii) = (y.re, y.im);
                    if api != usize::MAX {
                        jac[(api, api)] = -self.q_calc[i] - bii * self.vm[i] * self.vm[i];
                        if mpi != usize::MAX {
                            jac[(api, n_ang + mpi)] =
                                self.p_calc[i] / self.vm[i] + gii * self.vm[i];
                        }
                    }
                    if mpi != usize::MAX {
                        jac[(n_ang + mpi, api)] =
                            self.p_calc[i] - gii * self.vm[i] * self.vm[i];
                        jac[(n_ang + mpi, n_ang + mpi)] =
                            self.q_calc[i] / self.vm[i] - bii * self.vm[i];
                    }
                } else {
                    let theta = self.va[i] - self.va[j];
                    let (s, c) = theta.sin_cos();
                    let gc_bs = y.re * c + y.im * s;
                    let gs_bc = y.re * s - y.im * c;
                    if api != usize::MAX && apj != usize::MAX {
                        jac[(api, apj)] = self.vm[i] * self.vm[j] * gs_bc;
                    }
                    if api != usize::MAX && mpj != usize::MAX {
                        jac[(api, n_ang + mpj)] = self.vm[i] * gc_bs;
                    }
                    if mpi != usize::MAX && apj != usize::MAX {
                        jac[(n_ang + mpi, apj)] = -self.vm[i] * self.vm[j] * gc_bs;
                    }
                    if mpi != usize::MAX && mpj != usize::MAX {
                        jac[(n_ang + mpi, n_ang + mpj)] = self.vm[i] * gs_bc;
                    }
                }
            }
        }
        jac
    }

    /// Compute the Newton step `J dx = f` into `self.dx`.
    fn newton_step(&mut self) -> Result<()> {
        if self.cfg.linear_solver == LinearSolver::Dense {
            let jac = self.assemble_dense();
            let lu = LuFactors::factorize(&jac)?;
            let f = Vector::from(self.f.clone());
            let dx = lu.solve(&f)?;
            self.dx.copy_from_slice(dx.as_slice());
            return Ok(());
        }
        self.assemble_sparse();
        let jac = self.jac.as_ref().expect("sparse path");
        let refactored = match self.lu.as_mut() {
            Some(lu) => lu.refactor(jac),
            None => match self.symbolic.as_ref().expect("sparse path").factorize(jac) {
                Ok(lu) => {
                    self.lu = Some(lu);
                    Ok(())
                }
                Err(e) => Err(e),
            },
        };
        match refactored {
            Ok(()) => {
                let lu = self.lu.as_ref().expect("factorized above");
                lu.solve_with_scratch(&self.f, &mut self.dx, &mut self.scratch)?;
                Ok(())
            }
            Err(pmu_numerics::NumericsError::Singular { .. }) => {
                // No static pivot on the fixed pattern — fall back to
                // the dense pivoted LU for this iteration. Rare (near
                // voltage collapse); the next iteration retries sparse.
                pmu_obs::counter!("flow.sparse_pivot_fallback").inc();
                let jac = self.assemble_dense();
                let lu = LuFactors::factorize(&jac)?;
                let f = Vector::from(self.f.clone());
                let dx = lu.solve(&f)?;
                self.dx.copy_from_slice(dx.as_slice());
                Ok(())
            }
            Err(other) => Err(other.into()),
        }
    }

    /// Solve the power flow for `net`, which must share the topology and
    /// bus-type assignment this solver was built from (same buses,
    /// branches, and statuses; loads and dispatch are free to differ).
    ///
    /// # Errors
    /// As [`solve_ac`]; additionally [`FlowError::Grid`] when `net`'s
    /// size does not match the cached topology.
    pub fn solve(&mut self, net: &Network) -> Result<AcSolution> {
        if net.n_buses() != self.n {
            return Err(FlowError::Grid(format!(
                "AcSolver built for {} buses, got {}",
                self.n,
                net.n_buses()
            )));
        }
        let (tol, max_iter, flat_start) =
            (self.cfg.tol, self.cfg.max_iter, self.cfg.flat_start);
        let warm = self.cfg.warm_start && self.warm_ready;
        // Cleared up front so a diverged solve can never seed the next
        // one with a half-stepped state; re-set on convergence below.
        self.warm_ready = false;
        for (i, b) in net.buses().iter().enumerate() {
            if warm {
                // Keep the previous converged state as the guess, but
                // re-pin what the network specifies: PV/slack magnitude
                // setpoints and the slack angle reference.
                match b.bus_type {
                    BusType::Pq => {}
                    BusType::Pv => self.vm[i] = b.vm,
                    BusType::Slack => {
                        self.vm[i] = b.vm;
                        self.va[i] = b.va.to_radians();
                    }
                }
            } else {
                self.vm[i] =
                    if flat_start && b.bus_type == BusType::Pq { 1.0 } else { b.vm };
                self.va[i] = if flat_start { 0.0 } else { b.va.to_radians() };
            }
        }
        specified_injections_into(net, &mut self.p_spec, &mut self.q_spec);

        let mut mismatch_norm = f64::INFINITY;
        for iter in 0..=max_iter {
            self.injections();

            // Mismatch vector [ΔP_pvpq; ΔQ_pq].
            for (k, &b) in self.pvpq.iter().enumerate() {
                self.f[k] = self.p_spec[b] - self.p_calc[b];
            }
            for (k, &b) in self.pq.iter().enumerate() {
                self.f[self.n_ang + k] = self.q_spec[b] - self.q_calc[b];
            }
            mismatch_norm = self.f.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
            if mismatch_norm < tol {
                self.warm_ready = true;
                let slack_p = self.p_calc[self.slack];
                pmu_obs::events::NrSolve {
                    buses: self.n,
                    iterations: iter,
                    mismatch: mismatch_norm,
                    converged: true,
                }
                .emit();
                return Ok(AcSolution {
                    vm: self.vm.clone(),
                    va: self.va.clone(),
                    iterations: iter,
                    max_mismatch: mismatch_norm,
                    slack_p,
                });
            }
            if iter == max_iter {
                break;
            }

            self.newton_step()?;
            for (k, &b) in self.pvpq.iter().enumerate() {
                self.va[b] += self.dx[k];
            }
            for (k, &b) in self.pq.iter().enumerate() {
                self.vm[b] += self.dx[self.n_ang + k];
                // Guard against pathological steps through zero voltage.
                if self.vm[b] < 0.1 {
                    self.vm[b] = 0.1;
                }
            }
        }
        pmu_obs::events::NrSolve {
            buses: self.n,
            iterations: self.cfg.max_iter,
            mismatch: mismatch_norm,
            converged: false,
        }
        .emit();
        Err(FlowError::Diverged { iters: self.cfg.max_iter, mismatch: mismatch_norm })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu_grid::cases::{ieee14, ieee30, ieee57};

    #[test]
    fn two_bus_analytic() {
        // Slack 1.0∠0 feeding a PQ load over x = 0.1 p.u. (lossless).
        // P = (V1 V2 / X) sin(δ). With P_load = 0.5 p.u., V2 solves the
        // classic quadratic; just verify the solver satisfies the equations.
        use pmu_grid::{Branch, Bus, BusType, Network};
        let net = Network::new(
            "two",
            100.0,
            vec![
                Bus { ext_id: 1, bus_type: BusType::Slack, pd: 0.0, qd: 0.0, gs: 0.0, bs: 0.0, base_kv: 135.0, vm: 1.0, va: 0.0 },
                Bus { ext_id: 2, bus_type: BusType::Pq, pd: 50.0, qd: 10.0, gs: 0.0, bs: 0.0, base_kv: 135.0, vm: 1.0, va: 0.0 },
            ],
            vec![Branch { from: 0, to: 1, r: 0.0, x: 0.1, b: 0.0, tap: 1.0, shift: 0.0, rate: 0.0, status: true }],
            vec![],
        )
        .unwrap();
        let sol = solve_ac(&net, &AcConfig::default()).unwrap();
        assert!(sol.max_mismatch < 1e-8);
        // Receiving-end P equals the load.
        let ybus = pmu_grid::ybus::build_ybus(&net);
        let (p, q) = computed_injections(&ybus, &sol.vm, &sol.va);
        assert!((p[1] + 0.5).abs() < 1e-8);
        assert!((q[1] + 0.1).abs() < 1e-8);
        // Slack supplies the load (lossless line ⇒ exactly 0.5).
        assert!((sol.slack_p - 0.5).abs() < 1e-8);
        // Voltage sags below 1, angle lags.
        assert!(sol.vm[1] < 1.0);
        assert!(sol.va[1] < 0.0);
    }

    #[test]
    fn ieee14_converges_to_canonical_state() {
        let net = ieee14().unwrap();
        let sol = solve_ac(&net, &AcConfig::default()).unwrap();
        assert!(sol.max_mismatch < 1e-8);
        assert!(sol.iterations <= 6, "took {} iterations", sol.iterations);
        // Canonical solved state: bus 3 at 1.010 p.u., -12.72°.
        assert!((sol.vm[2] - 1.010).abs() < 1e-3);
        assert!((sol.va[2].to_degrees() + 12.72).abs() < 0.3);
        // Bus 14 around 1.036 p.u., -16.04°.
        assert!((sol.vm[13] - 1.036).abs() < 5e-3);
        assert!((sol.va[13].to_degrees() + 16.04).abs() < 0.5);
        // Slack covers losses: P1 ≈ 2.324 p.u.
        assert!((sol.slack_p - 2.324).abs() < 0.02, "slack {}", sol.slack_p);
    }

    #[test]
    fn ieee14_flat_start_converges() {
        let net = ieee14().unwrap();
        let cfg = AcConfig { flat_start: true, ..AcConfig::default() };
        let sol = solve_ac(&net, &cfg).unwrap();
        let warm = solve_ac(&net, &AcConfig::default()).unwrap();
        for b in 0..14 {
            assert!((sol.vm[b] - warm.vm[b]).abs() < 1e-7);
            assert!((sol.va[b] - warm.va[b]).abs() < 1e-7);
        }
    }

    #[test]
    fn ieee30_and_synthetic_converge() {
        let sol30 = solve_ac(&ieee30().unwrap(), &AcConfig::default()).unwrap();
        assert!(sol30.max_mismatch < 1e-8);
        assert!(sol30.vm.iter().all(|&v| v > 0.9 && v < 1.15));
        let sol57 = solve_ac(&ieee57().unwrap(), &AcConfig::default()).unwrap();
        assert!(sol57.max_mismatch < 1e-8);
        assert!(sol57.vm.iter().all(|&v| v > 0.8 && v < 1.2));
    }

    #[test]
    fn outage_changes_the_solution() {
        let net = ieee14().unwrap();
        let base = solve_ac(&net, &AcConfig::default()).unwrap();
        let idx = net.valid_outage_branches()[0];
        let out_net = net.with_branch_outage(idx).unwrap();
        let out = solve_ac(&out_net, &AcConfig::default()).unwrap();
        let max_delta = (0..14)
            .map(|b| (base.va[b] - out.va[b]).abs())
            .fold(0.0_f64, f64::max);
        assert!(max_delta > 1e-3, "outage must visibly shift angles");
    }

    #[test]
    fn pv_bus_magnitude_is_held() {
        let net = ieee14().unwrap();
        let sol = solve_ac(&net, &AcConfig::default()).unwrap();
        // PV buses keep their setpoints (2:1.045, 3:1.010, 6:1.070, 8:1.090).
        assert!((sol.vm[1] - 1.045).abs() < 1e-9);
        assert!((sol.vm[5] - 1.070).abs() < 1e-9);
        assert!((sol.vm[7] - 1.090).abs() < 1e-9);
    }

    #[test]
    fn divergence_is_reported() {
        // Absurd load forces divergence.
        let mut net = ieee14().unwrap();
        net.set_load(13, 50_000.0, 20_000.0).unwrap();
        match solve_ac(&net, &AcConfig { max_iter: 10, ..AcConfig::default() }) {
            Err(FlowError::Diverged { .. }) | Err(FlowError::SingularJacobian(_)) => {}
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn phasors_match_polar_state() {
        let net = ieee14().unwrap();
        let sol = solve_ac(&net, &AcConfig::default()).unwrap();
        let ph = sol.phasors();
        assert_eq!(ph.len(), 14);
        for b in 0..14 {
            assert!((ph[b].abs() - sol.vm[b]).abs() < 1e-12);
            assert!((ph[b].arg() - sol.va[b]).abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_and_dense_paths_agree() {
        for net in [ieee14().unwrap(), ieee30().unwrap(), ieee57().unwrap()] {
            let sparse = solve_ac(
                &net,
                &AcConfig { linear_solver: LinearSolver::Sparse, ..AcConfig::default() },
            )
            .unwrap();
            let dense = solve_ac(
                &net,
                &AcConfig { linear_solver: LinearSolver::Dense, ..AcConfig::default() },
            )
            .unwrap();
            for b in 0..net.n_buses() {
                assert!(
                    (sparse.vm[b] - dense.vm[b]).abs() < 1e-10,
                    "{}: vm[{b}] sparse={} dense={}",
                    net.name,
                    sparse.vm[b],
                    dense.vm[b]
                );
                assert!((sparse.va[b] - dense.va[b]).abs() < 1e-10);
            }
            assert!((sparse.slack_p - dense.slack_p).abs() < 1e-10);
        }
    }

    #[test]
    fn solver_reuse_across_load_changes_matches_fresh_solves() {
        // One AcSolver reused over perturbed loads of a fixed topology —
        // the scenario-simulation access pattern — must match per-step
        // fresh solver construction exactly.
        let base = ieee14().unwrap();
        // Pin the path: tests run concurrently and another test exercises
        // the process-wide default override.
        let cfg =
            AcConfig { linear_solver: LinearSolver::Sparse, ..AcConfig::default() };
        let mut solver = AcSolver::new(&base, &cfg);
        for step in 0..5 {
            let mut net = base.clone();
            let scale = 1.0 + 0.03 * step as f64;
            net.set_load(8, 29.5 * scale, 16.6 * scale).unwrap();
            let reused = solver.solve(&net).unwrap();
            let fresh = solve_ac(&net, &cfg).unwrap();
            for b in 0..net.n_buses() {
                assert_eq!(reused.vm[b], fresh.vm[b], "step {step} bus {b}");
                assert_eq!(reused.va[b], fresh.va[b]);
            }
        }
    }

    #[test]
    fn warm_start_converges_to_the_same_state_in_fewer_iterations() {
        let base = ieee57().unwrap();
        let cold_cfg =
            AcConfig { linear_solver: LinearSolver::Sparse, ..AcConfig::default() };
        let warm_cfg = AcConfig { warm_start: true, ..cold_cfg.clone() };
        let mut cold = AcSolver::new(&base, &cold_cfg);
        let mut warm = AcSolver::new(&base, &warm_cfg);
        let mut cold_iters = 0usize;
        let mut warm_iters = 0usize;
        for step in 0..6 {
            let mut net = base.clone();
            let scale = 1.0 + 0.01 * step as f64;
            net.set_load(7, 40.0 * scale, 10.0 * scale).unwrap();
            let c = cold.solve(&net).unwrap();
            let w = warm.solve(&net).unwrap();
            cold_iters += c.iterations;
            warm_iters += w.iterations;
            // Same root to solver tolerance (the iterates differ, so the
            // states agree to tol, not bit-for-bit).
            for b in 0..net.n_buses() {
                assert!((c.vm[b] - w.vm[b]).abs() < 1e-7, "step {step} bus {b}");
                assert!((c.va[b] - w.va[b]).abs() < 1e-7, "step {step} bus {b}");
            }
            assert!(w.max_mismatch < cold_cfg.tol);
        }
        assert!(
            warm_iters < cold_iters,
            "warm {warm_iters} iters should beat cold {cold_iters}"
        );
        // The very first warm solve had no previous state: it must have
        // cold-started (identical to a fresh solver's first solve).
        let mut fresh = AcSolver::new(&base, &warm_cfg);
        let mut net = base.clone();
        net.set_load(7, 40.0, 10.0).unwrap();
        let first = fresh.solve(&net).unwrap();
        let reference = solve_ac(&net, &cold_cfg).unwrap();
        assert_eq!(first.vm, reference.vm);
        assert_eq!(first.va, reference.va);
    }

    #[test]
    fn solver_rejects_mismatched_network_size() {
        let cfg = AcConfig::default();
        let mut solver = AcSolver::new(&ieee14().unwrap(), &cfg);
        match solver.solve(&ieee30().unwrap()) {
            Err(FlowError::Grid(_)) => {}
            other => panic!("expected Grid error, got {other:?}"),
        }
    }

    #[test]
    fn default_solver_override_roundtrip() {
        // Explicit configs are unaffected by the process-wide default.
        set_default_linear_solver(Some(LinearSolver::Dense));
        assert_eq!(default_linear_solver(), LinearSolver::Dense);
        assert_eq!(AcConfig::default().linear_solver, LinearSolver::Dense);
        set_default_linear_solver(Some(LinearSolver::Sparse));
        assert_eq!(default_linear_solver(), LinearSolver::Sparse);
        set_default_linear_solver(None);
    }
}

#[cfg(test)]
mod q_limit_tests {
    use super::*;
    use pmu_grid::cases::ieee14;

    /// Required aggregate generator Q (MVAr) per bus in a solved state.
    fn gen_q(net: &Network, sol: &AcSolution, bus: usize) -> f64 {
        let ybus = pmu_grid::ybus::build_ybus(net);
        let (_, q_calc) = computed_injections(&ybus, &sol.vm, &sol.va);
        q_calc[bus] * net.base_mva + net.buses()[bus].qd
    }

    /// IEEE-14 with bus 6's generator given an artificially tight Q range,
    /// forcing a violation at the nominal operating point.
    fn tight_case() -> (Network, usize) {
        let net = ieee14().unwrap();
        let mut buses = net.buses().to_vec();
        let branches = net.branches().to_vec();
        let mut gens = net.gens().to_vec();
        // Generator at bus 6 (internal 5): clamp qmax to 2 MVAr (it needs
        // ~12 at nominal conditions).
        let gi = gens.iter().position(|g| g.bus == 5).unwrap();
        gens[gi].qmax = 2.0;
        gens[gi].qmin = -2.0;
        buses[5].vm = net.buses()[5].vm;
        let net2 = Network::new("tight", net.base_mva, buses, branches, gens).unwrap();
        (net2, 5)
    }

    #[test]
    fn without_enforcement_the_limit_is_violated() {
        let (net, bus) = tight_case();
        let sol = solve_ac(&net, &AcConfig::default()).unwrap();
        assert!(gen_q(&net, &sol, bus) > 2.0 + 1e-6, "fixture must violate qmax");
        // PV magnitude held exactly at setpoint.
        assert!((sol.vm[bus] - net.buses()[bus].vm).abs() < 1e-12);
    }

    #[test]
    fn enforcement_pins_q_and_releases_voltage() {
        let (net, bus) = tight_case();
        let cfg = AcConfig { enforce_q_limits: true, ..AcConfig::default() };
        let sol = solve_ac(&net, &cfg).unwrap();
        assert!(sol.max_mismatch < 1e-8);
        // The enforced solution was computed on a modified network where
        // the bus is PQ with Q pinned at the limit; verify the physical
        // outcome on the original network's state: the bus voltage drops
        // below its setpoint (the generator can no longer hold it).
        assert!(
            sol.vm[bus] < net.buses()[bus].vm - 1e-4,
            "voltage should sag: {} vs setpoint {}",
            sol.vm[bus],
            net.buses()[bus].vm
        );
        // And the required Q at the bus equals the pinned limit.
        let mut pinned = net.clone();
        pinned.set_bus_type(bus, BusType::Pq).unwrap();
        let q = gen_q(&pinned, &sol, bus);
        assert!((q - 2.0).abs() < 0.05, "Q pinned near the 2 MVAr limit, got {q}");
    }

    #[test]
    fn enforcement_is_a_noop_when_limits_are_loose() {
        let net = ieee14().unwrap();
        let plain = solve_ac(&net, &AcConfig::default()).unwrap();
        let enforced = solve_ac(
            &net,
            &AcConfig { enforce_q_limits: true, ..AcConfig::default() },
        )
        .unwrap();
        // IEEE-14's canonical limits are (slightly) violated at bus 3 in
        // the exact case data; if no switching occurred the states agree
        // bit-for-bit, otherwise voltages differ only modestly.
        for b in 0..14 {
            assert!((plain.vm[b] - enforced.vm[b]).abs() < 0.05);
        }
    }

    #[test]
    fn slack_is_never_demoted() {
        let mut net = ieee14().unwrap();
        assert!(net.set_bus_type(net.slack(), BusType::Pq).is_err());
        assert!(net.set_bus_type(1, BusType::Slack).is_err());
        assert!(net.set_bus_type(99, BusType::Pq).is_err());
        // Legal change works.
        net.set_bus_type(1, BusType::Pq).unwrap();
        assert_eq!(net.buses()[1].bus_type, BusType::Pq);
    }
}
