//! DC (linearized) power flow.
//!
//! The DC approximation drops losses and voltage variation and solves
//! `B' θ = P` on the non-slack buses — exactly the paper's Eq. (1)
//! (`X = Y⁺ P`) with `Y` the susceptance Laplacian. It is used for the
//! Eq.-(1) linear-model view, for fast baselines, and as a sanity check on
//! the AC solver.

use crate::Result;
use pmu_grid::ybus::dc_b_matrix;
use pmu_grid::Network;
use pmu_numerics::lu::LuFactors;
use pmu_numerics::Vector;

/// A DC power-flow state: angles only; magnitudes are 1 p.u. by definition.
#[derive(Debug, Clone)]
pub struct DcSolution {
    /// Voltage angles in radians (slack angle = 0).
    pub va: Vec<f64>,
    /// Per-branch active flows (p.u.), aligned with `net.branches()`;
    /// out-of-service branches carry `0.0`.
    pub branch_flow: Vec<f64>,
}

/// Solve the DC power flow.
///
/// # Errors
/// Returns [`FlowError::SingularJacobian`](crate::FlowError::SingularJacobian) when the reduced susceptance
/// matrix is singular (disconnected grid).
pub fn solve_dc(net: &Network) -> Result<DcSolution> {
    let n = net.n_buses();
    let base = net.base_mva;

    // Net injections (p.u.) excluding the slack.
    let mut p = vec![0.0; n];
    for (i, bus) in net.buses().iter().enumerate() {
        p[i] -= bus.pd / base;
    }
    for g in net.gens().iter().filter(|g| g.status) {
        p[g.bus] += g.pg / base;
    }

    let (b_mat, keep) = dc_b_matrix(net);
    let rhs = Vector::from_fn(keep.len(), |k| p[keep[k]]);
    let lu = LuFactors::factorize(&b_mat)?;
    let theta_red = lu.solve(&rhs)?;

    let mut va = vec![0.0; n];
    for (k, &bus) in keep.iter().enumerate() {
        va[bus] = theta_red[k];
    }

    let branch_flow = net
        .branches()
        .iter()
        .map(|br| {
            if br.status {
                let tap = if br.tap == 0.0 { 1.0 } else { br.tap };
                (va[br.from] - va[br.to]) / (br.x * tap)
            } else {
                0.0
            }
        })
        .collect();

    Ok(DcSolution { va, branch_flow })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::{solve_ac, AcConfig};
    use pmu_grid::cases::{ieee14, ieee30};

    #[test]
    fn flow_balance_at_every_bus() {
        let net = ieee14().unwrap();
        let sol = solve_dc(&net).unwrap();
        // At every non-slack bus, net branch flow equals net injection.
        let base = net.base_mva;
        for bus in 0..net.n_buses() {
            if bus == net.slack() {
                continue;
            }
            let mut inj = -net.buses()[bus].pd / base;
            for g in net.gens().iter().filter(|g| g.status && g.bus == bus) {
                inj += g.pg / base;
            }
            let mut out_flow = 0.0;
            for (i, br) in net.branches().iter().enumerate() {
                if !br.status {
                    continue;
                }
                if br.from == bus {
                    out_flow += sol.branch_flow[i];
                } else if br.to == bus {
                    out_flow -= sol.branch_flow[i];
                }
            }
            assert!(
                (out_flow - inj).abs() < 1e-9,
                "bus {bus}: out {out_flow} vs inj {inj}"
            );
        }
    }

    #[test]
    fn slack_angle_is_zero() {
        let net = ieee30().unwrap();
        let sol = solve_dc(&net).unwrap();
        assert_eq!(sol.va[net.slack()], 0.0);
    }

    #[test]
    fn dc_approximates_ac_angles() {
        let net = ieee14().unwrap();
        let dc = solve_dc(&net).unwrap();
        let ac = solve_ac(&net, &AcConfig::default()).unwrap();
        // DC and AC angles agree to within a few degrees on a lightly
        // loaded system.
        for b in 0..net.n_buses() {
            let diff = (dc.va[b] - ac.va[b]).abs().to_degrees();
            assert!(diff < 4.0, "bus {b}: DC-AC angle gap {diff} deg");
        }
    }

    #[test]
    fn outage_reroutes_flow() {
        let net = ieee14().unwrap();
        let base = solve_dc(&net).unwrap();
        let idx = net.valid_outage_branches()[0];
        let out = solve_dc(&net.with_branch_outage(idx).unwrap()).unwrap();
        assert_eq!(out.branch_flow[idx], 0.0);
        // Power that used to flow on `idx` must appear elsewhere.
        let shifted: f64 = net
            .branches()
            .iter()
            .enumerate()
            .filter(|(i, br)| *i != idx && br.status)
            .map(|(i, _)| (out.branch_flow[i] - base.branch_flow[i]).abs())
            .sum();
        assert!(shifted > base.branch_flow[idx].abs() * 0.5);
    }
}
