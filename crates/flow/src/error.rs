//! Error type for power-flow solvers.

use std::fmt;

/// Errors produced by the power-flow solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Newton–Raphson did not reach the mismatch tolerance.
    Diverged {
        /// Iterations performed.
        iters: usize,
        /// Largest power mismatch (p.u.) at the last iteration.
        mismatch: f64,
    },
    /// The Jacobian (or DC B' matrix) was singular — typically an islanded
    /// or otherwise degenerate network.
    SingularJacobian(String),
    /// The underlying network model was invalid.
    Grid(String),
    /// A numerical routine failed.
    Numerics(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Diverged { iters, mismatch } => {
                write!(f, "power flow diverged after {iters} iterations (mismatch {mismatch:.3e} p.u.)")
            }
            FlowError::SingularJacobian(msg) => write!(f, "singular Jacobian: {msg}"),
            FlowError::Grid(msg) => write!(f, "grid error: {msg}"),
            FlowError::Numerics(msg) => write!(f, "numerics failure: {msg}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<pmu_grid::GridError> for FlowError {
    fn from(e: pmu_grid::GridError) -> Self {
        FlowError::Grid(e.to_string())
    }
}

impl From<pmu_numerics::NumericsError> for FlowError {
    fn from(e: pmu_numerics::NumericsError) -> Self {
        match e {
            pmu_numerics::NumericsError::Singular { .. } => {
                FlowError::SingularJacobian(e.to_string())
            }
            other => FlowError::Numerics(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = FlowError::Diverged { iters: 30, mismatch: 0.5 };
        assert!(e.to_string().contains("diverged"));
        assert!(FlowError::SingularJacobian("x".into()).to_string().contains("singular"));
        assert!(FlowError::Grid("g".into()).to_string().contains("g"));
        assert!(FlowError::Numerics("n".into()).to_string().contains("n"));
    }

    #[test]
    fn conversion_maps_singular() {
        let e: FlowError =
            pmu_numerics::NumericsError::Singular { op: "lu", pivot: 0.0 }.into();
        assert!(matches!(e, FlowError::SingularJacobian(_)));
        let e: FlowError = pmu_numerics::NumericsError::invalid("op", "msg").into();
        assert!(matches!(e, FlowError::Numerics(_)));
    }
}
