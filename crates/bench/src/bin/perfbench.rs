//! `perfbench` — lightweight wall-clock timing harness.
//!
//! Unlike the criterion benches (which need `cargo bench` and an opt-in
//! env var), this is a plain binary with zero benchmarking dependencies:
//! `std::time::Instant` plus serde for the report. It times the things
//! future PRs care about for the perf trajectory and writes
//! `BENCH_repro.json` at the repo root:
//!
//!   1. `Matrix::matmul` (cache-blocked) vs. the retained naive
//!      `matmul_reference` at representative sizes,
//!   2. one AC Newton–Raphson solve per IEEE system, sparse fast path
//!      vs. the dense reference linear solver,
//!   3. `Svd::compute` at the shapes the detector produces,
//!   4. `SystemSetup::build` per IEEE system (dataset generation +
//!      detector/MLR training — the bulk of a `repro` run), including
//!      ieee118 now that the sparse power flow makes it tractable,
//!   5. the fig5 evaluation pipeline with 1 worker vs. all workers,
//!      recording the measured speedup honestly (on a single-core
//!      machine this is ~1.0 by construction),
//!   6. the cost of the `pmu-obs` instrumentation, disabled (the
//!      default) and fully enabled — the disabled probes must stay
//!      under 2% of kernel time,
//!   7. model-bundle save/load per IEEE system at fast scale, with a
//!      reload-parity verification (the loaded bundle must reproduce
//!      the in-memory detections bit for bit),
//!   8. `Engine::detect_batch` throughput over one sample per outage
//!      case,
//!   9. packed-projector scoring throughput (`detect_throughput`): one
//!      warm `detect_batch_with_cache` pass vs the retained per-line
//!      reference scorer over plain + endpoint-masked samples, with a
//!      bit-parity verification and the shortlist hit-rate from the
//!      `detect.shortlist_*` counters,
//!  10. a `chaos` replay per system (ieee118 excluded): a scripted
//!      PDC-blackout + NaN-burst + corruption-burst schedule
//!      (`pmu_sim::faults`) driven through a serving session, verifying
//!      the raised event survives the blackout
//!      (`reraise_after_blackout`) and the corruption burst with the
//!      bad-data screen's excisions bounded by the injected ground
//!      truth (`corrupt_ok`) while timing the replay,
//!  11. `robust_overhead`: the ieee57 packed batch timed with the
//!      bad-data screen on (the default) and off — clean traffic must
//!      pay under 5% for the defense (`robust_overhead_ok`),
//!  12. a `fleet` soak: 4 grids sharing one process, hundreds of feed
//!      sessions sharded across the worker pool, several ticks of mixed
//!      normal/outage traffic — the headline is samples/sec/core, plus
//!      the worst per-shard p99 push latency and a deliberate-overload
//!      sub-step whose shed count must match ground truth exactly
//!      (`shed_ok`).
//!
//! The artifact store is disabled for the whole run
//! (`StorePolicy::Disabled`), so `system_build` always times real
//! training, never a cache hit.
//!
//! The report embeds run metadata (worker count, scale, seed, git
//! revision) so two reports can be compared apples-to-apples with the
//! `benchdiff` subcommand:
//!
//! ```text
//! perfbench [--systems a,b,c] [--scale fast|standard|paper] [--out PATH]
//! perfbench benchdiff OLD.json NEW.json [--tol PCT] [--floor-ms MS]
//!     # flags time regressions beyond PCT% (default 10); leaves whose
//!     # absolute slowdown is under MS milliseconds never count
//!     # (default 0 — sub-ms smoke timings need a floor to not flake)
//! ```

use std::time::Instant;

use pmu_baseline::MlrConfig;
use pmu_detect::detector::default_config_for;
use pmu_detect::{Detector, ScoringCache};
use pmu_eval::figures::fig5;
use pmu_eval::runner::{EvalScale, SystemSetup};
use pmu_flow::{solve_ac, AcConfig, LinearSolver};
use pmu_model::{set_store_policy, ModelBundle, StorePolicy};
use pmu_numerics::{par, Matrix, Svd};
use pmu_serve::{Engine, EngineConfig, FeedKey, Fleet, FleetConfig, ServeError};
use pmu_sim::missing::outage_endpoints_mask;
use pmu_sim::{generate_dataset, Dataset, FaultKind, FaultSchedule, GenConfig, PhasorSample};
use serde::{Serialize, Value};

/// Seed shared with `repro` so build timings measure the same work.
const SEED: u64 = 0xC0FFEE;

#[derive(Serialize)]
struct MatmulTiming {
    m: usize,
    k: usize,
    n: usize,
    blocked_ms: f64,
    reference_ms: f64,
    /// reference / blocked — > 1.0 means the blocked kernel is faster.
    speedup: f64,
}

#[derive(Serialize)]
struct BuildTiming {
    system: String,
    seconds: f64,
}

#[derive(Serialize)]
struct NrTiming {
    system: String,
    buses: usize,
    /// One full Newton–Raphson solve, sparse fast path (CSR Jacobian,
    /// RCM-ordered LU with symbolic reuse).
    sparse_ms: f64,
    /// Same solve through the dense reference linear solver.
    dense_ms: f64,
    /// dense / sparse — > 1.0 means the sparse path is faster.
    speedup: f64,
}

#[derive(Serialize)]
struct SvdTiming {
    m: usize,
    n: usize,
    /// Full one-sided Jacobi `Svd::compute`.
    compute_ms: f64,
    /// Truncation rank for the randomized path (0 disables the
    /// truncated columns on shapes where only the full timing matters).
    r: usize,
    /// `rsvd::truncated` at rank `r` — the training hot path.
    truncated_ms: f64,
    /// compute / truncated — > 1.0 means the truncated path is faster.
    speedup: f64,
}

#[derive(Serialize)]
struct IncrementalBuildTiming {
    system: String,
    /// `ModelBundle::train_incremental` after exactly one outage case's
    /// training window changed, warm-starting from the stale bundle.
    seconds: f64,
    /// Stored per-case bases reused (must be `total - 1` here).
    reused: usize,
    /// Outage cases in the dataset.
    total: usize,
}

#[derive(Serialize)]
struct PipelineTiming {
    systems: Vec<String>,
    scale: String,
    /// `SystemSetup::build_all` + fig5 with the worker pool pinned to 1.
    serial_seconds: f64,
    /// Same work with the full worker pool.
    parallel_seconds: f64,
    /// serial / parallel.
    speedup: f64,
    workers: usize,
}

#[derive(Serialize)]
struct ObsOverheadTiming {
    /// ns per disabled metric probe (one relaxed load + branch).
    probe_disabled_ns: f64,
    /// ns per enabled counter increment.
    probe_enabled_ns: f64,
    /// Matmul workload with instrumentation disabled (the default).
    workload_disabled_ms: f64,
    /// Same workload fully traced to an in-memory sink.
    workload_enabled_ms: f64,
    /// Estimated share of the disabled workload spent in probes
    /// (probe count × disabled probe cost / kernel time). Must stay
    /// well under 2.0.
    disabled_overhead_pct: f64,
    /// Full-tracing overhead relative to the disabled workload.
    enabled_overhead_pct: f64,
    /// ns per flight-recorder ring write (the always-on default).
    record_ns: f64,
    /// ns per ring write with the recorder turned off (guard only).
    record_disabled_ns: f64,
    /// Record-per-matmul workload with the recorder on (the default).
    recorder_on_ms: f64,
    /// Same workload with the recorder off.
    recorder_off_ms: f64,
    /// Estimated recorder share of the ieee57 `engine_batch` wall clock
    /// at the serve push path's rate of one ring write per sample:
    /// batch × record_ns / batch time. Analytic — derived from the
    /// per-record cost rather than an on/off wall-clock diff — so
    /// scheduler noise cannot flap the gate. Must stay under 1.0.
    recorder_overhead_pct: f64,
    /// `recorder_overhead_pct < 1.0` — the always-on recorder budget.
    /// Must always be `true`.
    recorder_overhead_ok: bool,
}

#[derive(Serialize)]
struct BundleIoTiming {
    system: String,
    /// Training both models at fast scale (the artifact a cold store pays
    /// for exactly once).
    train_ms: f64,
    /// `ModelBundle::save` — serialize + checksum + atomic write.
    save_ms: f64,
    /// `ModelBundle::load` — read + checksum verify + deserialize.
    load_ms: f64,
    /// Bundle size on disk.
    bytes: usize,
    /// Whether the reloaded bundle reproduced every in-memory detection
    /// bit for bit (plain and masked samples). Must always be `true`.
    parity_ok: bool,
}

#[derive(Serialize)]
struct EngineBatchTiming {
    system: String,
    /// Samples per batch (one test sample per outage case).
    batch: usize,
    /// One `Engine::detect_batch` call over the batch.
    batch_ms: f64,
    samples_per_sec: f64,
    /// p99 of `serve.detect_latency_us` over one metrics-enabled pass
    /// (count-weighted per-sample shares — the quantile the `/metrics`
    /// endpoint exposes and benchdiff gates).
    detect_latency_p99_us: f64,
}

#[derive(Serialize)]
struct DetectThroughputTiming {
    system: String,
    /// Samples per batch: one plain + one endpoint-masked test sample per
    /// outage case, so the mask-keyed bank cache is exercised.
    batch: usize,
    /// One warm `detect_batch_with_cache` pass through the packed
    /// projector path (production configuration, shortlist included).
    packed_ms: f64,
    packed_samples_per_sec: f64,
    /// The same batch through the retained per-line reference scorer
    /// (`detect_reference`) — the pre-packing cost, measured honestly.
    reference_ms: f64,
    reference_samples_per_sec: f64,
    /// reference / packed — > 1.0 means the packed path is faster.
    speedup: f64,
    /// Share of shortlisted rankings that pruned at least part of the
    /// exact stage-2 scoring (the top-3 guard plus the proximity-band
    /// component walk left some candidates unscored), from the
    /// `detect.shortlist_*` counters; 0.0 when the shortlist is off for
    /// this system.
    shortlist_hit_rate: f64,
    /// Packed path bit-identical to the reference with the shortlist
    /// off, and verdict/lines-identical with the production shortlist.
    /// Must always be `true`.
    parity_ok: bool,
}

#[derive(Serialize)]
struct ChaosTiming {
    system: String,
    /// Ticks replayed through the fault schedule.
    ticks: usize,
    /// Wall-clock of the full replay (inject + one push_batch per tick).
    replay_ms: f64,
    /// Samples the ingestion guard rejected (the NaN-burst tick).
    rejected: usize,
    /// Unscorable blackout samples absorbed vote-neutrally.
    missing: usize,
    /// The event raised before the blackout was still standing at every
    /// tick after the blackout lifted — the dark-window clearing bug
    /// stays fixed. Must always be `true`.
    reraise_after_blackout: bool,
    /// Ticks the schedule tagged `FaultTag::Corrupted` (the mid-outage
    /// corruption burst) — the ground truth for `bad_data_excised`.
    corrupt_ticks: usize,
    /// Samples where the bad-data screen excised a channel, from the
    /// session's `bad_data_samples` counter.
    bad_data_excised: usize,
    /// The event survived the corruption burst and the screen never
    /// fired on more ticks than the schedule corrupted
    /// (`bad_data_excised <= corrupt_ticks`). Must always be `true`.
    corrupt_ok: bool,
    /// Incident dumps the replay produced. The blackout turns the feed
    /// Dark mid-outage, so this must be >= 1.
    incident_dumps: usize,
}

#[derive(Serialize)]
struct RobustOverheadTiming {
    system: String,
    /// Samples per timed pass (clean plain + endpoint-masked samples,
    /// replicated to keep the measurement above scheduler noise).
    batch: usize,
    /// Warm `detect_batch_with_cache` pass, bad-data screen on (the
    /// production default).
    screen_on_ms: f64,
    /// The same batch with the screen disabled.
    screen_off_ms: f64,
    /// (on − off) / off — what clean traffic pays for the screen's
    /// residual gate. The screen itself only runs on anomalous samples.
    overhead_pct: f64,
    /// `overhead_pct < 5.0` — clean traffic must not pay for the
    /// bad-data defense. Must always be `true`.
    robust_overhead_ok: bool,
}

#[derive(Serialize)]
struct FleetTiming {
    /// Grids registered in the fleet.
    grids: usize,
    /// Total open feed sessions across all grids.
    feeds: usize,
    /// Session shards (one per worker thread).
    shards: usize,
    /// Ticks of traffic in the timed soak.
    ticks: usize,
    /// Wall-clock of the soak (every `push_batch` tick, probes off).
    seconds: f64,
    samples_per_sec: f64,
    /// The headline: soak throughput normalized by worker threads.
    samples_per_sec_per_core: f64,
    /// Worst per-shard p99 single-push latency over one metrics-enabled
    /// tick after the timed soak, microseconds.
    shard_p99_push_us: f64,
    /// Samples the deliberate-overload sub-step shed.
    shed_total: u64,
    /// Ground truth: burst size minus the overload fleet's queue
    /// capacity.
    shed_expected: u64,
    /// `Err(Overloaded)` results and the per-shard shed counter both
    /// equal `shed_expected`. Must always be `true`.
    shed_ok: bool,
}

#[derive(Serialize)]
struct BenchReport {
    generated_by: String,
    workers: usize,
    available_parallelism: usize,
    scale: String,
    seed: u64,
    /// `git rev-parse --short HEAD`, when available.
    git_revision: Option<String>,
    matmul: Vec<MatmulTiming>,
    nr_solve: Vec<NrTiming>,
    svd: Vec<SvdTiming>,
    system_build: Vec<BuildTiming>,
    system_build_warm: Vec<BuildTiming>,
    system_build_incremental: Vec<IncrementalBuildTiming>,
    bundle_io: Vec<BundleIoTiming>,
    engine_batch: Vec<EngineBatchTiming>,
    detect_throughput: Vec<DetectThroughputTiming>,
    robust_overhead: Vec<RobustOverheadTiming>,
    chaos: Vec<ChaosTiming>,
    fleet: FleetTiming,
    fig5_pipeline: PipelineTiming,
    obs_overhead: ObsOverheadTiming,
}

/// Median of `reps` timed runs, in seconds.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Deterministic dense test matrix (no RNG needed for timing).
fn fill(rows: usize, cols: usize, salt: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let x = (i as u64)
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(j as u64)
            .wrapping_add(salt);
        (x % 2048) as f64 / 1024.0 - 1.0
    })
}

fn bench_matmul() -> Vec<MatmulTiming> {
    // Square sizes around the bus counts plus one rectangular shape like
    // the observation-window products (n_buses x window).
    let shapes: &[(usize, usize, usize)] =
        &[(64, 64, 64), (118, 118, 118), (256, 256, 256), (118, 60, 118)];
    shapes
        .iter()
        .map(|&(m, k, n)| {
            let a = fill(m, k, 1);
            let b = fill(k, n, 2);
            let blocked = time_median(5, || {
                std::hint::black_box(a.matmul(&b).expect("dims agree"));
            });
            let reference = time_median(5, || {
                std::hint::black_box(a.matmul_reference(&b).expect("dims agree"));
            });
            pmu_obs::info(&format!(
                "matmul {m}x{k}x{n}: blocked {:.3} ms, reference {:.3} ms",
                blocked * 1e3,
                reference * 1e3
            ));
            MatmulTiming {
                m,
                k,
                n,
                blocked_ms: blocked * 1e3,
                reference_ms: reference * 1e3,
                speedup: reference / blocked,
            }
        })
        .collect()
}

fn bench_nr_solve(systems: &[String]) -> Vec<NrTiming> {
    systems
        .iter()
        .filter_map(|name| {
            let net = pmu_grid::cases::by_name(name)?.ok()?;
            let time_path = |solver: LinearSolver| {
                let cfg = AcConfig { linear_solver: solver, ..AcConfig::default() };
                time_median(9, || {
                    std::hint::black_box(solve_ac(&net, &cfg).expect("converges"));
                }) * 1e3
            };
            let sparse_ms = time_path(LinearSolver::Sparse);
            let dense_ms = time_path(LinearSolver::Dense);
            pmu_obs::info(&format!(
                "nr_solve {name}: sparse {sparse_ms:.3} ms, dense {dense_ms:.3} ms"
            ));
            Some(NrTiming {
                system: name.clone(),
                buses: net.n_buses(),
                sparse_ms,
                dense_ms,
                speedup: dense_ms / sparse_ms,
            })
        })
        .collect()
}

fn bench_svd() -> Vec<SvdTiming> {
    // Observation-window shapes (n_buses x window) plus a square case,
    // each timed full vs truncated at the ranks training actually asks
    // for: 3 (per-case `subspace_dim` default) and 19 (ieee118's normal
    // subspace, `n/6`).
    let shapes: &[(usize, usize, usize)] = &[
        (118, 60, 3),
        (118, 60, 19),
        (118, 118, 3),
        (118, 118, 19),
        (256, 64, 3),
        (256, 64, 19),
    ];
    shapes
        .iter()
        .map(|&(m, n, r)| {
            let a = fill(m, n, 5);
            let compute_ms = time_median(5, || {
                std::hint::black_box(Svd::compute(&a).expect("converges"));
            }) * 1e3;
            let truncated_ms = time_median(5, || {
                std::hint::black_box(
                    pmu_numerics::rsvd::truncated(&a, r).expect("converges"),
                );
            }) * 1e3;
            pmu_obs::info(&format!(
                "svd {m}x{n}: full {compute_ms:.3} ms, truncated r={r} \
                 {truncated_ms:.3} ms ({:.1}x)",
                compute_ms / truncated_ms
            ));
            SvdTiming { m, n, compute_ms, r, truncated_ms, speedup: compute_ms / truncated_ms }
        })
        .collect()
}

fn bench_builds(systems: &[String], scale: EvalScale) -> Vec<BuildTiming> {
    systems
        .iter()
        .map(|name| {
            let t = Instant::now();
            let setup = SystemSetup::build(name, scale, SEED);
            let seconds = t.elapsed().as_secs_f64();
            std::hint::black_box(&setup);
            pmu_obs::info(&format!("build {name}: {seconds:.2} s"));
            BuildTiming { system: name.clone(), seconds }
        })
        .collect()
}

/// Warm-path counterparts of `system_build`: a pure artifact-store cache
/// hit (`system_build_warm` — load + checksum verify, no training) and a
/// warm-start incremental rebuild after exactly one outage case's
/// training window changed (`system_build_incremental` — every other
/// stored per-case basis is reused, only the aggregates retrain).
fn bench_builds_warm(
    systems: &[String],
    scale: EvalScale,
) -> (Vec<BuildTiming>, Vec<IncrementalBuildTiming>) {
    let dir = std::env::temp_dir().join("pmu-perfbench-warm-store");
    let _ = std::fs::remove_dir_all(&dir);
    let store = pmu_model::ArtifactStore::new(&dir).expect("temp store");
    let mut warm = Vec::new();
    let mut incremental = Vec::new();
    for name in systems {
        let Some(Ok(net)) = pmu_grid::cases::by_name(name) else { continue };
        let gen = scale.gen_config(SEED);
        let data = generate_dataset(&net, &gen).expect("dataset generation");
        let det_cfg = default_config_for(&net);
        let mlr_cfg = MlrConfig::default();
        let (prev, _) = store
            .load_or_train_outcome(&data, &gen, &det_cfg, &mlr_cfg)
            .expect("cold train into the store");

        let t = Instant::now();
        let (_, outcome) = store
            .load_or_train_outcome(&data, &gen, &det_cfg, &mlr_cfg)
            .expect("warm lookup");
        let warm_seconds = t.elapsed().as_secs_f64();
        assert!(outcome.is_hit(), "{name}: second identical build must be a cache hit");
        pmu_obs::info(&format!("build_warm {name}: {warm_seconds:.3} s"));
        warm.push(BuildTiming { system: name.clone(), seconds: warm_seconds });

        // One changed scenario: replace one case's training window with
        // the same branch's window from an independent realization.
        let other =
            generate_dataset(&net, &GenConfig { seed: SEED + 1, ..gen.clone() })
                .expect("donor dataset");
        let mut changed = data.clone();
        let branch = changed.cases[0].branch;
        changed.cases[0].train = other
            .case_for_branch(branch)
            .expect("same topology, same branches")
            .train
            .clone();
        let t = Instant::now();
        let (_, stats) =
            ModelBundle::train_incremental(&changed, &gen, &det_cfg, &mlr_cfg, &prev)
                .expect("incremental rebuild");
        let seconds = t.elapsed().as_secs_f64();
        pmu_obs::info(&format!(
            "build_incremental {name}: {seconds:.3} s (reused {}/{} bases)",
            stats.reused, stats.total
        ));
        incremental.push(IncrementalBuildTiming {
            system: name.clone(),
            seconds,
            reused: stats.reused,
            total: stats.total,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    (warm, incremental)
}

/// Train one fast-scale bundle per system, then time bundle save/load
/// (with a reload-parity verification), `Engine::detect_batch`
/// throughput, and a chaos replay through a scripted fault schedule.
/// One training run feeds all three benches.
/// Everything `bench_model_serving` produces, in report order.
type ServingBenches = (
    Vec<BundleIoTiming>,
    Vec<EngineBatchTiming>,
    Vec<DetectThroughputTiming>,
    Vec<RobustOverheadTiming>,
    Vec<ChaosTiming>,
);

fn bench_model_serving(systems: &[String]) -> ServingBenches {
    let dir = std::env::temp_dir().join("pmu-perfbench-bundles");
    let _ = std::fs::create_dir_all(&dir);
    let mut bundle_io = Vec::new();
    let mut engine_batch = Vec::new();
    let mut detect_throughput = Vec::new();
    let mut robust_overhead = Vec::new();
    let mut chaos = Vec::new();
    for name in systems {
        let Some(Ok(net)) = pmu_grid::cases::by_name(name) else { continue };
        let gen = EvalScale::Fast.gen_config(SEED);
        let data = generate_dataset(&net, &gen).expect("dataset generation");
        let detector_cfg = default_config_for(&net);
        let mlr_cfg = MlrConfig::default();
        let t = Instant::now();
        let bundle = ModelBundle::train(&data, &gen, &detector_cfg, &mlr_cfg)
            .expect("bundle training");
        let train_ms = t.elapsed().as_secs_f64() * 1e3;

        let path = dir.join(format!("bundle-{name}.json"));
        let save_ms = time_median(5, || {
            bundle.save(&path).expect("bundle save");
        }) * 1e3;
        let load_ms = time_median(5, || {
            std::hint::black_box(ModelBundle::load(&path).expect("bundle load"));
        }) * 1e3;
        let bytes = std::fs::metadata(&path).map_or(0, |m| m.len() as usize);

        // Reload parity: every detection — plain and masked — must come
        // back bit-identical from the on-disk artifact.
        let reloaded = ModelBundle::load(&path).expect("bundle load");
        let mut parity_ok = true;
        let mut batch = Vec::new();
        for case in &data.cases {
            let plain = case.test.sample(0);
            let masked =
                plain.masked(&outage_endpoints_mask(net.n_buses(), case.endpoints));
            for sample in [plain, masked] {
                let parity = match (
                    bundle.detector.detect(&sample),
                    reloaded.detector.detect(&sample),
                ) {
                    (Ok(a), Ok(b)) => a == b,
                    (Err(_), Err(_)) => true,
                    _ => false,
                };
                parity_ok &= parity;
            }
            batch.push(case.test.sample(0));
        }
        pmu_obs::info(&format!(
            "bundle_io {name}: train {train_ms:.1} ms, save {save_ms:.2} ms, \
             load {load_ms:.2} ms, {bytes} bytes, parity {}",
            if parity_ok { "OK" } else { "VIOLATED" }
        ));
        bundle_io.push(BundleIoTiming {
            system: name.clone(),
            train_ms,
            save_ms,
            load_ms,
            bytes,
            parity_ok,
        });

        detect_throughput.push(bench_detect_throughput(name, &bundle.detector, &data));
        // The bad-data screen budget is gated on ieee57 — the system the
        // engine_batch trajectory tracks.
        if name == "ieee57" {
            robust_overhead.push(bench_robust_overhead(name, &bundle.detector, &data));
        }

        let mut engine_cfg = EngineConfig::default();
        engine_cfg.incident.dir = Some(dir.join(format!("incidents-{name}")));
        let mut engine = Engine::from_bundle(bundle, engine_cfg);
        let batch_ms = time_median(5, || {
            std::hint::black_box(engine.detect_batch(&batch));
        }) * 1e3;
        let samples_per_sec = batch.len() as f64 / (batch_ms / 1e3);

        // One metrics-enabled pass for the latency quantile benchdiff
        // gates; the registry is reset first so earlier systems' samples
        // cannot bleed into this one's p99.
        pmu_obs::reset_metrics();
        pmu_obs::set_metrics_enabled(true);
        std::hint::black_box(engine.detect_batch(&batch));
        let detect_latency_p99_us =
            pmu_obs::metrics::histogram("serve.detect_latency_us").quantile(0.99);
        pmu_obs::set_metrics_enabled(false);

        pmu_obs::info(&format!(
            "engine_batch {name}: {} samples in {batch_ms:.2} ms ({samples_per_sec:.0}/s), \
             p99 {detect_latency_p99_us:.1} us",
            batch.len()
        ));
        engine_batch.push(EngineBatchTiming {
            system: name.clone(),
            batch: batch.len(),
            batch_ms,
            samples_per_sec,
            detect_latency_p99_us,
        });

        // The chaos replay exercises the streaming path (session state,
        // degraded-mode tracking), which scales poorly on ieee118 at
        // fast scale; the graceful-degradation contract is identical on
        // the smaller systems.
        if name != "ieee118" {
            chaos.push(chaos_replay(name, &mut engine, &data));
        }
    }
    (bundle_io, engine_batch, detect_throughput, robust_overhead, chaos)
}

/// What clean traffic pays for the bad-data screen: the same warm packed
/// batch timed with the screen on (the production default) and off. On
/// clean samples the screen reduces to one residual-gate comparison per
/// sample — the LNR scan and re-score only run on anomalous data — so
/// the on/off delta must stay under 5%. The batch replicates the
/// per-case samples so the measurement sits well above scheduler noise.
fn bench_robust_overhead(
    name: &str,
    detector: &Detector,
    data: &Dataset,
) -> RobustOverheadTiming {
    let n = data.network.n_buses();
    let mut batch = Vec::new();
    for _ in 0..4 {
        for case in &data.cases {
            let plain = case.test.sample(0);
            batch.push(plain.masked(&outage_endpoints_mask(n, case.endpoints)));
            batch.push(plain);
        }
    }

    let on = detector.clone().with_robust_screen(true);
    let off = detector.clone().with_robust_screen(false);
    let cache_on = ScoringCache::new();
    let cache_off = ScoringCache::new();
    // Warm both mask-keyed bank caches before timing steady state.
    std::hint::black_box(on.detect_batch_with_cache(&batch, &cache_on));
    std::hint::black_box(off.detect_batch_with_cache(&batch, &cache_off));
    let screen_on_ms = time_median(7, || {
        std::hint::black_box(on.detect_batch_with_cache(&batch, &cache_on));
    }) * 1e3;
    let screen_off_ms = time_median(7, || {
        std::hint::black_box(off.detect_batch_with_cache(&batch, &cache_off));
    }) * 1e3;

    let overhead_pct = 100.0 * (screen_on_ms - screen_off_ms) / screen_off_ms;
    let timing = RobustOverheadTiming {
        system: name.to_string(),
        batch: batch.len(),
        screen_on_ms,
        screen_off_ms,
        overhead_pct,
        robust_overhead_ok: overhead_pct < 5.0,
    };
    pmu_obs::info(&format!(
        "robust_overhead {name}: screen on {:.2} ms / off {:.2} ms over {} samples \
         ({:+.2}%), robust_overhead_ok={}",
        timing.screen_on_ms,
        timing.screen_off_ms,
        timing.batch,
        timing.overhead_pct,
        timing.robust_overhead_ok,
    ));
    timing
}

/// Packed-projector scoring throughput vs the retained per-line
/// reference scorer, over one plain + one endpoint-masked sample per
/// outage case. The reference pass doubles as ground truth: the packed
/// path must reproduce it bit for bit with the shortlist off, and must
/// agree on verdict and localized lines with the production shortlist.
/// The shortlist hit-rate comes from a separate metrics-enabled pass so
/// the timed passes stay probe-free.
fn bench_detect_throughput(
    name: &str,
    detector: &Detector,
    data: &Dataset,
) -> DetectThroughputTiming {
    let n = data.network.n_buses();
    let mut batch = Vec::with_capacity(data.cases.len() * 2);
    for case in &data.cases {
        let plain = case.test.sample(0);
        batch.push(plain.masked(&outage_endpoints_mask(n, case.endpoints)));
        batch.push(plain);
    }

    // First pass warms the mask-keyed bank cache (and is kept for the
    // parity check); the timed passes measure steady state.
    let cache = ScoringCache::new();
    let packed = detector.detect_batch_with_cache(&batch, &cache);
    let packed_ms = time_median(3, || {
        std::hint::black_box(detector.detect_batch_with_cache(&batch, &cache));
    }) * 1e3;

    let t = Instant::now();
    let reference: Vec<_> =
        batch.iter().map(|s| detector.detect_reference(s)).collect();
    let reference_ms = t.elapsed().as_secs_f64() * 1e3;

    let off = detector.clone().with_shortlist(0, 1.0);
    let off_results = off.detect_batch_with_cache(&batch, &ScoringCache::new());
    let mut parity_ok = true;
    for ((r, p), o) in reference.iter().zip(&packed).zip(&off_results) {
        parity_ok &= match (r, o) {
            (Ok(a), Ok(b)) => a == b,
            (Err(_), Err(_)) => true,
            _ => false,
        };
        parity_ok &= match (r, p) {
            (Ok(a), Ok(b)) => a.outage == b.outage && a.lines == b.lines,
            (Err(_), Err(_)) => true,
            _ => false,
        };
    }

    pmu_obs::set_metrics_enabled(true);
    let hits0 = pmu_obs::counter!("detect.shortlist_hits").get();
    let falls0 = pmu_obs::counter!("detect.shortlist_fallbacks").get();
    std::hint::black_box(detector.detect_batch_with_cache(&batch, &cache));
    let hits = pmu_obs::counter!("detect.shortlist_hits").get() - hits0;
    let falls = pmu_obs::counter!("detect.shortlist_fallbacks").get() - falls0;
    let shortlist_hit_rate =
        if hits + falls == 0 { 0.0 } else { hits as f64 / (hits + falls) as f64 };
    pmu_obs::gauge!("detect.shortlist_hit_rate").set(shortlist_hit_rate);
    pmu_obs::set_metrics_enabled(false);

    let timing = DetectThroughputTiming {
        system: name.to_string(),
        batch: batch.len(),
        packed_ms,
        packed_samples_per_sec: batch.len() as f64 / (packed_ms / 1e3),
        reference_ms,
        reference_samples_per_sec: batch.len() as f64 / (reference_ms / 1e3),
        speedup: reference_ms / packed_ms,
        shortlist_hit_rate,
        parity_ok,
    };
    pmu_obs::info(&format!(
        "detect_throughput {name}: packed {:.2} ms ({:.0}/s), reference {:.2} ms \
         ({:.0}/s), {:.1}x, shortlist hit-rate {:.2}, parity {}",
        timing.packed_ms,
        timing.packed_samples_per_sec,
        timing.reference_ms,
        timing.reference_samples_per_sec,
        timing.speedup,
        timing.shortlist_hit_rate,
        if timing.parity_ok { "OK" } else { "VIOLATED" }
    ));
    timing
}

/// Drive one serving session through a scripted PDC blackout, a NaN
/// burst, and a corruption burst mid-outage; verify the raised event
/// survives the dark window (the dark-window clearing regression) and
/// the corruption burst (the bad-data screen excises instead of
/// mislocalizing), timing the replay.
fn chaos_replay(
    name: &str,
    engine: &mut Engine,
    data: &Dataset,
) -> ChaosTiming {
    let case = &data.cases[0];
    // A corruption victim away from the outage endpoints (and the
    // reference bus), so the burst cannot mimic the outage signature.
    let n = data.network.n_buses();
    let victim = (1..n)
        .find(|&i| i != case.endpoints.0 && i != case.endpoints.1)
        .expect("a non-endpoint channel exists");
    // 16 outage ticks followed by 8 normal ticks (restoration).
    let mut clean: Vec<PhasorSample> = (0..16)
        .map(|t| case.test.sample(t % case.test.len()))
        .collect();
    clean.extend(
        (16..24).map(|t| data.normal_test.sample(t % data.normal_test.len())),
    );
    // Total blackout while the outage event is standing, a one-tick NaN
    // burst that the ingestion guard must reject, then a two-tick
    // corruption burst the bad-data screen must absorb.
    let injected = FaultSchedule::new(SEED)
        .window(6, 11, FaultKind::Blackout { nodes: Vec::new() })
        .window(12, 13, FaultKind::NanBurst { nodes: vec![0] })
        .window(13, 15, FaultKind::Corrupt { nodes: vec![victim], scale: 5.0 })
        .apply(&clean);
    let corrupt_ticks = injected
        .iter()
        .filter(|inj| {
            inj.tags
                .iter()
                .any(|tag| matches!(tag, pmu_sim::FaultTag::Corrupted { .. }))
        })
        .count();

    let feed = engine.open_session();
    let dumps_before = engine.incident_dumps_written();
    let mut rejected = 0usize;
    let mut raised_before_blackout = false;
    let mut standing_after_blackout = true;
    let t0 = Instant::now();
    for (t, inj) in injected.iter().enumerate() {
        // Tag the injected faults into the global flight-recorder ring,
        // as a PDC-side ingest shim would, so the incident dumps the
        // replay triggers carry the ground-truth fault context.
        inj.record_faults(t);
        let pushed = engine
            .push_batch(&[(feed, inj.sample.clone())])
            .pop()
            .expect("one result per entry");
        if pushed.is_err() {
            rejected += 1;
        }
        let active = engine.health(feed).is_some_and(|h| h.snapshot.active);
        if t < 6 && active {
            raised_before_blackout = true;
        }
        if (11..16).contains(&t) && !active {
            standing_after_blackout = false;
        }
    }
    let replay_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (missing, bad_data_excised) = engine
        .health(feed)
        .map_or((0, 0), |h| (h.snapshot.missing_samples, h.snapshot.bad_data_samples));
    let incident_dumps = (engine.incident_dumps_written() - dumps_before) as usize;
    engine.close_session(feed);
    let reraise_after_blackout = raised_before_blackout && standing_after_blackout;
    // The event rode out the corruption burst (covered by the 11..16
    // standing check above), and the screen never fired on more ticks
    // than the schedule actually corrupted.
    let corrupt_ok = standing_after_blackout && bad_data_excised <= corrupt_ticks;
    pmu_obs::info(&format!(
        "chaos {name}: {} ticks in {replay_ms:.2} ms, {rejected} rejected, \
         {missing} missing, reraise_after_blackout {reraise_after_blackout}, \
         excised {bad_data_excised}/{corrupt_ticks} corrupt tick(s) \
         corrupt_ok={corrupt_ok}, {incident_dumps} incident dump(s)",
        injected.len()
    ));
    ChaosTiming {
        system: name.to_string(),
        ticks: injected.len(),
        replay_ms,
        rejected,
        missing,
        reraise_after_blackout,
        corrupt_ticks,
        bad_data_excised,
        corrupt_ok,
        incident_dumps,
    }
}

/// Fleet soak: 4 grids (one fast-trained ieee14 bundle cloned per grid),
/// hundreds of feeds sharded across the worker pool, several ticks of
/// mixed normal/outage traffic. Timed with probes off (the production
/// default); one metrics-enabled tick afterwards surfaces the per-shard
/// p99 push latency. A second, deliberately tiny fleet is then
/// overloaded with a burst 4x its ingress budget — the typed
/// `Overloaded` errors and the per-shard shed counter must both match
/// the arithmetic ground truth.
fn bench_fleet(scale: EvalScale) -> FleetTiming {
    let net = pmu_grid::cases::ieee14().expect("embedded case");
    let gen = EvalScale::Fast.gen_config(SEED);
    let data = generate_dataset(&net, &gen).expect("dataset generation");
    let bundle = ModelBundle::train(
        &data,
        &gen,
        &default_config_for(&net),
        &MlrConfig::default(),
    )
    .expect("bundle training");

    let grids = 4usize;
    let feeds_per_grid = if matches!(scale, EvalScale::Fast) { 32 } else { 64 };
    let ticks = 6usize;
    let mut fleet = Fleet::new(FleetConfig::default());
    let mut keys = Vec::with_capacity(grids * feeds_per_grid);
    for g in 0..grids {
        let gid = fleet
            .add_grid(&format!("grid{g}"), bundle.clone(), &EngineConfig::default())
            .expect("unique grid names");
        for f in 0..feeds_per_grid {
            let key = FeedKey { grid: gid, feed: f as u64 };
            fleet.open_feed(key).expect("fresh keys");
            keys.push(key);
        }
    }

    // Every 4th feed rides an outage case; the rest see normal traffic,
    // so the soak mixes raise/clear event work with steady-state scoring.
    let batches: Vec<Vec<(FeedKey, PhasorSample)>> = (0..ticks)
        .map(|t| {
            keys.iter()
                .enumerate()
                .map(|(i, &key)| {
                    let sample = if i % 4 == 0 {
                        let case = &data.cases[i % data.cases.len()];
                        case.test.sample(t % case.test.len())
                    } else {
                        data.normal_test.sample((t + i) % data.normal_test.len())
                    };
                    (key, sample)
                })
                .collect()
        })
        .collect();

    let t0 = Instant::now();
    let mut pushed_ok = 0usize;
    for batch in &batches {
        let events = fleet.push_batch(batch);
        pushed_ok += events.iter().filter(|e| e.is_ok()).count();
        std::hint::black_box(&events);
    }
    let seconds = t0.elapsed().as_secs_f64();
    assert_eq!(
        pushed_ok,
        keys.len() * ticks,
        "the default ingress budget must admit the whole soak"
    );
    let samples_per_sec = pushed_ok as f64 / seconds;
    let samples_per_sec_per_core = samples_per_sec / par::num_threads() as f64;

    // One metrics-enabled tick populates the per-shard push histograms.
    pmu_obs::set_metrics_enabled(true);
    std::hint::black_box(fleet.push_batch(&batches[0]));
    let shard_p99_push_us =
        fleet.shard_stats().iter().map(|s| s.push_p99_us).fold(0.0, f64::max);
    pmu_obs::set_metrics_enabled(false);

    // Deliberate overload: one shard, a tiny ingress budget, a burst 4x
    // its size. Shedding must be typed and exactly accounted.
    let capacity = 16usize;
    let mut small = Fleet::new(FleetConfig { shards: 1, queue_capacity: capacity });
    let gid = small
        .add_grid("overload", bundle, &EngineConfig::default())
        .expect("fresh fleet");
    let key = FeedKey { grid: gid, feed: 0 };
    small.open_feed(key).expect("fresh key");
    let sample = data.normal_test.sample(0);
    let burst: Vec<_> = (0..capacity * 4).map(|_| (key, sample.clone())).collect();
    let events = small.push_batch(&burst);
    let overloaded = events
        .iter()
        .filter(|e| matches!(e, Err(ServeError::Overloaded { .. })))
        .count() as u64;
    let shed_total = small.shard_stats()[0].shed;
    let shed_expected = (burst.len() - capacity) as u64;
    let shed_ok = overloaded == shed_expected && shed_total == shed_expected;

    let timing = FleetTiming {
        grids,
        feeds: keys.len(),
        shards: fleet.shard_count(),
        ticks,
        seconds,
        samples_per_sec,
        samples_per_sec_per_core,
        shard_p99_push_us,
        shed_total,
        shed_expected,
        shed_ok,
    };
    pmu_obs::info(&format!(
        "fleet: {} grids x {} feeds on {} shard(s), {} ticks in {:.3} s \
         ({:.0} samples/s, {:.0}/s/core), shard p99 push {:.1} us, \
         shed {}/{} shed_ok={}",
        timing.grids,
        feeds_per_grid,
        timing.shards,
        timing.ticks,
        timing.seconds,
        timing.samples_per_sec,
        timing.samples_per_sec_per_core,
        timing.shard_p99_push_us,
        timing.shed_total,
        timing.shed_expected,
        timing.shed_ok,
    ));
    timing
}

fn bench_pipeline(systems: &[String], scale: EvalScale) -> PipelineTiming {
    let names: Vec<&str> = systems.iter().map(String::as_str).collect();
    let run = || {
        let setups = SystemSetup::build_all(&names, scale, SEED);
        std::hint::black_box(fig5(&setups, scale));
    };

    par::set_threads(1);
    let t = Instant::now();
    run();
    let serial = t.elapsed().as_secs_f64();
    pmu_obs::info(&format!("fig5 pipeline, 1 worker: {serial:.2} s"));

    par::set_threads(0); // back to PMU_THREADS / detected parallelism
    let workers = par::num_threads();
    // `par_map` degrades to the same sequential loop at one worker, so a
    // second timed run would measure an identical code path and report
    // its noise as a bogus speedup/regression. Reuse the measurement.
    let parallel = if workers <= 1 {
        pmu_obs::info("fig5 pipeline: 1 effective worker, parallel == serial");
        serial
    } else {
        let t = Instant::now();
        run();
        let parallel = t.elapsed().as_secs_f64();
        pmu_obs::info(&format!("fig5 pipeline, {workers} worker(s): {parallel:.2} s"));
        parallel
    };

    PipelineTiming {
        systems: systems.to_vec(),
        scale: scale.label().to_string(),
        serial_seconds: serial,
        parallel_seconds: parallel,
        speedup: serial / parallel,
        workers,
    }
}

/// Measure what the instrumentation costs: per-probe, per-ring-write,
/// and on a matmul-heavy workload, with the probes disabled (default)
/// and with full tracing to an in-memory sink. The flight-recorder
/// budget (`recorder_overhead_ok`) is checked against the ieee57
/// `engine_batch` timing when that system was benched, else the slowest
/// system available.
///
/// Must run after the other benches — it toggles the global obs state
/// and restores the defaults on exit.
fn bench_obs_overhead(engine_batch: &[EngineBatchTiming]) -> ObsOverheadTiming {
    const PROBES: usize = 1_000_000;
    // Per-probe cost, disabled: one relaxed load + branch.
    let disabled_s = time_median(3, || {
        for _ in 0..PROBES {
            pmu_obs::counter!("bench.probe").inc();
        }
    });
    pmu_obs::set_metrics_enabled(true);
    let enabled_s = time_median(3, || {
        for _ in 0..PROBES {
            pmu_obs::counter!("bench.probe").inc();
        }
    });
    pmu_obs::set_metrics_enabled(false);

    // Workload: instrumented matmuls, small enough that probe cost
    // would show if it were material.
    let a = fill(64, 64, 3);
    let b = fill(64, 64, 4);
    let workload = |a: &Matrix, b: &Matrix| {
        for _ in 0..50 {
            std::hint::black_box(a.matmul(b).expect("dims agree"));
        }
    };
    let disabled_ms = time_median(5, || workload(&a, &b)) * 1e3;
    pmu_obs::install_trace_writer(Box::new(std::io::sink()));
    let enabled_ms = time_median(5, || workload(&a, &b)) * 1e3;
    pmu_obs::uninstall_trace();
    pmu_obs::set_metrics_enabled(false);

    // Flight recorder: per-write cost on and off, plus a record-per-matmul
    // workload (the serve push path's rate of one ring write per sample).
    let ring = pmu_obs::Recorder::new(4096);
    let label = pmu_obs::recorder::label_id("bench.record");
    use pmu_obs::RecKind;
    let record_s = time_median(3, || {
        for i in 0..PROBES {
            ring.record(RecKind::Metric, label, i as u64, 0);
        }
    });
    pmu_obs::set_recorder_enabled(false);
    let record_disabled_s = time_median(3, || {
        for i in 0..PROBES {
            ring.record(RecKind::Metric, label, i as u64, 0);
        }
    });
    pmu_obs::set_recorder_enabled(true);
    let recorded_workload = |a: &Matrix, b: &Matrix| {
        for i in 0..50u64 {
            ring.record(RecKind::Metric, label, i, 0);
            std::hint::black_box(a.matmul(b).expect("dims agree"));
        }
    };
    let recorder_on_ms = time_median(5, || recorded_workload(&a, &b)) * 1e3;
    pmu_obs::set_recorder_enabled(false);
    let recorder_off_ms = time_median(5, || recorded_workload(&a, &b)) * 1e3;
    pmu_obs::set_recorder_enabled(true);

    let record_ns = record_s / PROBES as f64 * 1e9;
    let record_disabled_ns = record_disabled_s / PROBES as f64 * 1e9;
    // Analytic always-on budget at one ring write per sample, against
    // the ieee57 batch (or the slowest system benched).
    let gate = engine_batch
        .iter()
        .find(|t| t.system == "ieee57")
        .or_else(|| {
            engine_batch
                .iter()
                .max_by(|x, y| x.batch_ms.partial_cmp(&y.batch_ms).unwrap())
        });
    let recorder_overhead_pct = gate.map_or(0.0, |t| {
        100.0 * (t.batch as f64 * record_ns * 1e-6) / t.batch_ms
    });
    let recorder_overhead_ok = recorder_overhead_pct < 1.0;

    // The disabled matmul path takes 1 probe per call (the enabled
    // check); bound its share of kernel time from the measured
    // per-probe cost.
    let probe_disabled_ns = disabled_s / PROBES as f64 * 1e9;
    let probe_enabled_ns = enabled_s / PROBES as f64 * 1e9;
    let disabled_overhead_pct =
        100.0 * (50.0 * probe_disabled_ns * 1e-6) / disabled_ms;
    let timing = ObsOverheadTiming {
        probe_disabled_ns,
        probe_enabled_ns,
        workload_disabled_ms: disabled_ms,
        workload_enabled_ms: enabled_ms,
        disabled_overhead_pct,
        enabled_overhead_pct: 100.0 * (enabled_ms - disabled_ms) / disabled_ms,
        record_ns,
        record_disabled_ns,
        recorder_on_ms,
        recorder_off_ms,
        recorder_overhead_pct,
        recorder_overhead_ok,
    };
    pmu_obs::info(&format!(
        "obs overhead: probe {:.2} ns disabled / {:.2} ns enabled; \
         workload {:.3} ms disabled / {:.3} ms traced ({:+.2}%)",
        timing.probe_disabled_ns,
        timing.probe_enabled_ns,
        timing.workload_disabled_ms,
        timing.workload_enabled_ms,
        timing.enabled_overhead_pct,
    ));
    pmu_obs::info(&format!(
        "recorder overhead: {:.2} ns/record on / {:.2} ns off; workload \
         {:.3} ms on / {:.3} ms off; engine_batch share {:.4}% \
         recorder_overhead_ok={}",
        timing.record_ns,
        timing.record_disabled_ns,
        timing.recorder_on_ms,
        timing.recorder_off_ms,
        timing.recorder_overhead_pct,
        timing.recorder_overhead_ok,
    ));
    timing
}

fn git_revision() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_string();
    if rev.is_empty() { None } else { Some(rev) }
}

// ---------------------------------------------------------------------
// benchdiff
// ---------------------------------------------------------------------

/// Flatten the time-valued leaves (`*_ms`, `*_us`, `*_seconds`,
/// `seconds`) of a report into `path -> value` pairs. Arrays index by
/// position; the benchmark set is fixed per report version, so
/// positions align.
fn time_leaves(prefix: &str, v: &Value, out: &mut Vec<(String, f64)>) {
    let is_time_key = |k: &str| {
        k.ends_with("_ms") || k.ends_with("_us") || k.ends_with("seconds")
    };
    match v {
        Value::Obj(pairs) => {
            for (k, val) in pairs {
                let path =
                    if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                match val {
                    Value::Float(x) if is_time_key(k) => {
                        out.push((path, *x));
                    }
                    Value::Int(x) if is_time_key(k) => {
                        out.push((path, *x as f64));
                    }
                    other => time_leaves(&path, other, out),
                }
            }
        }
        Value::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                time_leaves(&format!("{prefix}[{i}]"), item, out);
            }
        }
        _ => {}
    }
}

/// Milliseconds represented by a time leaf, inferred from its key
/// suffix (`_us`, `_ms`, `seconds`).
fn leaf_ms(path: &str, value: f64) -> f64 {
    if path.ends_with("_us") {
        value / 1000.0
    } else if path.ends_with("_ms") {
        value
    } else {
        value * 1000.0
    }
}

/// Compare two BENCH_*.json reports and flag time regressions beyond
/// `tol_pct` percent. Leaves whose absolute slowdown is under
/// `floor_ms` milliseconds are reported but never counted as
/// regressions: sub-millisecond measurements jitter past any relative
/// tolerance on a shared machine. Returns the number of regressions
/// found.
fn benchdiff(old_path: &str, new_path: &str, tol_pct: f64, floor_ms: f64) -> usize {
    let load = |path: &str| -> Value {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read {path}: {e}"));
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
    };
    let old = load(old_path);
    let new = load(new_path);

    let meta = |v: &Value, key: &str| -> String {
        if let Value::Obj(pairs) = v {
            if let Some((_, val)) = pairs.iter().find(|(k, _)| k == key) {
                return match val {
                    Value::Str(s) => s.clone(),
                    Value::Int(i) => i.to_string(),
                    other => format!("{other:?}"),
                };
            }
        }
        "?".to_string()
    };
    // Timings scale with the evaluation workload, so diffing reports
    // from different scales is meaningless — a fast-scale run always
    // "beats" a standard-scale baseline, which is exactly how the
    // 41 s → 57.8 s ieee118 `system_build` regression slipped through.
    let (old_scale, new_scale) = (meta(&old, "scale"), meta(&new, "scale"));
    if old_scale != new_scale {
        println!(
            "error: scale differs ({old_scale} -> {new_scale}); cross-scale timing \
             comparisons are vacuous — regenerate the baseline at the same scale"
        );
        return 1;
    }
    for key in ["workers", "git_revision"] {
        let (o, n) = (meta(&old, key), meta(&new, key));
        if o != n {
            println!("note: {key} differs: {o} -> {n}");
        }
    }

    let mut old_leaves = Vec::new();
    let mut new_leaves = Vec::new();
    time_leaves("", &old, &mut old_leaves);
    time_leaves("", &new, &mut new_leaves);

    let mut regressions = 0usize;
    println!("{:<44} {:>10} {:>10} {:>8}", "metric", "old", "new", "delta");
    for (path, new_v) in &new_leaves {
        let Some((_, old_v)) = old_leaves.iter().find(|(p, _)| p == path) else {
            println!("{path:<44} {:>10} {new_v:>10.3} {:>8}", "-", "new");
            continue;
        };
        let pct = if *old_v > 0.0 { 100.0 * (new_v - old_v) / old_v } else { 0.0 };
        let delta_ms = leaf_ms(path, *new_v) - leaf_ms(path, *old_v);
        let flag = if pct > tol_pct && delta_ms > floor_ms {
            regressions += 1;
            "  REGRESSION"
        } else if pct > tol_pct {
            "  (below floor)"
        } else {
            ""
        };
        println!("{path:<44} {old_v:>10.3} {new_v:>10.3} {pct:>+7.1}%{flag}");
    }
    if regressions == 0 {
        println!("no regressions (>{tol_pct:.0}%) found");
    } else {
        println!("{regressions} regression(s) exceed the {tol_pct:.0}% threshold");
    }
    regressions
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("benchdiff") {
        let mut paths: Vec<&String> = Vec::new();
        let mut tol_pct = 10.0;
        let mut floor_ms = 0.0;
        let mut it = args[1..].iter();
        while let Some(arg) = it.next() {
            if arg == "--tol" {
                tol_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tol needs a percentage");
            } else if arg == "--floor-ms" {
                floor_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--floor-ms needs a millisecond value");
            } else {
                paths.push(arg);
            }
        }
        let [old_path, new_path] = paths[..] else {
            panic!("usage: perfbench benchdiff OLD.json NEW.json [--tol PCT] [--floor-ms MS]");
        };
        let regressions = benchdiff(old_path, new_path, tol_pct, floor_ms);
        std::process::exit(if regressions == 0 { 0 } else { 1 });
    }

    let mut systems: Vec<String> =
        vec!["ieee14".into(), "ieee30".into(), "ieee57".into(), "ieee118".into()];
    let mut scale = EvalScale::Standard;
    let mut out = "BENCH_repro.json".to_string();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--systems" => {
                let v = it.next().expect("--systems needs a value");
                systems = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--scale" => {
                scale = match it.next().expect("--scale needs a value").as_str() {
                    "fast" => EvalScale::Fast,
                    "standard" => EvalScale::Standard,
                    "paper" => EvalScale::Paper,
                    other => panic!("unknown scale {other}"),
                };
            }
            "--out" => out = it.next().expect("--out needs a path"),
            other => panic!("unknown argument {other}"),
        }
    }

    pmu_obs::init_from_env();
    // A configured PMU_ARTIFACTS store would turn system_build into a
    // bundle-load benchmark; keep the timings honest.
    set_store_policy(StorePolicy::Disabled);
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    pmu_obs::info(&format!(
        "perfbench: {} worker thread(s), {} core(s) available",
        par::num_threads(),
        available
    ));

    let matmul = bench_matmul();
    let nr_solve = bench_nr_solve(&systems);
    let svd = bench_svd();
    let system_build = bench_builds(&systems, scale);
    let (system_build_warm, system_build_incremental) =
        bench_builds_warm(&systems, scale);
    let (bundle_io, engine_batch, detect_throughput, robust_overhead, chaos) =
        bench_model_serving(&systems);
    let fleet = bench_fleet(scale);
    // The end-to-end pipeline timing stays on the ieee14/30/57 trio: an
    // ieee118 fig5 run times the detector over ~170 outage cases and
    // would dominate the harness without adding signal beyond its
    // system_build entry above.
    let pipeline_systems: Vec<String> =
        systems.iter().filter(|s| s.as_str() != "ieee118").cloned().collect();
    let fig5_pipeline = bench_pipeline(&pipeline_systems, scale);
    let obs_overhead = bench_obs_overhead(&engine_batch);

    let report = BenchReport {
        generated_by: "perfbench (crates/bench/src/bin/perfbench.rs)".to_string(),
        workers: par::num_threads(),
        available_parallelism: available,
        scale: scale.label().to_string(),
        seed: SEED,
        git_revision: git_revision(),
        matmul,
        nr_solve,
        svd,
        system_build,
        system_build_warm,
        system_build_incremental,
        bundle_io,
        engine_batch,
        detect_throughput,
        robust_overhead,
        chaos,
        fleet,
        fig5_pipeline,
        obs_overhead,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json).expect("write report");
    pmu_obs::info(&format!("wrote {out}"));
}
