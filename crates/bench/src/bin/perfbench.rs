//! `perfbench` — lightweight wall-clock timing harness.
//!
//! Unlike the criterion benches (which need `cargo bench` and an opt-in
//! env var), this is a plain binary with zero benchmarking dependencies:
//! `std::time::Instant` plus serde for the report. It times the three
//! things future PRs care about for the perf trajectory and writes
//! `BENCH_repro.json` at the repo root:
//!
//!   1. `Matrix::matmul` (cache-blocked) vs. the retained naive
//!      `matmul_reference` at representative sizes,
//!   2. `SystemSetup::build` per IEEE system (dataset generation +
//!      detector/MLR training — the bulk of a `repro` run),
//!   3. the fig5 evaluation pipeline with 1 worker vs. all workers,
//!      recording the measured speedup honestly (on a single-core
//!      machine this is ~1.0 by construction).
//!
//! ```text
//! perfbench [--systems a,b,c] [--scale fast|standard|paper] [--out PATH]
//! ```

use std::time::Instant;

use pmu_eval::figures::fig5;
use pmu_eval::runner::{EvalScale, SystemSetup};
use pmu_numerics::{par, Matrix};
use serde::Serialize;

#[derive(Serialize)]
struct MatmulTiming {
    m: usize,
    k: usize,
    n: usize,
    blocked_ms: f64,
    reference_ms: f64,
    /// reference / blocked — > 1.0 means the blocked kernel is faster.
    speedup: f64,
}

#[derive(Serialize)]
struct BuildTiming {
    system: String,
    seconds: f64,
}

#[derive(Serialize)]
struct PipelineTiming {
    systems: Vec<String>,
    scale: String,
    /// `SystemSetup::build_all` + fig5 with the worker pool pinned to 1.
    serial_seconds: f64,
    /// Same work with the full worker pool.
    parallel_seconds: f64,
    /// serial / parallel.
    speedup: f64,
    workers: usize,
}

#[derive(Serialize)]
struct BenchReport {
    generated_by: String,
    workers: usize,
    available_parallelism: usize,
    matmul: Vec<MatmulTiming>,
    system_build: Vec<BuildTiming>,
    fig5_pipeline: PipelineTiming,
}

/// Median of `reps` timed runs, in seconds.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Deterministic dense test matrix (no RNG needed for timing).
fn fill(rows: usize, cols: usize, salt: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let x = (i as u64)
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(j as u64)
            .wrapping_add(salt);
        (x % 2048) as f64 / 1024.0 - 1.0
    })
}

fn bench_matmul() -> Vec<MatmulTiming> {
    // Square sizes around the bus counts plus one rectangular shape like
    // the observation-window products (n_buses x window).
    let shapes: &[(usize, usize, usize)] =
        &[(64, 64, 64), (118, 118, 118), (256, 256, 256), (118, 60, 118)];
    shapes
        .iter()
        .map(|&(m, k, n)| {
            let a = fill(m, k, 1);
            let b = fill(k, n, 2);
            let blocked = time_median(5, || {
                std::hint::black_box(a.matmul(&b).expect("dims agree"));
            });
            let reference = time_median(5, || {
                std::hint::black_box(a.matmul_reference(&b).expect("dims agree"));
            });
            eprintln!(
                "matmul {m}x{k}x{n}: blocked {:.3} ms, reference {:.3} ms",
                blocked * 1e3,
                reference * 1e3
            );
            MatmulTiming {
                m,
                k,
                n,
                blocked_ms: blocked * 1e3,
                reference_ms: reference * 1e3,
                speedup: reference / blocked,
            }
        })
        .collect()
}

fn bench_builds(systems: &[String], scale: EvalScale) -> Vec<BuildTiming> {
    systems
        .iter()
        .map(|name| {
            let t = Instant::now();
            let setup = SystemSetup::build(name, scale, 0xC0FFEE);
            let seconds = t.elapsed().as_secs_f64();
            std::hint::black_box(&setup);
            eprintln!("build {name}: {seconds:.2} s");
            BuildTiming { system: name.clone(), seconds }
        })
        .collect()
}

fn bench_pipeline(systems: &[String], scale: EvalScale) -> PipelineTiming {
    let names: Vec<&str> = systems.iter().map(String::as_str).collect();
    let run = || {
        let setups = SystemSetup::build_all(&names, scale, 0xC0FFEE);
        std::hint::black_box(fig5(&setups, scale));
    };

    par::set_threads(1);
    let t = Instant::now();
    run();
    let serial = t.elapsed().as_secs_f64();
    eprintln!("fig5 pipeline, 1 worker: {serial:.2} s");

    par::set_threads(0); // back to PMU_THREADS / detected parallelism
    let workers = par::num_threads();
    let t = Instant::now();
    run();
    let parallel = t.elapsed().as_secs_f64();
    eprintln!("fig5 pipeline, {workers} worker(s): {parallel:.2} s");

    PipelineTiming {
        systems: systems.to_vec(),
        scale: format!("{scale:?}").to_lowercase(),
        serial_seconds: serial,
        parallel_seconds: parallel,
        speedup: serial / parallel,
        workers,
    }
}

fn main() {
    let mut systems: Vec<String> = vec!["ieee14".into(), "ieee30".into(), "ieee57".into()];
    let mut scale = EvalScale::Standard;
    let mut out = "BENCH_repro.json".to_string();

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--systems" => {
                let v = it.next().expect("--systems needs a value");
                systems = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--scale" => {
                scale = match it.next().expect("--scale needs a value").as_str() {
                    "fast" => EvalScale::Fast,
                    "standard" => EvalScale::Standard,
                    "paper" => EvalScale::Paper,
                    other => panic!("unknown scale {other}"),
                };
            }
            "--out" => out = it.next().expect("--out needs a path"),
            other => panic!("unknown argument {other}"),
        }
    }

    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "perfbench: {} worker thread(s), {} core(s) available",
        par::num_threads(),
        available
    );

    let matmul = bench_matmul();
    let system_build = bench_builds(&systems, scale);
    let fig5_pipeline = bench_pipeline(&systems, scale);

    let report = BenchReport {
        generated_by: "perfbench (crates/bench/src/bin/perfbench.rs)".to_string(),
        workers: par::num_threads(),
        available_parallelism: available,
        matmul,
        system_build,
        fig5_pipeline,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json).expect("write report");
    eprintln!("wrote {out}");
}
