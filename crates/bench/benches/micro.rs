//! Microbenchmarks of the core primitives: dense numerics, power flow,
//! dataset generation, detector training, and — the number the paper's
//! "online application" claim rides on — single-sample detection latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmu_bench::{bench_dataset, bench_detector};
use pmu_flow::{solve_ac, solve_dc, AcConfig};
use pmu_grid::cases::{ieee118, ieee14};
use pmu_numerics::lu::LuFactors;
use pmu_numerics::qr::QrFactors;
use pmu_numerics::{Matrix, Svd, Vector};
use pmu_sim::missing::outage_endpoints_mask;
use pmu_sim::{generate_dataset, GenConfig};
use std::hint::black_box;

fn deterministic_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn bench_numerics(c: &mut Criterion) {
    let mut group = c.benchmark_group("numerics");
    for &n in &[30usize, 60, 118] {
        let square = deterministic_matrix(n, n, 42);
        // Diagonally dominant variant for LU.
        let mut dd = square.clone();
        for i in 0..n {
            let row_sum: f64 = dd.row(i).iter().map(|x| x.abs()).sum();
            dd[(i, i)] += row_sum + 1.0;
        }
        let rhs = Vector::ones(n);
        group.bench_with_input(BenchmarkId::new("lu_factorize_solve", n), &n, |b, _| {
            b.iter(|| {
                let lu = LuFactors::factorize(black_box(&dd)).unwrap();
                black_box(lu.solve(&rhs).unwrap())
            })
        });
        let tall = deterministic_matrix(n, 20, 7);
        group.bench_with_input(BenchmarkId::new("svd_nx20", n), &n, |b, _| {
            b.iter(|| black_box(Svd::compute(black_box(&tall)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("qr_nx20", n), &n, |b, _| {
            b.iter(|| black_box(QrFactors::factorize(black_box(&tall)).unwrap()))
        });
    }
    group.finish();
}

fn bench_power_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_flow");
    let n14 = ieee14().unwrap();
    let n118 = ieee118().unwrap();
    group.bench_function("ac_newton_ieee14", |b| {
        b.iter(|| black_box(solve_ac(&n14, &AcConfig::default()).unwrap()))
    });
    group.bench_function("ac_newton_ieee118", |b| {
        b.iter(|| black_box(solve_ac(&n118, &AcConfig::default()).unwrap()))
    });
    group.bench_function("dc_ieee118", |b| {
        b.iter(|| black_box(solve_dc(&n118).unwrap()))
    });
    group.bench_function("fdpf_ieee118", |b| {
        b.iter(|| {
            black_box(
                pmu_flow::solve_fdpf(&n118, &pmu_flow::FdpfConfig::default()).unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    let net = ieee14().unwrap();
    let gen = GenConfig { train_len: 10, test_len: 3, seed: 3, ..GenConfig::default() };
    group.bench_function("dataset_generation_ieee14_small", |b| {
        b.iter(|| black_box(generate_dataset(&net, &gen).unwrap()))
    });

    let data = bench_dataset();
    group.bench_function("detector_training_ieee14", |b| {
        b.iter(|| black_box(bench_detector(&data)))
    });

    let det = bench_detector(&data);
    let complete = data.cases[0].test.sample(0);
    group.bench_function("detect_complete_sample", |b| {
        b.iter(|| black_box(det.detect(black_box(&complete)).unwrap()))
    });
    let mask = outage_endpoints_mask(14, data.cases[0].endpoints);
    let masked = complete.masked(&mask);
    group.bench_function("detect_masked_sample", |b| {
        b.iter(|| black_box(det.detect(black_box(&masked)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_numerics, bench_power_flow, bench_pipeline);
criterion_main!(benches);
