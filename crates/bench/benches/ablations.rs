//! Timing of the ablation variants for the design choices DESIGN.md calls
//! out: Eq. (11) proximity scaling, ellipse fitting method, subspace
//! dimension, naive vs capability detection groups, and the MLR
//! imputation policy. The *quality* impact of the same switches is
//! measured by `repro ablations` in `pmu-eval`; these benches track their
//! runtime cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmu_baseline::{Imputation, MlrConfig, MlrDetector};
use pmu_bench::{bench_config, bench_dataset};
use pmu_detect::config::EllipseMethod;
use pmu_detect::{Detector, DetectorConfig};
use pmu_sim::missing::outage_endpoints_mask;
use std::hint::black_box;

fn bench_proximity_scaling(c: &mut Criterion) {
    let data = bench_dataset();
    let mut group = c.benchmark_group("ablation_scaling");
    group.sample_size(10);
    for (label, scale) in [("eq11_scaled", true), ("unscaled", false)] {
        let cfg = DetectorConfig { scale_proximities: scale, ..bench_config(&data.network) };
        let det = Detector::train(&data, &cfg).unwrap();
        let sample = data.cases[0].test.sample(0);
        group.bench_function(BenchmarkId::new("detect", label), |b| {
            b.iter(|| black_box(det.detect(black_box(&sample)).unwrap()))
        });
    }
    group.finish();
}

fn bench_ellipse_methods(c: &mut Criterion) {
    let data = bench_dataset();
    let mut group = c.benchmark_group("ablation_ellipse");
    group.sample_size(10);
    for (label, method) in [
        ("scaled_covariance", EllipseMethod::ScaledCovariance),
        ("min_volume", EllipseMethod::MinVolume),
    ] {
        let cfg = DetectorConfig { ellipse: method, ..bench_config(&data.network) };
        group.bench_function(BenchmarkId::new("train", label), |b| {
            b.iter(|| black_box(Detector::train(&data, &cfg).unwrap()))
        });
    }
    group.finish();
}

fn bench_subspace_dims(c: &mut Criterion) {
    let data = bench_dataset();
    let mut group = c.benchmark_group("ablation_subspace_dim");
    group.sample_size(10);
    for dim in [2usize, 3, 5] {
        let cfg = DetectorConfig { subspace_dim: dim, ..bench_config(&data.network) };
        let det = Detector::train(&data, &cfg).unwrap();
        let mask = outage_endpoints_mask(14, data.cases[0].endpoints);
        let sample = data.cases[0].test.sample(0).masked(&mask);
        group.bench_function(BenchmarkId::new("detect_masked", dim), |b| {
            b.iter(|| black_box(det.detect(black_box(&sample)).unwrap()))
        });
    }
    group.finish();
}

fn bench_group_formation(c: &mut Criterion) {
    let data = bench_dataset();
    let mut group = c.benchmark_group("ablation_groups");
    group.sample_size(10);
    for (label, fraction) in [("naive", 0.0), ("proposed", 1.0)] {
        let cfg =
            DetectorConfig { capability_fraction: fraction, ..bench_config(&data.network) };
        group.bench_function(BenchmarkId::new("train", label), |b| {
            b.iter(|| black_box(Detector::train(&data, &cfg).unwrap()))
        });
    }
    group.finish();
}

fn bench_mlr_imputation(c: &mut Criterion) {
    let data = bench_dataset();
    let mut group = c.benchmark_group("ablation_mlr");
    group.sample_size(10);
    for (label, imp) in
        [("mean_impute", Imputation::TrainingMean), ("zero_impute", Imputation::Zero)]
    {
        let cfg = MlrConfig { imputation: imp, ..MlrConfig::default() };
        let mlr = MlrDetector::train(&data, &cfg);
        let mask = outage_endpoints_mask(14, data.cases[0].endpoints);
        let sample = data.cases[0].test.sample(0).masked(&mask);
        group.bench_function(BenchmarkId::new("predict", label), |b| {
            b.iter(|| black_box(mlr.predict(black_box(&sample))))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_proximity_scaling,
    bench_ellipse_methods,
    bench_subspace_dims,
    bench_group_formation,
    bench_mlr_imputation
);
criterion_main!(benches);
