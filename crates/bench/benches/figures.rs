//! End-to-end timing of every figure-reproduction pipeline at CI scale
//! (IEEE-14, fast evaluation). The printed *data* for each figure comes
//! from `cargo run -p pmu-eval --bin repro`; these benches keep the cost
//! of each pipeline visible so regressions in the detector or simulator
//! show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use pmu_eval::figures;
use pmu_eval::runner::{EvalScale, SystemSetup};
use std::hint::black_box;

fn setup() -> Vec<SystemSetup> {
    vec![SystemSetup::build("ieee14", EvalScale::Fast, 0xBE7C)]
}

fn bench_figures(c: &mut Criterion) {
    let setups = setup();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig4_group_formation_sweep", |b| {
        b.iter(|| black_box(figures::fig4(&setups, EvalScale::Fast)))
    });
    group.bench_function("fig5_complete_data", |b| {
        b.iter(|| black_box(figures::fig5(&setups, EvalScale::Fast)))
    });
    group.bench_function("fig7_missing_outage_data", |b| {
        b.iter(|| black_box(figures::fig7(&setups, EvalScale::Fast)))
    });
    group.bench_function("fig8_random_missing_normal", |b| {
        b.iter(|| black_box(figures::fig8(&setups)))
    });
    group.bench_function("fig9_random_missing_outage", |b| {
        b.iter(|| black_box(figures::fig9(&setups, EvalScale::Fast)))
    });
    group.bench_function("fig10_reliability_sweep", |b| {
        b.iter(|| black_box(figures::fig10(&setups, EvalScale::Fast)))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
