//! Compressed sparse row (CSR) matrices, real and complex.
//!
//! Power-system operators are graph-local: the bus admittance matrix and
//! the Newton–Raphson Jacobian have a handful of nonzeros per row no
//! matter how large the grid gets (~99% zero at IEEE-118 size). This
//! module provides the storage and the two operations the power-flow
//! layer needs — construction from coordinate triplets and sparse
//! matrix–vector products — plus transposition and dense conversion for
//! tests. Factorization lives in [`crate::sparse_lu`].
//!
//! Duplicate triplets are **summed in insertion order** (a stable sort
//! groups them without reordering equal keys), so a caller that stamps
//! element contributions in a fixed order gets bit-reproducible sums.

use crate::cmatrix::CMatrix;
use crate::complex::Complex64;
use crate::error::NumericsError;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::Result;

/// A real matrix in compressed sparse row form.
///
/// Invariants: `row_ptr.len() == rows + 1`, column indices within each
/// row are strictly increasing, and `col_idx.len() == values.len()`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

/// Sort triplets by (row, col) with a stable sort and sum duplicates,
/// returning the CSR arrays. Shared by the real and complex builders.
fn compress<T: Copy + std::ops::AddAssign>(
    rows: usize,
    mut triplets: Vec<(usize, usize, T)>,
) -> (Vec<usize>, Vec<usize>, Vec<T>) {
    triplets.sort_by_key(|&(r, c, _)| (r, c));
    let mut row_ptr = vec![0usize; rows + 1];
    let mut col_idx: Vec<usize> = Vec::with_capacity(triplets.len());
    let mut values: Vec<T> = Vec::with_capacity(triplets.len());
    // Duplicates are adjacent after the stable sort; fold them into the
    // previously emitted entry. row_ptr holds per-row counts first and is
    // prefix-summed into offsets below.
    let mut last: Option<(usize, usize)> = None;
    for (r, c, v) in triplets {
        if last == Some((r, c)) {
            *values.last_mut().expect("entry exists for duplicate") += v;
            continue;
        }
        last = Some((r, c));
        row_ptr[r + 1] += 1;
        col_idx.push(c);
        values.push(v);
    }
    for r in 0..rows {
        row_ptr[r + 1] += row_ptr[r];
    }
    (row_ptr, col_idx, values)
}

/// Validate triplet indices against the matrix shape.
fn check_triplets<T>(
    op: &'static str,
    rows: usize,
    cols: usize,
    triplets: &[(usize, usize, T)],
) -> Result<()> {
    for &(r, c, _) in triplets {
        if r >= rows || c >= cols {
            return Err(NumericsError::invalid(
                op,
                format!("triplet ({r}, {c}) out of bounds for {rows}x{cols}"),
            ));
        }
    }
    Ok(())
}

impl CsrMatrix {
    /// Build from coordinate triplets `(row, col, value)`. Duplicates are
    /// summed in insertion order; explicit zeros are kept (they are part
    /// of the sparsity *pattern*, which the LU symbolic analysis reuses).
    ///
    /// # Errors
    /// Returns [`NumericsError::InvalidArgument`] for out-of-range indices.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: Vec<(usize, usize, f64)>,
    ) -> Result<Self> {
        check_triplets("csr_from_triplets", rows, cols, &triplets)?;
        let (row_ptr, col_idx, values) = compress(rows, triplets);
        Ok(CsrMatrix { rows, cols, row_ptr, col_idx, values })
    }

    /// Convert a dense matrix, keeping entries with `|a_ij| > drop_tol`.
    pub fn from_dense(a: &Matrix, drop_tol: f64) -> Self {
        let mut triplets = Vec::new();
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                if a[(r, c)].abs() > drop_tol {
                    triplets.push((r, c, a[(r, c)]));
                }
            }
        }
        CsrMatrix::from_triplets(a.rows(), a.cols(), triplets)
            .expect("indices from a dense matrix are in range")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of stored entries over the dense size.
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Column indices and values of row `r`.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// The stored values, mutably — for rewriting the numerics of a
    /// fixed-pattern matrix (Jacobian reassembly) without reallocating.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The stored values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Flat index of the stored entry at `(r, c)`, if present in the
    /// pattern (binary search within the row).
    pub fn position(&self, r: usize, c: usize) -> Option<usize> {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        let cols = &self.col_idx[span.clone()];
        cols.binary_search(&c).ok().map(|k| span.start + k)
    }

    /// `y = A x`.
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] when `x` has the wrong length.
    pub fn matvec(&self, x: &Vector) -> Result<Vector> {
        let mut y = Vector::zeros(self.rows);
        self.matvec_into(x.as_slice(), y.as_mut_slice())?;
        Ok(y)
    }

    /// `y = A x` into a caller-provided buffer (allocation-free).
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] when `x` or `y` has the
    /// wrong length.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(NumericsError::ShapeMismatch {
                op: "csr_matvec",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *out = acc;
        }
        Ok(())
    }

    /// The transposed matrix (CSC of the original, re-expressed as CSR).
    pub fn transpose(&self) -> CsrMatrix {
        // Counting sort by column: one pass to size the rows of Aᵀ, one
        // pass to scatter.
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for c in 0..self.cols {
            row_ptr[c + 1] += row_ptr[c];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = row_ptr.clone();
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let dst = next[c];
                next[c] += 1;
                col_idx[dst] = r;
                values[dst] = self.values[k];
            }
        }
        CsrMatrix { rows: self.cols, cols: self.rows, row_ptr, col_idx, values }
    }

    /// Dense copy (tests and the dense fallback path).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                m[(r, self.col_idx[k])] = self.values[k];
            }
        }
        m
    }
}

/// A complex matrix in compressed sparse row form (sparse Y-bus).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrCMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<Complex64>,
}

impl CsrCMatrix {
    /// Build from coordinate triplets; duplicates are summed in insertion
    /// order (see module docs).
    ///
    /// # Errors
    /// Returns [`NumericsError::InvalidArgument`] for out-of-range indices.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: Vec<(usize, usize, Complex64)>,
    ) -> Result<Self> {
        check_triplets("csr_c_from_triplets", rows, cols, &triplets)?;
        let (row_ptr, col_idx, values) = compress(rows, triplets);
        Ok(CsrCMatrix { rows, cols, row_ptr, col_idx, values })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of row `r`.
    pub fn row(&self, r: usize) -> (&[usize], &[Complex64]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// `y = A x`.
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] when `x` has the wrong length.
    pub fn matvec(&self, x: &[Complex64]) -> Result<Vec<Complex64>> {
        if x.len() != self.cols {
            return Err(NumericsError::ShapeMismatch {
                op: "csr_c_matvec",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![Complex64::ZERO; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *out = acc;
        }
        Ok(y)
    }

    /// The transposed matrix (no conjugation).
    pub fn transpose(&self) -> CsrCMatrix {
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for c in 0..self.cols {
            row_ptr[c + 1] += row_ptr[c];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![Complex64::ZERO; self.nnz()];
        let mut next = row_ptr.clone();
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let dst = next[c];
                next[c] += 1;
                col_idx[dst] = r;
                values[dst] = self.values[k];
            }
        }
        CsrCMatrix { rows: self.cols, cols: self.rows, row_ptr, col_idx, values }
    }

    /// Dense copy (tests).
    pub fn to_dense(&self) -> CMatrix {
        let mut m = CMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                m[(r, self.col_idx[k])] = self.values[k];
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        CsrMatrix::from_triplets(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0), (2, 2, 5.0)],
        )
        .unwrap()
    }

    #[test]
    fn triplets_build_and_duplicates_sum() {
        let a = CsrMatrix::from_triplets(
            2,
            2,
            vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, -1.0), (0, 1, 0.5)],
        )
        .unwrap();
        assert_eq!(a.nnz(), 3);
        let d = a.to_dense();
        assert_eq!(d[(0, 0)], 3.0);
        assert_eq!(d[(0, 1)], 0.5);
        assert_eq!(d[(1, 1)], -1.0);
        assert!(CsrMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]).is_err());
    }

    #[test]
    fn rows_are_sorted_and_accessible() {
        let a = sample();
        let (cols, vals) = a.row(2);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[4.0, 5.0]);
        assert_eq!(a.position(0, 2), Some(1));
        assert_eq!(a.position(0, 1), None);
        assert!((a.density() - 5.0 / 9.0).abs() < 1e-15);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = sample();
        let x = Vector::from(vec![1.0, -1.0, 2.0]);
        let y = a.matvec(&x).unwrap();
        let yd = a.to_dense().matvec(&x).unwrap();
        for i in 0..3 {
            assert_eq!(y[i], yd[i]);
        }
        assert!(a.matvec(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = sample();
        let t = a.transpose();
        assert_eq!(t.to_dense().max_abs_diff(&a.to_dense().transpose()), 0.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn from_dense_roundtrip() {
        let d = Matrix::from_rows(2, 3, vec![0.0, 1.5, 0.0, -2.0, 0.0, 1e-14]).unwrap();
        let s = CsrMatrix::from_dense(&d, 1e-12);
        assert_eq!(s.nnz(), 2);
        assert!((s.to_dense().max_abs_diff(&d)) <= 1e-14);
    }

    #[test]
    fn complex_matvec_and_transpose() {
        let a = CsrCMatrix::from_triplets(
            2,
            2,
            vec![
                (0, 0, Complex64::new(1.0, 1.0)),
                (0, 1, Complex64::new(0.0, -2.0)),
                (1, 0, Complex64::new(3.0, 0.0)),
            ],
        )
        .unwrap();
        let x = vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, 1.0)];
        let y = a.matvec(&x).unwrap();
        let yd = a.to_dense().matvec(&x).unwrap();
        for i in 0..2 {
            assert!((y[i] - yd[i]).abs() < 1e-15);
        }
        let t = a.transpose();
        assert!((t.to_dense()[(1, 0)] - Complex64::new(0.0, -2.0)).abs() < 1e-15);
        assert_eq!(t.nnz(), 3);
        assert!(a.matvec(&x[..1]).is_err());
    }

    #[test]
    fn empty_rows_are_fine() {
        let a = CsrMatrix::from_triplets(3, 3, vec![(2, 2, 1.0)]).unwrap();
        let (cols, _) = a.row(0);
        assert!(cols.is_empty());
        let y = a.matvec(&Vector::from(vec![1.0, 1.0, 1.0])).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 1.0]);
    }
}
