//! Orthonormal subspaces of R^n and the operations the detector needs:
//! projections and residual distances, restriction to index subsets (the
//! missing-data mechanism of Eq. 9–10), unions and intersections (Eq. 3),
//! and principal angles between subspaces.

use crate::eigen::sym_eigen;
use crate::error::NumericsError;
use crate::matrix::Matrix;
use crate::qr::orthonormal_columns;
use crate::svd::Svd;
use crate::vector::Vector;
use crate::Result;

/// Relative tolerance used when orthonormalizing bases.
const BASIS_TOL: f64 = 1e-10;
/// Eigenvalue threshold above which a projector direction counts as shared
/// by every member of an intersection.
const INTERSECT_EIG_TOL: f64 = 1e-6;

/// A linear subspace of R^n represented by an orthonormal basis.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone)]
pub struct Subspace {
    /// n×k matrix with orthonormal columns spanning the subspace.
    basis: Matrix,
}

impl Subspace {
    /// Build a subspace from an arbitrary spanning set (columns of `span`).
    /// The basis is orthonormalized and linearly dependent columns dropped.
    ///
    /// # Errors
    /// Returns an error for an empty `span` matrix.
    pub fn from_span(span: &Matrix) -> Result<Self> {
        let basis = orthonormal_columns(span, BASIS_TOL)?;
        Ok(Subspace { basis })
    }

    /// Build a subspace directly from a matrix that is already known to have
    /// orthonormal columns (e.g. a block of singular vectors). Debug builds
    /// verify the orthonormality claim.
    pub fn from_orthonormal(basis: Matrix) -> Self {
        #[cfg(debug_assertions)]
        {
            if basis.cols() > 0 {
                let g = basis.transpose().matmul(&basis).expect("shape");
                debug_assert!(
                    g.max_abs_diff(&Matrix::identity(basis.cols())) < 1e-8,
                    "from_orthonormal: basis is not orthonormal"
                );
            }
        }
        Subspace { basis }
    }

    /// The trivial (zero-dimensional) subspace of R^n.
    pub fn zero(ambient: usize) -> Self {
        Subspace { basis: Matrix::zeros(ambient, 0) }
    }

    /// Ambient dimension n.
    pub fn ambient_dim(&self) -> usize {
        self.basis.rows()
    }

    /// Subspace dimension k.
    pub fn dim(&self) -> usize {
        self.basis.cols()
    }

    /// Borrow the orthonormal basis (n×k).
    pub fn basis(&self) -> &Matrix {
        &self.basis
    }

    /// Orthogonal projection of `x` onto the subspace.
    ///
    /// # Errors
    /// Returns a shape error when `x` has the wrong length.
    pub fn project(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.ambient_dim() {
            return Err(NumericsError::ShapeMismatch {
                op: "subspace_project",
                lhs: (self.ambient_dim(), self.dim()),
                rhs: (x.len(), 1),
            });
        }
        let coeff = self.basis.tr_matvec(x)?;
        self.basis.matvec(&coeff)
    }

    /// Squared distance from `x` to the subspace: `||x - P x||²`.
    ///
    /// # Errors
    /// Returns a shape error when `x` has the wrong length.
    pub fn residual_sqr(&self, x: &Vector) -> Result<f64> {
        let p = self.project(x)?;
        Ok((x - &p).norm_sqr())
    }

    /// The orthogonal projector matrix `B B^T` (n×n).
    pub fn projector(&self) -> Matrix {
        if self.dim() == 0 {
            return Matrix::zeros(self.ambient_dim(), self.ambient_dim());
        }
        self.basis.matmul(&self.basis.transpose()).expect("shape")
    }

    /// Restrict the subspace basis to the given row indices. The result is a
    /// subspace of R^{|rows|} spanning the projections of the basis vectors
    /// onto those coordinates (re-orthonormalized). This realizes the
    /// "S(D)" row split of Sec. IV-C: proximity can be evaluated with only
    /// the detection group's measurements.
    ///
    /// # Errors
    /// Returns an error when `rows` is empty or out of range.
    pub fn restrict_rows(&self, rows: &[usize]) -> Result<Subspace> {
        if rows.is_empty() {
            return Err(NumericsError::invalid("restrict_rows", "empty index set"));
        }
        if let Some(&bad) = rows.iter().find(|&&r| r >= self.ambient_dim()) {
            return Err(NumericsError::invalid(
                "restrict_rows",
                format!("row {} out of range (ambient {})", bad, self.ambient_dim()),
            ));
        }
        if self.dim() == 0 {
            return Ok(Subspace::zero(rows.len()));
        }
        // Identity fast path: restricting to every row in order is a no-op,
        // and re-orthonormalizing an already orthonormal basis through QR
        // would only churn signs. The full-observation mask is the common
        // case on the detection hot path, so skip the round trip entirely.
        if rows.len() == self.ambient_dim() && rows.iter().enumerate().all(|(i, &r)| i == r) {
            return Ok(self.clone());
        }
        let sub = self.basis.select_rows(rows);
        Subspace::from_span(&sub)
    }

    /// Keep only the leading `max_dim` basis directions. A column prefix of
    /// an orthonormal basis is orthonormal by construction, so no
    /// re-orthonormalization (or verification) round trip is needed.
    pub fn truncate(&self, max_dim: usize) -> Subspace {
        if self.dim() <= max_dim {
            return self.clone();
        }
        Subspace { basis: self.basis.leading_columns(max_dim) }
    }

    /// Union of subspaces: the smallest subspace containing every input
    /// (the span of all bases). Matches the `S_i^∪` construction of Eq. (3).
    ///
    /// # Errors
    /// Returns an error when the list is empty or ambient dims differ.
    pub fn union(spaces: &[&Subspace]) -> Result<Subspace> {
        let first = spaces
            .first()
            .ok_or_else(|| NumericsError::invalid("subspace_union", "no subspaces"))?;
        let n = first.ambient_dim();
        let mut concat: Option<Matrix> = None;
        for s in spaces {
            if s.ambient_dim() != n {
                return Err(NumericsError::invalid(
                    "subspace_union",
                    "ambient dimension mismatch",
                ));
            }
            if s.dim() == 0 {
                continue;
            }
            concat = Some(match concat {
                None => s.basis.clone(),
                Some(c) => c.hcat(&s.basis)?,
            });
        }
        match concat {
            None => Ok(Subspace::zero(n)),
            Some(c) => Subspace::from_span(&c),
        }
    }

    /// Intersection of subspaces via the averaged-projector method: the
    /// intersection is spanned by eigenvectors of `(P_1 + … + P_m)/m` with
    /// eigenvalue 1. Matches the `S_i^∩` construction of Eq. (3).
    ///
    /// # Errors
    /// Returns an error when the list is empty or ambient dims differ.
    pub fn intersection(spaces: &[&Subspace]) -> Result<Subspace> {
        let first = spaces
            .first()
            .ok_or_else(|| NumericsError::invalid("subspace_intersection", "no subspaces"))?;
        let n = first.ambient_dim();
        if spaces.len() == 1 {
            return Ok((*first).clone());
        }
        let mut avg = Matrix::zeros(n, n);
        for s in spaces {
            if s.ambient_dim() != n {
                return Err(NumericsError::invalid(
                    "subspace_intersection",
                    "ambient dimension mismatch",
                ));
            }
            let p = s.projector();
            avg = &avg + &p;
        }
        avg.scale_mut(1.0 / spaces.len() as f64);
        let eig = sym_eigen(&avg)?;
        let keep: Vec<usize> = eig
            .values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 1.0 - INTERSECT_EIG_TOL)
            .map(|(i, _)| i)
            .collect();
        if keep.is_empty() {
            return Ok(Subspace::zero(n));
        }
        let basis = eig.vectors.select_columns(&keep);
        Ok(Subspace::from_orthonormal(basis))
    }

    /// Union and intersection of the same subspace family in one call,
    /// with the intersection eigenproblem solved *inside the union*: every
    /// averaged-projector eigenvector with eigenvalue 1 lies in each
    /// member subspace and therefore in their union, so the n×n ambient
    /// eigendecomposition of [`Subspace::intersection`] can be replaced by
    /// a k×k one in union coordinates (`k = dim ∪`, typically ≤ a tenth of
    /// `n` for the per-node aggregations of Eq. (3)). Exact for every
    /// retained direction; the two routines agree to the eigensolver
    /// tolerance.
    ///
    /// # Errors
    /// As [`Subspace::union`] / [`Subspace::intersection`]: empty list or
    /// ambient-dimension mismatch.
    pub fn union_and_intersection(spaces: &[&Subspace]) -> Result<(Subspace, Subspace)> {
        let union = Subspace::union(spaces)?;
        let n = union.ambient_dim();
        if spaces.len() == 1 {
            return Ok((union, spaces[0].clone()));
        }
        // Any empty member forces an empty intersection (its projector
        // contributes nothing, capping the averaged eigenvalues at
        // (m−1)/m < 1 − tol), as does an empty union.
        if union.dim() == 0 || spaces.iter().any(|s| s.dim() == 0) {
            return Ok((union, Subspace::zero(n)));
        }
        let k = union.dim();
        let mut avg = Matrix::zeros(k, k);
        for s in spaces {
            // Member basis in union coordinates: C = Uᵀ B (k×k_i). Since
            // span(B) ⊆ span(U), C has orthonormal columns and C·Cᵀ is the
            // member's projector restricted to the union.
            let c = union.basis.tr_matmul(&s.basis)?;
            let p = c.matmul(&c.transpose())?;
            avg = &avg + &p;
        }
        avg.scale_mut(1.0 / spaces.len() as f64);
        let eig = sym_eigen(&avg)?;
        let keep: Vec<usize> = eig
            .values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 1.0 - INTERSECT_EIG_TOL)
            .map(|(i, _)| i)
            .collect();
        if keep.is_empty() {
            return Ok((union, Subspace::zero(n)));
        }
        let basis = union.basis.matmul(&eig.vectors.select_columns(&keep))?;
        let inter = Subspace::from_orthonormal(basis);
        Ok((union, inter))
    }

    /// Principal angles (in radians, ascending) between two subspaces,
    /// computed from the singular values of `B_a^T B_b`.
    ///
    /// # Errors
    /// Returns an error on ambient-dimension mismatch.
    pub fn principal_angles(&self, other: &Subspace) -> Result<Vec<f64>> {
        if self.ambient_dim() != other.ambient_dim() {
            return Err(NumericsError::invalid(
                "principal_angles",
                "ambient dimension mismatch",
            ));
        }
        if self.dim() == 0 || other.dim() == 0 {
            return Ok(Vec::new());
        }
        let m = self.basis.transpose().matmul(&other.basis)?;
        let svd = Svd::compute(&m)?;
        Ok(svd
            .sigma
            .iter()
            .map(|&s| s.clamp(-1.0, 1.0).acos())
            .rev() // sigma descending → angles ascending
            .collect())
    }

    /// `true` when `other` spans (numerically) the same subspace.
    pub fn approx_eq(&self, other: &Subspace, tol: f64) -> bool {
        if self.ambient_dim() != other.ambient_dim() || self.dim() != other.dim() {
            return false;
        }
        let pa = self.projector();
        let pb = other.projector();
        pa.max_abs_diff(&pb) < tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axis_subspace(n: usize, axes: &[usize]) -> Subspace {
        let mut m = Matrix::zeros(n, axes.len());
        for (c, &a) in axes.iter().enumerate() {
            m[(a, c)] = 1.0;
        }
        Subspace::from_orthonormal(m)
    }

    #[test]
    fn projection_onto_axis_plane() {
        let s = axis_subspace(3, &[0, 1]);
        let x = Vector::from(vec![1.0, 2.0, 3.0]);
        let p = s.project(&x).unwrap();
        assert_eq!(p.as_slice(), &[1.0, 2.0, 0.0]);
        assert!((s.residual_sqr(&x).unwrap() - 9.0).abs() < 1e-12);
        assert!(s.project(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn from_span_orthonormalizes() {
        // Two dependent columns plus one independent → dim 2.
        let span = Matrix::from_rows(
            3,
            3,
            vec![1.0, 2.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0, 1.0],
        )
        .unwrap();
        let s = Subspace::from_span(&span).unwrap();
        assert_eq!(s.dim(), 2);
        let g = s.basis().transpose().matmul(s.basis()).unwrap();
        assert!(g.max_abs_diff(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn union_of_axis_planes() {
        let a = axis_subspace(4, &[0]);
        let b = axis_subspace(4, &[1, 2]);
        let u = Subspace::union(&[&a, &b]).unwrap();
        assert_eq!(u.dim(), 3);
        // e3 is not in the union.
        let e3 = Vector::from(vec![0.0, 0.0, 0.0, 1.0]);
        assert!((u.residual_sqr(&e3).unwrap() - 1.0).abs() < 1e-12);
        // Union with zero subspace is identity.
        let z = Subspace::zero(4);
        let u2 = Subspace::union(&[&a, &z]).unwrap();
        assert!(u2.approx_eq(&a, 1e-10));
        assert!(Subspace::union(&[]).is_err());
    }

    #[test]
    fn intersection_of_axis_planes() {
        let a = axis_subspace(3, &[0, 1]);
        let b = axis_subspace(3, &[1, 2]);
        let i = Subspace::intersection(&[&a, &b]).unwrap();
        assert_eq!(i.dim(), 1);
        // Intersection is the e1 axis.
        let e1 = Vector::from(vec![0.0, 1.0, 0.0]);
        assert!(i.residual_sqr(&e1).unwrap() < 1e-10);
        // Disjoint planes intersect trivially.
        let c = axis_subspace(3, &[2]);
        let d = axis_subspace(3, &[0]);
        let j = Subspace::intersection(&[&c, &d]).unwrap();
        assert_eq!(j.dim(), 0);
    }

    #[test]
    fn intersection_of_slanted_planes() {
        // span{e0, e1+e2} ∩ span{e1+e2, e3} = span{e1+e2}.
        let s1 = Subspace::from_span(
            &Matrix::from_rows(4, 2, vec![1., 0., 0., 1., 0., 1., 0., 0.]).unwrap(),
        )
        .unwrap();
        let s2 = Subspace::from_span(
            &Matrix::from_rows(4, 2, vec![0., 0., 1., 0., 1., 0., 0., 1.]).unwrap(),
        )
        .unwrap();
        let i = Subspace::intersection(&[&s1, &s2]).unwrap();
        assert_eq!(i.dim(), 1);
        let diag = Vector::from(vec![0.0, 1.0, 1.0, 0.0]);
        let resid = i.residual_sqr(&diag).unwrap();
        assert!(resid < 1e-8, "residual {resid}");
    }

    #[test]
    fn union_and_intersection_agrees_with_separate_calls() {
        // Slanted overlapping planes in R^6, including a 3-member family
        // and a family containing an empty member.
        let s1 = Subspace::from_span(
            &Matrix::from_rows(
                6,
                3,
                vec![
                    1., 0., 0., 0., 1., 0., 0., 1., 0., 0., 0., 1., 1., 0., 1., 0., 0., 0.,
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let s2 = Subspace::from_span(
            &Matrix::from_rows(
                6,
                3,
                vec![
                    0., 1., 0., 0., 1., 0., 1., 1., 0., 0., 0., 1., 0., 0., 1., 1., 0., 0.,
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let s3 = Subspace::from_span(
            &Matrix::from_rows(
                6,
                3,
                vec![
                    0., 0., 1., 0., 1., 0., 1., 0., 0., 0., 0., 1., 1., 1., 0., 0., 0., 1.,
                ],
            )
            .unwrap(),
        )
        .unwrap();
        for family in [vec![&s1, &s2], vec![&s1, &s2, &s3], vec![&s2]] {
            let (u, i) = Subspace::union_and_intersection(&family).unwrap();
            let u_ref = Subspace::union(&family).unwrap();
            let i_ref = Subspace::intersection(&family).unwrap();
            assert!(u.approx_eq(&u_ref, 1e-9), "union mismatch");
            assert_eq!(i.dim(), i_ref.dim(), "intersection dim mismatch");
            if i.dim() > 0 {
                assert!(i.approx_eq(&i_ref, 1e-7), "intersection mismatch");
            }
        }
        // An empty member empties the intersection but not the union.
        let z = Subspace::zero(6);
        let (u, i) = Subspace::union_and_intersection(&[&s1, &z]).unwrap();
        assert!(u.approx_eq(&s1, 1e-9));
        assert_eq!(i.dim(), 0);
        assert!(Subspace::union_and_intersection(&[]).is_err());
    }

    #[test]
    fn restrict_rows_keeps_projection_geometry() {
        let s = axis_subspace(4, &[0, 2]);
        let r = s.restrict_rows(&[0, 1]).unwrap();
        // Restriction of span{e0,e2} to rows {0,1} spans e0 of R^2.
        assert_eq!(r.ambient_dim(), 2);
        assert_eq!(r.dim(), 1);
        let x = Vector::from(vec![3.0, 4.0]);
        assert!((r.residual_sqr(&x).unwrap() - 16.0).abs() < 1e-10);
        assert!(s.restrict_rows(&[]).is_err());
        assert!(s.restrict_rows(&[9]).is_err());
    }

    #[test]
    fn principal_angles_known() {
        let a = axis_subspace(3, &[0]);
        let b = axis_subspace(3, &[1]);
        let angles = a.principal_angles(&b).unwrap();
        assert_eq!(angles.len(), 1);
        assert!((angles[0] - std::f64::consts::FRAC_PI_2).abs() < 1e-10);
        let same = a.principal_angles(&a).unwrap();
        assert!(same[0].abs() < 1e-10);
        // 45-degree line vs x-axis.
        let diag = Subspace::from_span(
            &Matrix::from_rows(2, 1, vec![1.0, 1.0]).unwrap(),
        )
        .unwrap();
        let x_axis = axis_subspace(2, &[0]);
        let angles = diag.principal_angles(&x_axis).unwrap();
        assert!((angles[0] - std::f64::consts::FRAC_PI_4).abs() < 1e-10);
    }

    #[test]
    fn projector_is_idempotent() {
        let s = Subspace::from_span(
            &Matrix::from_rows(3, 2, vec![1., 1., 0., 1., 1., 0.]).unwrap(),
        )
        .unwrap();
        let p = s.projector();
        let pp = p.matmul(&p).unwrap();
        assert!(pp.max_abs_diff(&p) < 1e-12);
        // Symmetric too.
        assert!(p.max_abs_diff(&p.transpose()) < 1e-12);
    }

    #[test]
    fn zero_subspace_behaviour() {
        let z = Subspace::zero(3);
        assert_eq!(z.dim(), 0);
        let x = Vector::from(vec![1.0, 2.0, 2.0]);
        assert!((z.residual_sqr(&x).unwrap() - 9.0).abs() < 1e-12);
        assert_eq!(z.projector().norm_max(), 0.0);
        assert!(z.principal_angles(&z).unwrap().is_empty());
    }
}
