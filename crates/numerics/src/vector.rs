//! Dense real vectors.
//!
//! A thin, owned wrapper around `Vec<f64>` with the handful of numerical
//! operations the workspace needs (dot products, norms, axpy-style updates).

use crate::error::NumericsError;
use crate::Result;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense column vector of `f64`.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Create a vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Create a vector of `n` ones.
    pub fn ones(n: usize) -> Self {
        Vector { data: vec![1.0; n] }
    }

    /// Create a vector from a closure over indices.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        Vector { data: (0..n).map(&mut f).collect() }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the vector has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the vector, returning the underlying `Vec`.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Dot product with `other`.
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] when lengths differ.
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(NumericsError::ShapeMismatch {
                op: "dot",
                lhs: (self.len(), 1),
                rhs: (other.len(), 1),
            });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum())
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Squared Euclidean norm.
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>()
    }

    /// Maximum absolute entry (`0.0` for an empty vector).
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] when lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) -> Result<()> {
        if self.len() != other.len() {
            return Err(NumericsError::ShapeMismatch {
                op: "axpy",
                lhs: (self.len(), 1),
                rhs: (other.len(), 1),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scale every entry in place.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returned scaled copy.
    pub fn scaled(&self, s: f64) -> Vector {
        Vector { data: self.data.iter().map(|x| x * s).collect() }
    }

    /// Arithmetic mean (`0.0` for an empty vector).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// Normalize to unit Euclidean norm in place; returns the previous norm.
    /// A zero vector is left untouched and `0.0` is returned.
    pub fn normalize_mut(&mut self) -> f64 {
        let n = self.norm();
        if n > 0.0 {
            self.scale_mut(1.0 / n);
        }
        n
    }

    /// Iterator over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Vector { data: data.to_vec() }
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "Vector add: length mismatch");
        Vector { data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect() }
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "Vector sub: length mismatch");
        Vector { data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect() }
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        Vector { data: self.data.iter().map(|x| -x).collect() }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, s: f64) -> Vector {
        self.scaled(s)
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "Vector +=: length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "Vector -=: length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Vector { data: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(Vector::ones(2).as_slice(), &[1.0, 1.0]);
        assert_eq!(Vector::from_fn(3, |i| i as f64).as_slice(), &[0.0, 1.0, 2.0]);
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn dot_and_norms() {
        let a = Vector::from(vec![3.0, 4.0]);
        let b = Vector::from(vec![1.0, 2.0]);
        assert_eq!(a.dot(&b).unwrap(), 11.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.norm_inf(), 4.0);
        assert!(a.dot(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn axpy_updates() {
        let mut a = Vector::from(vec![1.0, 1.0]);
        let b = Vector::from(vec![2.0, -2.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 0.0]);
        assert!(a.axpy(1.0, &Vector::zeros(5)).is_err());
    }

    #[test]
    fn normalize() {
        let mut a = Vector::from(vec![3.0, 4.0]);
        let old = a.normalize_mut();
        assert_eq!(old, 5.0);
        assert!((a.norm() - 1.0).abs() < 1e-15);
        let mut z = Vector::zeros(2);
        assert_eq!(z.normalize_mut(), 0.0);
        assert_eq!(z.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn operators() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(Vector::zeros(0).mean(), 0.0);
        assert_eq!(Vector::from(vec![1.0, 3.0]).mean(), 2.0);
    }
}
