//! Zero-dependency data-parallel executor.
//!
//! The train/eval pipeline is embarrassingly parallel along several axes —
//! one independent unit of work per outaged line, per node, or per IEEE
//! system — but the build environment has no crates.io access, so rayon is
//! not an option. This module provides the two primitives the pipeline
//! needs, built directly on [`std::thread::scope`]:
//!
//! - [`par_map`] — map a closure over a slice, preserving order;
//! - [`par_map_indexed`] — map a closure over `0..n`, preserving order.
//!
//! Work is distributed dynamically: workers pull the next index from a
//! shared atomic counter, so uneven per-item cost (an IEEE-118 AC solve
//! next to an IEEE-14 one) balances automatically. Results are returned in
//! input order regardless of completion order, and a panic in any worker
//! is re-raised on the caller with its original payload.
//!
//! ## Worker count
//!
//! [`num_threads`] resolves, in priority order:
//!
//! 1. a process-wide override installed with [`set_threads`] (used by the
//!    `repro --threads N` flag);
//! 2. the `PMU_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! With one worker every `par_*` call degrades to a plain sequential map
//! on the calling thread — no threads are spawned, so single-threaded runs
//! carry zero overhead and remain easy to profile.
//!
//! ## Determinism
//!
//! The executor itself introduces no nondeterminism: outputs are placed by
//! input index. Callers stay bit-deterministic across thread counts as
//! long as each work item is self-contained — in particular, each scenario
//! derives an independent RNG stream from `(seed, branch_index)` instead
//! of drawing sequentially from one generator (see `pmu-sim`).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker-count override; `0` means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Install a process-wide worker-count override (`0` clears it).
///
/// Takes precedence over `PMU_THREADS` and the detected parallelism.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The effective worker count used by [`par_map`] / [`par_map_indexed`].
pub fn num_threads() -> usize {
    let over = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if over > 0 {
        return over;
    }
    if let Ok(s) = std::env::var("PMU_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Map `f` over `0..n` on the worker pool, returning results in index
/// order.
///
/// # Panics
/// Re-raises (with the original payload) any panic raised by `f` on a
/// worker thread.
pub fn par_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = num_threads().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }

    // Pool-utilization accounting (per-worker task counts and idle
    // time) is only measured while instrumentation is on, so disabled
    // runs never read the clock inside the work loop.
    let traced = pmu_obs::enabled();
    if traced {
        pmu_obs::gauge!("par.workers").set(workers as f64);
    }
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, U)>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                let next = &next;
                s.spawn(move || {
                    let wall = std::time::Instant::now();
                    let mut busy_us = 0u64;
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        if traced {
                            let t = std::time::Instant::now();
                            local.push((i, f(i)));
                            busy_us += t.elapsed().as_micros() as u64;
                        } else {
                            local.push((i, f(i)));
                        }
                    }
                    if traced {
                        let total_us = wall.elapsed().as_micros() as u64;
                        pmu_obs::events::WorkerStats {
                            worker: w,
                            tasks: local.len(),
                            busy_us,
                            idle_us: total_us.saturating_sub(busy_us),
                        }
                        .emit();
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => buckets.push(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for (i, v) in buckets.into_iter().flatten() {
        out[i] = Some(v);
    }
    out.into_iter().map(|o| o.expect("every index produced")).collect()
}

/// Map `f` over a slice on the worker pool, returning results in input
/// order.
///
/// # Panics
/// Re-raises (with the original payload) any panic raised by `f` on a
/// worker thread.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..257).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_indexed_covers_range() {
        let out = par_map_indexed(100, |i| i as f64 + 0.5);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f64 + 0.5);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map_indexed(1, |i| i), vec![0]);
    }

    #[test]
    fn override_wins_and_clears() {
        set_threads(3);
        assert_eq!(num_threads(), 3);
        // Work still completes (and in order) under the override.
        let out = par_map_indexed(10, |i| i * i);
        assert_eq!(out[9], 81);
        set_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let serial: Vec<f64> = (0..64).map(|i| (i as f64).sqrt()).collect();
        for workers in [1usize, 2, 4, 7] {
            set_threads(workers);
            let par = par_map_indexed(64, |i| (i as f64).sqrt());
            assert_eq!(par, serial, "workers={workers}");
        }
        set_threads(0);
    }

    #[test]
    #[should_panic(expected = "inner panic payload")]
    fn worker_panic_propagates_payload() {
        set_threads(2);
        let _ = par_map_indexed(8, |i| {
            if i == 5 {
                panic!("inner panic payload");
            }
            i
        });
    }
}
