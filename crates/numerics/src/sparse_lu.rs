//! Sparse LU factorization with a fill-reducing ordering and symbolic
//! pattern reuse.
//!
//! The Newton–Raphson power-flow Jacobian has a **fixed sparsity
//! pattern**: it inherits the grid graph, which does not change across
//! Newton iterations, across the time steps of one measurement window,
//! or across OU load draws of the same (system, outage) topology. This
//! module splits the factorization accordingly:
//!
//! 1. [`SymbolicLu::analyze`] — once per topology: symmetrize the
//!    pattern, compute a reverse Cuthill–McKee (RCM) ordering to keep
//!    fill near the diagonal, and run a symbolic elimination that
//!    records the full fill pattern of `L + U`.
//! 2. [`SymbolicLu::factorize`] / [`SparseLu::refactor`] — once per
//!    Newton iteration: rewrite the numeric values on the precomputed
//!    pattern. `refactor` is allocation-free.
//! 3. [`SparseLu::solve_with_scratch`] — forward/backward substitution
//!    over the stored pattern, allocation-free with caller scratch.
//!
//! Pivoting is **static**: rows are eliminated in RCM order with no
//! numerical row exchanges, which is what makes the pattern reusable.
//! Power-flow Jacobians are far from the pathological cases that demand
//! partial pivoting; when a pivot does underflow the tolerance the
//! factorization reports [`NumericsError::Singular`] and the caller
//! (e.g. `pmu-flow`'s `AcSolver`) falls back to the dense pivoted LU
//! for that step.

use crate::error::NumericsError;
use crate::sparse::CsrMatrix;
use crate::vector::Vector;
use crate::Result;

/// Pivot magnitudes below `PIVOT_TOL * max|A|` are treated as singular
/// (same threshold as the dense LU).
const PIVOT_TOL: f64 = 1e-13;

/// Reverse Cuthill–McKee ordering of a symmetric adjacency structure.
///
/// `adj[i]` lists the neighbours of node `i` (self-loops are ignored).
/// Returns `perm` with `perm[k]` = the original index eliminated at
/// position `k`. Each connected component is traversed breadth-first
/// from a minimum-degree start node, visiting neighbours in increasing
/// degree order; the final order is reversed (the "R" in RCM), which
/// turns the bandwidth-reducing CM profile into a fill-reducing one for
/// elimination.
pub fn rcm_ordering(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut neighbours: Vec<usize> = Vec::new();

    // Stable component starts: lowest degree, ties by index.
    let mut starts: Vec<usize> = (0..n).collect();
    starts.sort_by_key(|&i| (degree[i], i));

    for &start in &starts {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            neighbours.clear();
            neighbours.extend(adj[u].iter().copied().filter(|&v| v != u && !visited[v]));
            neighbours.sort_by_key(|&v| (degree[v], v));
            for &v in &neighbours {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    order.reverse();
    order
}

/// The reusable symbolic part of a sparse LU: ordering plus the fill
/// pattern of `L + U` on the permuted matrix.
#[derive(Debug, Clone)]
pub struct SymbolicLu {
    n: usize,
    /// `perm[k]` = original index eliminated at position `k`.
    perm: Vec<usize>,
    /// `perm_inv[orig]` = elimination position of original index `orig`.
    perm_inv: Vec<usize>,
    /// Row pointers into `col_idx` for the `L + U` pattern (permuted
    /// indices, strictly increasing within each row, diagonal included).
    row_ptr: Vec<usize>,
    /// Column indices of the fill pattern.
    col_idx: Vec<usize>,
    /// Flat index of each row's diagonal entry.
    diag: Vec<usize>,
}

impl SymbolicLu {
    /// Analyze the pattern of a square sparse matrix: choose the RCM
    /// ordering and compute the fill pattern of the factors.
    ///
    /// Only the *pattern* of `a` matters here; the values are ignored.
    ///
    /// # Errors
    /// Returns [`NumericsError::InvalidArgument`] for non-square input.
    pub fn analyze(a: &CsrMatrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(NumericsError::invalid(
                "sparse_lu_analyze",
                format!("matrix must be square, got {}x{}", a.rows(), a.cols()),
            ));
        }
        // Symmetrized adjacency (the NR Jacobian is structurally
        // symmetric already; symmetrizing makes RCM safe regardless).
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for r in 0..n {
            let (cols, _) = a.row(r);
            for &c in cols {
                if c != r {
                    adj[r].push(c);
                    adj[c].push(r);
                }
            }
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        let perm = rcm_ordering(&adj);
        let mut perm_inv = vec![0usize; n];
        for (k, &orig) in perm.iter().enumerate() {
            perm_inv[orig] = k;
        }

        // Symbolic elimination on the permuted pattern. The pattern of
        // row i of L+U is the transitive closure: the permuted A row,
        // plus — for every j < i already in the pattern — the U-part
        // (columns > j) of row j. The union is a fixed point, so the
        // worklist can process pending columns in any order.
        let mut rows_pat: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut diag_pos_of: Vec<usize> = vec![0; n]; // index of diag within row pattern
        let mut marker = vec![usize::MAX; n];
        let mut stack: Vec<usize> = Vec::new();
        for i in 0..n {
            let mut pat: Vec<usize> = Vec::new();
            let orig_row = perm[i];
            let (cols, _) = a.row(orig_row);
            for &c in cols {
                let pc = perm_inv[c];
                if marker[pc] != i {
                    marker[pc] = i;
                    pat.push(pc);
                    if pc < i {
                        stack.push(pc);
                    }
                }
            }
            if marker[i] != i {
                // Structurally missing diagonal still gets a slot (its
                // value may be filled in by elimination).
                marker[i] = i;
                pat.push(i);
            }
            while let Some(j) = stack.pop() {
                let jpat = &rows_pat[j];
                for &c in &jpat[diag_pos_of[j] + 1..] {
                    if marker[c] != i {
                        marker[c] = i;
                        pat.push(c);
                        if c < i {
                            stack.push(c);
                        }
                    }
                }
            }
            pat.sort_unstable();
            diag_pos_of[i] =
                pat.binary_search(&i).expect("diagonal inserted above");
            rows_pat.push(pat);
        }

        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut diag = Vec::with_capacity(n);
        row_ptr.push(0);
        for (i, pat) in rows_pat.iter().enumerate() {
            diag.push(col_idx.len() + diag_pos_of[i]);
            col_idx.extend_from_slice(pat);
            row_ptr.push(col_idx.len());
        }
        Ok(SymbolicLu { n, perm, perm_inv, row_ptr, col_idx, diag })
    }

    /// Dimension of the analyzed matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries in `L + U` (fill included).
    pub fn factor_nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Numeric factorization of `a` on this pattern.
    ///
    /// `a` must have the same dimension and a pattern that is a subset of
    /// the analyzed one (in practice: the same matrix the pattern came
    /// from, with different values).
    ///
    /// # Errors
    /// As [`SparseLu::refactor`].
    pub fn factorize(&self, a: &CsrMatrix) -> Result<SparseLu> {
        let mut lu = SparseLu {
            sym: self.clone(),
            values: vec![0.0; self.factor_nnz()],
            work: vec![0.0; self.n],
        };
        lu.refactor(a)?;
        Ok(lu)
    }
}

/// Numeric sparse LU factors on a reusable [`SymbolicLu`] pattern.
#[derive(Debug, Clone)]
pub struct SparseLu {
    sym: SymbolicLu,
    /// Values aligned with the symbolic `col_idx` (L strictly below the
    /// diagonal with implicit unit diagonal, U on and above).
    values: Vec<f64>,
    /// Dense scatter workspace, `n` long.
    work: Vec<f64>,
}

impl SparseLu {
    /// The symbolic pattern these factors live on.
    pub fn symbolic(&self) -> &SymbolicLu {
        &self.sym
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.sym.n
    }

    /// Recompute the numeric factors for a matrix with the analyzed
    /// pattern. Allocation-free: reuses the stored value and scratch
    /// buffers.
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] on a dimension mismatch,
    /// [`NumericsError::InvalidArgument`] when `a` has an entry outside
    /// the analyzed pattern, and [`NumericsError::Singular`] when a
    /// pivot underflows the tolerance (no static pivot exists — the
    /// caller should fall back to a pivoted factorization).
    pub fn refactor(&mut self, a: &CsrMatrix) -> Result<()> {
        let n = self.sym.n;
        if a.rows() != n || a.cols() != n {
            return Err(NumericsError::ShapeMismatch {
                op: "sparse_lu_refactor",
                lhs: (n, n),
                rhs: a.shape(),
            });
        }
        let scale = a.values().iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1.0);
        let sym = &self.sym;
        let w = &mut self.work;
        for i in 0..n {
            let row = sym.row_ptr[i]..sym.row_ptr[i + 1];
            // Scatter: clear this row's pattern slots, then add the
            // permuted A row (updates below only touch pattern slots).
            for &c in &sym.col_idx[row.clone()] {
                w[c] = 0.0;
            }
            let (acols, avals) = a.row(sym.perm[i]);
            for (&c, &v) in acols.iter().zip(avals) {
                let pc = sym.perm_inv[c];
                // Defensive: entries outside the analyzed pattern would
                // silently corrupt neighbouring rows.
                if sym.col_idx[row.clone()].binary_search(&pc).is_err() {
                    return Err(NumericsError::invalid(
                        "sparse_lu_refactor",
                        format!("entry ({}, {c}) outside the analyzed pattern", sym.perm[i]),
                    ));
                }
                w[pc] += v;
            }
            // Up-looking elimination: apply pivot rows j < i in
            // ascending order (col_idx is sorted, so iteration order is
            // already ascending).
            for k in row.clone() {
                let j = sym.col_idx[k];
                if j >= i {
                    break;
                }
                let m = w[j] / self.values[sym.diag[j]];
                w[j] = m;
                if m != 0.0 {
                    for uk in (sym.diag[j] + 1)..sym.row_ptr[j + 1] {
                        w[sym.col_idx[uk]] -= m * self.values[uk];
                    }
                }
            }
            if w[i].abs() < PIVOT_TOL * scale {
                return Err(NumericsError::Singular { op: "sparse_lu", pivot: w[i].abs() });
            }
            // Gather the row back into the factor storage.
            for k in row {
                self.values[k] = w[sym.col_idx[k]];
            }
        }
        Ok(())
    }

    /// Solve `A x = b` (allocating convenience wrapper).
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] when `b` has the wrong
    /// length.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let mut x = Vector::zeros(self.dim());
        let mut scratch = vec![0.0; self.dim()];
        self.solve_with_scratch(b.as_slice(), x.as_mut_slice(), &mut scratch)?;
        Ok(x)
    }

    /// Solve `A x = b` into caller-provided buffers (allocation-free).
    /// `scratch` holds the permuted intermediate solution.
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] when any buffer has the
    /// wrong length.
    pub fn solve_with_scratch(
        &self,
        b: &[f64],
        x: &mut [f64],
        scratch: &mut [f64],
    ) -> Result<()> {
        let n = self.dim();
        if b.len() != n || x.len() != n || scratch.len() != n {
            return Err(NumericsError::ShapeMismatch {
                op: "sparse_lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let sym = &self.sym;
        // Factors are of B = P A Pᵀ, so solve B y = P b, then x = Pᵀ y.
        for i in 0..n {
            scratch[i] = b[sym.perm[i]];
        }
        // Forward substitution with the unit-diagonal L.
        for i in 0..n {
            let mut acc = scratch[i];
            for k in sym.row_ptr[i]..sym.diag[i] {
                acc -= self.values[k] * scratch[sym.col_idx[k]];
            }
            scratch[i] = acc;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut acc = scratch[i];
            for k in (sym.diag[i] + 1)..sym.row_ptr[i + 1] {
                acc -= self.values[k] * scratch[sym.col_idx[k]];
            }
            scratch[i] = acc / self.values[sym.diag[i]];
        }
        for i in 0..n {
            x[sym.perm[i]] = scratch[i];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::LuFactors;
    use crate::matrix::Matrix;

    /// Deterministic sparse diagonally-dominant test matrix: a ring plus
    /// a few chords, like a small power grid.
    fn grid_like(n: usize, seed: u64) -> CsrMatrix {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut triplets = Vec::new();
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        for i in (0..n).step_by(3) {
            edges.push((i, (i + n / 2) % n));
        }
        let mut diag = vec![0.0; n];
        for (a, b) in edges {
            if a == b {
                continue;
            }
            let w = 1.0 + rng().abs();
            triplets.push((a, b, -w));
            triplets.push((b, a, -w));
            diag[a] += w + 0.5;
            diag[b] += w + 0.5;
        }
        for (i, d) in diag.iter().enumerate() {
            triplets.push((i, i, *d));
        }
        CsrMatrix::from_triplets(n, n, triplets).unwrap()
    }

    #[test]
    fn rcm_orders_a_path_contiguously() {
        // Path graph 0-1-2-3: RCM yields an order where neighbours stay
        // adjacent (bandwidth 1), in some direction.
        let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        let perm = rcm_ordering(&adj);
        let mut pos = [0; 4];
        for (k, &p) in perm.iter().enumerate() {
            pos[p] = k;
        }
        for (a, b) in [(0usize, 1usize), (1, 2), (2, 3)] {
            assert_eq!(pos[a].abs_diff(pos[b]), 1, "perm {perm:?}");
        }
    }

    #[test]
    fn rcm_covers_disconnected_graphs() {
        let adj = vec![vec![1], vec![0], vec![], vec![4], vec![3]];
        let mut perm = rcm_ordering(&adj);
        perm.sort_unstable();
        assert_eq!(perm, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn solve_matches_dense_lu() {
        for n in [5usize, 12, 30] {
            let a = grid_like(n, n as u64);
            let sym = SymbolicLu::analyze(&a).unwrap();
            let lu = sym.factorize(&a).unwrap();
            let b = Vector::from_fn(n, |i| (i as f64 * 0.37).sin());
            let x = lu.solve(&b).unwrap();
            let xd = LuFactors::factorize(&a.to_dense()).unwrap().solve(&b).unwrap();
            for i in 0..n {
                assert!((x[i] - xd[i]).abs() < 1e-10, "n={n} i={i}: {} vs {}", x[i], xd[i]);
            }
        }
    }

    #[test]
    fn refactor_reuses_the_pattern() {
        let a = grid_like(20, 7);
        let sym = SymbolicLu::analyze(&a).unwrap();
        let mut lu = sym.factorize(&a).unwrap();
        // Same pattern, scaled values (a different "operating point").
        let scaled = CsrMatrix::from_dense(&a.to_dense().scaled(2.5), 0.0);
        lu.refactor(&scaled).unwrap();
        let b = Vector::ones(20);
        let x = lu.solve(&b).unwrap();
        let xd = LuFactors::factorize(&scaled.to_dense()).unwrap().solve(&b).unwrap();
        for i in 0..20 {
            assert!((x[i] - xd[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn fill_is_bounded_by_the_ordering() {
        let a = grid_like(40, 3);
        let sym = SymbolicLu::analyze(&a).unwrap();
        // RCM keeps fill well under dense: the factors must stay sparse.
        assert!(sym.factor_nnz() < 40 * 40 / 4, "factor nnz {}", sym.factor_nnz());
        assert!(sym.factor_nnz() >= a.nnz());
    }

    #[test]
    fn singular_matrix_is_reported() {
        // Zero row ⇒ zero pivot with no static remedy.
        let a = CsrMatrix::from_triplets(3, 3, vec![(0, 0, 1.0), (2, 2, 1.0)]).unwrap();
        let sym = SymbolicLu::analyze(&a).unwrap();
        match sym.factorize(&a) {
            Err(NumericsError::Singular { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn shape_errors() {
        let rect = CsrMatrix::from_triplets(2, 3, vec![(0, 0, 1.0)]).unwrap();
        assert!(SymbolicLu::analyze(&rect).is_err());
        let a = grid_like(6, 1);
        let lu = SymbolicLu::analyze(&a).unwrap().factorize(&a).unwrap();
        assert!(lu.solve(&Vector::zeros(5)).is_err());
        let other = grid_like(7, 1);
        let mut lu2 = lu.clone();
        assert!(lu2.refactor(&other).is_err());
    }

    #[test]
    fn out_of_pattern_refactor_is_rejected() {
        let a = grid_like(8, 2);
        let sym = SymbolicLu::analyze(&a).unwrap();
        let mut lu = sym.factorize(&a).unwrap();
        // A denser matrix has entries the symbolic pass never saw.
        let dense = CsrMatrix::from_dense(
            &Matrix::from_fn(8, 8, |r, c| if r == c { 4.0 } else { 0.3 }),
            0.0,
        );
        assert!(lu.refactor(&dense).is_err());
    }

    #[test]
    fn permuted_identity_works() {
        let a = CsrMatrix::from_triplets(
            4,
            4,
            vec![(0, 0, 2.0), (1, 1, 3.0), (2, 2, 4.0), (3, 3, 5.0)],
        )
        .unwrap();
        let lu = SymbolicLu::analyze(&a).unwrap().factorize(&a).unwrap();
        let x = lu.solve(&Vector::from(vec![2.0, 6.0, 12.0, 20.0])).unwrap();
        assert_eq!(x.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }
}
