//! Truncated randomized SVD (Halko–Martinsson–Tropp range finder).
//!
//! The training pipeline never consumes more than the top-`r` singular
//! directions of its measurement windows (`r = subspace_dim`, single
//! digits), yet [`Svd::compute`](crate::svd::Svd::compute) pays for the
//! full one-sided Jacobi decomposition — ~41 ms per 118×118 window and
//! over two seconds for the concatenated training matrix on ieee118. The
//! randomized truncated path here samples the range of `A` with a
//! Gaussian test matrix, refines it with a few power iterations
//! (re-orthonormalized through the thin-Q Householder kernel in
//! [`qr`](crate::qr)), and finishes with an *exact* Jacobi SVD of the
//! small projected matrix. Cost is `O(m·n·l)` with `l = r + oversample`
//! instead of `O(m·n²)`.
//!
//! Determinism: there is no RNG dependency anywhere in this workspace, and
//! results must be bit-identical across runs and worker counts. The test
//! matrix is therefore seeded from an FNV-1a fingerprint of the input
//! matrix bytes (shape- and rank-tagged), so the same decomposition always
//! draws the same Gaussians — a pure function of its input, like
//! everything else in this crate.
//!
//! Accuracy: with `oversample = 8` and `power_iters = 4` the captured
//! subspace agrees with the exact top-`r` left singular subspace to
//! principal angles far below 1e-8 whenever the spectrum decays past the
//! sampled block (the property suite pins this). For inputs too small for
//! the sketch to pay off (`2l ≥ min(m, n)`) the routine silently falls
//! back to the exact Jacobi SVD and truncates, so callers get a uniform
//! "best rank-r factors" contract at every size.

use crate::hash::Fnv1a;
use crate::matrix::Matrix;
use crate::qr::QrFactors;
use crate::svd::Svd;
use crate::{NumericsError, Result};

/// Default number of extra sampled directions beyond the requested rank.
pub const DEFAULT_OVERSAMPLE: usize = 8;
/// Default number of power (subspace) iterations.
pub const DEFAULT_POWER_ITERS: usize = 4;

/// Tuning knobs for the randomized range finder.
#[derive(Debug, Clone, Copy)]
pub struct RsvdConfig {
    /// Extra sampled directions beyond the requested rank (`p` in HMT);
    /// the sketch width is `l = rank + oversample`, clamped to `min(m,n)`.
    pub oversample: usize,
    /// Power iterations `q`; each one multiplies the spectral separation
    /// of the captured subspace by `(σ_{l+1}/σ_r)²`.
    pub power_iters: usize,
}

impl Default for RsvdConfig {
    fn default() -> Self {
        RsvdConfig { oversample: DEFAULT_OVERSAMPLE, power_iters: DEFAULT_POWER_ITERS }
    }
}

/// Best rank-`rank` SVD factors of `a` via the randomized range finder
/// with the default [`RsvdConfig`].
///
/// Returns a thin [`Svd`] whose factors have exactly
/// `min(rank, min(m, n))` columns; `sigma` is descending. Downstream
/// helpers on [`Svd`] (`top_left_vectors`, `rank`, …) work unchanged.
///
/// # Errors
/// Returns [`NumericsError::InvalidArgument`] for an empty matrix or a
/// zero rank request, and propagates Jacobi non-convergence from the
/// small exact decomposition.
pub fn truncated(a: &Matrix, rank: usize) -> Result<Svd> {
    truncated_with(a, rank, &RsvdConfig::default())
}

/// [`truncated`] with explicit tuning knobs.
///
/// # Errors
/// See [`truncated`].
pub fn truncated_with(a: &Matrix, rank: usize, cfg: &RsvdConfig) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(NumericsError::invalid("rsvd", "empty matrix"));
    }
    if rank == 0 {
        return Err(NumericsError::invalid("rsvd", "rank must be > 0"));
    }
    // The range finder below works on the tall orientation; a wide input
    // is decomposed through its transpose with the factors swapped, same
    // as `Svd::compute`.
    if m < n {
        let t = truncated_with(&a.transpose(), rank, cfg)?;
        return Ok(Svd { u: t.v, sigma: t.sigma, v: t.u });
    }

    let small = n; // min(m, n) in the tall orientation
    let r = rank.min(small);
    let l = (r + cfg.oversample.max(1)).min(small);
    // When the sketch is not genuinely smaller than the problem the
    // randomized path saves nothing and its error bounds degrade; the
    // exact decomposition is both cheaper and precise there.
    if 2 * l >= small {
        return truncate_exact(a, r);
    }

    let mut span = if m * n >= 4096 {
        pmu_obs::span("numerics.rsvd").with("rows", m).with("cols", n).with("rank", r)
    } else {
        pmu_obs::Span::disabled("numerics.rsvd")
    };

    // Stage A: sample the range. Y = A·Ω with Ω an n×l Gaussian block
    // drawn from the content-seeded stream, then orthonormalize.
    let omega = gaussian_block(n, l, content_seed(a, r));
    let y = a.matmul(&omega)?;
    let mut q = QrFactors::factorize(&y)?.q;

    // Stage A': power iterations. Each round replaces span(Q) with
    // orth(A·orth(AᵀQ)), sharpening the captured subspace toward the
    // dominant left singular directions; the intermediate QR keeps the
    // block well-conditioned (plain (AAᵀ)^q·Ω loses small singular
    // directions to roundoff after 2–3 rounds).
    for _ in 0..cfg.power_iters {
        let z = a.tr_matmul(&q)?; // AᵀQ : n×l
        let qz = QrFactors::factorize(&z)?.q;
        let y = a.matmul(&qz)?; // A·Qz : m×l
        q = QrFactors::factorize(&y)?.q;
    }

    // Stage B: exact small SVD of the projected matrix B = QᵀA (l×n),
    // then lift the left factor back: A ≈ Q·B = (Q·U_B)·Σ·Vᵀ.
    let b = q.tr_matmul(a)?;
    let sb = Svd::compute(&b)?;
    let u = q.matmul(&sb.u)?;

    span.record("sigma_r", sb.sigma.first().copied().unwrap_or(0.0));
    Ok(Svd {
        u: u.leading_columns(r),
        sigma: sb.sigma[..r].to_vec(),
        v: sb.v.leading_columns(r),
    })
}

/// Exact Jacobi SVD truncated to `r` columns (the small-input fallback).
fn truncate_exact(a: &Matrix, r: usize) -> Result<Svd> {
    let full = Svd::compute(a)?;
    if full.sigma.len() <= r {
        return Ok(full);
    }
    Ok(Svd {
        u: full.u.leading_columns(r),
        sigma: full.sigma[..r].to_vec(),
        v: full.v.leading_columns(r),
    })
}

/// Deterministic seed for the Gaussian sketch: FNV-1a over the input's
/// shape, the requested rank, and every entry's IEEE-754 bits. Two calls
/// on bit-identical inputs draw bit-identical test matrices.
fn content_seed(a: &Matrix, rank: usize) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("rsvd");
    h.write_usize(a.rows());
    h.write_usize(a.cols());
    h.write_usize(rank);
    h.write_f64_slice(a.as_slice());
    h.finish()
}

/// SplitMix64 step: a tiny, high-quality 64-bit mixer (public domain
/// constants from Steele et al.); plenty for a Gaussian sketch, which
/// only needs the block to be generic, not cryptographic.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in the open interval (0, 1) from 53 mantissa bits.
fn uniform_open(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) as f64 + 0.5) * (1.0 / 9_007_199_254_740_992.0)
}

/// An n×l matrix of standard Gaussians via Box–Muller on the SplitMix64
/// stream, filled column by column so the draw order (and therefore the
/// sketch) is independent of the matrix storage layout.
fn gaussian_block(n: usize, l: usize, seed: u64) -> Matrix {
    let mut out = Matrix::zeros(n, l);
    let mut state = seed;
    for j in 0..l {
        let mut i = 0;
        while i < n {
            let u1 = uniform_open(&mut state);
            let u2 = uniform_open(&mut state);
            let radius = (-2.0 * u1.ln()).sqrt();
            let theta = std::f64::consts::TAU * u2;
            out[(i, j)] = radius * theta.cos();
            i += 1;
            if i < n {
                out[(i, j)] = radius * theta.sin();
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subspace::Subspace;

    /// A deterministic m×n test matrix with geometric singular spectrum
    /// `base^i` and generic (rotated) singular vectors.
    fn spectrum_matrix(m: usize, n: usize, base: f64, seed: u64) -> Matrix {
        let k = m.min(n);
        let left = random_orthonormal(m, k, seed);
        let right = random_orthonormal(n, k, seed ^ 0xABCD_EF01);
        let mut out = Matrix::zeros(m, n);
        for s in 0..k {
            let sigma = base.powi(s as i32);
            for i in 0..m {
                for j in 0..n {
                    out[(i, j)] += sigma * left[(i, s)] * right[(j, s)];
                }
            }
        }
        out
    }

    fn random_orthonormal(m: usize, k: usize, seed: u64) -> Matrix {
        let g = gaussian_block(m, k, seed);
        QrFactors::factorize(&g).unwrap().q
    }

    /// Worst principal angle between the column spans of two orthonormal
    /// blocks, measured through sines (`sin θ = ‖(I − P_b) a_j‖`). The
    /// cosine route through `principal_angles` bottoms out near
    /// `acos(1 − ε) ≈ 5e-8` and cannot resolve the 1e-8 agreement this
    /// suite pins.
    fn worst_angle(a: &Matrix, b: &Matrix) -> f64 {
        let sub_b = Subspace::from_span(b).unwrap();
        let mut worst = 0.0_f64;
        for j in 0..a.cols() {
            let col = a.column(j);
            let sin_sqr = sub_b.residual_sqr(&col).unwrap().max(0.0);
            worst = worst.max(sin_sqr.sqrt().asin());
        }
        worst
    }

    #[test]
    fn matches_exact_top_r_subspace() {
        // Shapes chosen to exercise the sketched path (2l < min) on tall,
        // square, and wide inputs across several ranks.
        for &(m, n, r) in &[(120usize, 40usize, 3usize), (90, 90, 5), (40, 150, 4), (200, 64, 8)]
        {
            let a = spectrum_matrix(m, n, 0.55, 0x5EED ^ (m as u64) << 16 ^ n as u64);
            let fast = truncated(&a, r).unwrap();
            let exact = Svd::compute(&a).unwrap();
            let worst = worst_angle(&fast.u, &exact.u.leading_columns(r));
            assert!(
                worst < 1e-8,
                "({m}x{n}, r={r}): worst principal angle {worst:.3e}"
            );
            for i in 0..r {
                let rel = (fast.sigma[i] - exact.sigma[i]).abs() / exact.sigma[0];
                assert!(rel < 1e-10, "sigma[{i}] off by {rel:.3e}");
            }
        }
    }

    #[test]
    fn right_vectors_match_too() {
        let a = spectrum_matrix(150, 60, 0.5, 0xFACE);
        let fast = truncated(&a, 4).unwrap();
        let exact = Svd::compute(&a).unwrap();
        assert!(worst_angle(&fast.v, &exact.v.leading_columns(4)) < 1e-8);
    }

    #[test]
    fn small_inputs_fall_back_to_exact() {
        // 12×12 with rank 3: l = 11, 2l ≥ 12 → exact path; the factors
        // must be bit-identical to a truncated Svd::compute.
        let a = spectrum_matrix(12, 12, 0.6, 7);
        let fast = truncated(&a, 3).unwrap();
        let exact = Svd::compute(&a).unwrap();
        assert_eq!(fast.u.as_slice(), exact.u.leading_columns(3).as_slice());
        assert_eq!(fast.sigma.as_slice(), &exact.sigma[..3]);
    }

    #[test]
    fn deterministic_across_calls() {
        let a = spectrum_matrix(100, 50, 0.5, 99);
        let one = truncated(&a, 5).unwrap();
        let two = truncated(&a, 5).unwrap();
        assert_eq!(one.u.as_slice(), two.u.as_slice());
        assert_eq!(one.v.as_slice(), two.v.as_slice());
        assert_eq!(one.sigma, two.sigma);
    }

    #[test]
    fn rank_clamped_to_min_dim() {
        let a = spectrum_matrix(30, 6, 0.5, 3);
        let fast = truncated(&a, 50).unwrap();
        assert_eq!(fast.u.cols(), 6);
        assert_eq!(fast.sigma.len(), 6);
    }

    #[test]
    fn rejects_empty_and_zero_rank() {
        let a = Matrix::zeros(4, 4);
        assert!(truncated(&a, 0).is_err());
    }

    #[test]
    fn handles_rank_deficient_input() {
        // Exactly rank-2 tall matrix sketched at rank 4: trailing sigmas
        // must be ~0 and the leading subspace still exact.
        let mut a = Matrix::zeros(80, 40);
        let u = random_orthonormal(80, 2, 11);
        let v = random_orthonormal(40, 2, 12);
        for s in 0..2 {
            let sigma = [3.0, 1.0][s];
            for i in 0..80 {
                for j in 0..40 {
                    a[(i, j)] += sigma * u[(i, s)] * v[(j, s)];
                }
            }
        }
        let fast = truncated(&a, 4).unwrap();
        assert!(fast.sigma[2] < 1e-10 && fast.sigma[3] < 1e-10);
        let exact = Svd::compute(&a).unwrap();
        assert!(worst_angle(&fast.u.leading_columns(2), &exact.u.leading_columns(2)) < 1e-8);
    }

    #[test]
    fn gaussian_block_moments_sane() {
        let g = gaussian_block(200, 20, 42);
        let vals = g.as_slice();
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        let var: f64 =
            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
