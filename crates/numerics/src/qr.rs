//! Householder QR factorization.
//!
//! Used to orthonormalize subspace bases (union subspaces concatenate
//! several bases and must be re-orthonormalized) and to solve least-squares
//! problems for the proximity regressor of Eq. (9).

use crate::error::NumericsError;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::Result;

/// A thin QR factorization `A = Q R` with `Q` (m×k) having orthonormal
/// columns and `R` (k×k) upper triangular, where `k = min(m, n)`.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// Orthonormal factor (thin).
    pub q: Matrix,
    /// Upper-triangular factor (thin).
    pub r: Matrix,
}

impl QrFactors {
    /// Compute the thin QR factorization of `a` via Householder reflections.
    ///
    /// # Errors
    /// Returns [`NumericsError::InvalidArgument`] for an empty matrix.
    pub fn factorize(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(NumericsError::invalid("qr", "empty matrix"));
        }
        let k = m.min(n);
        let mut r = a.clone();
        // Householder vectors and scalings, kept for the thin-Q pass.
        let mut vs: Vec<Option<(Vector, f64)>> = Vec::with_capacity(k);

        for j in 0..k {
            // Build the Householder vector for column j below the diagonal.
            let mut norm = 0.0;
            for i in j..m {
                norm += r[(i, j)] * r[(i, j)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                vs.push(None);
                continue; // Column already zero below the diagonal.
            }
            let alpha = if r[(j, j)] >= 0.0 { -norm } else { norm };
            let mut v = Vector::zeros(m - j);
            v[0] = r[(j, j)] - alpha;
            for i in (j + 1)..m {
                v[i - j] = r[(i, j)];
            }
            let vnorm_sqr = v.norm_sqr();
            if vnorm_sqr == 0.0 {
                vs.push(None);
                continue;
            }
            let beta = 2.0 / vnorm_sqr;

            // Apply H = I - beta v v^T to R (columns j..n).
            for c in j..n {
                let mut dot = 0.0;
                for i in j..m {
                    dot += v[i - j] * r[(i, c)];
                }
                let f = beta * dot;
                for i in j..m {
                    r[(i, c)] -= f * v[i - j];
                }
            }
            vs.push(Some((v, beta)));
        }

        // Accumulate the thin Q = H_0 H_1 ... H_{k-1} · I_{m×k} by applying
        // the reflectors right-to-left to the thin identity: O(k²·m) and an
        // m×k buffer, where forming the full m×m product would cost
        // O(k·m²) — the difference dominates the detection hot path, which
        // orthonormalizes many tall-thin (|group| × subspace_dim) blocks.
        let mut q = Matrix::zeros(m, k);
        for j in 0..k {
            q[(j, j)] = 1.0;
        }
        for j in (0..k).rev() {
            let Some((v, beta)) = &vs[j] else { continue };
            for c in 0..k {
                let mut dot = 0.0;
                for i in j..m {
                    dot += v[i - j] * q[(i, c)];
                }
                let f = beta * dot;
                for i in j..m {
                    q[(i, c)] -= f * v[i - j];
                }
            }
        }

        let r_thin = Matrix::from_fn(k, n, |i, j| if i <= j { r[(i, j)] } else { 0.0 });
        Ok(QrFactors { q, r: r_thin })
    }

    /// Solve the least-squares problem `min ||A x - b||` using this
    /// factorization of `A` (requires `A` to have full column rank and
    /// `m >= n`).
    ///
    /// # Errors
    /// Returns a shape error for a mismatched `b` and a singular error when
    /// `R` has a (near-)zero diagonal entry.
    pub fn solve_least_squares(&self, b: &Vector) -> Result<Vector> {
        let m = self.q.rows();
        let k = self.q.cols();
        if b.len() != m {
            return Err(NumericsError::ShapeMismatch {
                op: "qr_lstsq",
                lhs: (m, k),
                rhs: (b.len(), 1),
            });
        }
        if self.r.cols() != k {
            return Err(NumericsError::invalid(
                "qr_lstsq",
                "least squares requires m >= n (thin R must be square)",
            ));
        }
        // x = R^{-1} Q^T b
        let qtb = self.q.tr_matvec(b)?;
        let mut x = qtb;
        let scale = self.r.norm_max().max(1.0);
        for i in (0..k).rev() {
            let mut acc = x[i];
            for j in (i + 1)..k {
                acc -= self.r[(i, j)] * x[j];
            }
            let d = self.r[(i, i)];
            if d.abs() < 1e-13 * scale {
                return Err(NumericsError::Singular { op: "qr_lstsq", pivot: d.abs() });
            }
            x[i] = acc / d;
        }
        Ok(x)
    }
}

/// Orthonormalize the columns of `a`, dropping columns that are linearly
/// dependent (relative tolerance `tol` against the largest R diagonal).
///
/// Returns a matrix with orthonormal columns spanning the column space of
/// `a`. An all-zero input yields a matrix with zero columns.
///
/// # Errors
/// Propagates QR errors for empty input.
pub fn orthonormal_columns(a: &Matrix, tol: f64) -> Result<Matrix> {
    let qr = QrFactors::factorize(a)?;
    let k = qr.r.rows();
    let scale = (0..k).map(|i| qr.r[(i, i)].abs()).fold(0.0_f64, f64::max);
    if scale == 0.0 {
        return Ok(Matrix::zeros(a.rows(), 0));
    }
    let keep: Vec<usize> =
        (0..k).filter(|&i| qr.r[(i, i)].abs() > tol * scale).collect();
    Ok(qr.q.select_columns(&keep))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_like(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Small deterministic pseudo-random fill (LCG) — tests only.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn qr_reconstructs() {
        let a = random_like(6, 4, 42);
        let qr = QrFactors::factorize(&a).unwrap();
        let back = qr.q.matmul(&qr.r).unwrap();
        assert!(back.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = random_like(8, 5, 7);
        let qr = QrFactors::factorize(&a).unwrap();
        let qtq = qr.q.transpose().matmul(&qr.q).unwrap();
        assert!(qtq.max_abs_diff(&Matrix::identity(5)) < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = random_like(5, 5, 3);
        let qr = QrFactors::factorize(&a).unwrap();
        for i in 0..5 {
            for j in 0..i {
                assert_eq!(qr.r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn least_squares_on_overdetermined() {
        // Fit y = 2x + 1 exactly from 4 points.
        let a = Matrix::from_rows(4, 2, vec![0.0, 1.0, 1.0, 1.0, 2.0, 1.0, 3.0, 1.0])
            .unwrap();
        let b = Vector::from(vec![1.0, 3.0, 5.0, 7.0]);
        let qr = QrFactors::factorize(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert!(qr.solve_least_squares(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn least_squares_minimizes_residual() {
        let a = random_like(10, 3, 11);
        let b = Vector::from_fn(10, |i| (i as f64).sin());
        let qr = QrFactors::factorize(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        let r0 = (&a.matvec(&x).unwrap() - &b).norm_sqr();
        // Perturbing the solution should not decrease the residual.
        for k in 0..3 {
            let mut xp = x.clone();
            xp[k] += 1e-3;
            let r1 = (&a.matvec(&xp).unwrap() - &b).norm_sqr();
            assert!(r1 >= r0 - 1e-12);
        }
    }

    #[test]
    fn orthonormal_columns_drops_dependent() {
        // Third column = first + second.
        let a = Matrix::from_rows(
            4,
            3,
            vec![
                1.0, 0.0, 1.0, //
                0.0, 1.0, 1.0, //
                1.0, 1.0, 2.0, //
                2.0, 0.0, 2.0,
            ],
        )
        .unwrap();
        let q = orthonormal_columns(&a, 1e-10).unwrap();
        assert_eq!(q.cols(), 2);
        let qtq = q.transpose().matmul(&q).unwrap();
        assert!(qtq.max_abs_diff(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn orthonormal_columns_zero_matrix() {
        let q = orthonormal_columns(&Matrix::zeros(3, 2), 1e-10).unwrap();
        assert_eq!(q.cols(), 0);
    }

    #[test]
    fn empty_errors() {
        assert!(QrFactors::factorize(&Matrix::zeros(0, 0)).is_err());
    }
}
