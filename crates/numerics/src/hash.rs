//! Content fingerprinting via streaming FNV-1a.
//!
//! The train/serve split needs stable, cheap content hashes in several
//! places: network/dataset fingerprints baked into a persisted
//! [`ModelBundle`](https://docs.rs/pmu-model) so a stale artifact is never
//! silently reused, bundle integrity checksums, and the content-addressed
//! keys of the on-disk artifact store. FNV-1a is a deliberate choice over a
//! cryptographic hash: the threat model is *accidental* corruption and
//! *configuration drift*, not adversaries, and FNV keeps this crate
//! dependency-free while hashing a full IEEE-118 dataset in microseconds.
//!
//! All multi-byte writes are length- or tag-prefixed little-endian, so the
//! digest is independent of platform endianness and two different write
//! sequences cannot collide by concatenation (`"ab" + "c"` vs `"a" + "bc"`).

/// FNV-1a 64-bit offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming 64-bit FNV-1a hasher.
///
/// ```
/// use pmu_numerics::hash::Fnv1a;
/// let mut h = Fnv1a::new();
/// h.write_str("ieee14");
/// h.write_u64(0xC0FFEE);
/// let digest = h.finish();
/// assert_ne!(digest, Fnv1a::new().finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a { state: OFFSET }
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a `usize` (widened to `u64` so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorb an `f64` by raw IEEE-754 bits.
    ///
    /// Bit-level hashing is exactly what fingerprinting wants: two datasets
    /// are interchangeable for the detector only if they are bit-identical,
    /// so `-0.0` and `0.0` (or two NaN payloads) intentionally hash apart.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a slice of `f64` values, length-prefixed.
    pub fn write_f64_slice(&mut self, vs: &[f64]) {
        self.write_usize(vs.len());
        for &v in vs {
            self.write_f64(v);
        }
    }

    /// Absorb a UTF-8 string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Current digest. The hasher can keep absorbing afterwards.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a digest of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_bytes(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.write_bytes(b"foo");
        h.write_bytes(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn length_prefix_prevents_concat_collisions() {
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn f64_hashing_is_bit_level() {
        let mut a = Fnv1a::new();
        a.write_f64(0.0);
        let mut b = Fnv1a::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());

        let mut c = Fnv1a::new();
        c.write_f64_slice(&[1.0, 2.0]);
        let mut d = Fnv1a::new();
        d.write_f64_slice(&[1.0, 2.0]);
        assert_eq!(c.finish(), d.finish());
        let mut e = Fnv1a::new();
        e.write_f64_slice(&[1.0, 2.0 + 1e-15]);
        assert_ne!(c.finish(), e.finish());
    }

    #[test]
    fn finish_is_non_destructive() {
        let mut h = Fnv1a::new();
        h.write_u64(7);
        let first = h.finish();
        assert_eq!(first, h.finish());
        h.write_u64(8);
        assert_ne!(first, h.finish());
    }
}
