//! Small statistics helpers shared across the workspace: sample moments,
//! quantiles, and 2×2 covariance for the phasor-plane ellipses of Eq. (4).

use crate::error::NumericsError;
use crate::matrix::Matrix;
use crate::Result;

/// Arithmetic mean of a slice (`0.0` for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance (`0.0` for fewer than two samples).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Empirical quantile using linear interpolation between order statistics.
/// `q` is clamped to `[0, 1]`.
///
/// # Errors
/// Returns an error for empty input or non-finite entries.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(NumericsError::invalid("quantile", "empty input"));
    }
    if xs.iter().any(|x| !x.is_finite()) {
        return Err(NumericsError::invalid("quantile", "non-finite input"));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Mean of each column of a samples-as-rows matrix.
pub fn column_means(samples: &Matrix) -> Vec<f64> {
    let (rows, cols) = samples.shape();
    let mut means = vec![0.0; cols];
    if rows == 0 {
        return means;
    }
    for r in 0..rows {
        for (c, m) in means.iter_mut().enumerate() {
            *m += samples[(r, c)];
        }
    }
    for m in &mut means {
        *m /= rows as f64;
    }
    means
}

/// Sample covariance matrix (unbiased) of a samples-as-rows matrix.
///
/// # Errors
/// Returns an error when fewer than two samples are provided.
pub fn covariance(samples: &Matrix) -> Result<Matrix> {
    let (rows, cols) = samples.shape();
    if rows < 2 {
        return Err(NumericsError::invalid(
            "covariance",
            format!("need at least 2 samples, got {rows}"),
        ));
    }
    let means = column_means(samples);
    let mut cov = Matrix::zeros(cols, cols);
    for r in 0..rows {
        for i in 0..cols {
            let di = samples[(r, i)] - means[i];
            if di == 0.0 {
                continue;
            }
            for j in i..cols {
                cov[(i, j)] += di * (samples[(r, j)] - means[j]);
            }
        }
    }
    let denom = (rows - 1) as f64;
    for i in 0..cols {
        for j in i..cols {
            cov[(i, j)] /= denom;
            cov[(j, i)] = cov[(i, j)];
        }
    }
    Ok(cov)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic example is 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert!((quantile(&xs, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[f64::NAN], 0.5).is_err());
        // Clamps out-of-range q.
        assert_eq!(quantile(&xs, 2.0).unwrap(), 4.0);
    }

    #[test]
    fn covariance_of_correlated_columns() {
        // y = 2x exactly → cov = [[var, 2var],[2var, 4var]].
        let samples = Matrix::from_rows(
            4,
            2,
            vec![0.0, 0.0, 1.0, 2.0, 2.0, 4.0, 3.0, 6.0],
        )
        .unwrap();
        let cov = covariance(&samples).unwrap();
        let vx = cov[(0, 0)];
        assert!((cov[(0, 1)] - 2.0 * vx).abs() < 1e-12);
        assert!((cov[(1, 1)] - 4.0 * vx).abs() < 1e-12);
        assert_eq!(cov[(0, 1)], cov[(1, 0)]);
        assert!(covariance(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn column_means_match() {
        let samples =
            Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(column_means(&samples), vec![2.0, 3.0, 4.0]);
        assert_eq!(column_means(&Matrix::zeros(0, 2)), vec![0.0, 0.0]);
    }
}
