//! Dense, row-major real matrices.
//!
//! Sized for power-system workloads (up to a few hundred rows/columns), so a
//! contiguous row-major `Vec<f64>` with straightforward loops is both the
//! simplest and — at these sizes — a perfectly competitive representation.

use crate::error::NumericsError;
use crate::vector::Vector;
use crate::Result;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense row-major matrix of `f64`.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create an `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from a closure over `(row, col)` indices.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Create a matrix from row-major data.
    ///
    /// # Errors
    /// Returns [`NumericsError::InvalidArgument`] if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(NumericsError::invalid(
                "Matrix::from_rows",
                format!("data length {} != {}x{}", data.len(), rows, cols),
            ));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Create a matrix whose columns are the given vectors.
    ///
    /// # Errors
    /// Returns an error when the columns have inconsistent lengths or the
    /// input is empty.
    pub fn from_columns(cols: &[Vector]) -> Result<Self> {
        let first = cols
            .first()
            .ok_or_else(|| NumericsError::invalid("Matrix::from_columns", "no columns"))?;
        let rows = first.len();
        for (j, c) in cols.iter().enumerate() {
            if c.len() != rows {
                return Err(NumericsError::invalid(
                    "Matrix::from_columns",
                    format!("column {} has length {}, expected {}", j, c.len(), rows),
                ));
            }
        }
        Ok(Matrix::from_fn(rows, cols.len(), |r, c| cols[c][r]))
    }

    /// Build a diagonal matrix from the given entries.
    pub fn diag(entries: &[f64]) -> Self {
        let n = entries.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in entries.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow a single row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow a single row as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy a column out as a [`Vector`].
    pub fn column(&self, c: usize) -> Vector {
        Vector::from_fn(self.rows, |r| self[(r, c)])
    }

    /// Replace column `c` with `v`.
    ///
    /// # Panics
    /// Panics when `v.len() != self.rows()` or `c` is out of bounds.
    pub fn set_column(&mut self, c: usize, v: &Vector) {
        assert_eq!(v.len(), self.rows, "set_column: length mismatch");
        for r in 0..self.rows {
            self[(r, c)] = v[r];
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Tile edge of the blocked [`Matrix::matmul`] kernel. 64×64 f64 tiles
    /// (32 KiB for the `rhs` tile) fit comfortably in L1/L2 alongside the
    /// accumulator rows.
    const MATMUL_BLOCK: usize = 64;

    /// Matrix-matrix product using a cache-blocked i-k-j kernel.
    ///
    /// The k and j dimensions are tiled so the active `rhs` panel and the
    /// accumulator row segment stay cache-resident while an entire panel of
    /// `self` streams past them; within a tile the inner loop runs over
    /// contiguous row slices. Gram products and subspace projections funnel
    /// through this routine, so it is the hottest dense kernel in the
    /// workspace. See [`Matrix::matmul_reference`] for the plain triple
    /// loop it is tested against.
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] on incompatible shapes.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(NumericsError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if !pmu_obs::enabled() {
            return Ok(self.matmul_blocked(rhs));
        }
        // Shape/time stats for the hottest dense kernel; only reached when
        // instrumentation is on, so disabled runs never read the clock.
        let t = std::time::Instant::now();
        let out = self.matmul_blocked(rhs);
        let us = t.elapsed().as_secs_f64() * 1e6;
        pmu_obs::counter!("numerics.matmul_calls").inc();
        pmu_obs::histogram!("numerics.matmul_us").observe(us);
        pmu_obs::histogram!("numerics.matmul_flops")
            .observe((2 * self.rows * self.cols * rhs.cols) as f64);
        Ok(out)
    }

    /// The cache-blocked kernel behind [`Matrix::matmul`] (shapes already
    /// checked).
    fn matmul_blocked(&self, rhs: &Matrix) -> Matrix {
        let b = Self::MATMUL_BLOCK;
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let mut kk = 0;
        while kk < self.cols {
            let kend = (kk + b).min(self.cols);
            let mut jj = 0;
            while jj < rhs.cols {
                let jend = (jj + b).min(rhs.cols);
                for i in 0..self.rows {
                    let arow = &self.row(i)[kk..kend];
                    let orow = &mut out.data[i * rhs.cols + jj..i * rhs.cols + jend];
                    for (k, &aik) in (kk..kend).zip(arow) {
                        if aik == 0.0 {
                            continue;
                        }
                        let rrow = &rhs.row(k)[jj..jend];
                        for (o, &r) in orow.iter_mut().zip(rrow) {
                            *o += aik * r;
                        }
                    }
                }
                jj = jend;
            }
            kk = kend;
        }
        out
    }

    /// `selfᵀ · rhs` without materializing the transpose.
    ///
    /// Both operands are walked row-by-row, accumulating the rank-1
    /// update `self_row(r)ᵀ · rhs_row(r)` into the output, so every
    /// inner loop is a contiguous axpy and the accumulator (cols ×
    /// rhs.cols) stays cache-resident while the tall operands stream
    /// past once. For tall-skinny shapes like softmax gradients
    /// (`Eᵀ X` with thousands of rows and ~100 columns) this beats
    /// `transpose().matmul()` by skipping the transpose copy entirely.
    /// The accumulation order over the shared row index matches the
    /// blocked kernel's k-order, so the result is bit-identical to
    /// `self.transpose().matmul(rhs)`.
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] when the row counts
    /// (the contracted dimension) differ.
    pub fn tr_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(NumericsError::ShapeMismatch {
                op: "tr_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let arow = self.row(r);
            let brow = rhs.row(r);
            for (c, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = out.row_mut(c);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Reference matrix product: the naive i-j-k triple loop with a scalar
    /// accumulator. Bit-exact ground truth for property tests of the
    /// blocked [`Matrix::matmul`] kernel; not used on any hot path.
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] on incompatible shapes.
    pub fn matmul_reference(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(NumericsError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += self[(i, k)] * rhs[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] on incompatible shapes.
    pub fn matvec(&self, v: &Vector) -> Result<Vector> {
        if self.cols != v.len() {
            return Err(NumericsError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(Vector::from_fn(self.rows, |r| {
            self.row(r).iter().zip(v.as_slice()).map(|(a, b)| a * b).sum()
        }))
    }

    /// Transposed matrix-vector product `A^T v` without forming `A^T`.
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] on incompatible shapes.
    pub fn tr_matvec(&self, v: &Vector) -> Result<Vector> {
        if self.rows != v.len() {
            return Err(NumericsError::ShapeMismatch {
                op: "tr_matvec",
                lhs: (self.cols, self.rows),
                rhs: (v.len(), 1),
            });
        }
        let mut out = Vector::zeros(self.cols);
        for r in 0..self.rows {
            let vr = v[r];
            if vr == 0.0 {
                continue;
            }
            for (o, &a) in out.as_mut_slice().iter_mut().zip(self.row(r)) {
                *o += vr * a;
            }
        }
        Ok(out)
    }

    /// `A^T A` (Gram matrix), exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let ai = row[i];
                if ai == 0.0 {
                    continue;
                }
                for j in i..n {
                    g[(i, j)] += ai * row[j];
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Select a subset of rows (in the given order) into a new matrix.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        Matrix::from_fn(idx.len(), self.cols, |r, c| self[(idx[r], c)])
    }

    /// Select a subset of columns (in the given order) into a new matrix.
    pub fn select_columns(&self, idx: &[usize]) -> Matrix {
        Matrix::from_fn(self.rows, idx.len(), |r, c| self[(r, idx[c])])
    }

    /// The first `k` columns as a new matrix (`k` is clamped to the column
    /// count). Equivalent to `select_columns(&(0..k).collect::<Vec<_>>())`
    /// but copies each row prefix contiguously instead of going through an
    /// index indirection per element.
    pub fn leading_columns(&self, k: usize) -> Matrix {
        let k = k.min(self.cols);
        let mut out = Matrix::zeros(self.rows, k);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[..k]);
        }
        out
    }

    /// Horizontally concatenate `[self | rhs]`.
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] when the row counts differ.
    pub fn hcat(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(NumericsError::ShapeMismatch {
                op: "hcat",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(Matrix::from_fn(self.rows, self.cols + rhs.cols, |r, c| {
            if c < self.cols {
                self[(r, c)]
            } else {
                rhs[(r, c - self.cols)]
            }
        }))
    }

    /// Horizontally concatenate many matrices `[a | b | c | …]` in one
    /// pass, preallocating the full width. Folding [`Matrix::hcat`] instead
    /// re-copies the whole accumulated matrix per part — O(parts²) traffic
    /// that this routine avoids.
    ///
    /// # Errors
    /// Returns [`NumericsError::InvalidArgument`] for an empty part list
    /// and [`NumericsError::ShapeMismatch`] when row counts differ.
    pub fn hcat_all(parts: &[&Matrix]) -> Result<Matrix> {
        let first = parts
            .first()
            .ok_or_else(|| NumericsError::invalid("Matrix::hcat_all", "no parts"))?;
        let rows = first.rows;
        let mut cols = 0usize;
        for p in parts {
            if p.rows != rows {
                return Err(NumericsError::ShapeMismatch {
                    op: "hcat_all",
                    lhs: (rows, cols),
                    rhs: p.shape(),
                });
            }
            cols += p.cols;
        }
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let orow = out.row_mut(r);
            let mut offset = 0;
            for p in parts {
                orow[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        Ok(out)
    }

    /// Vertically concatenate `[self; rhs]`.
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] when the column counts differ.
    pub fn vcat(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(NumericsError::ShapeMismatch {
                op: "vcat",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        Ok(Matrix { rows: self.rows + rhs.rows, cols: self.cols, data })
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (`0.0` for an empty matrix).
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    /// Scale all entries in place.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Scaled copy.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Subtract the row-wise mean from every column (center each row across
    /// time). Returns the vector of row means.
    ///
    /// The detector treats rows as sensors and columns as time instants, so
    /// "centering" removes each sensor's steady-state operating point.
    pub fn center_rows_mut(&mut self) -> Vector {
        let mut means = Vector::zeros(self.rows);
        if self.cols == 0 {
            return means;
        }
        for r in 0..self.rows {
            let row = self.row(r);
            let m = row.iter().sum::<f64>() / self.cols as f64;
            means[r] = m;
            for x in self.row_mut(r) {
                *x -= m;
            }
        }
        means
    }

    /// Maximum absolute difference with `other`; `f64::INFINITY` when shapes
    /// differ. Handy in tests.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        if self.shape() != other.shape() {
            return f64::INFINITY;
        }
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "Matrix add: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "Matrix sub: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;
    /// Panicking operator form of [`Matrix::matmul`] for ergonomic call sites
    /// where shapes are statically known to agree.
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs).expect("Matrix mul: shape mismatch")
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(m.column(1).as_slice(), &[1.0, 4.0]);
        let id = Matrix::identity(3);
        assert_eq!(id[(0, 0)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);
        assert!(Matrix::from_rows(2, 2, vec![1.0; 3]).is_err());
        let d = Matrix::diag(&[1.0, 2.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(1, 0)], 0.0);
    }

    #[test]
    fn from_columns_builds_expected() {
        let c0 = Vector::from(vec![1.0, 2.0]);
        let c1 = Vector::from(vec![3.0, 4.0]);
        let m = Matrix::from_columns(&[c0, c1]).unwrap();
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert!(Matrix::from_columns(&[]).is_err());
        assert!(Matrix::from_columns(&[Vector::zeros(2), Vector::zeros(3)]).is_err());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_rows(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
        assert!(a.matmul(&Matrix::zeros(3, 2)).is_err());
        // identity is neutral
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
        // operator form
        assert_eq!((&a * &b).as_slice(), c.as_slice());
    }

    #[test]
    fn matvec_and_transpose() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]).unwrap();
        let v = Vector::from(vec![1.0, 2.0, 3.0]);
        assert_eq!(a.matvec(&v).unwrap().as_slice(), &[7.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 0)], 2.0);
        // A^T v computed directly equals transpose().matvec
        let w = Vector::from(vec![1.0, -1.0]);
        assert_eq!(
            a.tr_matvec(&w).unwrap().as_slice(),
            t.matvec(&w).unwrap().as_slice()
        );
        assert!(a.matvec(&Vector::zeros(2)).is_err());
        assert!(a.tr_matvec(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn gram_is_ata() {
        let a = Matrix::from_rows(3, 2, vec![1.0, 2.0, 0.0, 1.0, -1.0, 3.0]).unwrap();
        let g = a.gram();
        let expected = a.transpose().matmul(&a).unwrap();
        assert!(g.max_abs_diff(&expected) < 1e-14);
    }

    #[test]
    fn selection_and_concat() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let rsel = a.select_rows(&[2, 0]);
        assert_eq!(rsel.row(0), &[6.0, 7.0, 8.0]);
        assert_eq!(rsel.row(1), &[0.0, 1.0, 2.0]);
        let csel = a.select_columns(&[1]);
        assert_eq!(csel.column(0).as_slice(), &[1.0, 4.0, 7.0]);
        let h = a.hcat(&csel).unwrap();
        assert_eq!(h.shape(), (3, 4));
        assert_eq!(h[(0, 3)], 1.0);
        let v = a.vcat(&rsel).unwrap();
        assert_eq!(v.shape(), (5, 3));
        assert_eq!(v[(3, 0)], 6.0);
        assert!(a.hcat(&Matrix::zeros(2, 2)).is_err());
        assert!(a.vcat(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn blocked_matmul_matches_reference_past_tile_edges() {
        // Shapes straddling the 64-wide tile edge exercise every partial-
        // tile branch of the blocked kernel.
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 70, 5), (65, 64, 63), (10, 130, 67)] {
            let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 17) % 13) as f64 - 6.0);
            let b = Matrix::from_fn(k, n, |r, c| ((r * 7 + c * 29) % 11) as f64 - 5.0);
            let blocked = a.matmul(&b).unwrap();
            let reference = a.matmul_reference(&b).unwrap();
            assert_eq!(blocked, reference, "({m},{k},{n})");
        }
        assert!(Matrix::zeros(2, 3).matmul_reference(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn hcat_all_matches_folded_hcat() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(3, 1, |r, _| r as f64 * 10.0);
        let c = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64);
        let folded = a.hcat(&b).unwrap().hcat(&c).unwrap();
        let all = Matrix::hcat_all(&[&a, &b, &c]).unwrap();
        assert_eq!(all, folded);
        assert_eq!(Matrix::hcat_all(&[&a]).unwrap(), a);
        assert!(Matrix::hcat_all(&[]).is_err());
        assert!(Matrix::hcat_all(&[&a, &Matrix::zeros(2, 2)]).is_err());
    }

    #[test]
    fn center_rows_removes_means() {
        let mut m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 10.0, 10.0, 10.0]).unwrap();
        let means = m.center_rows_mut();
        assert_eq!(means.as_slice(), &[2.0, 10.0]);
        assert_eq!(m.row(0), &[-1.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(2, 2, vec![3.0, 0.0, 0.0, -4.0]).unwrap();
        assert_eq!(m.norm_fro(), 5.0);
        assert_eq!(m.norm_max(), 4.0);
    }

    #[test]
    fn set_column_roundtrip() {
        let mut m = Matrix::zeros(3, 2);
        let v = Vector::from(vec![1.0, 2.0, 3.0]);
        m.set_column(1, &v);
        assert_eq!(m.column(1).as_slice(), v.as_slice());
        assert_eq!(m.column(0).as_slice(), &[0.0, 0.0, 0.0]);
    }
}
