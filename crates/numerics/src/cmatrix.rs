//! Dense complex matrices.
//!
//! Admittance matrices are complex; the power-flow crate also occasionally
//! solves complex linear systems (e.g. for current-injection diagnostics).

use crate::complex::Complex64;
use crate::error::NumericsError;
use crate::matrix::Matrix;
use crate::Result;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major matrix of [`Complex64`].
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Create an `rows x cols` matrix of complex zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix { rows, cols, data: vec![Complex64::ZERO; rows * cols] }
    }

    /// Create the `n x n` complex identity.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Create a matrix from a closure over `(row, col)`.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> Complex64,
    ) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        CMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Real parts as a real matrix.
    pub fn real(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)].re)
    }

    /// Imaginary parts as a real matrix.
    pub fn imag(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)].im)
    }

    /// Conjugate transpose `A^H`.
    pub fn hermitian(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Matrix-vector product.
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] on incompatible shapes.
    pub fn matvec(&self, v: &[Complex64]) -> Result<Vec<Complex64>> {
        if self.cols != v.len() {
            return Err(NumericsError::ShapeMismatch {
                op: "cmatvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![Complex64::ZERO; self.rows];
        for r in 0..self.rows {
            let mut acc = Complex64::ZERO;
            for c in 0..self.cols {
                acc += self[(r, c)] * v[c];
            }
            out[r] = acc;
        }
        Ok(out)
    }

    /// Matrix-matrix product.
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] on incompatible shapes.
    pub fn matmul(&self, rhs: &CMatrix) -> Result<CMatrix> {
        if self.cols != rhs.rows {
            return Err(NumericsError::ShapeMismatch {
                op: "cmatmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == Complex64::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Maximum |entry|.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, z| m.max(z.abs()))
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "CMatrix add: shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| *a + *b).collect(),
        }
    }
}

impl Sub<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "CMatrix sub: shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| *a - *b).collect(),
        }
    }
}

impl Mul<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        self.matmul(rhs).expect("CMatrix mul: shape mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn identity_is_neutral() {
        let a = CMatrix::from_fn(2, 2, |r, cc| c((r + cc) as f64, (r as f64) - 1.0));
        let i = CMatrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn hermitian_conjugates() {
        let a = CMatrix::from_fn(2, 3, |r, cc| c(r as f64, cc as f64));
        let h = a.hermitian();
        assert_eq!(h.shape(), (3, 2));
        assert_eq!(h[(2, 1)], c(1.0, -2.0));
        // (A^H)^H == A
        assert_eq!(h.hermitian(), a);
    }

    #[test]
    fn matvec_complex() {
        // [i 0; 0 -i] * [1+i, 2] = [i-1, -2i]
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = Complex64::I;
        a[(1, 1)] = -Complex64::I;
        let v = vec![c(1.0, 1.0), c(2.0, 0.0)];
        let out = a.matvec(&v).unwrap();
        assert!((out[0] - c(-1.0, 1.0)).abs() < 1e-15);
        assert!((out[1] - c(0.0, -2.0)).abs() < 1e-15);
        assert!(a.matvec(&[Complex64::ZERO; 3]).is_err());
    }

    #[test]
    fn real_imag_split() {
        let a = CMatrix::from_fn(2, 2, |r, cc| c((r * 2 + cc) as f64, -((r * 2 + cc) as f64)));
        assert_eq!(a.real()[(1, 1)], 3.0);
        assert_eq!(a.imag()[(1, 1)], -3.0);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = CMatrix::from_fn(2, 2, |r, cc| c(r as f64, cc as f64));
        let b = CMatrix::from_fn(2, 2, |r, cc| c(cc as f64, r as f64));
        let s = &a + &b;
        let back = &s - &b;
        assert!(back.data.iter().zip(&a.data).all(|(x, y)| (*x - *y).abs() < 1e-15));
    }

    #[test]
    fn matmul_shape_errors() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }
}
