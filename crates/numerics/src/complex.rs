//! A minimal but complete `f64` complex number.
//!
//! Power-system admittance matrices and phasors are complex-valued; this
//! type provides the arithmetic needed by the grid and power-flow crates
//! without pulling in an external crate.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Create a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Create a complex number from polar coordinates (magnitude, angle in radians).
    #[inline]
    pub fn from_polar(mag: f64, angle: f64) -> Self {
        Complex64 { re: mag * angle.cos(), im: mag * angle.sin() }
    }

    /// Magnitude `|z|`, computed with `hypot` for robustness against overflow.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Principal argument in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 { re: self.re, im: -self.im }
    }

    /// Multiplicative inverse `1/z`. Returns an infinite value for `z == 0`,
    /// mirroring `f64` division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex64 { re: self.re / d, im: -self.im / d }
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64 { re: self.re * s, im: self.im * s }
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        Complex64::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex64 { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex64 { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        // Smith's algorithm: avoids overflow for large components.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex64 { re: (self.re + self.im * r) / d, im: (self.im - self.re * r) / d }
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex64 { re: (self.re * r + self.im) / d, im: (self.im * r - self.re) / d }
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Complex64 { re: -self.re, im: -self.im }
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Complex64 { re: self.re / rhs, im: self.im / rhs }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for Complex64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < EPS
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert!(close(z + Complex64::ZERO, z));
        assert!(close(z * Complex64::ONE, z));
        assert!(close(z - z, Complex64::ZERO));
        assert!(close(z * z.recip(), Complex64::ONE));
        assert!(close(z / z, Complex64::ONE));
        assert!(close(-(-z), z));
    }

    #[test]
    fn abs_and_arg() {
        let z = Complex64::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < EPS);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
        let w = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
        assert!((w.re).abs() < EPS);
        assert!((w.im - 2.0).abs() < EPS);
        assert!((w.arg() - std::f64::consts::FRAC_PI_2).abs() < EPS);
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex64::new(1.5, 2.5);
        let w = Complex64::new(-0.5, 3.0);
        assert!(close((z * w).conj(), z.conj() * w.conj()));
        assert!(((z * z.conj()).re - z.norm_sqr()).abs() < EPS);
        assert!((z * z.conj()).im.abs() < EPS);
    }

    #[test]
    fn division_is_robust_for_small_and_large() {
        let big = Complex64::new(1e150, 1e150);
        let q = big / big;
        assert!(close(q, Complex64::ONE));
        let z = Complex64::new(1.0, 2.0);
        let w = Complex64::new(0.0, 4.0); // exercise the |im| > |re| branch
        assert!(close(z / w * w, z));
    }

    #[test]
    fn exp_and_sqrt() {
        // Euler: e^{i*pi} = -1
        let e = (Complex64::I * std::f64::consts::PI).exp();
        assert!((e.re + 1.0).abs() < 1e-12 && e.im.abs() < 1e-12);
        let z = Complex64::new(-4.0, 0.0);
        let r = z.sqrt();
        assert!(close(r * r, z));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0)));
    }

    #[test]
    fn sum_folds() {
        let s: Complex64 =
            (0..4).map(|k| Complex64::new(k as f64, -(k as f64))).sum();
        assert!(close(s, Complex64::new(6.0, -6.0)));
    }

    #[test]
    fn nan_and_finite_flags() {
        assert!(Complex64::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex64::ONE.is_nan());
        assert!(Complex64::ONE.is_finite());
        assert!(!Complex64::new(f64::INFINITY, 0.0).is_finite());
    }
}
