//! Packed projector banks: many subspace residuals from one matmul.
//!
//! The detection hot path scores every sample against one subspace per
//! outage case. Done naively that is `O(cases × samples)` independent
//! projections, each re-walking its basis. A [`ProjectorBank`] instead
//! concatenates all the (row-restricted, clamped) bases side by side into
//! one contiguous `d × Σk` tensor, so the coefficient stage for a whole
//! sample block is a single cache-blocked [`Matrix::tr_matmul`] and the
//! projection/residual stage streams the packed tensor once per sample.
//!
//! ## Bit-compatibility contract
//!
//! [`ProjectorBank::block_residuals`] reproduces, bit for bit, what
//! [`Subspace::residual_sqr`](crate::Subspace::residual_sqr) computes per
//! block on the same basis:
//!
//! - the coefficient stage accumulates over ascending row index, exactly
//!   like `tr_matvec` (the kernels differ only in which exact-zero factors
//!   they skip, which can change a coefficient by at most the sign of a
//!   zero — invisible to the squared residual);
//! - the projection stage accumulates over ascending basis columns with no
//!   zero-skip, exactly like `matvec`;
//! - the residual accumulates `(x_i − p_i)²` over ascending `i`, exactly
//!   like `Vector::norm_sqr` on the difference.
//!
//! The parity suite in the detector crate pins this contract end to end.

use crate::error::NumericsError;
use crate::matrix::Matrix;
use crate::Result;

/// A bank of orthonormal bases packed column-wise into one tensor.
///
/// All bases share the same row count `d` (the ambient/observed
/// dimension); block `b` occupies columns `offsets[b]..offsets[b+1]`.
/// Zero-dimensional blocks (empty subspaces) are legal and contribute the
/// plain squared norm of the sample as their residual.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone)]
pub struct ProjectorBank {
    /// `d × Σk` concatenation of the block bases.
    packed: Matrix,
    /// Column offsets per block; `offsets.len() == n_blocks + 1`.
    offsets: Vec<usize>,
}

impl ProjectorBank {
    /// Pack the given bases (each `d × k_b`, orthonormal columns) into one
    /// bank. Orthonormality is the caller's contract — the bank does not
    /// re-verify it.
    ///
    /// # Errors
    /// Returns [`NumericsError::InvalidArgument`] for an empty list and
    /// [`NumericsError::ShapeMismatch`] when row counts differ.
    pub fn from_bases(bases: &[&Matrix]) -> Result<Self> {
        let first = bases
            .first()
            .ok_or_else(|| NumericsError::invalid("ProjectorBank::from_bases", "no bases"))?;
        let d = first.rows();
        let mut offsets = Vec::with_capacity(bases.len() + 1);
        offsets.push(0usize);
        for b in bases {
            if b.rows() != d {
                return Err(NumericsError::ShapeMismatch {
                    op: "ProjectorBank::from_bases",
                    lhs: first.shape(),
                    rhs: b.shape(),
                });
            }
            offsets.push(offsets.last().unwrap() + b.cols());
        }
        let packed = Matrix::hcat_all(bases)?;
        Ok(ProjectorBank { packed, offsets })
    }

    /// Shared row count `d` of every block basis.
    pub fn rows(&self) -> usize {
        self.packed.rows()
    }

    /// Number of packed blocks.
    pub fn n_blocks(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Dimension (column count) of block `b`.
    pub fn block_dim(&self, b: usize) -> usize {
        self.offsets[b + 1] - self.offsets[b]
    }

    /// Squared residuals of every sample column against every block:
    /// returns an `n_blocks × n_samples` matrix with
    /// `out[(b, s)] = ||x_s − P_b x_s||²`.
    ///
    /// The coefficient stage is one packed `tr_matmul`; the projection and
    /// residual stages then stream the packed tensor once per sample,
    /// replicating the accumulation order of the per-subspace scalar path
    /// (see the module docs for the bit-compatibility contract).
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] when `x` has a different
    /// row count than the bank.
    pub fn block_residuals(&self, x: &Matrix) -> Result<Matrix> {
        let (d, n_samples) = x.shape();
        if d != self.packed.rows() {
            return Err(NumericsError::ShapeMismatch {
                op: "ProjectorBank::block_residuals",
                lhs: self.packed.shape(),
                rhs: x.shape(),
            });
        }
        // Coefficients for every (block, sample) pair in one shot.
        let coef = self.packed.tr_matmul(x)?; // Σk × n_samples
        let mut out = Matrix::zeros(self.n_blocks(), n_samples);
        let mut cbuf: Vec<f64> = Vec::new();
        for b in 0..self.n_blocks() {
            let (lo, hi) = (self.offsets[b], self.offsets[b + 1]);
            let k = hi - lo;
            cbuf.resize(k, 0.0);
            for s in 0..n_samples {
                // Gather this sample's coefficient column for the block so
                // the inner projection loop reads contiguous memory.
                for (c, slot) in cbuf.iter_mut().enumerate() {
                    *slot = coef[(lo + c, s)];
                }
                let mut acc = 0.0;
                for i in 0..d {
                    let brow = &self.packed.row(i)[lo..hi];
                    let mut p = 0.0;
                    for (w, cv) in brow.iter().zip(&cbuf) {
                        p += w * cv;
                    }
                    let diff = x[(i, s)] - p;
                    acc += diff * diff;
                }
                out[(b, s)] = acc;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::orthonormal_columns;
    use crate::subspace::Subspace;
    use crate::vector::Vector;

    fn random_like(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn ortho(rows: usize, cols: usize, seed: u64) -> Matrix {
        orthonormal_columns(&random_like(rows, cols, seed), 1e-10).unwrap()
    }

    #[test]
    fn matches_per_subspace_residuals_bitwise() {
        let d = 17;
        let bases: Vec<Matrix> = vec![ortho(d, 3, 1), ortho(d, 5, 2), ortho(d, 1, 3)];
        let refs: Vec<&Matrix> = bases.iter().collect();
        let bank = ProjectorBank::from_bases(&refs).unwrap();
        assert_eq!(bank.n_blocks(), 3);
        assert_eq!(bank.rows(), d);
        assert_eq!(bank.block_dim(1), 5);

        let x = random_like(d, 6, 42);
        let out = bank.block_residuals(&x).unwrap();
        assert_eq!(out.shape(), (3, 6));
        for (b, basis) in bases.iter().enumerate() {
            let s = Subspace::from_orthonormal(basis.clone());
            for t in 0..6 {
                let col = x.column(t);
                let want = s.residual_sqr(&col).unwrap();
                assert_eq!(
                    out[(b, t)].to_bits(),
                    want.to_bits(),
                    "block {b} sample {t}: packed {} vs scalar {want}",
                    out[(b, t)]
                );
            }
        }
    }

    #[test]
    fn zero_dim_blocks_yield_plain_norms() {
        let d = 8;
        let empty = Matrix::zeros(d, 0);
        let full = ortho(d, 2, 9);
        let bank = ProjectorBank::from_bases(&[&empty, &full]).unwrap();
        assert_eq!(bank.block_dim(0), 0);
        let x = random_like(d, 2, 7);
        let out = bank.block_residuals(&x).unwrap();
        for t in 0..2 {
            let col: Vector = x.column(t);
            assert_eq!(out[(0, t)].to_bits(), col.norm_sqr().to_bits());
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(ProjectorBank::from_bases(&[]).is_err());
        let a = ortho(5, 2, 1);
        let b = ortho(6, 2, 2);
        assert!(ProjectorBank::from_bases(&[&a, &b]).is_err());
        let bank = ProjectorBank::from_bases(&[&a]).unwrap();
        assert!(bank.block_residuals(&Matrix::zeros(6, 1)).is_err());
    }

    #[test]
    fn serde_roundtrip_is_bit_exact() {
        let a = ortho(7, 3, 4);
        let bank = ProjectorBank::from_bases(&[&a]).unwrap();
        let json = serde_json::to_string(&bank).unwrap();
        let back: ProjectorBank = serde_json::from_str(&json).unwrap();
        let x = random_like(7, 3, 5);
        let r1 = bank.block_residuals(&x).unwrap();
        let r2 = back.block_residuals(&x).unwrap();
        for s in 0..3 {
            assert_eq!(r1[(0, s)].to_bits(), r2[(0, s)].to_bits());
        }
    }
}
