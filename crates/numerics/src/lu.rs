//! LU factorization with partial pivoting, for real and complex matrices.
//!
//! The Newton–Raphson power-flow inner loop solves `J dx = -f` with a dense
//! Jacobian; partial pivoting keeps the factorization stable on the
//! ill-conditioned Jacobians that show up near voltage-collapse points.

// Indexed loops are the clearest expression of the dense numerical
// kernels in this module.
#![allow(clippy::needless_range_loop)]

use crate::cmatrix::CMatrix;
use crate::complex::Complex64;
use crate::error::NumericsError;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::Result;

/// Pivot magnitudes below this threshold are treated as singular.
const PIVOT_TOL: f64 = 1e-13;

/// A computed LU factorization `P A = L U` of a real square matrix.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Packed factors: strictly-lower part stores `L` (unit diagonal
    /// implicit), upper triangle stores `U`.
    lu: Matrix,
    /// Row permutation: `perm[k]` is the original row now in position `k`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

impl LuFactors {
    /// Factorize a square matrix.
    ///
    /// # Errors
    /// Returns [`NumericsError::InvalidArgument`] for non-square input and
    /// [`NumericsError::Singular`] when a pivot underflows the pivot tolerance
    /// relative to the matrix scale.
    pub fn factorize(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(NumericsError::invalid(
                "lu",
                format!("matrix must be square, got {}x{}", a.rows(), a.cols()),
            ));
        }
        let scale = a.norm_max().max(1.0);
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivoting: find the row with the largest |entry| in column k.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > max {
                    max = v;
                    p = r;
                }
            }
            if max < PIVOT_TOL * scale {
                return Err(NumericsError::Singular { op: "lu", pivot: max });
            }
            if p != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(p, c)];
                    lu[(p, c)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let m = lu[(r, k)] / pivot;
                lu[(r, k)] = m;
                if m != 0.0 {
                    for c in (k + 1)..n {
                        let ukc = lu[(k, c)];
                        lu[(r, c)] -= m * ukc;
                    }
                }
            }
        }
        Ok(LuFactors { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b`.
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] when `b` has the wrong length.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumericsError::ShapeMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then forward/backward substitution.
        let mut x = Vector::from_fn(n, |i| b[self.perm[i]]);
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solve for multiple right-hand sides stacked as the columns of `B`.
    ///
    /// # Errors
    /// Propagates shape errors from [`LuFactors::solve`].
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.dim(), b.cols());
        for c in 0..b.cols() {
            let x = self.solve(&b.column(c))?;
            out.set_column(c, &x);
        }
        Ok(out)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    /// Propagates errors from the column solves.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// LU factorization with partial pivoting for complex square matrices.
#[derive(Debug, Clone)]
pub struct CluFactors {
    lu: CMatrix,
    perm: Vec<usize>,
}

impl CluFactors {
    /// Factorize a complex square matrix.
    ///
    /// # Errors
    /// As [`LuFactors::factorize`].
    pub fn factorize(a: &CMatrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(NumericsError::invalid(
                "clu",
                format!("matrix must be square, got {}x{}", a.rows(), a.cols()),
            ));
        }
        let scale = a.norm_max().max(1.0);
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > max {
                    max = v;
                    p = r;
                }
            }
            if max < PIVOT_TOL * scale {
                return Err(NumericsError::Singular { op: "clu", pivot: max });
            }
            if p != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(p, c)];
                    lu[(p, c)] = tmp;
                }
                perm.swap(k, p);
            }
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let m = lu[(r, k)] / pivot;
                lu[(r, k)] = m;
                for c in (k + 1)..n {
                    let ukc = lu[(k, c)];
                    lu[(r, c)] -= m * ukc;
                }
            }
        }
        Ok(CluFactors { lu, perm })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b` for a complex right-hand side.
    ///
    /// # Errors
    /// Returns [`NumericsError::ShapeMismatch`] when `b` has the wrong length.
    pub fn solve(&self, b: &[Complex64]) -> Result<Vec<Complex64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumericsError::ShapeMismatch {
                op: "clu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut x: Vec<Complex64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [3; 5]  =>  x = [4/5, 7/5]
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let lu = LuFactors::factorize(&a).unwrap();
        let x = lu.solve(&Vector::from(vec![3.0, 5.0])).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-14);
        assert!((x[1] - 1.4).abs() < 1e-14);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let lu = LuFactors::factorize(&a).unwrap();
        let x = lu.solve(&Vector::from(vec![2.0, 3.0])).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
        assert!((lu.det() + 1.0).abs() < 1e-14); // det of the swap = -1
    }

    #[test]
    fn det_matches_known() {
        let a = Matrix::from_rows(3, 3, vec![2.0, 0.0, 1.0, 1.0, 3.0, 2.0, 1.0, 1.0, 1.0])
            .unwrap();
        // det = 2*(3-2) - 0 + 1*(1-3) = 0 → singular matrix should error? det=0
        // Actually compute: 2*(3*1-2*1) - 0*(1*1-2*1) + 1*(1*1-3*1) = 2 - 2 = 0
        assert!(LuFactors::factorize(&a).is_err());
        let b = Matrix::from_rows(2, 2, vec![3.0, 1.0, 4.0, 2.0]).unwrap();
        assert!((LuFactors::factorize(&b).unwrap().det() - 2.0).abs() < 1e-13);
    }

    #[test]
    fn singular_detection() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        match LuFactors::factorize(&a) {
            Err(NumericsError::Singular { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
        assert!(LuFactors::factorize(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(3, 3, vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0])
            .unwrap();
        let inv = LuFactors::factorize(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn solve_matrix_columns() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 1.0, 0.0, 1.0]).unwrap();
        let b = Matrix::from_rows(2, 2, vec![2.0, 3.0, 1.0, 1.0]).unwrap();
        let x = LuFactors::factorize(&a).unwrap().solve_matrix(&b).unwrap();
        let back = a.matmul(&x).unwrap();
        assert!(back.max_abs_diff(&b) < 1e-13);
    }

    #[test]
    fn wrong_rhs_length_errors() {
        let a = Matrix::identity(3);
        let lu = LuFactors::factorize(&a).unwrap();
        assert!(lu.solve(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn complex_solve_roundtrip() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = Complex64::new(1.0, 1.0);
        a[(0, 1)] = Complex64::new(0.0, -2.0);
        a[(1, 0)] = Complex64::new(3.0, 0.0);
        a[(1, 1)] = Complex64::new(1.0, 1.0);
        let clu = CluFactors::factorize(&a).unwrap();
        let b = vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, 1.0)];
        let x = clu.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (u, v) in back.iter().zip(&b) {
            assert!((*u - *v).abs() < 1e-12);
        }
    }

    #[test]
    fn complex_pivoting_and_errors() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 1)] = Complex64::ONE;
        a[(1, 0)] = Complex64::ONE;
        let clu = CluFactors::factorize(&a).unwrap();
        let x = clu.solve(&[Complex64::new(5.0, 0.0), Complex64::new(7.0, 0.0)]).unwrap();
        assert!((x[0] - Complex64::new(7.0, 0.0)).abs() < 1e-14);
        assert!((x[1] - Complex64::new(5.0, 0.0)).abs() < 1e-14);
        assert!(CluFactors::factorize(&CMatrix::zeros(2, 2)).is_err());
        assert!(CluFactors::factorize(&CMatrix::zeros(2, 3)).is_err());
        assert!(clu.solve(&[Complex64::ZERO]).is_err());
    }
}
