//! Jacobi eigendecomposition for symmetric matrices.
//!
//! Subspace intersection (Eq. 3) is implemented through eigenvectors of
//! averaged orthogonal projectors, and the normal-operation ellipse (Eq. 4)
//! needs the eigen-structure of 2×2 covariance matrices. The classic cyclic
//! Jacobi method handles both with excellent accuracy.

use crate::error::NumericsError;
use crate::matrix::Matrix;
use crate::Result;

/// Maximum number of Jacobi sweeps.
const MAX_SWEEPS: usize = 64;

/// An eigendecomposition `A = Q Λ Q^T` of a symmetric matrix.
///
/// Eigenvalues are sorted in **descending** order; `vectors` holds the
/// corresponding orthonormal eigenvectors as columns.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as columns (same order as `values`).
    pub vectors: Matrix,
}

/// Compute the eigendecomposition of a symmetric matrix.
///
/// The input is symmetrized as `(A + A^T)/2` first, so slightly asymmetric
/// inputs (from floating-point accumulation) are accepted.
///
/// # Errors
/// Returns [`NumericsError::InvalidArgument`] for non-square or empty input
/// and [`NumericsError::NoConvergence`] if Jacobi sweeps fail to converge.
pub fn sym_eigen(a: &Matrix) -> Result<SymEigen> {
    let n = a.rows();
    if n == 0 || a.cols() != n {
        return Err(NumericsError::invalid(
            "sym_eigen",
            format!("matrix must be square and non-empty, got {}x{}", a.rows(), a.cols()),
        ));
    }
    // Symmetrize defensively.
    let mut m = Matrix::from_fn(n, n, |r, c| 0.5 * (a[(r, c)] + a[(c, r)]));
    let mut q = Matrix::identity(n);
    let scale = m.norm_max().max(1.0);
    // Large projector eigenproblems (subspace intersections at IEEE-118
    // size) get a trace span; the ubiquitous 2×2 ellipse solves only
    // feed the sweep-count metrics.
    let mut trace_span = if n * n >= 512 {
        pmu_obs::span("numerics.eigen").with("n", n)
    } else {
        pmu_obs::Span::disabled("numerics.eigen")
    };

    for sweep in 0..MAX_SWEEPS {
        // Sum of squared off-diagonal entries.
        let mut off = 0.0;
        for r in 0..n {
            for c in (r + 1)..n {
                off += m[(r, c)] * m[(r, c)];
            }
        }
        if off.sqrt() < 1e-14 * scale {
            trace_span.record("sweeps", sweep);
            pmu_obs::events::EigenComputed { n, sweeps: sweep }.emit();
            return Ok(finish(m, q));
        }
        for p in 0..n {
            for r in (p + 1)..n {
                let apq = m[(p, r)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(r, r)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Apply rotation on both sides: M <- J^T M J.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, r)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, r)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(r, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(r, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let qkp = q[(k, p)];
                    let qkq = q[(k, r)];
                    q[(k, p)] = c * qkp - s * qkq;
                    q[(k, r)] = s * qkp + c * qkq;
                }
            }
        }
    }
    // Final convergence check.
    let mut off = 0.0;
    for r in 0..n {
        for c in (r + 1)..n {
            off += m[(r, c)] * m[(r, c)];
        }
    }
    trace_span.record("sweeps", MAX_SWEEPS);
    pmu_obs::events::EigenComputed { n, sweeps: MAX_SWEEPS }.emit();
    if off.sqrt() < 1e-10 * scale {
        Ok(finish(m, q))
    } else {
        Err(NumericsError::NoConvergence {
            op: "sym_eigen",
            iters: MAX_SWEEPS,
            residual: off.sqrt(),
        })
    }
}

fn finish(m: Matrix, q: Matrix) -> SymEigen {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = q.select_columns(&order);
    SymEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::diag(&[1.0, 5.0, 3.0]);
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] - 5.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.vectors.column(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let a = Matrix::from_rows(
            3,
            3,
            vec![4.0, 1.0, 0.5, 1.0, 3.0, -1.0, 0.5, -1.0, 2.0],
        )
        .unwrap();
        let e = sym_eigen(&a).unwrap();
        // Q Λ Q^T == A
        let lam = Matrix::diag(&e.values);
        let back = e
            .vectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        assert!(back.max_abs_diff(&a) < 1e-10);
        // Q^T Q == I
        let qtq = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(qtq.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn trace_is_preserved() {
        let a = Matrix::from_rows(4, 4, {
            let mut v = vec![0.0; 16];
            for i in 0..4 {
                for j in 0..4 {
                    v[i * 4 + j] = ((i * j) as f64).cos();
                }
            }
            // symmetrize
            for i in 0..4 {
                for j in 0..i {
                    let avg = (v[i * 4 + j] + v[j * 4 + i]) / 2.0;
                    v[i * 4 + j] = avg;
                    v[j * 4 + i] = avg;
                }
            }
            v
        })
        .unwrap();
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let e = sym_eigen(&a).unwrap();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn projector_eigenvalues_are_zero_or_one() {
        // P = u u^T for unit u is a rank-1 projector.
        let u = [0.6, 0.8];
        let p = Matrix::from_fn(2, 2, |r, c| u[r] * u[c]);
        let e = sym_eigen(&p).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!(e.values[1].abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(sym_eigen(&Matrix::zeros(0, 0)).is_err());
        assert!(sym_eigen(&Matrix::zeros(2, 3)).is_err());
    }
}
