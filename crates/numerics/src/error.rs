//! Error type shared by every numerical routine in the crate.

use std::fmt;

/// Errors produced by the numerical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// A matrix/vector operation was attempted with incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A factorization encountered an (numerically) singular matrix.
    Singular {
        /// Which factorization failed.
        op: &'static str,
        /// Pivot magnitude observed when the failure was detected.
        pivot: f64,
    },
    /// An iterative routine did not converge within its iteration budget.
    NoConvergence {
        /// Which routine failed to converge.
        op: &'static str,
        /// Number of iterations performed.
        iters: usize,
        /// Residual when iteration stopped.
        residual: f64,
    },
    /// An argument was out of the routine's domain (empty input, bad size…).
    InvalidArgument {
        /// Which routine rejected the argument.
        op: &'static str,
        /// Explanation of the rejection.
        msg: String,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: shape mismatch {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            NumericsError::Singular { op, pivot } => {
                write!(f, "{op}: matrix is singular (pivot magnitude {pivot:.3e})")
            }
            NumericsError::NoConvergence { op, iters, residual } => write!(
                f,
                "{op}: no convergence after {iters} iterations (residual {residual:.3e})"
            ),
            NumericsError::InvalidArgument { op, msg } => write!(f, "{op}: {msg}"),
        }
    }
}

impl std::error::Error for NumericsError {}

impl NumericsError {
    /// Construct an [`NumericsError::InvalidArgument`] with a formatted message.
    pub fn invalid(op: &'static str, msg: impl Into<String>) -> Self {
        NumericsError::InvalidArgument { op, msg: msg.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NumericsError::ShapeMismatch { op: "matmul", lhs: (2, 3), rhs: (4, 5) };
        let s = e.to_string();
        assert!(s.contains("matmul") && s.contains("2x3") && s.contains("4x5"));

        let e = NumericsError::Singular { op: "lu", pivot: 1e-18 };
        assert!(e.to_string().contains("singular"));

        let e = NumericsError::NoConvergence { op: "svd", iters: 30, residual: 1e-3 };
        assert!(e.to_string().contains("30"));

        let e = NumericsError::invalid("qr", "empty matrix");
        assert!(e.to_string().contains("empty matrix"));
    }
}
