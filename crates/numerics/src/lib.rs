//! # pmu-numerics
//!
//! Self-contained dense linear algebra for the `pmu-outage` workspace.
//!
//! The outage-detection pipeline of the paper needs a fairly complete
//! numerical toolbox: complex arithmetic for admittance matrices, LU
//! factorization for Newton–Raphson power-flow steps, QR for orthonormal
//! bases, SVD for subspace learning and pseudo-inverses, and a symmetric
//! eigensolver for projector-based subspace intersection. All of it is
//! implemented here from scratch (no BLAS/LAPACK), sized for power-system
//! matrices (N ≤ a few hundred), with an emphasis on numerical robustness
//! and testability over raw throughput.
//!
//! ## Module map
//!
//! - [`complex`] — `Complex64` scalar type.
//! - [`vector`] — dense real vectors and elementary operations.
//! - [`matrix`] — row-major dense real matrices.
//! - [`cmatrix`] — dense complex matrices (admittance matrices).
//! - [`lu`] — LU factorization with partial pivoting (real and complex).
//! - [`qr`] — Householder QR, thin factors, least squares.
//! - [`svd`] — one-sided Jacobi SVD, pseudo-inverse, numerical rank.
//! - [`rsvd`] — truncated randomized SVD (deterministic Gaussian range
//!   finder + power iterations; the rank-limited training fast path).
//! - [`eigen`] — Jacobi eigensolver for symmetric matrices.
//! - [`subspace`] — orthonormal subspaces: projection, residuals, unions,
//!   intersections, principal angles.
//! - [`packed`] — packed projector banks: batched subspace residuals via
//!   one cache-blocked matmul (the detection hot path).
//! - [`sparse`] — compressed sparse row matrices, real and complex
//!   (admittance matrices and NR Jacobians are ~99% zero at scale).
//! - [`sparse_lu`] — sparse LU with RCM ordering and symbolic pattern
//!   reuse (the power-flow fast path).
//! - [`hash`] — streaming FNV-1a content fingerprints (model bundles,
//!   artifact-store keys).
//! - [`stats`] — small statistics helpers (means, quantiles, covariance).
//! - [`par`] — zero-dependency data-parallel executor (`par_map`) used by
//!   the scenario-generation and training pipelines.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cmatrix;
pub mod complex;
pub mod eigen;
pub mod error;
pub mod hash;
pub mod lu;
pub mod matrix;
pub mod packed;
pub mod par;
pub mod qr;
pub mod rsvd;
pub mod sparse;
pub mod sparse_lu;
pub mod stats;
pub mod subspace;
pub mod svd;
pub mod vector;

pub use cmatrix::CMatrix;
pub use complex::Complex64;
pub use error::NumericsError;
pub use lu::{CluFactors, LuFactors};
pub use matrix::Matrix;
pub use packed::ProjectorBank;
pub use qr::QrFactors;
pub use rsvd::RsvdConfig;
pub use sparse::{CsrCMatrix, CsrMatrix};
pub use sparse_lu::{SparseLu, SymbolicLu};
pub use subspace::Subspace;
pub use svd::Svd;
pub use vector::Vector;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, NumericsError>;
