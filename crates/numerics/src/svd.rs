//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! The detector's subspace learning (Sec. IV-A of the paper) is built on the
//! SVD of measurement windows, and Eq. (9)'s regressor needs pseudo-inverses.
//! One-sided Jacobi is simple, numerically robust, and — for the matrix sizes
//! in this workspace (≤ a few hundred on a side) — fast enough.

use crate::error::NumericsError;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::Result;

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 60;
/// Off-diagonal convergence threshold relative to column norms.
const JACOBI_TOL: f64 = 1e-12;
/// Inputs with at least this many elements get a `numerics.svd` trace
/// span; smaller decompositions (per-node residual solves, 2×2 ellipse
/// work) are far too numerous to trace individually and are covered by
/// the sweep-count metrics instead.
const TRACE_MIN_ELEMS: usize = 512;

/// A thin singular value decomposition `A = U Σ V^T`.
///
/// `u` is m×k, `v` is n×k with orthonormal columns, and `sigma` holds the
/// `k = min(m, n)` singular values sorted in **descending** order.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (m×k).
    pub u: Matrix,
    /// Singular values, descending.
    pub sigma: Vec<f64>,
    /// Right singular vectors (n×k).
    pub v: Matrix,
}

impl Svd {
    /// Compute the thin SVD of `a`.
    ///
    /// # Errors
    /// Returns [`NumericsError::InvalidArgument`] for an empty matrix and
    /// [`NumericsError::NoConvergence`] if the Jacobi sweeps fail to converge
    /// (not observed in practice at these sizes).
    pub fn compute(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(NumericsError::invalid("svd", "empty matrix"));
        }
        // One-sided Jacobi works on the tall orientation; transpose if wide.
        // The recursive call carries the instrumentation, so each logical
        // decomposition is counted exactly once.
        if m < n {
            let t = Svd::compute(&a.transpose())?;
            return Ok(Svd { u: t.v, sigma: t.sigma, v: t.u });
        }
        let mut trace_span = if m * n >= TRACE_MIN_ELEMS {
            pmu_obs::span("numerics.svd").with("rows", m).with("cols", n)
        } else {
            pmu_obs::Span::disabled("numerics.svd")
        };

        let mut w = a.clone(); // Working copy; columns will be rotated.
        let mut v = Matrix::identity(n);

        // Squared column norms, cached across rotations. A Jacobi rotation
        // changes only columns p and q, and the rotation that annihilates
        // the (p,q) Gram entry moves the diagonal entries by exactly
        // ±t·apq (app' = app − t·apq, aqq' = aqq + t·apq), so the Gram
        // diagonal never needs recomputing inside a sweep — each pair
        // costs one dot product (apq) instead of three. The cache is
        // refreshed from the columns at the start of every sweep, which
        // bounds the closed-form update's floating-point drift to one
        // sweep (≲ a few ulps); results match the recompute-everything
        // baseline to machine precision, not bit-for-bit.
        let mut sq = vec![0.0_f64; n];

        let mut converged = false;
        let mut sweeps = 0;
        let mut max_off = 0.0_f64;
        while sweeps < MAX_SWEEPS && !converged {
            converged = true;
            max_off = 0.0;
            for (c, item) in sq.iter_mut().enumerate() {
                let mut acc = 0.0;
                for i in 0..m {
                    let x = w[(i, c)];
                    acc += x * x;
                }
                *item = acc;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let app = sq[p];
                    let aqq = sq[q];
                    let mut apq = 0.0;
                    for i in 0..m {
                        apq += w[(i, p)] * w[(i, q)];
                    }
                    let denom = (app * aqq).sqrt();
                    if denom == 0.0 {
                        continue;
                    }
                    let off = apq.abs() / denom;
                    max_off = max_off.max(off);
                    if off <= JACOBI_TOL {
                        // Already orthogonal: skip without touching the
                        // columns (the common case in late sweeps).
                        continue;
                    }
                    converged = false;
                    // Jacobi rotation that annihilates the (p,q) Gram entry.
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for i in 0..m {
                        let xp = w[(i, p)];
                        let xq = w[(i, q)];
                        w[(i, p)] = c * xp - s * xq;
                        w[(i, q)] = s * xp + c * xq;
                    }
                    for i in 0..n {
                        let vp = v[(i, p)];
                        let vq = v[(i, q)];
                        v[(i, p)] = c * vp - s * vq;
                        v[(i, q)] = s * vp + c * vq;
                    }
                    sq[p] = app - t * apq;
                    sq[q] = aqq + t * apq;
                }
            }
            sweeps += 1;
        }
        trace_span.record("sweeps", sweeps);
        pmu_obs::events::SvdComputed { rows: m, cols: n, sweeps }.emit();
        if !converged {
            return Err(NumericsError::NoConvergence {
                op: "svd",
                iters: sweeps,
                residual: max_off,
            });
        }

        // Column norms are the singular values; normalize to get U.
        let mut order: Vec<usize> = (0..n).collect();
        let norms: Vec<f64> = (0..n).map(|c| w.column(c).norm()).collect();
        order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

        let mut u = Matrix::zeros(m, n);
        let mut sigma = Vec::with_capacity(n);
        let mut v_sorted = Matrix::zeros(n, n);
        for (out_c, &src_c) in order.iter().enumerate() {
            let s = norms[src_c];
            sigma.push(s);
            if s > 0.0 {
                for i in 0..m {
                    u[(i, out_c)] = w[(i, src_c)] / s;
                }
            } else {
                // Zero singular value: leave the column zero; callers relying
                // on a full orthonormal U should use `complete_u`.
                u[(i_zero(m, out_c), out_c)] = 1.0;
            }
            for i in 0..n {
                v_sorted[(i, out_c)] = v[(i, src_c)];
            }
        }
        // Re-orthonormalize any placeholder columns introduced for zero
        // singular values against the others (Gram-Schmidt pass).
        gram_schmidt_fixup(&mut u, &sigma);

        Ok(Svd { u, sigma, v: v_sorted })
    }

    /// Numerical rank with relative tolerance `tol` (e.g. `1e-10`).
    pub fn rank(&self, tol: f64) -> usize {
        let smax = self.sigma.first().copied().unwrap_or(0.0);
        if smax == 0.0 {
            return 0;
        }
        self.sigma.iter().filter(|&&s| s > tol * smax).count()
    }

    /// Moore–Penrose pseudo-inverse `A^+ = V Σ^+ U^T` with relative
    /// tolerance `tol` for truncating small singular values.
    ///
    /// # Errors
    /// Propagates shape errors from internal products (cannot occur for a
    /// well-formed factorization).
    pub fn pseudo_inverse(&self, tol: f64) -> Result<Matrix> {
        let smax = self.sigma.first().copied().unwrap_or(0.0);
        let k = self.sigma.len();
        let inv: Vec<f64> = self
            .sigma
            .iter()
            .map(|&s| if smax > 0.0 && s > tol * smax { 1.0 / s } else { 0.0 })
            .collect();
        // V * diag(inv) * U^T
        let mut vs = self.v.clone();
        for c in 0..k {
            for r in 0..vs.rows() {
                vs[(r, c)] *= inv[c];
            }
        }
        vs.matmul(&self.u.transpose())
    }

    /// Reconstruct the original matrix `U Σ V^T` (useful in tests).
    ///
    /// # Errors
    /// Propagates shape errors from internal products.
    pub fn reconstruct(&self) -> Result<Matrix> {
        let mut us = self.u.clone();
        for c in 0..self.sigma.len() {
            for r in 0..us.rows() {
                us[(r, c)] *= self.sigma[c];
            }
        }
        us.matmul(&self.v.transpose())
    }

    /// The left singular vectors associated with the `dim` **smallest**
    /// singular values — the "line status" subspace basis of Sec. IV-A.
    pub fn lowest_left_vectors(&self, dim: usize) -> Matrix {
        let k = self.sigma.len();
        let dim = dim.min(k);
        let idx: Vec<usize> = ((k - dim)..k).collect();
        self.u.select_columns(&idx)
    }

    /// The left singular vectors associated with the `dim` **largest**
    /// singular values (the classic PCA loading directions).
    pub fn top_left_vectors(&self, dim: usize) -> Matrix {
        let dim = dim.min(self.sigma.len());
        let idx: Vec<usize> = (0..dim).collect();
        self.u.select_columns(&idx)
    }
}

/// Row index used to seed a placeholder column for a zero singular value.
fn i_zero(m: usize, c: usize) -> usize {
    c % m
}

/// Re-orthonormalize placeholder U columns (those with `sigma == 0`).
fn gram_schmidt_fixup(u: &mut Matrix, sigma: &[f64]) {
    let m = u.rows();
    for c in 0..sigma.len() {
        if sigma[c] > 0.0 {
            continue;
        }
        let mut col = u.column(c);
        for prev in 0..sigma.len() {
            if prev == c {
                continue;
            }
            let pc = u.column(prev);
            let d = col.dot(&pc).unwrap_or(0.0);
            col.axpy(-d, &pc).ok();
        }
        if col.normalize_mut() == 0.0 {
            // Degenerate; pick the first axis not already spanned.
            for axis in 0..m {
                let mut e = Vector::zeros(m);
                e[axis] = 1.0;
                for prev in 0..sigma.len() {
                    if prev == c {
                        continue;
                    }
                    let pc = u.column(prev);
                    let d = e.dot(&pc).unwrap_or(0.0);
                    e.axpy(-d, &pc).ok();
                }
                if e.normalize_mut() > 1e-8 {
                    col = e;
                    break;
                }
            }
        }
        u.set_column(c, &col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_like(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn reconstructs_tall_matrix() {
        let a = random_like(7, 4, 1);
        let svd = Svd::compute(&a).unwrap();
        assert!(svd.reconstruct().unwrap().max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn reconstructs_wide_matrix() {
        let a = random_like(3, 6, 2);
        let svd = Svd::compute(&a).unwrap();
        assert!(svd.reconstruct().unwrap().max_abs_diff(&a) < 1e-10);
        assert_eq!(svd.u.shape(), (3, 3));
        assert_eq!(svd.v.shape(), (6, 3));
    }

    #[test]
    fn factors_are_orthonormal() {
        let a = random_like(6, 4, 3);
        let svd = Svd::compute(&a).unwrap();
        let utu = svd.u.transpose().matmul(&svd.u).unwrap();
        let vtv = svd.v.transpose().matmul(&svd.v).unwrap();
        assert!(utu.max_abs_diff(&Matrix::identity(4)) < 1e-10);
        assert!(vtv.max_abs_diff(&Matrix::identity(4)) < 1e-10);
    }

    #[test]
    fn singular_values_sorted_and_match_known() {
        // diag(3, 1, 2) has singular values {3, 2, 1}.
        let a = Matrix::diag(&[3.0, 1.0, 2.0]);
        let svd = Svd::compute(&a).unwrap();
        let s = &svd.sigma;
        assert!((s[0] - 3.0).abs() < 1e-12);
        assert!((s[1] - 2.0).abs() < 1e-12);
        assert!((s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_of_deficient_matrix() {
        // Rank-1 outer product.
        let u = Vector::from(vec![1.0, 2.0, 3.0]);
        let v = Vector::from(vec![4.0, 5.0]);
        let a = Matrix::from_fn(3, 2, |r, c| u[r] * v[c]);
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        // The zero singular value still yields orthonormal U.
        let utu = svd.u.transpose().matmul(&svd.u).unwrap();
        assert!(utu.max_abs_diff(&Matrix::identity(2)) < 1e-10);
    }

    #[test]
    fn pseudo_inverse_properties() {
        let a = random_like(5, 3, 9);
        let pinv = Svd::compute(&a).unwrap().pseudo_inverse(1e-12).unwrap();
        // A A+ A = A
        let back = a.matmul(&pinv).unwrap().matmul(&a).unwrap();
        assert!(back.max_abs_diff(&a) < 1e-9);
        // A+ A A+ = A+
        let back2 = pinv.matmul(&a).unwrap().matmul(&pinv).unwrap();
        assert!(back2.max_abs_diff(&pinv) < 1e-9);
    }

    #[test]
    fn pseudo_inverse_of_rank_deficient() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap(); // rank 1
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        let pinv = svd.pseudo_inverse(1e-10).unwrap();
        let back = a.matmul(&pinv).unwrap().matmul(&a).unwrap();
        assert!(back.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn lowest_and_top_vectors_partition_u() {
        let a = random_like(6, 4, 17);
        let svd = Svd::compute(&a).unwrap();
        let low = svd.lowest_left_vectors(2);
        let top = svd.top_left_vectors(2);
        assert_eq!(low.shape(), (6, 2));
        assert_eq!(top.shape(), (6, 2));
        // They are mutually orthogonal blocks of U.
        let cross = top.transpose().matmul(&low).unwrap();
        assert!(cross.norm_max() < 1e-10);
        // Requesting more than available clamps.
        assert_eq!(svd.lowest_left_vectors(10).cols(), 4);
    }

    #[test]
    fn zero_matrix_rank_zero() {
        let svd = Svd::compute(&Matrix::zeros(4, 3)).unwrap();
        assert_eq!(svd.rank(1e-10), 0);
        assert!(svd.sigma.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn empty_matrix_errors() {
        assert!(Svd::compute(&Matrix::zeros(0, 3)).is_err());
    }
}
