//! Property-based tests for the numerical core.
//!
//! These check the algebraic invariants that every downstream crate relies
//! on: factorizations reconstruct their input, orthonormal factors stay
//! orthonormal, pseudo-inverses satisfy the Moore–Penrose identities, and
//! subspace operations respect the lattice laws.

use pmu_numerics::eigen::sym_eigen;
use pmu_numerics::lu::LuFactors;
use pmu_numerics::qr::QrFactors;
use pmu_numerics::{Complex64, Matrix, Subspace, Svd, Vector};
use proptest::prelude::*;

/// Strategy: a rows×cols matrix with entries in [-10, 10].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0_f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_rows(rows, cols, data).unwrap())
}

/// Strategy: a diagonally dominant n×n matrix (guaranteed invertible).
fn dominant_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0_f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_rows(n, n, data).unwrap();
        for i in 0..n {
            let row_sum: f64 = m.row(i).iter().map(|x| x.abs()).sum();
            m[(i, i)] += row_sum + 1.0;
        }
        m
    })
}

fn vector_strategy(n: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(-10.0_f64..10.0, n).prop_map(Vector::from)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_satisfies_system(a in dominant_strategy(6), b in vector_strategy(6)) {
        let lu = LuFactors::factorize(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        let err = (&back - &b).norm_inf();
        prop_assert!(err < 1e-8, "residual {err}");
    }

    #[test]
    fn lu_inverse_roundtrips(a in dominant_strategy(5)) {
        let inv = LuFactors::factorize(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        prop_assert!(prod.max_abs_diff(&Matrix::identity(5)) < 1e-8);
    }

    #[test]
    fn qr_reconstructs_and_q_is_orthonormal(a in matrix_strategy(7, 4)) {
        let qr = QrFactors::factorize(&a).unwrap();
        let back = qr.q.matmul(&qr.r).unwrap();
        prop_assert!(back.max_abs_diff(&a) < 1e-9);
        let qtq = qr.q.transpose().matmul(&qr.q).unwrap();
        prop_assert!(qtq.max_abs_diff(&Matrix::identity(4)) < 1e-9);
    }

    #[test]
    fn svd_reconstructs(a in matrix_strategy(6, 4)) {
        let svd = Svd::compute(&a).unwrap();
        prop_assert!(svd.reconstruct().unwrap().max_abs_diff(&a) < 1e-8);
        // Singular values are nonnegative and descending.
        for w in svd.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn svd_frobenius_identity(a in matrix_strategy(5, 5)) {
        // ||A||_F^2 == sum of squared singular values.
        let svd = Svd::compute(&a).unwrap();
        let fro2: f64 = a.norm_fro().powi(2);
        let sum2: f64 = svd.sigma.iter().map(|s| s * s).sum();
        prop_assert!((fro2 - sum2).abs() < 1e-7 * fro2.max(1.0));
    }

    #[test]
    fn pseudo_inverse_moore_penrose(a in matrix_strategy(6, 3)) {
        let pinv = Svd::compute(&a).unwrap().pseudo_inverse(1e-12).unwrap();
        let apa = a.matmul(&pinv).unwrap().matmul(&a).unwrap();
        prop_assert!(apa.max_abs_diff(&a) < 1e-6);
        let pap = pinv.matmul(&a).unwrap().matmul(&pinv).unwrap();
        prop_assert!(pap.max_abs_diff(&pinv) < 1e-6);
        // A A+ and A+ A are symmetric.
        let aap = a.matmul(&pinv).unwrap();
        prop_assert!(aap.max_abs_diff(&aap.transpose()) < 1e-6);
        let paa = pinv.matmul(&a).unwrap();
        prop_assert!(paa.max_abs_diff(&paa.transpose()) < 1e-6);
    }

    #[test]
    fn sym_eigen_reconstructs(a in matrix_strategy(5, 5)) {
        // Symmetrize, then verify Q Λ Q^T == A and trace preservation.
        let s = Matrix::from_fn(5, 5, |r, c| 0.5 * (a[(r, c)] + a[(c, r)]));
        let e = sym_eigen(&s).unwrap();
        let lam = Matrix::diag(&e.values);
        let back = e.vectors.matmul(&lam).unwrap().matmul(&e.vectors.transpose()).unwrap();
        prop_assert!(back.max_abs_diff(&s) < 1e-8);
        let trace: f64 = (0..5).map(|i| s[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
    }

    #[test]
    fn subspace_projection_is_contraction(span in matrix_strategy(6, 3), x in vector_strategy(6)) {
        let s = Subspace::from_span(&span).unwrap();
        let p = s.project(&x).unwrap();
        // ||Px|| <= ||x|| and residual via Pythagoras.
        prop_assert!(p.norm() <= x.norm() + 1e-9);
        let resid = s.residual_sqr(&x).unwrap();
        let pyth = x.norm_sqr() - p.norm_sqr();
        prop_assert!((resid - pyth).abs() < 1e-6 * x.norm_sqr().max(1.0));
        // Projection is idempotent.
        let pp = s.project(&p).unwrap();
        prop_assert!((&pp - &p).norm_inf() < 1e-8);
    }

    #[test]
    fn subspace_union_contains_members(a in matrix_strategy(5, 2), b in matrix_strategy(5, 2), x in vector_strategy(5)) {
        let sa = Subspace::from_span(&a).unwrap();
        let sb = Subspace::from_span(&b).unwrap();
        let u = Subspace::union(&[&sa, &sb]).unwrap();
        // Any projection onto a member lies in the union.
        let pa = sa.project(&x).unwrap();
        prop_assert!(u.residual_sqr(&pa).unwrap() < 1e-6 * pa.norm_sqr().max(1.0));
        let pb = sb.project(&x).unwrap();
        prop_assert!(u.residual_sqr(&pb).unwrap() < 1e-6 * pb.norm_sqr().max(1.0));
        // dim(U) <= dim(A) + dim(B)
        prop_assert!(u.dim() <= sa.dim() + sb.dim());
    }

    #[test]
    fn subspace_intersection_contained_in_members(a in matrix_strategy(5, 3), b in matrix_strategy(5, 3), x in vector_strategy(5)) {
        let sa = Subspace::from_span(&a).unwrap();
        let sb = Subspace::from_span(&b).unwrap();
        let i = Subspace::intersection(&[&sa, &sb]).unwrap();
        if i.dim() > 0 {
            let pi = i.project(&x).unwrap();
            prop_assert!(sa.residual_sqr(&pi).unwrap() < 1e-5 * pi.norm_sqr().max(1.0));
            prop_assert!(sb.residual_sqr(&pi).unwrap() < 1e-5 * pi.norm_sqr().max(1.0));
        }
        prop_assert!(i.dim() <= sa.dim().min(sb.dim()));
    }

    #[test]
    fn complex_field_axioms(re1 in -5.0_f64..5.0, im1 in -5.0_f64..5.0, re2 in -5.0_f64..5.0, im2 in -5.0_f64..5.0) {
        let z = Complex64::new(re1, im1);
        let w = Complex64::new(re2, im2);
        // Commutativity and |zw| = |z||w|.
        prop_assert!(((z * w) - (w * z)).abs() < 1e-12);
        prop_assert!(((z * w).abs() - z.abs() * w.abs()).abs() < 1e-9);
        // Conjugate distributes over multiplication.
        prop_assert!(((z * w).conj() - z.conj() * w.conj()).abs() < 1e-9);
        // Division inverts multiplication when w != 0.
        if w.abs() > 1e-6 {
            prop_assert!(((z * w) / w - z).abs() < 1e-9);
        }
    }

    #[test]
    fn blocked_matmul_matches_reference(
        (m, k, n) in (1usize..80, 1usize..140, 1usize..80),
        seed in any::<u64>(),
    ) {
        // Random rectangular shapes straddling the 64-wide tile edge. The
        // blocked kernel accumulates over k in the same ascending order as
        // the reference, so the comparison is exact, not within-epsilon.
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64*: cheap deterministic fill, entries in [-8, 8).
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64
                / (1u64 << 53) as f64 * 16.0 - 8.0
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        let blocked = a.matmul(&b).unwrap();
        let reference = a.matmul_reference(&b).unwrap();
        prop_assert_eq!(blocked.shape(), (m, n));
        prop_assert_eq!(blocked.max_abs_diff(&reference), 0.0);
    }

    #[test]
    fn tr_matmul_matches_explicit_transpose(
        (m, k, n) in (1usize..140, 1usize..60, 1usize..60),
        seed in any::<u64>(),
    ) {
        // The fused Aᵀ·B kernel accumulates over the shared row index in
        // the same ascending order as the blocked kernel's k-loop, so it
        // must be bit-identical to transposing first.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64
                / (1u64 << 53) as f64 * 16.0 - 8.0
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(m, n, |_, _| next());
        let fused = a.tr_matmul(&b).unwrap();
        let explicit = a.transpose().matmul(&b).unwrap();
        prop_assert_eq!(fused.shape(), (k, n));
        prop_assert_eq!(fused.max_abs_diff(&explicit), 0.0);
        // Shape mismatch on the contracted dimension is rejected.
        if m > 1 {
            let short = Matrix::zeros(m - 1, n);
            prop_assert!(a.tr_matmul(&short).is_err());
        }
    }

    #[test]
    fn matmul_is_associative(a in matrix_strategy(4, 3), b in matrix_strategy(3, 5), c in matrix_strategy(5, 2)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.max_abs_diff(&right) < 1e-8);
    }

    #[test]
    fn transpose_reverses_products(a in matrix_strategy(4, 3), b in matrix_strategy(3, 4)) {
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }
}
