//! Property-based tests for the sparse linear-algebra subsystem.
//!
//! The sparse CSR matrices and the pattern-reusing LU are the power-flow
//! fast path; these properties pin them to the dense implementations they
//! replace: triplet compression agrees with dense accumulation, matvec
//! agrees with `Matrix::matvec`, and the RCM-ordered sparse LU solves the
//! same systems as the pivoted dense LU.

use pmu_numerics::lu::LuFactors;
use pmu_numerics::sparse_lu::SymbolicLu;
use pmu_numerics::{CsrMatrix, Matrix, Vector};
use proptest::prelude::*;

/// Strategy: a list of random triplets inside an `n`×`n` shape, with
/// duplicate coordinates allowed (compression must sum them).
fn triplet_strategy(n: usize, max_nnz: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    proptest::collection::vec((0..n, 0..n, -10.0_f64..10.0), 0..max_nnz)
}

/// Strategy: a sparse diagonally dominant n×n system. Off-diagonal
/// entries come from random triplets; the diagonal is then lifted above
/// each row's absolute sum, so the matrix is invertible and the static
/// (no-pivot) sparse elimination is stable.
fn dominant_sparse_strategy(n: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix> {
    triplet_strategy(n, max_nnz).prop_map(move |mut triplets| {
        let mut row_abs = vec![1.0_f64; n];
        for &(r, _, v) in &triplets {
            row_abs[r] += v.abs();
        }
        for (i, &abs) in row_abs.iter().enumerate() {
            triplets.push((i, i, abs + 1.0));
        }
        CsrMatrix::from_triplets(n, n, triplets).unwrap()
    })
}

fn vector_strategy(n: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(-10.0_f64..10.0, n).prop_map(Vector::from)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn triplet_compression_matches_dense_accumulation(
        triplets in triplet_strategy(8, 40),
    ) {
        // Summing duplicates densely must give the same matrix as CSR
        // compression (which folds duplicates during the sorted pass).
        let mut dense = Matrix::zeros(8, 8);
        for &(r, c, v) in &triplets {
            dense[(r, c)] += v;
        }
        let sparse = CsrMatrix::from_triplets(8, 8, triplets).unwrap();
        prop_assert!(sparse.to_dense().max_abs_diff(&dense) < 1e-12);
    }

    #[test]
    fn sparse_matvec_matches_dense(
        triplets in triplet_strategy(10, 50),
        x in vector_strategy(10),
    ) {
        let sparse = CsrMatrix::from_triplets(10, 10, triplets).unwrap();
        let dense = sparse.to_dense();
        let ys = sparse.matvec(&x).unwrap();
        let yd = dense.matvec(&x).unwrap();
        prop_assert!((&ys - &yd).norm_inf() < 1e-10);
    }

    #[test]
    fn transpose_is_an_involution(triplets in triplet_strategy(9, 45)) {
        let a = CsrMatrix::from_triplets(9, 9, triplets).unwrap();
        let att = a.transpose().transpose();
        prop_assert_eq!(a.nnz(), att.nnz());
        prop_assert!(a.to_dense().max_abs_diff(&att.to_dense()) < 1e-15);
        // And the transpose really is the dense transpose.
        prop_assert!(
            a.transpose().to_dense().max_abs_diff(&a.to_dense().transpose()) < 1e-15
        );
    }

    #[test]
    fn sparse_lu_matches_dense_lu(
        a in dominant_sparse_strategy(12, 40),
        b in vector_strategy(12),
    ) {
        let sym = SymbolicLu::analyze(&a).unwrap();
        let lu = sym.factorize(&a).unwrap();
        let xs = lu.solve(&b).unwrap();
        let xd = LuFactors::factorize(&a.to_dense()).unwrap().solve(&b).unwrap();
        prop_assert!((&xs - &xd).norm_inf() < 1e-8);
        // The solution satisfies the system itself.
        let back = a.matvec(&xs).unwrap();
        prop_assert!((&back - &b).norm_inf() < 1e-8);
    }

    #[test]
    fn refactor_reproduces_fresh_factorization(
        a in dominant_sparse_strategy(10, 30),
        scale in 0.5_f64..2.0,
        b in vector_strategy(10),
    ) {
        // Refactoring on new values over the same pattern must match a
        // fresh factorization of the scaled matrix.
        let sym = SymbolicLu::analyze(&a).unwrap();
        let mut lu = sym.factorize(&a).unwrap();
        let mut scaled = a.clone();
        for v in scaled.values_mut() {
            *v *= scale;
        }
        lu.refactor(&scaled).unwrap();
        let fresh = sym.factorize(&scaled).unwrap();
        let xa = lu.solve(&b).unwrap();
        let xb = fresh.solve(&b).unwrap();
        prop_assert!((&xa - &xb).norm_inf() < 1e-12);
    }

    #[test]
    fn from_dense_roundtrips(m in proptest::collection::vec(-5.0_f64..5.0, 36)) {
        let dense = Matrix::from_rows(6, 6, m).unwrap();
        let sparse = CsrMatrix::from_dense(&dense, 0.0);
        prop_assert!(sparse.to_dense().max_abs_diff(&dense) < 1e-15);
    }
}
