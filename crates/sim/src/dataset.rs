//! Dataset containers: per-outage training/test windows plus the normal
//! operation windows, as described in Sec. V-A of the paper.

use crate::sample::PhasorWindow;
use pmu_grid::Network;

/// Training and test data for one valid single-line outage case.
#[derive(Debug, Clone)]
pub struct OutageCase {
    /// Index of the outaged branch in `network.branches()`.
    pub branch: usize,
    /// Internal bus indices of the branch endpoints `(i, j)`.
    pub endpoints: (usize, usize),
    /// Training window (used for subspace/capability learning).
    pub train: PhasorWindow,
    /// Test window (used for evaluation).
    pub test: PhasorWindow,
}

impl OutageCase {
    /// Content fingerprint of everything the case's learned subspace
    /// depends on: the branch identity and the raw bits of the *training*
    /// window. The test window is deliberately excluded — it never feeds
    /// subspace learning, so a bundle whose stored per-case bases are
    /// keyed on this digest can reuse them across test-side changes
    /// (longer evaluation windows, fault-schedule tweaks).
    pub fn train_fingerprint(&self) -> u64 {
        let mut h = pmu_numerics::hash::Fnv1a::new();
        h.write_usize(self.branch);
        h.write_usize(self.endpoints.0);
        h.write_usize(self.endpoints.1);
        self.train.hash_into(&mut h);
        h.finish()
    }
}

/// A complete synthetic dataset for one grid: normal-operation windows and
/// one [`OutageCase`] per valid line outage (the paper's `E` cases).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The grid the data was generated from.
    pub network: Network,
    /// Normal-operation training window (`X⁰`).
    pub normal_train: PhasorWindow,
    /// Normal-operation test window.
    pub normal_test: PhasorWindow,
    /// Valid single-line outage cases.
    pub cases: Vec<OutageCase>,
}

/// Test data for a simultaneous multi-line outage (the paper's "severe
/// outage" scenario: several lines down at once). These are *test-only*
/// cases — the detector trains on single-line windows and must generalize.
#[derive(Debug, Clone)]
pub struct MultiOutageCase {
    /// Indices of the outaged branches.
    pub branches: Vec<usize>,
    /// Internal bus indices touched by the outage (deduplicated).
    pub affected_nodes: Vec<usize>,
    /// Test window with all listed branches out of service.
    pub test: PhasorWindow,
}

impl Dataset {
    /// Number of valid outage cases `E`.
    pub fn n_cases(&self) -> usize {
        self.cases.len()
    }

    /// Find the case for a given branch index.
    pub fn case_for_branch(&self, branch: usize) -> Option<&OutageCase> {
        self.cases.iter().find(|c| c.branch == branch)
    }

    /// Number of monitored nodes.
    pub fn n_nodes(&self) -> usize {
        self.network.n_buses()
    }

    /// Content fingerprint of the entire dataset: the network's electrical
    /// fingerprint plus the raw `f64` bits of every normal and per-case
    /// training/test window.
    ///
    /// A [`ModelBundle`](https://docs.rs/pmu-model) persists this digest at
    /// training time; on reload it is compared against the freshly
    /// generated dataset, so a detector trained on different data (another
    /// seed, scale, or simulator revision) is retrained instead of
    /// silently reused.
    pub fn fingerprint(&self) -> u64 {
        let mut h = pmu_numerics::hash::Fnv1a::new();
        h.write_u64(self.network.fingerprint());
        self.normal_train.hash_into(&mut h);
        self.normal_test.hash_into(&mut h);
        h.write_usize(self.cases.len());
        for case in &self.cases {
            h.write_usize(case.branch);
            h.write_usize(case.endpoints.0);
            h.write_usize(case.endpoints.1);
            case.train.hash_into(&mut h);
            case.test.hash_into(&mut h);
        }
        h.finish()
    }
}
