//! Dataset containers: per-outage training/test windows plus the normal
//! operation windows, as described in Sec. V-A of the paper.

use crate::sample::PhasorWindow;
use pmu_grid::Network;

/// Training and test data for one valid single-line outage case.
#[derive(Debug, Clone)]
pub struct OutageCase {
    /// Index of the outaged branch in `network.branches()`.
    pub branch: usize,
    /// Internal bus indices of the branch endpoints `(i, j)`.
    pub endpoints: (usize, usize),
    /// Training window (used for subspace/capability learning).
    pub train: PhasorWindow,
    /// Test window (used for evaluation).
    pub test: PhasorWindow,
}

/// A complete synthetic dataset for one grid: normal-operation windows and
/// one [`OutageCase`] per valid line outage (the paper's `E` cases).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The grid the data was generated from.
    pub network: Network,
    /// Normal-operation training window (`X⁰`).
    pub normal_train: PhasorWindow,
    /// Normal-operation test window.
    pub normal_test: PhasorWindow,
    /// Valid single-line outage cases.
    pub cases: Vec<OutageCase>,
}

/// Test data for a simultaneous multi-line outage (the paper's "severe
/// outage" scenario: several lines down at once). These are *test-only*
/// cases — the detector trains on single-line windows and must generalize.
#[derive(Debug, Clone)]
pub struct MultiOutageCase {
    /// Indices of the outaged branches.
    pub branches: Vec<usize>,
    /// Internal bus indices touched by the outage (deduplicated).
    pub affected_nodes: Vec<usize>,
    /// Test window with all listed branches out of service.
    pub test: PhasorWindow,
}

impl Dataset {
    /// Number of valid outage cases `E`.
    pub fn n_cases(&self) -> usize {
        self.cases.len()
    }

    /// Find the case for a given branch index.
    pub fn case_for_branch(&self, branch: usize) -> Option<&OutageCase> {
        self.cases.iter().find(|c| c.branch == branch)
    }

    /// Number of monitored nodes.
    pub fn n_nodes(&self) -> usize {
        self.network.n_buses()
    }
}
