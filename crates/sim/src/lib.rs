//! # pmu-sim
//!
//! Synthetic PMU measurement generation — the workspace's substitute for
//! the paper's MATLAB/MATPOWER data pipeline (Sec. V-A) and for the PMU
//! reliability data of its ref. \[18\].
//!
//! The pipeline mirrors the paper exactly:
//!
//! 1. Per-bus load variations follow an **Ornstein–Uhlenbeck** process
//!    ([`ou`]), modelling stochastic demand over a 24-hour window.
//! 2. For every load realization, the **AC power flow** is solved
//!    (`pmu-flow`) and the resulting voltage phasors are the PMU
//!    measurements; **Gaussian noise** ([`noise`]) is added so the data
//!    resemble real synchrophasors.
//! 3. Outage windows are produced by removing each line and re-solving;
//!    non-converging or islanding removals are excluded, giving the
//!    paper's `E ≤ |ℰ|` valid cases ([`scenario`]).
//! 4. Missing data is an explicit per-sample **mask** ([`sample`]),
//!    produced by the paper's three patterns of Fig. 6 plus the
//!    reliability-weighted generalization of Eq. (13)–(15)
//!    ([`missing`], [`reliability`]).
//! 5. Beyond benign masking, [`faults`] injects *hostile* telemetry —
//!    PDC blackouts, NaN/corrupt bursts, stale and truncated frames —
//!    with per-sample ground-truth tags for chaos testing the serving
//!    path.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dataset;
pub mod faults;
pub mod missing;
pub mod noise;
pub mod ou;
pub mod pmunet;
pub mod reliability;
pub mod sample;
pub mod scenario;

pub use dataset::{Dataset, OutageCase};
pub use faults::{FaultKind, FaultSchedule, FaultTag, FaultWindow, InjectedSample};
pub use missing::MissingPattern;
pub use sample::{Mask, MeasurementKind, PhasorSample, PhasorWindow};
pub use scenario::{generate_dataset, GenConfig};
