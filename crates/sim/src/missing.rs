//! Missing-data pattern generators — the three rows of the paper's Fig. 6
//! plus arbitrary node sets and the Bernoulli (reliability-driven) pattern
//! of Sec. V-C3.

use crate::sample::Mask;
use pmu_grid::cluster::Clustering;
use rand::rngs::StdRng;
use rand::Rng;

/// A missing-data pattern to impose on test samples.
#[derive(Debug, Clone, PartialEq)]
pub enum MissingPattern {
    /// Complete data (no missing entries).
    None,
    /// An explicit set of missing nodes.
    Nodes(Vec<usize>),
    /// `k` nodes missing uniformly at random, never drawn from `exclude`
    /// (used by Fig. 9: random missing *away from* the outage location).
    RandomK {
        /// How many nodes go missing.
        k: usize,
        /// Nodes protected from going missing.
        exclude: Vec<usize>,
    },
    /// Every node independently missing with probability `p` — the
    /// PMU-network reliability pattern of Eq. (13)–(15).
    Bernoulli {
        /// Per-node missing probability (1 − r_PMU·r_link).
        p: f64,
    },
}

impl MissingPattern {
    /// Draw a concrete mask over `n` nodes.
    pub fn draw(&self, n: usize, rng: &mut StdRng) -> Mask {
        match self {
            MissingPattern::None => Mask::all_present(n),
            MissingPattern::Nodes(nodes) => Mask::with_missing(n, nodes),
            MissingPattern::RandomK { k, exclude } => {
                let pool: Vec<usize> =
                    (0..n).filter(|i| !exclude.contains(i)).collect();
                let k = (*k).min(pool.len());
                // Partial Fisher–Yates over the candidate pool.
                let mut pool = pool;
                for i in 0..k {
                    let j = i + rng.gen_range(0..pool.len() - i);
                    pool.swap(i, j);
                }
                Mask::with_missing(n, &pool[..k])
            }
            MissingPattern::Bernoulli { p } => {
                let nodes: Vec<usize> =
                    (0..n).filter(|_| rng.gen::<f64>() < *p).collect();
                Mask::with_missing(n, &nodes)
            }
        }
    }
}

/// The Fig. 6 top-row pattern: the PMUs at both endpoints of the outaged
/// line are dark ("missing data originated precisely at the outage
/// location").
pub fn outage_endpoints_mask(n: usize, endpoints: (usize, usize)) -> Mask {
    Mask::with_missing(n, &[endpoints.0, endpoints.1])
}

/// The endpoints *plus their 1-hop neighbourhood* — the harder variant
/// discussed in Sec. III-B ("neither … the devices at the failure location
/// nor … its immediate neighborhood").
pub fn outage_neighborhood_mask(
    net: &pmu_grid::Network,
    endpoints: (usize, usize),
) -> Mask {
    let mut nodes = vec![endpoints.0, endpoints.1];
    nodes.extend(net.neighbors(endpoints.0));
    nodes.extend(net.neighbors(endpoints.1));
    nodes.sort_unstable();
    nodes.dedup();
    Mask::with_missing(net.n_buses(), &nodes)
}

/// A whole PDC cluster goes dark (Fig. 2's grey cluster).
pub fn cluster_mask(n: usize, clustering: &Clustering, cluster: usize) -> Mask {
    Mask::with_missing(n, clustering.members(cluster))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu_grid::cases::ieee14;
    use pmu_grid::cluster::partition_clusters;
    use rand::SeedableRng;

    #[test]
    fn none_and_nodes() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = MissingPattern::None.draw(5, &mut rng);
        assert_eq!(m.n_missing(), 0);
        let m = MissingPattern::Nodes(vec![1, 4]).draw(5, &mut rng);
        assert_eq!(m.missing_nodes(), vec![1, 4]);
    }

    #[test]
    fn random_k_respects_exclusions() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let m = MissingPattern::RandomK { k: 3, exclude: vec![0, 1] }.draw(8, &mut rng);
            assert_eq!(m.n_missing(), 3);
            assert!(!m.is_missing(0) && !m.is_missing(1));
        }
        // k larger than the pool clamps.
        let m = MissingPattern::RandomK { k: 10, exclude: vec![0] }.draw(4, &mut rng);
        assert_eq!(m.n_missing(), 3);
    }

    #[test]
    fn random_k_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut hits = [0usize; 6];
        const ROUNDS: usize = 6000;
        for _ in 0..ROUNDS {
            let m = MissingPattern::RandomK { k: 2, exclude: vec![] }.draw(6, &mut rng);
            for i in m.missing_nodes() {
                hits[i] += 1;
            }
        }
        // Each node expected in 1/3 of draws.
        for (i, &h) in hits.iter().enumerate() {
            let frac = h as f64 / ROUNDS as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.05, "node {i}: {frac}");
        }
    }

    #[test]
    fn bernoulli_rate_matches() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0usize;
        const ROUNDS: usize = 2000;
        for _ in 0..ROUNDS {
            total += MissingPattern::Bernoulli { p: 0.2 }.draw(10, &mut rng).n_missing();
        }
        let rate = total as f64 / (ROUNDS * 10) as f64;
        assert!((rate - 0.2).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn endpoint_masks() {
        let m = outage_endpoints_mask(14, (3, 7));
        assert_eq!(m.missing_nodes(), vec![3, 7]);
        let net = ieee14().unwrap();
        let m = outage_neighborhood_mask(&net, (0, 1));
        // Endpoints plus neighbours of bus 0 (1,4) wait—internal indices:
        // bus0 neighbors {1,4}, bus1 neighbors {0,2,3,4}.
        assert!(m.is_missing(0) && m.is_missing(1));
        assert!(m.is_missing(4));
        assert!(m.n_missing() >= 4);
        assert!(m.n_missing() < 14, "far nodes stay observed");
    }

    #[test]
    fn cluster_mask_matches_partition() {
        let net = ieee14().unwrap();
        let cl = partition_clusters(&net, 3).unwrap();
        let m = cluster_mask(14, &cl, 1);
        assert_eq!(m.missing_nodes(), cl.members(1).to_vec());
    }
}
