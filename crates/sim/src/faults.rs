//! Deterministic fault injection over a phasor-sample stream.
//!
//! [`missing`](crate::missing) models the *benign* unreliability the paper
//! analyzes (masked entries the detector knows about). This module models
//! the *hostile* end of the telemetry path: a PDC going dark, a flaky link
//! dropping measurements, firmware emitting NaN or wildly scaled values,
//! buffers replaying duplicate or stale frames, and messages truncated in
//! flight. Each fault is applied inside an explicit time window and every
//! transformed sample carries [`FaultTag`]s, so chaos tests know exactly
//! which ground-truth corruption a downstream layer was exposed to.
//!
//! Schedules are deterministic: the same [`FaultSchedule`] applied to the
//! same clean stream yields bit-identical output (randomized faults draw
//! from a seeded [`StdRng`]).

use crate::sample::{Mask, PhasorSample};
use pmu_numerics::Complex64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One class of telemetry fault to impose inside a window.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// A PDC blackout: the listed nodes (all nodes when empty) are masked
    /// out, exactly as a downstream concentrator outage would present.
    Blackout {
        /// Nodes that go dark; an empty list darkens the whole sample.
        nodes: Vec<usize>,
    },
    /// Each node's measurement is independently dropped (masked) with
    /// probability `p` — a lossy link rather than a dead one.
    Drop {
        /// Per-node drop probability in `[0, 1]`.
        p: f64,
    },
    /// The listed nodes report NaN phasors *while still marked observed* —
    /// a violation of the mask contract that ingestion must catch.
    NanBurst {
        /// Nodes whose phasors become NaN.
        nodes: Vec<usize>,
    },
    /// The listed nodes report finite but wildly scaled phasors (a stuck
    /// CT/VT gain or unit-conversion bug). Passes validity checks; the
    /// detector sees it as signal.
    Corrupt {
        /// Nodes whose phasors are scaled.
        nodes: Vec<usize>,
        /// Multiplicative corruption factor.
        scale: f64,
    },
    /// The previous tick's (already faulted) sample is delivered again in
    /// place of this tick's — a replaying PDC buffer.
    Duplicate,
    /// The sample from `lag` ticks ago is delivered instead of the current
    /// one — stale, out-of-order data (clamped at the stream start).
    Stale {
        /// How many ticks old the delivered sample is.
        lag: usize,
    },
    /// The phasor vector is truncated to its first `keep` entries — a
    /// message cut short in flight. Ingestion must reject the length.
    Truncate {
        /// How many leading entries survive.
        keep: usize,
    },
}

/// A half-open tick range `[start, end)` during which a fault is active.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindow {
    /// First tick (inclusive) the fault applies to.
    pub start: usize,
    /// First tick (exclusive) after the fault lifts.
    pub end: usize,
    /// The fault applied inside the window.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Does the window cover tick `t`?
    pub fn covers(&self, t: usize) -> bool {
        self.start <= t && t < self.end
    }
}

/// Ground-truth record of what was done to one delivered sample.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultTag {
    /// Nodes masked by a [`FaultKind::Blackout`].
    Blackout {
        /// Nodes darkened (resolved: never empty).
        nodes: Vec<usize>,
    },
    /// Nodes masked by a [`FaultKind::Drop`] draw.
    Dropped {
        /// Nodes the Bernoulli draw removed (may be empty).
        nodes: Vec<usize>,
    },
    /// Nodes whose phasors were overwritten with NaN.
    NanInjected {
        /// Affected nodes.
        nodes: Vec<usize>,
    },
    /// Nodes whose phasors were scaled by `scale`.
    Corrupted {
        /// Affected nodes.
        nodes: Vec<usize>,
        /// The corruption factor used.
        scale: f64,
    },
    /// The sample is a replay of the previous delivered tick.
    Duplicated,
    /// The sample is `lag` ticks stale.
    Stale {
        /// Effective staleness after clamping at the stream start.
        lag: usize,
    },
    /// The phasor vector was cut to `kept` entries.
    Truncated {
        /// Surviving vector length.
        kept: usize,
    },
}

impl FaultTag {
    /// Stable machine-readable tag name; doubles as the flight-recorder
    /// label suffix (`fault.<label>`) in incident dumps.
    pub fn label(&self) -> &'static str {
        match self {
            FaultTag::Blackout { .. } => "blackout",
            FaultTag::Dropped { .. } => "dropped",
            FaultTag::NanInjected { .. } => "nan_injected",
            FaultTag::Corrupted { .. } => "corrupted",
            FaultTag::Duplicated => "duplicated",
            FaultTag::Stale { .. } => "stale",
            FaultTag::Truncated { .. } => "truncated",
        }
    }

    /// A scalar magnitude for compact records: affected-node count,
    /// staleness lag, kept length — whatever the variant's one number is.
    pub fn magnitude(&self) -> u64 {
        match self {
            FaultTag::Blackout { nodes }
            | FaultTag::Dropped { nodes }
            | FaultTag::NanInjected { nodes }
            | FaultTag::Corrupted { nodes, .. } => nodes.len() as u64,
            FaultTag::Duplicated => 1,
            FaultTag::Stale { lag } => *lag as u64,
            FaultTag::Truncated { kept } => *kept as u64,
        }
    }
}

/// One delivered sample plus the ground truth of how it was produced.
#[derive(Debug, Clone)]
pub struct InjectedSample {
    /// The sample as the control center receives it.
    pub sample: PhasorSample,
    /// Index into the clean stream the payload originated from (differs
    /// from the delivery tick for duplicate/stale faults).
    pub source_t: usize,
    /// Every fault applied to this sample, in application order.
    pub tags: Vec<FaultTag>,
}

impl InjectedSample {
    /// `true` when no fault touched this sample.
    pub fn is_clean(&self) -> bool {
        self.tags.is_empty()
    }

    /// Note every fault tag on this sample into the global flight
    /// recorder as `fault.<label>` records (`a` = delivery tick, `b` =
    /// the tag's magnitude), so an incident dump taken downstream
    /// carries the fault window that caused it. Fault injection is a
    /// cold path, so labels are interned per call rather than per call
    /// site.
    pub fn record_faults(&self, tick: usize) {
        use pmu_obs::recorder::{global, label_id, RecKind};
        for tag in &self.tags {
            let label = match tag.label() {
                "blackout" => "fault.blackout",
                "dropped" => "fault.dropped",
                "nan_injected" => "fault.nan_injected",
                "corrupted" => "fault.corrupted",
                "duplicated" => "fault.duplicated",
                "stale" => "fault.stale",
                _ => "fault.truncated",
            };
            global().record(RecKind::Fault, label_id(label), tick as u64, tag.magnitude());
        }
    }
}

/// A deterministic, composable schedule of fault windows.
///
/// Windows are applied in insertion order at each tick, so overlapping
/// windows compose (e.g. a drop window inside a longer corrupt window).
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    windows: Vec<FaultWindow>,
    seed: u64,
}

impl FaultSchedule {
    /// An empty schedule whose randomized faults draw from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultSchedule { windows: Vec::new(), seed }
    }

    /// Add a fault active on ticks `[start, end)`.
    pub fn window(mut self, start: usize, end: usize, kind: FaultKind) -> Self {
        self.windows.push(FaultWindow { start, end, kind });
        self
    }

    /// The configured windows, in application order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Run the schedule over a clean stream, producing the stream as
    /// delivered plus per-sample ground truth.
    pub fn apply(&self, clean: &[PhasorSample]) -> Vec<InjectedSample> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out: Vec<InjectedSample> = Vec::with_capacity(clean.len());
        for (t, orig) in clean.iter().enumerate() {
            let mut sample = orig.clone();
            let mut source_t = t;
            let mut tags = Vec::new();
            for w in &self.windows {
                if !w.covers(t) {
                    continue;
                }
                match &w.kind {
                    FaultKind::Blackout { nodes } => {
                        let nodes = if nodes.is_empty() {
                            (0..sample.n_nodes()).collect()
                        } else {
                            nodes.clone()
                        };
                        sample = sample.masked(&Mask::with_missing(sample.n_nodes(), &nodes));
                        tags.push(FaultTag::Blackout { nodes });
                    }
                    FaultKind::Drop { p } => {
                        let nodes: Vec<usize> = (0..sample.n_nodes())
                            .filter(|_| rng.gen::<f64>() < *p)
                            .collect();
                        sample = sample.masked(&Mask::with_missing(sample.n_nodes(), &nodes));
                        tags.push(FaultTag::Dropped { nodes });
                    }
                    FaultKind::NanBurst { nodes } => {
                        sample = overwrite(&sample, nodes, |_| {
                            Complex64::new(f64::NAN, f64::NAN)
                        });
                        tags.push(FaultTag::NanInjected { nodes: nodes.clone() });
                    }
                    FaultKind::Corrupt { nodes, scale } => {
                        // Scale the magnitude *and* rotate the angle by
                        // (scale - 1) radians (wrapped). A magnitude-only
                        // corruption is invisible to an angle-based
                        // detector; a real gain/conversion bug shifts
                        // phase too.
                        let s = *scale;
                        sample = overwrite(&sample, nodes, |z| {
                            Complex64::from_polar(z.abs() * s, z.arg() + (s - 1.0).sin())
                        });
                        tags.push(FaultTag::Corrupted { nodes: nodes.clone(), scale: s });
                    }
                    FaultKind::Duplicate => {
                        // Only tag when a duplication actually happened;
                        // at t = 0 there is no previous sample to replay.
                        if let Some(prev) = out.last() {
                            sample = prev.sample.clone();
                            source_t = prev.source_t;
                            tags.push(FaultTag::Duplicated);
                        }
                    }
                    FaultKind::Stale { lag } => {
                        let eff = (*lag).min(t);
                        sample = clean[t - eff].clone();
                        source_t = t - eff;
                        tags.push(FaultTag::Stale { lag: eff });
                    }
                    FaultKind::Truncate { keep } => {
                        let keep = (*keep).min(sample.n_nodes());
                        let phasors: Vec<Complex64> =
                            (0..keep).map(|i| sample.phasor_unchecked(i)).collect();
                        let missing: Vec<usize> = (0..keep)
                            .filter(|&i| sample.mask().is_missing(i))
                            .collect();
                        sample = PhasorSample::with_mask(
                            phasors,
                            Mask::with_missing(keep, &missing),
                        );
                        tags.push(FaultTag::Truncated { kept: keep });
                    }
                }
            }
            out.push(InjectedSample { sample, source_t, tags });
        }
        out
    }
}

/// Rebuild a sample with the phasors of `nodes` replaced via `f`, keeping
/// the mask unchanged (so injected garbage stays *observed*).
fn overwrite(
    sample: &PhasorSample,
    nodes: &[usize],
    f: impl Fn(Complex64) -> Complex64,
) -> PhasorSample {
    let n = sample.n_nodes();
    let phasors: Vec<Complex64> = (0..n)
        .map(|i| {
            let z = sample.phasor_unchecked(i);
            if nodes.contains(&i) { f(z) } else { z }
        })
        .collect();
    let missing = sample.mask().missing_nodes();
    PhasorSample::with_mask(phasors, Mask::with_missing(n, &missing))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_stream(n_nodes: usize, len: usize) -> Vec<PhasorSample> {
        (0..len)
            .map(|t| {
                PhasorSample::complete(
                    (0..n_nodes)
                        .map(|i| Complex64::from_polar(1.0 + 0.01 * t as f64, 0.001 * i as f64))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn empty_schedule_is_identity() {
        let clean = clean_stream(4, 5);
        let out = FaultSchedule::new(0).apply(&clean);
        assert_eq!(out.len(), 5);
        for (t, s) in out.iter().enumerate() {
            assert!(s.is_clean());
            assert_eq!(s.source_t, t);
            assert_eq!(s.sample.mask().n_missing(), 0);
        }
    }

    #[test]
    fn blackout_masks_window_only() {
        let clean = clean_stream(4, 6);
        let out = FaultSchedule::new(0)
            .window(2, 4, FaultKind::Blackout { nodes: vec![] })
            .apply(&clean);
        for (t, s) in out.iter().enumerate() {
            if (2..4).contains(&t) {
                assert_eq!(s.sample.mask().n_missing(), 4, "tick {t} dark");
                assert!(matches!(s.tags[0], FaultTag::Blackout { .. }));
            } else {
                assert!(s.is_clean(), "tick {t} untouched");
            }
        }
        // Partial blackout darkens only the listed nodes.
        let out = FaultSchedule::new(0)
            .window(0, 1, FaultKind::Blackout { nodes: vec![1, 3] })
            .apply(&clean);
        assert_eq!(out[0].sample.mask().missing_nodes(), vec![1, 3]);
    }

    #[test]
    fn drop_is_seeded_and_deterministic() {
        let clean = clean_stream(10, 8);
        let sched = FaultSchedule::new(42).window(0, 8, FaultKind::Drop { p: 0.5 });
        let a = sched.apply(&clean);
        let b = sched.apply(&clean);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sample.mask().missing_nodes(), y.sample.mask().missing_nodes());
        }
        let total: usize = a.iter().map(|s| s.sample.mask().n_missing()).sum();
        assert!(total > 0, "p=0.5 over 80 draws drops something");
        // Extremes behave.
        let none = FaultSchedule::new(1).window(0, 8, FaultKind::Drop { p: 0.0 }).apply(&clean);
        assert!(none.iter().all(|s| s.sample.mask().n_missing() == 0));
        let all = FaultSchedule::new(1).window(0, 8, FaultKind::Drop { p: 1.0 }).apply(&clean);
        assert!(all.iter().all(|s| s.sample.mask().n_missing() == 10));
    }

    #[test]
    fn nan_burst_violates_mask_contract() {
        let clean = clean_stream(4, 3);
        let out = FaultSchedule::new(0)
            .window(1, 2, FaultKind::NanBurst { nodes: vec![0, 2] })
            .apply(&clean);
        let s = &out[1].sample;
        // Still *observed* — that's the contract violation under test.
        assert!(!s.mask().is_missing(0));
        assert!(!s.phasor_unchecked(0).is_finite());
        assert!(s.phasor_unchecked(1).is_finite());
        assert!(!s.phasor_unchecked(2).is_finite());
        assert!(out[0].is_clean() && out[2].is_clean());
    }

    #[test]
    fn corrupt_scales_but_stays_finite() {
        let clean = clean_stream(3, 2);
        let out = FaultSchedule::new(0)
            .window(0, 2, FaultKind::Corrupt { nodes: vec![1], scale: 100.0 })
            .apply(&clean);
        for (t, s) in out.iter().enumerate() {
            let z = s.sample.phasor_unchecked(1);
            assert!(z.is_finite());
            let orig = clean[t].phasor_unchecked(1);
            assert!((z.abs() - 100.0 * orig.abs()).abs() < 1e-9);
            // The corruption must move the *angle* too — that is what an
            // angle-based detector actually consumes.
            assert!(
                (z.arg() - orig.arg()).abs() > 0.1,
                "corruption left the phase angle untouched: {} vs {}",
                z.arg(),
                orig.arg()
            );
            let untouched = s.sample.phasor_unchecked(0);
            assert!((untouched - clean[t].phasor_unchecked(0)).abs() < 1e-15);
        }
        // scale = 1 is the identity corruption: neither magnitude nor
        // angle moves (the angle shift is pinned to (s-1), not absolute).
        let out = FaultSchedule::new(0)
            .window(0, 1, FaultKind::Corrupt { nodes: vec![1], scale: 1.0 })
            .apply(&clean);
        let (z, orig) = (out[0].sample.phasor_unchecked(1), clean[0].phasor_unchecked(1));
        assert!((z - orig).abs() < 1e-12);
    }

    #[test]
    fn duplicate_and_stale_shift_source() {
        let clean = clean_stream(2, 6);
        let out = FaultSchedule::new(0)
            .window(3, 4, FaultKind::Duplicate)
            .window(5, 6, FaultKind::Stale { lag: 4 })
            .apply(&clean);
        assert_eq!(out[3].source_t, 2, "duplicate replays the previous tick");
        assert!(
            (out[3].sample.phasor_unchecked(0) - clean[2].phasor_unchecked(0)).abs() < 1e-15
        );
        assert_eq!(out[5].source_t, 1, "stale delivers t - lag");
        // Stale at the stream start clamps instead of underflowing.
        let out = FaultSchedule::new(0)
            .window(0, 1, FaultKind::Stale { lag: 10 })
            .apply(&clean);
        assert_eq!(out[0].source_t, 0);
        assert!(matches!(out[0].tags[0], FaultTag::Stale { lag: 0 }));
    }

    #[test]
    fn duplicate_at_stream_start_is_not_tagged() {
        // With no prior sample to replay, the sample passes through
        // unchanged — so no `Duplicated` ground-truth tag may be emitted.
        let clean = clean_stream(2, 3);
        let out = FaultSchedule::new(0)
            .window(0, 2, FaultKind::Duplicate)
            .apply(&clean);
        assert!(out[0].is_clean(), "t=0 has nothing to duplicate: {:?}", out[0].tags);
        assert_eq!(out[0].source_t, 0);
        assert!(
            (out[0].sample.phasor_unchecked(0) - clean[0].phasor_unchecked(0)).abs() < 1e-15
        );
        // t=1 genuinely replays t=0 and is tagged.
        assert!(matches!(out[1].tags[0], FaultTag::Duplicated));
        assert_eq!(out[1].source_t, 0);
    }

    #[test]
    fn truncate_shortens_vector() {
        let clean = clean_stream(5, 2);
        let out = FaultSchedule::new(0)
            .window(1, 2, FaultKind::Truncate { keep: 2 })
            .apply(&clean);
        assert_eq!(out[0].sample.n_nodes(), 5);
        assert_eq!(out[1].sample.n_nodes(), 2);
        assert!(matches!(out[1].tags[0], FaultTag::Truncated { kept: 2 }));
    }

    #[test]
    fn overlapping_windows_compose_in_order() {
        let clean = clean_stream(6, 4);
        let out = FaultSchedule::new(0)
            .window(0, 4, FaultKind::Corrupt { nodes: vec![0], scale: 10.0 })
            .window(2, 4, FaultKind::Blackout { nodes: vec![5] })
            .apply(&clean);
        assert_eq!(out[1].tags.len(), 1);
        assert_eq!(out[3].tags.len(), 2);
        assert!(out[3].sample.mask().is_missing(5));
        assert!((out[3].sample.phasor_unchecked(0).abs()
            - 10.0 * clean[3].phasor_unchecked(0).abs())
        .abs()
            < 1e-9);
    }
}
