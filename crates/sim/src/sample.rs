//! Measurement samples, windows, and missing-data masks.
//!
//! The paper's data matrix `X` has sensors as rows and time as columns;
//! an online application consumes one column `X_{:,t}` at a time, possibly
//! with missing entries. [`PhasorWindow`] is the matrix, [`PhasorSample`]
//! the column, and [`Mask`] the explicit missing-entry record (never NaN).

use pmu_numerics::{Complex64, Matrix};

/// Which scalar is extracted from a complex voltage phasor.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasurementKind {
    /// Voltage magnitude (p.u.).
    Magnitude,
    /// Voltage angle (radians).
    Angle,
}

/// A per-node missing-data mask: `true` means the node's measurement is
/// missing from the sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mask {
    missing: Vec<bool>,
}

impl Mask {
    /// A mask with every measurement present.
    pub fn all_present(n: usize) -> Self {
        Mask { missing: vec![false; n] }
    }

    /// A mask with the given nodes missing.
    pub fn with_missing(n: usize, nodes: &[usize]) -> Self {
        let mut missing = vec![false; n];
        for &i in nodes {
            if i < n {
                missing[i] = true;
            }
        }
        Mask { missing }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.missing.len()
    }

    /// `true` when covering zero nodes.
    pub fn is_empty(&self) -> bool {
        self.missing.is_empty()
    }

    /// Is node `i`'s measurement missing?
    pub fn is_missing(&self, i: usize) -> bool {
        self.missing.get(i).copied().unwrap_or(true)
    }

    /// Indices with measurements present, ascending.
    pub fn observed(&self) -> Vec<usize> {
        (0..self.missing.len()).filter(|&i| !self.missing[i]).collect()
    }

    /// Indices with measurements missing, ascending.
    pub fn missing_nodes(&self) -> Vec<usize> {
        (0..self.missing.len()).filter(|&i| self.missing[i]).collect()
    }

    /// Number of missing measurements.
    pub fn n_missing(&self) -> usize {
        self.missing.iter().filter(|&&m| m).count()
    }

    /// `true` when any of `nodes` is missing.
    pub fn any_missing_of(&self, nodes: &[usize]) -> bool {
        nodes.iter().any(|&i| self.is_missing(i))
    }

    /// Content fingerprint of the mask (FNV-1a over length and the
    /// missing bits). Two masks fingerprint equal iff they mark the same
    /// node set missing over the same node count; used to key the
    /// per-mask projector caches on the detection hot path.
    pub fn fingerprint(&self) -> u64 {
        let mut h = pmu_numerics::hash::Fnv1a::new();
        h.write_usize(self.missing.len());
        // Pack the bits 64 per word so long masks hash in a few writes.
        let mut word = 0u64;
        for (i, &m) in self.missing.iter().enumerate() {
            if m {
                word |= 1 << (i % 64);
            }
            if i % 64 == 63 {
                h.write_u64(word);
                word = 0;
            }
        }
        if !self.missing.len().is_multiple_of(64) {
            h.write_u64(word);
        }
        h.finish()
    }

    /// Union of two masks (missing in either).
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn union(&self, other: &Mask) -> Mask {
        assert_eq!(self.len(), other.len(), "Mask union: length mismatch");
        Mask {
            missing: self
                .missing
                .iter()
                .zip(&other.missing)
                .map(|(a, b)| *a || *b)
                .collect(),
        }
    }
}

/// One time instant of PMU data: the complex phasor per node plus the mask
/// saying which entries actually arrived at the control center.
#[derive(Debug, Clone)]
pub struct PhasorSample {
    phasors: Vec<Complex64>,
    mask: Mask,
}

impl PhasorSample {
    /// A complete sample (everything observed).
    pub fn complete(phasors: Vec<Complex64>) -> Self {
        let n = phasors.len();
        PhasorSample { phasors, mask: Mask::all_present(n) }
    }

    /// A sample with an explicit mask.
    ///
    /// # Panics
    /// Panics when the mask length differs from the phasor count.
    pub fn with_mask(phasors: Vec<Complex64>, mask: Mask) -> Self {
        assert_eq!(phasors.len(), mask.len(), "PhasorSample: mask length mismatch");
        PhasorSample { phasors, mask }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.phasors.len()
    }

    /// The missing-data mask.
    pub fn mask(&self) -> &Mask {
        &self.mask
    }

    /// The scalar measurement of `node`, or `None` when missing.
    pub fn value(&self, node: usize, kind: MeasurementKind) -> Option<f64> {
        if self.mask.is_missing(node) {
            return None;
        }
        let z = self.phasors[node];
        Some(match kind {
            MeasurementKind::Magnitude => z.abs(),
            MeasurementKind::Angle => z.arg(),
        })
    }

    /// The raw phasor of `node`, or `None` when missing.
    pub fn phasor(&self, node: usize) -> Option<Complex64> {
        if self.mask.is_missing(node) {
            None
        } else {
            Some(self.phasors[node])
        }
    }

    /// The underlying phasor regardless of the mask (ground truth; intended
    /// for evaluation code, not detectors).
    pub fn phasor_unchecked(&self, node: usize) -> Complex64 {
        self.phasors[node]
    }

    /// Return a copy with additional nodes masked out.
    pub fn masked(&self, extra: &Mask) -> PhasorSample {
        PhasorSample {
            phasors: self.phasors.clone(),
            mask: self.mask.union(extra),
        }
    }

    /// Extract observed values for the given nodes, failing with `None` if
    /// any of them is missing — this is the detection-group access path of
    /// Eq. (9) ("the only requirement ... is that there are no missing data
    /// in the measurements taken by nodes in D").
    pub fn values_for(&self, nodes: &[usize], kind: MeasurementKind) -> Option<Vec<f64>> {
        nodes.iter().map(|&n| self.value(n, kind)).collect()
    }
}

/// A window of complete PMU data: N nodes × T time steps (the training
/// matrices `X⁰` and `X^{\e_ij}` of the paper).
#[derive(Debug, Clone)]
pub struct PhasorWindow {
    /// N×T magnitudes.
    mag: Matrix,
    /// N×T angles (radians).
    ang: Matrix,
}

impl PhasorWindow {
    /// Build a window from per-instant phasor vectors (each of length N).
    ///
    /// # Panics
    /// Panics for an empty column list or inconsistent lengths.
    pub fn from_columns(columns: &[Vec<Complex64>]) -> Self {
        assert!(!columns.is_empty(), "PhasorWindow: no columns");
        let n = columns[0].len();
        assert!(columns.iter().all(|c| c.len() == n), "PhasorWindow: ragged columns");
        let t = columns.len();
        let mag = Matrix::from_fn(n, t, |r, c| columns[c][r].abs());
        let ang = Matrix::from_fn(n, t, |r, c| columns[c][r].arg());
        PhasorWindow { mag, ang }
    }

    /// An empty window over `n` nodes (zero time steps).
    pub fn empty(n: usize) -> Self {
        PhasorWindow { mag: Matrix::zeros(n, 0), ang: Matrix::zeros(n, 0) }
    }

    /// Number of nodes N.
    pub fn n_nodes(&self) -> usize {
        self.mag.rows()
    }

    /// Number of time steps T.
    pub fn len(&self) -> usize {
        self.mag.cols()
    }

    /// `true` when the window has no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow the N×T matrix of the chosen quantity.
    pub fn matrix(&self, kind: MeasurementKind) -> &Matrix {
        match kind {
            MeasurementKind::Magnitude => &self.mag,
            MeasurementKind::Angle => &self.ang,
        }
    }

    /// The (complete) sample at time `t`.
    ///
    /// # Panics
    /// Panics when `t` is out of range.
    pub fn sample(&self, t: usize) -> PhasorSample {
        assert!(t < self.len(), "PhasorWindow: sample {t} out of range");
        let phasors: Vec<Complex64> = (0..self.n_nodes())
            .map(|n| Complex64::from_polar(self.mag[(n, t)], self.ang[(n, t)]))
            .collect();
        PhasorSample::complete(phasors)
    }

    /// The 2-D phasor-plane point `(magnitude, angle)` of `node` at `t` —
    /// the `x_{i,t} ∈ R²` of the paper's ellipse Eq. (4).
    pub fn point2(&self, node: usize, t: usize) -> [f64; 2] {
        [self.mag[(node, t)], self.ang[(node, t)]]
    }

    /// Concatenate two windows in time.
    ///
    /// # Panics
    /// Panics when node counts differ.
    pub fn concat(&self, other: &PhasorWindow) -> PhasorWindow {
        PhasorWindow {
            mag: self.mag.hcat(&other.mag).expect("node count mismatch"),
            ang: self.ang.hcat(&other.ang).expect("node count mismatch"),
        }
    }

    /// Absorb the window's shape and raw element bits into a running
    /// content hash (used by [`Dataset::fingerprint`](crate::Dataset::fingerprint)).
    pub fn hash_into(&self, h: &mut pmu_numerics::hash::Fnv1a) {
        h.write_usize(self.n_nodes());
        h.write_usize(self.len());
        h.write_f64_slice(self.mag.as_slice());
        h.write_f64_slice(self.ang.as_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phasor(m: f64, a: f64) -> Complex64 {
        Complex64::from_polar(m, a)
    }

    #[test]
    fn mask_basics() {
        let m = Mask::with_missing(5, &[1, 3]);
        assert_eq!(m.len(), 5);
        assert!(m.is_missing(1) && m.is_missing(3));
        assert!(!m.is_missing(0));
        assert_eq!(m.observed(), vec![0, 2, 4]);
        assert_eq!(m.missing_nodes(), vec![1, 3]);
        assert_eq!(m.n_missing(), 2);
        assert!(m.any_missing_of(&[0, 3]));
        assert!(!m.any_missing_of(&[0, 2]));
        // Out-of-range nodes are ignored at construction, missing at query.
        let m2 = Mask::with_missing(3, &[9]);
        assert_eq!(m2.n_missing(), 0);
        assert!(m2.is_missing(9));
    }

    #[test]
    fn mask_union() {
        let a = Mask::with_missing(4, &[0]);
        let b = Mask::with_missing(4, &[2]);
        let u = a.union(&b);
        assert_eq!(u.missing_nodes(), vec![0, 2]);
    }

    #[test]
    fn mask_fingerprint_tracks_content() {
        let a = Mask::with_missing(70, &[0, 65]);
        let b = Mask::with_missing(70, &[0, 65]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different missing set, node count, or bit position all change it.
        assert_ne!(a.fingerprint(), Mask::with_missing(70, &[0, 64]).fingerprint());
        assert_ne!(a.fingerprint(), Mask::with_missing(71, &[0, 65]).fingerprint());
        assert_ne!(
            Mask::all_present(14).fingerprint(),
            Mask::all_present(15).fingerprint()
        );
    }

    #[test]
    fn sample_value_extraction() {
        let s = PhasorSample::complete(vec![phasor(1.02, 0.1), phasor(0.98, -0.2)]);
        assert!((s.value(0, MeasurementKind::Magnitude).unwrap() - 1.02).abs() < 1e-12);
        assert!((s.value(1, MeasurementKind::Angle).unwrap() + 0.2).abs() < 1e-12);
        assert!(s.phasor(0).is_some());

        let masked = s.masked(&Mask::with_missing(2, &[1]));
        assert!(masked.value(1, MeasurementKind::Magnitude).is_none());
        assert!(masked.phasor(1).is_none());
        // Ground-truth access bypasses the mask.
        assert!((masked.phasor_unchecked(1).abs() - 0.98).abs() < 1e-12);
        // Original untouched.
        assert!(s.value(1, MeasurementKind::Magnitude).is_some());
    }

    #[test]
    fn values_for_requires_full_group() {
        let s = PhasorSample::complete(vec![phasor(1.0, 0.0); 4])
            .masked(&Mask::with_missing(4, &[2]));
        assert!(s.values_for(&[0, 1], MeasurementKind::Magnitude).is_some());
        assert!(s.values_for(&[1, 2], MeasurementKind::Magnitude).is_none());
        assert_eq!(
            s.values_for(&[0, 3], MeasurementKind::Magnitude).unwrap(),
            vec![1.0, 1.0]
        );
    }

    #[test]
    fn window_roundtrip() {
        let cols = vec![
            vec![phasor(1.0, 0.0), phasor(1.1, -0.1)],
            vec![phasor(0.9, 0.2), phasor(1.0, 0.3)],
            vec![phasor(1.05, -0.3), phasor(0.95, 0.15)],
        ];
        let w = PhasorWindow::from_columns(&cols);
        assert_eq!(w.n_nodes(), 2);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        let s1 = w.sample(1);
        assert!((s1.phasor(0).unwrap() - cols[1][0]).abs() < 1e-12);
        assert!((s1.phasor(1).unwrap() - cols[1][1]).abs() < 1e-12);
        let p = w.point2(1, 2);
        assert!((p[0] - 0.95).abs() < 1e-12);
        assert!((p[1] - 0.15).abs() < 1e-12);
        // Matrix views have the right orientation.
        assert_eq!(w.matrix(MeasurementKind::Magnitude).shape(), (2, 3));
        assert!((w.matrix(MeasurementKind::Angle)[(0, 2)] + 0.3).abs() < 1e-12);
    }

    #[test]
    fn window_concat() {
        let a = PhasorWindow::from_columns(&[vec![phasor(1.0, 0.0)]]);
        let b = PhasorWindow::from_columns(&[vec![phasor(2.0, 0.5)], vec![phasor(3.0, 1.0)]]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert!((c.sample(2).phasor(0).unwrap().abs() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn window_sample_bounds_checked() {
        let w = PhasorWindow::from_columns(&[vec![phasor(1.0, 0.0)]]);
        let _ = w.sample(5);
    }
}
