//! The PMU-network reliability model of Sec. V-C3 (Eq. 13–15).
//!
//! Every PMU (and its PMU→PDC link) works independently with probability
//! `q = r_PMU · r_link`; the system-wide reliability of an `L`-device
//! network is `r = q^L` (Eq. 14). The *effective* false-alarm rate at
//! reliability `r` is the probability-weighted average of the per-pattern
//! rates over all `2^L` missing-data patterns (Eq. 13) with pattern
//! weights from Eq. (15).
//!
//! Exact enumeration is exponential in `L`; we enumerate when `L ≤
//! EXACT_LIMIT` and otherwise estimate by Monte-Carlo sampling of patterns
//! (an unbiased estimator of the same weighted sum — DESIGN.md
//! substitution #4). The equivalence is unit-tested on small networks.

use crate::sample::Mask;
use rand::rngs::StdRng;
use rand::Rng;

/// Largest `L` for which exact enumeration of `2^L` patterns is attempted.
pub const EXACT_LIMIT: usize = 16;

/// Eq. (14): system-wide reliability of `l` independent PMU+link pairs.
pub fn system_reliability(r_pmu: f64, r_link: f64, l: usize) -> f64 {
    (r_pmu * r_link).powi(l as i32)
}

/// Invert Eq. (14): the per-device working probability that yields
/// system-wide reliability `r` over `l` devices.
pub fn per_device_working_prob(r: f64, l: usize) -> f64 {
    if l == 0 {
        return 1.0;
    }
    r.clamp(0.0, 1.0).powf(1.0 / l as f64)
}

/// Eq. (15): probability of a specific missing pattern when each device
/// works independently with probability `q`.
pub fn pattern_probability(mask: &Mask, q: f64) -> f64 {
    let mut p = 1.0;
    for i in 0..mask.len() {
        p *= if mask.is_missing(i) { 1.0 - q } else { q };
    }
    p
}

/// Eq. (13), exact: weighted average of `metric(mask)` over all `2^l`
/// patterns.
///
/// # Panics
/// Panics when `l > EXACT_LIMIT` (use [`effective_metric_mc`] instead).
pub fn effective_metric_exact(l: usize, q: f64, mut metric: impl FnMut(&Mask) -> f64) -> f64 {
    assert!(l <= EXACT_LIMIT, "exact enumeration limited to L <= {EXACT_LIMIT}");
    let mut acc = 0.0;
    for bits in 0u64..(1u64 << l) {
        let nodes: Vec<usize> = (0..l).filter(|&i| bits >> i & 1 == 1).collect();
        let mask = Mask::with_missing(l, &nodes);
        let w = pattern_probability(&mask, q);
        if w > 0.0 {
            acc += w * metric(&mask);
        }
    }
    acc
}

/// Eq. (13), Monte-Carlo: sample `samples` patterns i.i.d. with per-device
/// working probability `q` and average `metric`. Unbiased for the exact
/// weighted sum.
pub fn effective_metric_mc(
    l: usize,
    q: f64,
    samples: usize,
    rng: &mut StdRng,
    mut metric: impl FnMut(&Mask) -> f64,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let mut acc = 0.0;
    for _ in 0..samples {
        let nodes: Vec<usize> = (0..l).filter(|_| rng.gen::<f64>() >= q).collect();
        let mask = Mask::with_missing(l, &nodes);
        acc += metric(&mask);
    }
    acc / samples as f64
}

/// A sweep grid of system-wide reliability levels covering the reported
/// PMU-device range (ref. \[18\] of the paper): from "every device flaky" to
/// "essentially perfect".
pub fn reliability_sweep() -> Vec<f64> {
    vec![0.70, 0.80, 0.90, 0.95, 0.98, 0.99, 0.999]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn eq14_roundtrip() {
        let r = system_reliability(0.999, 0.998, 30);
        let q = per_device_working_prob(r, 30);
        assert!((q - 0.999 * 0.998).abs() < 1e-12);
        assert_eq!(per_device_working_prob(0.5, 0), 1.0);
    }

    #[test]
    fn pattern_probabilities_sum_to_one() {
        let l = 6;
        let q = 0.9;
        let total = effective_metric_exact(l, q, |_| 1.0);
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_matches_closed_form_for_counting_metric() {
        // metric = number of missing nodes → expectation = l (1-q).
        let l = 8;
        let q = 0.85;
        let e = effective_metric_exact(l, q, |m| m.n_missing() as f64);
        assert!((e - l as f64 * (1.0 - q)).abs() < 1e-10);
    }

    #[test]
    fn mc_agrees_with_exact() {
        let l = 10;
        let q = 0.92;
        // An arbitrary nonlinear metric of the pattern.
        let metric = |m: &Mask| (m.n_missing() as f64).powi(2) + f64::from(m.is_missing(3));
        let exact = effective_metric_exact(l, q, metric);
        let mut rng = StdRng::seed_from_u64(99);
        let mc = effective_metric_mc(l, q, 40_000, &mut rng, metric);
        assert!((mc - exact).abs() < 0.05 * exact.max(0.1), "mc {mc} vs exact {exact}");
    }

    #[test]
    fn all_working_pattern_dominates_at_high_reliability() {
        let mask_empty = Mask::all_present(5);
        assert!((pattern_probability(&mask_empty, 0.999) - 0.999_f64.powi(5)).abs() < 1e-12);
        let mask_full = Mask::with_missing(5, &[0, 1, 2, 3, 4]);
        assert!(pattern_probability(&mask_full, 0.999) < 1e-12);
    }

    #[test]
    fn sweep_is_sorted_and_in_range() {
        let s = reliability_sweep();
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&r| r > 0.0 && r < 1.0));
    }

    #[test]
    #[should_panic(expected = "exact enumeration")]
    fn exact_guard_panics_for_large_l() {
        effective_metric_exact(40, 0.9, |_| 0.0);
    }
}
