//! Device-level PMU network model — the hierarchy of the paper's Fig. 1.
//!
//! A monitored grid has one PMU per bus; PMUs in the same geographic
//! region report to a shared Phasor Data Concentrator (PDC), and PDCs
//! feed the Control Center. Measurements go missing when the PMU itself
//! fails, its PMU→PDC link drops, or — the spatially correlated case the
//! paper highlights — the *PDC* fails and its entire cluster goes dark at
//! once.
//!
//! This refines the i.i.d. Bernoulli pattern of Eq. (13)–(15) with the
//! correlated-loss structure that motivates the detection-group design in
//! the first place; the plain Bernoulli model is recovered by setting the
//! PDC reliability to 1.

use crate::sample::Mask;
use pmu_grid::cluster::Clustering;
use rand::rngs::StdRng;
use rand::Rng;

/// Reliability parameters of one PMU network (per reporting interval).
#[derive(Debug, Clone, Copy)]
pub struct PmuNetConfig {
    /// Probability a PMU device delivers its measurement.
    pub r_pmu: f64,
    /// Probability the PMU→PDC link delivers.
    pub r_link: f64,
    /// Probability a PDC (and its PDC→CC link) delivers its cluster.
    pub r_pdc: f64,
}

impl Default for PmuNetConfig {
    /// Values in the range reported for commercial devices (paper
    /// ref. \[18\]): devices and links in the high-nineties per interval.
    fn default() -> Self {
        PmuNetConfig { r_pmu: 0.999, r_link: 0.998, r_pdc: 0.9995 }
    }
}

impl PmuNetConfig {
    /// Validate all probabilities are in `[0, 1]`.
    pub fn is_valid(&self) -> bool {
        [self.r_pmu, self.r_link, self.r_pdc]
            .iter()
            .all(|p| (0.0..=1.0).contains(p))
    }
}

/// A PMU network instance: one PMU per bus, one PDC per cluster.
#[derive(Debug, Clone)]
pub struct PmuNetwork {
    clustering: Clustering,
    config: PmuNetConfig,
    n_nodes: usize,
}

impl PmuNetwork {
    /// Build a network over an existing PDC clustering.
    pub fn new(n_nodes: usize, clustering: Clustering, config: PmuNetConfig) -> Self {
        assert!(config.is_valid(), "PmuNetConfig probabilities must be in [0, 1]");
        PmuNetwork { clustering, config, n_nodes }
    }

    /// Number of monitored nodes (= PMUs).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of PDCs.
    pub fn n_pdcs(&self) -> usize {
        self.clustering.n_clusters()
    }

    /// The configured reliability parameters.
    pub fn config(&self) -> &PmuNetConfig {
        &self.config
    }

    /// Probability that a given *single* measurement arrives at the
    /// control center: PMU, its link, and its PDC must all work.
    pub fn delivery_probability(&self) -> f64 {
        self.config.r_pmu * self.config.r_link * self.config.r_pdc
    }

    /// Eq. (14) generalized to the hierarchy: probability that *every*
    /// measurement arrives.
    pub fn system_reliability(&self) -> f64 {
        let per_pmu = self.config.r_pmu * self.config.r_link;
        per_pmu.powi(self.n_nodes as i32)
            * self.config.r_pdc.powi(self.n_pdcs() as i32)
    }

    /// Draw one reporting interval's missing-data mask: each PDC fails
    /// independently (taking its whole cluster with it), then each
    /// surviving PMU+link pair fails independently.
    pub fn draw_mask(&self, rng: &mut StdRng) -> Mask {
        let mut missing: Vec<usize> = Vec::new();
        let mut pdc_dark = vec![false; self.n_pdcs()];
        for (c, dark) in pdc_dark.iter_mut().enumerate() {
            if rng.gen::<f64>() >= self.config.r_pdc {
                *dark = true;
                missing.extend_from_slice(self.clustering.members(c));
            }
        }
        let p_pmu = self.config.r_pmu * self.config.r_link;
        for node in 0..self.n_nodes {
            if pdc_dark[self.clustering.cluster_of(node)] {
                continue; // already dark
            }
            if rng.gen::<f64>() >= p_pmu {
                missing.push(node);
            }
        }
        Mask::with_missing(self.n_nodes, &missing)
    }

    /// Expected number of missing measurements per interval.
    pub fn expected_missing(&self) -> f64 {
        self.n_nodes as f64 * (1.0 - self.delivery_probability())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu_grid::cases::ieee30;
    use pmu_grid::cluster::partition_clusters;
    use rand::SeedableRng;

    fn network(cfg: PmuNetConfig) -> PmuNetwork {
        let net = ieee30().unwrap();
        let cl = partition_clusters(&net, 3).unwrap();
        PmuNetwork::new(30, cl, cfg)
    }

    #[test]
    fn perfect_network_never_drops() {
        let pn = network(PmuNetConfig { r_pmu: 1.0, r_link: 1.0, r_pdc: 1.0 });
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(pn.draw_mask(&mut rng).n_missing(), 0);
        }
        assert_eq!(pn.system_reliability(), 1.0);
        assert_eq!(pn.expected_missing(), 0.0);
    }

    #[test]
    fn pdc_failure_takes_out_whole_cluster() {
        // PDCs always fail, PMUs never: every interval the mask is exactly
        // a union of clusters (here: everything).
        let pn = network(PmuNetConfig { r_pmu: 1.0, r_link: 1.0, r_pdc: 0.0 });
        let mut rng = StdRng::seed_from_u64(2);
        let m = pn.draw_mask(&mut rng);
        assert_eq!(m.n_missing(), 30);
    }

    #[test]
    fn per_pmu_rate_matches_configuration() {
        let pn = network(PmuNetConfig { r_pmu: 0.9, r_link: 1.0, r_pdc: 1.0 });
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0usize;
        const ROUNDS: usize = 4000;
        for _ in 0..ROUNDS {
            total += pn.draw_mask(&mut rng).n_missing();
        }
        let rate = total as f64 / (ROUNDS * 30) as f64;
        assert!((rate - 0.1).abs() < 0.01, "per-PMU missing rate {rate}");
    }

    #[test]
    fn pdc_losses_are_spatially_correlated() {
        // With only PDC failures possible, missing nodes always form whole
        // clusters — never partial ones.
        let net = ieee30().unwrap();
        let cl = partition_clusters(&net, 3).unwrap();
        let pn = PmuNetwork::new(30, cl.clone(), PmuNetConfig {
            r_pmu: 1.0,
            r_link: 1.0,
            r_pdc: 0.5,
        });
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let m = pn.draw_mask(&mut rng);
            for c in 0..cl.n_clusters() {
                let members = cl.members(c);
                let dark = members.iter().filter(|&&b| m.is_missing(b)).count();
                assert!(
                    dark == 0 || dark == members.len(),
                    "cluster {c} partially dark: {dark}/{}",
                    members.len()
                );
            }
        }
    }

    #[test]
    fn system_reliability_composes() {
        let pn = network(PmuNetConfig { r_pmu: 0.999, r_link: 0.998, r_pdc: 0.9995 });
        let expected = (0.999_f64 * 0.998).powi(30) * 0.9995_f64.powi(3);
        assert!((pn.system_reliability() - expected).abs() < 1e-12);
        assert!((pn.delivery_probability() - 0.999 * 0.998 * 0.9995).abs() < 1e-12);
        assert!(pn.expected_missing() > 0.0);
        assert_eq!(pn.n_nodes(), 30);
        assert_eq!(pn.n_pdcs(), 3);
    }

    #[test]
    #[should_panic(expected = "probabilities must be in")]
    fn invalid_config_panics() {
        network(PmuNetConfig { r_pmu: 1.5, r_link: 1.0, r_pdc: 1.0 });
    }
}
