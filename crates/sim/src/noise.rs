//! Gaussian measurement noise.
//!
//! The paper adds "Gaussian noise ... to the voltage phasors \[16\] so that
//! the obtained data can represent real PMU measurements". Standard normal
//! variates are produced with the Box–Muller transform over `rand`
//! uniforms (we deliberately avoid an extra `rand_distr` dependency; see
//! DESIGN.md).

use pmu_numerics::Complex64;
use rand::Rng;

/// One standard-normal draw via Box–Muller.
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to keep ln(u1) finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Noise levels applied to polar phasor components.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseParams {
    /// Standard deviation of magnitude noise (p.u.).
    pub sigma_mag: f64,
    /// Standard deviation of angle noise (radians).
    pub sigma_ang: f64,
}

impl Default for NoiseParams {
    /// ≈0.1% magnitude / 0.1 crad angle noise: comfortably inside the IEEE
    /// C37.118 1% total-vector-error envelope.
    fn default() -> Self {
        NoiseParams { sigma_mag: 1e-3, sigma_ang: 1e-3 }
    }
}

/// Apply polar Gaussian noise to a phasor.
pub fn noisy_phasor<R: Rng>(z: Complex64, params: &NoiseParams, rng: &mut R) -> Complex64 {
    let mag = (z.abs() + params.sigma_mag * gaussian(rng)).max(0.0);
    let ang = z.arg() + params.sigma_ang * gaussian(rng);
    Complex64::from_polar(mag, ang)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        const N: usize = 50_000;
        let draws: Vec<f64> = (0..N).map(|_| gaussian(&mut rng)).collect();
        let mean: f64 = draws.iter().sum::<f64>() / N as f64;
        let var: f64 = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / N as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
        // Roughly symmetric tails.
        let pos = draws.iter().filter(|&&x| x > 0.0).count() as f64 / N as f64;
        assert!((pos - 0.5).abs() < 0.02);
        // All draws finite.
        assert!(draws.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn noisy_phasor_stays_close() {
        let mut rng = StdRng::seed_from_u64(5);
        let z = Complex64::from_polar(1.02, -0.3);
        let params = NoiseParams::default();
        for _ in 0..1000 {
            let w = noisy_phasor(z, &params, &mut rng);
            assert!((w.abs() - 1.02).abs() < 6.0 * params.sigma_mag);
            assert!((w.arg() + 0.3).abs() < 6.0 * params.sigma_ang);
        }
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = StdRng::seed_from_u64(5);
        let z = Complex64::from_polar(1.0, 0.5);
        let params = NoiseParams { sigma_mag: 0.0, sigma_ang: 0.0 };
        let w = noisy_phasor(z, &params, &mut rng);
        assert!((w - z).abs() < 1e-12);
    }

    #[test]
    fn magnitude_never_negative() {
        let mut rng = StdRng::seed_from_u64(5);
        let z = Complex64::from_polar(1e-6, 0.0);
        let params = NoiseParams { sigma_mag: 1.0, sigma_ang: 0.0 };
        for _ in 0..100 {
            assert!(noisy_phasor(z, &params, &mut rng).abs() >= 0.0);
        }
    }
}
