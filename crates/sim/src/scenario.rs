//! Scenario generation: turning a grid model into PMU measurement windows.
//!
//! Mirrors Sec. V-A of the paper: per-bus Ornstein–Uhlenbeck load
//! variations over a daily window, proportional generator redispatch, an
//! AC power-flow solve per time step, and Gaussian phasor noise. Outage
//! windows repeat the procedure with one line removed; removals that
//! island the grid or whose power flow diverges are excluded (the paper's
//! `E ≤ |ℰ|` valid cases).

// Indexed loops are the clearest expression of the dense numerical
// kernels in this module.
#![allow(clippy::needless_range_loop)]

use crate::dataset::{Dataset, OutageCase};
use crate::noise::{noisy_phasor, NoiseParams};
use crate::ou::{LoadProcess, OuParams};
use crate::sample::PhasorWindow;
use pmu_flow::{solve_ac, AcConfig, AcSolver, FlowError};
use pmu_grid::Network;
use pmu_numerics::{par, Complex64};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the dataset generator.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Training samples per case.
    pub train_len: usize,
    /// Test samples per case.
    pub test_len: usize,
    /// Load-process parameters.
    pub ou: OuParams,
    /// Measurement-noise parameters.
    pub noise: NoiseParams,
    /// AC solver settings.
    pub ac: AcConfig,
    /// Master seed; every case derives its own stream from it.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            train_len: 40,
            test_len: 25,
            ou: OuParams::default(),
            noise: NoiseParams::default(),
            // Consecutive window steps differ only by an OU load
            // increment, so warm-starting each Newton solve from the
            // previous tick's converged state roughly halves the
            // iteration count across a dataset.
            ac: AcConfig { warm_start: true, ..AcConfig::default() },
            seed: 0xC0FFEE,
        }
    }
}

impl GenConfig {
    /// Paper-scale test windows (100 test samples per outage case, as in
    /// Sec. V-B). Slower; the default is a lighter load for CI.
    pub fn paper_scale(mut self) -> Self {
        self.test_len = 100;
        self
    }
}

/// Error type for generation.
#[derive(Debug, Clone, PartialEq)]
pub enum GenError {
    /// The base (no-outage) power flow itself failed — the case is unusable.
    BaseCaseFailed(String),
    /// Too many sample solves failed for a window.
    TooManyFailures {
        /// Number of failed solves.
        failures: usize,
        /// Number requested.
        requested: usize,
    },
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::BaseCaseFailed(m) => write!(f, "base power flow failed: {m}"),
            GenError::TooManyFailures { failures, requested } => {
                write!(f, "{failures} of {requested} sample solves failed")
            }
        }
    }
}

impl std::error::Error for GenError {}

/// Simulate a window of `len` noisy phasor samples on `net`.
///
/// Each step draws OU load multipliers, redispatches the non-slack
/// generators proportionally to total demand, solves the AC power flow,
/// and perturbs the resulting phasors with measurement noise. Steps whose
/// solve diverges are retried with a fresh load draw; the window fails if
/// more than half of the attempts diverge.
///
/// # Errors
/// Returns [`GenError::TooManyFailures`] when the divergence budget is
/// exhausted.
pub fn simulate_window(
    net: &Network,
    len: usize,
    ou: &OuParams,
    noise: &NoiseParams,
    ac: &AcConfig,
    rng: &mut StdRng,
) -> Result<PhasorWindow, GenError> {
    let n = net.n_buses();
    let base_load = net.total_load().max(1e-9);
    let base_pd: Vec<f64> = net.buses().iter().map(|b| b.pd).collect();
    let base_qd: Vec<f64> = net.buses().iter().map(|b| b.qd).collect();
    let base_pg: Vec<f64> = net.gens().iter().map(|g| g.pg).collect();
    let slack = net.slack();

    let mut loads = LoadProcess::new(n, *ou);
    let mut columns: Vec<Vec<Complex64>> = Vec::with_capacity(len);
    let mut failures = 0usize;
    let budget = len.max(4); // allow up to ~50% divergent draws

    // Every step shares this window's topology, so one AcSolver amortizes
    // the Y-bus, Jacobian pattern, and symbolic LU across all `len`
    // solves. Q-limit enforcement can flip bus types between solves
    // (pattern changes), so it falls back to per-step `solve_ac`.
    let mut solver = (!ac.enforce_q_limits).then(|| AcSolver::new(net, ac));
    // Loads/dispatch are overwritten in full each step, so the work
    // network is cloned once, not per step.
    let mut case = net.clone();

    while columns.len() < len {
        let mult = loads.step(rng);
        let mut total = 0.0;
        for b in 0..n {
            let pd = base_pd[b] * mult[b];
            let qd = base_qd[b] * mult[b];
            total += pd;
            case.set_load(b, pd, qd).expect("bus index in range");
        }
        let scale = total / base_load;
        for (gi, &pg0) in base_pg.iter().enumerate() {
            if case.gens()[gi].bus != slack {
                case.set_gen_p(gi, pg0 * scale).expect("gen index in range");
            }
        }
        let solved = match solver.as_mut() {
            Some(s) => s.solve(&case),
            None => solve_ac(&case, ac),
        };
        match solved {
            Ok(sol) => {
                let col: Vec<Complex64> =
                    sol.phasors().into_iter().map(|z| noisy_phasor(z, noise, rng)).collect();
                columns.push(col);
            }
            Err(FlowError::Diverged { .. }) | Err(FlowError::SingularJacobian(_)) => {
                failures += 1;
                if failures > budget {
                    return Err(GenError::TooManyFailures { failures, requested: len });
                }
            }
            Err(other) => {
                return Err(GenError::BaseCaseFailed(other.to_string()));
            }
        }
    }
    Ok(PhasorWindow::from_columns(&columns))
}

/// Generate the full dataset for a grid: normal windows plus one
/// [`OutageCase`] per valid single-line outage.
///
/// # Errors
/// Returns [`GenError::BaseCaseFailed`] when the intact grid's power flow
/// cannot be solved at nominal load (nothing can be generated then).
/// Individual outage cases that island the grid or fail to converge are
/// silently excluded, as in the paper.
pub fn generate_dataset(net: &Network, cfg: &GenConfig) -> Result<Dataset, GenError> {
    let mut trace_span = pmu_obs::span("sim.generate_dataset")
        .with("system", net.name.as_str())
        .with("train_len", cfg.train_len)
        .with("test_len", cfg.test_len);

    // Base-case sanity check.
    solve_ac(net, &cfg.ac).map_err(|e| GenError::BaseCaseFailed(e.to_string()))?;

    let total = cfg.train_len + cfg.test_len;

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let normal = simulate_window(net, total, &cfg.ou, &cfg.noise, &cfg.ac, &mut rng)?;
    let (normal_train, normal_test) = split_window(&normal, cfg.train_len);

    // One unit of work per outaged line, fanned out over the worker pool.
    // Each case derives an independent RNG stream from (seed, branch), so
    // the result is bit-identical for any thread count, and reproducible
    // regardless of which other cases succeed.
    let branches = net.valid_outage_branches();
    let cases: Vec<OutageCase> = par::par_map(&branches, |&branch| {
        let out_net = net.with_branch_outage(branch).ok()?;
        let mut case_rng = StdRng::seed_from_u64(
            cfg.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(branch as u64 + 1)),
        );
        // Excluded on error: "cases that do not converge … are not
        // considered".
        let window =
            simulate_window(&out_net, total, &cfg.ou, &cfg.noise, &cfg.ac, &mut case_rng).ok()?;
        let (train, test) = split_window(&window, cfg.train_len);
        let br = &net.branches()[branch];
        Some(OutageCase { branch, endpoints: (br.from, br.to), train, test })
    })
    .into_iter()
    .flatten()
    .collect();

    trace_span.record("branches", branches.len());
    trace_span.record("cases", cases.len());
    Ok(Dataset { network: net.clone(), normal_train, normal_test, cases })
}

/// Generate test windows for simultaneous double-line outages.
///
/// Pairs are drawn deterministically from the valid single-outage
/// branches: first pairs *sharing a node* (the paper's "severe outage
/// around node i"), then disjoint pairs, until `max_pairs` pairs whose
/// combined removal keeps the grid connected and whose power flow
/// converges have been produced.
///
/// # Errors
/// Returns [`GenError::BaseCaseFailed`] when the intact grid cannot be
/// solved; pairs that island or diverge are skipped.
pub fn generate_double_outages(
    net: &Network,
    cfg: &GenConfig,
    max_pairs: usize,
) -> Result<Vec<crate::dataset::MultiOutageCase>, GenError> {
    solve_ac(net, &cfg.ac).map_err(|e| GenError::BaseCaseFailed(e.to_string()))?;
    let valid = net.valid_outage_branches();

    // Candidate pairs: shared-node pairs first, then the rest.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let endpoint = |i: usize| (net.branches()[i].from, net.branches()[i].to);
    for (ai, &a) in valid.iter().enumerate() {
        for &b in &valid[ai + 1..] {
            let (af, at) = endpoint(a);
            let (bf, bt) = endpoint(b);
            if af == bf || af == bt || at == bf || at == bt {
                pairs.push((a, b));
            }
        }
    }
    for (ai, &a) in valid.iter().enumerate() {
        for &b in &valid[ai + 1..] {
            if !pairs.contains(&(a, b)) {
                pairs.push((a, b));
            }
        }
    }

    // Fan candidate pairs out in batches. The serial loop stopped at the
    // first `max_pairs` successes in pair order; batching preserves that
    // exactly (successes are collected in pair order, and generation is
    // per-pair seeded) while bounding wasted work to one batch.
    let mut out = Vec::new();
    let batch = (4 * par::num_threads()).max(max_pairs.min(8));
    for chunk in pairs.chunks(batch) {
        if out.len() >= max_pairs {
            break;
        }
        let produced = par::par_map(chunk, |&(a, b)| {
            let double = net.with_branch_outages(&[a, b]).ok()?;
            let mut rng = StdRng::seed_from_u64(
                cfg.seed ^ (a as u64).wrapping_mul(0x517C_C1B7_2722_0A95) ^ (b as u64) << 17,
            );
            let test =
                simulate_window(&double, cfg.test_len, &cfg.ou, &cfg.noise, &cfg.ac, &mut rng)
                    .ok()?;
            let (af, at) = endpoint(a);
            let (bf, bt) = endpoint(b);
            let mut nodes = vec![af, at, bf, bt];
            nodes.sort_unstable();
            nodes.dedup();
            Some(crate::dataset::MultiOutageCase {
                branches: vec![a, b],
                affected_nodes: nodes,
                test,
            })
        });
        for case in produced.into_iter().flatten() {
            if out.len() >= max_pairs {
                break;
            }
            out.push(case);
        }
    }
    Ok(out)
}

/// Split a window into `(train_len samples, rest)` by even interleaving:
/// test samples are drawn at evenly spaced positions across the whole
/// window, mirroring the random train/test split of the paper's ref. \[14\]
/// (a temporal head/tail split would leak the load process's drift into
/// the test distribution).
fn split_window(w: &PhasorWindow, train_len: usize) -> (PhasorWindow, PhasorWindow) {
    let n = w.n_nodes();
    let t = w.len();
    let train_len = train_len.min(t);
    let test_len = t - train_len;
    // Mark test positions: evenly spaced across [0, t).
    let mut is_test = vec![false; t];
    for j in 0..test_len {
        let pos = ((2 * j + 1) * t) / (2 * test_len);
        is_test[pos.min(t - 1)] = true;
    }
    // Collisions (possible when test_len ~ t) are resolved by filling the
    // first unmarked slots.
    let mut marked = is_test.iter().filter(|&&b| b).count();
    let mut i = 0;
    while marked < test_len && i < t {
        if !is_test[i] {
            is_test[i] = true;
            marked += 1;
        }
        i += 1;
    }
    let mut train_cols = Vec::with_capacity(train_len);
    let mut test_cols = Vec::with_capacity(test_len);
    for c in 0..t {
        let col: Vec<Complex64> =
            (0..n).map(|r| w.sample(c).phasor_unchecked(r)).collect();
        if is_test[c] {
            test_cols.push(col);
        } else {
            train_cols.push(col);
        }
    }
    let build = |cols: Vec<Vec<Complex64>>| {
        if cols.is_empty() {
            PhasorWindow::empty(n)
        } else {
            PhasorWindow::from_columns(&cols)
        }
    };
    (build(train_cols), build(test_cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::MeasurementKind;
    use pmu_grid::cases::ieee14;

    fn small_cfg() -> GenConfig {
        GenConfig { train_len: 8, test_len: 4, ..GenConfig::default() }
    }

    #[test]
    fn window_has_requested_shape() {
        let net = ieee14().unwrap();
        let cfg = small_cfg();
        let mut rng = StdRng::seed_from_u64(1);
        let w = simulate_window(&net, 6, &cfg.ou, &cfg.noise, &cfg.ac, &mut rng).unwrap();
        assert_eq!(w.n_nodes(), 14);
        assert_eq!(w.len(), 6);
        // Values look like voltages.
        let m = w.matrix(MeasurementKind::Magnitude);
        for r in 0..14 {
            for c in 0..6 {
                assert!(m[(r, c)] > 0.8 && m[(r, c)] < 1.2);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let net = ieee14().unwrap();
        let cfg = small_cfg();
        let a = generate_dataset(&net, &cfg).unwrap();
        let b = generate_dataset(&net, &cfg).unwrap();
        assert_eq!(a.n_cases(), b.n_cases());
        let wa = a.normal_train.matrix(MeasurementKind::Angle);
        let wb = b.normal_train.matrix(MeasurementKind::Angle);
        assert!(wa.max_abs_diff(wb) < 1e-15);
        let ca = a.cases[3].train.matrix(MeasurementKind::Angle);
        let cb = b.cases[3].train.matrix(MeasurementKind::Angle);
        assert!(ca.max_abs_diff(cb) < 1e-15);
    }

    #[test]
    fn dataset_covers_valid_outages() {
        let net = ieee14().unwrap();
        let data = generate_dataset(&net, &small_cfg()).unwrap();
        // IEEE-14 has 19 non-islanding single-line outages (7-8 islands).
        assert_eq!(data.n_cases(), net.valid_outage_branches().len());
        for case in &data.cases {
            assert_eq!(case.train.len(), 8);
            assert_eq!(case.test.len(), 4);
            let br = &net.branches()[case.branch];
            assert_eq!(case.endpoints, (br.from, br.to));
        }
        assert!(data.case_for_branch(13).is_none(), "islanding case excluded");
        assert!(data.case_for_branch(data.cases[0].branch).is_some());
    }

    #[test]
    fn outage_windows_differ_from_normal() {
        let net = ieee14().unwrap();
        let data = generate_dataset(&net, &small_cfg()).unwrap();
        let normal_ang = data.normal_train.matrix(MeasurementKind::Angle);
        let case = &data.cases[0];
        let out_ang = case.train.matrix(MeasurementKind::Angle);
        // Mean angle at an endpoint shifts visibly under the outage.
        let node = case.endpoints.1;
        let mean_n: f64 =
            (0..8).map(|t| normal_ang[(node, t)]).sum::<f64>() / 8.0;
        let mean_o: f64 = (0..8).map(|t| out_ang[(node, t)]).sum::<f64>() / 8.0;
        assert!((mean_n - mean_o).abs() > 1e-4, "outage must move the operating point");
    }

    #[test]
    fn split_window_partitions() {
        let net = ieee14().unwrap();
        let cfg = small_cfg();
        let mut rng = StdRng::seed_from_u64(2);
        let w = simulate_window(&net, 10, &cfg.ou, &cfg.noise, &cfg.ac, &mut rng).unwrap();
        let (train, test) = split_window(&w, 7);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        // Test positions are evenly interleaved: {1, 5, 8} for 3 of 10.
        assert!(
            (test.sample(0).phasor_unchecked(3) - w.sample(1).phasor_unchecked(3)).abs()
                < 1e-15
        );
        assert!(
            (test.sample(2).phasor_unchecked(3) - w.sample(8).phasor_unchecked(3)).abs()
                < 1e-15
        );
        assert!(
            (train.sample(0).phasor_unchecked(3) - w.sample(0).phasor_unchecked(3)).abs()
                < 1e-15
        );
        // Degenerate splits behave.
        let (all_train, no_test) = split_window(&w, 10);
        assert_eq!(all_train.len(), 10);
        assert_eq!(no_test.len(), 0);
    }

    #[test]
    fn paper_scale_bumps_test_len() {
        let cfg = GenConfig::default().paper_scale();
        assert_eq!(cfg.test_len, 100);
    }

    #[test]
    fn double_outages_generate_and_prefer_shared_nodes() {
        let net = ieee14().unwrap();
        let cfg = GenConfig { train_len: 4, test_len: 3, ..GenConfig::default() };
        let cases = generate_double_outages(&net, &cfg, 5).unwrap();
        assert_eq!(cases.len(), 5);
        for case in &cases {
            assert_eq!(case.branches.len(), 2);
            assert_eq!(case.test.len(), 3);
            // Shared-node pairs come first: 3 affected nodes, not 4.
            assert!(case.affected_nodes.len() <= 4);
            // The pair is simultaneously removable.
            assert!(net.with_branch_outages(&case.branches).is_ok());
        }
        assert_eq!(cases[0].affected_nodes.len(), 3, "first pair shares a node");
        // Deterministic.
        let again = generate_double_outages(&net, &cfg, 5).unwrap();
        assert_eq!(again[0].branches, cases[0].branches);
    }
}
