//! Ornstein–Uhlenbeck load processes.
//!
//! The paper generates load variations "according to an Ornstein-Uhlenbeck
//! process \[16\] to account for the dynamic and stochastic behavior of power
//! demand". We use the exact discretization of the OU SDE
//! `dX = θ (μ − X) dt + σ dW`:
//!
//! `X_{t+Δ} = μ + (X_t − μ) e^{−θΔ} + σ √((1 − e^{−2θΔ}) / (2θ)) · ξ`,
//!
//! with `ξ ~ N(0, 1)` — free of discretization bias at any step size.

use crate::noise::gaussian;
use rand::rngs::StdRng;
use rand::Rng;

/// Parameters of an OU process.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OuParams {
    /// Long-run mean (load multiplier, typically `1.0`).
    pub mean: f64,
    /// Mean-reversion rate `θ` (> 0).
    pub theta: f64,
    /// Volatility `σ` (≥ 0).
    pub sigma: f64,
    /// Time step `Δt` between samples.
    pub dt: f64,
}

impl Default for OuParams {
    /// Defaults tuned so a 24-hour window of demand stays within ±10% of
    /// nominal with realistic autocorrelation.
    fn default() -> Self {
        OuParams { mean: 1.0, theta: 0.08, sigma: 0.03, dt: 1.0 }
    }
}

impl OuParams {
    /// Stationary standard deviation `σ / √(2θ)`.
    pub fn stationary_std(&self) -> f64 {
        self.sigma / (2.0 * self.theta).sqrt()
    }
}

/// A single OU path sampler.
#[derive(Debug, Clone)]
pub struct OuProcess {
    params: OuParams,
    state: f64,
}

impl OuProcess {
    /// Start a process at its long-run mean.
    pub fn new(params: OuParams) -> Self {
        OuProcess { state: params.mean, params }
    }

    /// Start a process from an explicit initial state.
    pub fn with_state(params: OuParams, state: f64) -> Self {
        OuProcess { params, state }
    }

    /// Current state.
    pub fn state(&self) -> f64 {
        self.state
    }

    /// Advance one step and return the new state.
    pub fn step<R: Rng>(&mut self, rng: &mut R) -> f64 {
        let p = &self.params;
        let decay = (-p.theta * p.dt).exp();
        let diffusion = p.sigma * ((1.0 - decay * decay) / (2.0 * p.theta)).sqrt();
        self.state = p.mean + (self.state - p.mean) * decay + diffusion * gaussian(rng);
        self.state
    }

    /// Sample a path of `len` steps (not including the initial state).
    pub fn path(&mut self, len: usize, rng: &mut StdRng) -> Vec<f64> {
        (0..len).map(|_| self.step(rng)).collect()
    }
}

/// Independent OU multipliers for every bus of a grid; buses without load
/// still get a path (harmlessly unused).
#[derive(Debug, Clone)]
pub struct LoadProcess {
    processes: Vec<OuProcess>,
}

impl LoadProcess {
    /// One OU process per bus.
    pub fn new(n_buses: usize, params: OuParams) -> Self {
        LoadProcess { processes: vec![OuProcess::new(params); n_buses] }
    }

    /// Advance all processes one step; returns the multiplier vector.
    pub fn step<R: Rng>(&mut self, rng: &mut R) -> Vec<f64> {
        self.processes.iter_mut().map(|p| p.step(rng)).collect()
    }

    /// Number of buses covered.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// `true` when covering zero buses.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn starts_at_mean() {
        let p = OuProcess::new(OuParams::default());
        assert_eq!(p.state(), 1.0);
        let p = OuProcess::with_state(OuParams::default(), 0.5);
        assert_eq!(p.state(), 0.5);
    }

    #[test]
    fn mean_reversion_pulls_back() {
        // With zero volatility the process decays exponentially to the mean.
        let params = OuParams { mean: 1.0, theta: 0.5, sigma: 0.0, dt: 1.0 };
        let mut p = OuProcess::with_state(params, 2.0);
        let mut r = rng(1);
        let x1 = p.step(&mut r);
        let expected = 1.0 + (2.0 - 1.0) * (-0.5_f64).exp();
        assert!((x1 - expected).abs() < 1e-12);
        for _ in 0..100 {
            p.step(&mut r);
        }
        assert!((p.state() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn stationary_moments_match_theory() {
        let params = OuParams { mean: 1.0, theta: 0.2, sigma: 0.05, dt: 1.0 };
        let mut p = OuProcess::new(params);
        let mut r = rng(42);
        // Burn in, then measure.
        for _ in 0..500 {
            p.step(&mut r);
        }
        let path = p.path(20_000, &mut r);
        let mean: f64 = path.iter().sum::<f64>() / path.len() as f64;
        let var: f64 =
            path.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / path.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        let sd = params.stationary_std();
        assert!((var - sd * sd).abs() < 0.3 * sd * sd, "var {var} vs {}", sd * sd);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = OuProcess::new(OuParams::default());
        let mut b = OuProcess::new(OuParams::default());
        let pa = a.path(50, &mut rng(7));
        let pb = b.path(50, &mut rng(7));
        assert_eq!(pa, pb);
        let pc = OuProcess::new(OuParams::default()).path(50, &mut rng(8));
        assert_ne!(pa, pc);
    }

    #[test]
    fn load_process_covers_all_buses() {
        let mut lp = LoadProcess::new(14, OuParams::default());
        assert_eq!(lp.len(), 14);
        assert!(!lp.is_empty());
        let m = lp.step(&mut rng(3));
        assert_eq!(m.len(), 14);
        // Multipliers hover near 1.
        assert!(m.iter().all(|&x| (x - 1.0).abs() < 0.5));
        // Independent buses get different draws.
        assert!(m.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-12));
    }
}
