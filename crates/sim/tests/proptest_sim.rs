//! Property-based tests for the simulation layer: masks, OU processes,
//! missing patterns, and the reliability model.

use pmu_sim::missing::MissingPattern;
use pmu_sim::ou::{OuParams, OuProcess};
use pmu_sim::reliability::{
    effective_metric_exact, pattern_probability, per_device_working_prob,
    system_reliability,
};
use pmu_sim::Mask;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mask_observed_and_missing_partition(n in 1usize..60, nodes in proptest::collection::vec(0usize..60, 0..20)) {
        let m = Mask::with_missing(n, &nodes);
        let observed = m.observed();
        let missing = m.missing_nodes();
        prop_assert_eq!(observed.len() + missing.len(), n);
        for &i in &observed {
            prop_assert!(!m.is_missing(i));
        }
        for &i in &missing {
            prop_assert!(m.is_missing(i));
        }
        // Union with itself is idempotent.
        let u = m.union(&m);
        prop_assert_eq!(u.missing_nodes(), missing);
    }

    #[test]
    fn mask_union_is_commutative_and_monotone(
        n in 1usize..40,
        a in proptest::collection::vec(0usize..40, 0..12),
        b in proptest::collection::vec(0usize..40, 0..12),
    ) {
        let ma = Mask::with_missing(n, &a);
        let mb = Mask::with_missing(n, &b);
        let ab = ma.union(&mb);
        let ba = mb.union(&ma);
        prop_assert_eq!(ab.missing_nodes(), ba.missing_nodes());
        prop_assert!(ab.n_missing() >= ma.n_missing().max(mb.n_missing()));
    }

    #[test]
    fn random_k_draws_exactly_k_outside_exclusions(
        n in 4usize..50,
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let exclude = vec![0, 1];
        let mut rng = StdRng::seed_from_u64(seed);
        let m = MissingPattern::RandomK { k, exclude: exclude.clone() }.draw(n, &mut rng);
        let expected = k.min(n - exclude.len());
        prop_assert_eq!(m.n_missing(), expected);
        prop_assert!(!m.is_missing(0) && !m.is_missing(1));
    }

    #[test]
    fn ou_with_zero_noise_converges_monotonically(x0 in 0.5f64..2.0, theta in 0.05f64..1.0) {
        let params = OuParams { mean: 1.0, theta, sigma: 0.0, dt: 1.0 };
        let mut p = OuProcess::with_state(params, x0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut prev_gap = (x0 - 1.0).abs();
        for _ in 0..50 {
            let x = p.step(&mut rng);
            let gap = (x - 1.0).abs();
            prop_assert!(gap <= prev_gap + 1e-12, "gap grew: {} -> {}", prev_gap, gap);
            prev_gap = gap;
        }
    }

    #[test]
    fn ou_stays_finite_and_near_mean(sigma in 0.0f64..0.1, theta in 0.05f64..0.5, seed in 0u64..500) {
        let params = OuParams { mean: 1.0, theta, sigma, dt: 1.0 };
        let mut p = OuProcess::new(params);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let x = p.step(&mut rng);
            prop_assert!(x.is_finite());
            // 8 stationary standard deviations is a generous envelope.
            let bound = 1.0 + 8.0 * params.stationary_std().max(1e-9);
            prop_assert!((x - 1.0).abs() < bound, "x = {}", x);
        }
    }

    #[test]
    fn pattern_probabilities_normalize(l in 1usize..10, q in 0.0f64..1.0) {
        let total = effective_metric_exact(l, q, |_| 1.0);
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expected_missing_count_matches_closed_form(l in 1usize..10, q in 0.0f64..1.0) {
        let e = effective_metric_exact(l, q, |m: &Mask| m.n_missing() as f64);
        prop_assert!((e - l as f64 * (1.0 - q)).abs() < 1e-9);
    }

    #[test]
    fn reliability_roundtrip(r_pmu in 0.5f64..1.0, r_link in 0.5f64..1.0, l in 1usize..200) {
        let r = system_reliability(r_pmu, r_link, l);
        prop_assert!((0.0..=1.0).contains(&r));
        let q = per_device_working_prob(r, l);
        prop_assert!((q - r_pmu * r_link).abs() < 1e-9);
    }

    #[test]
    fn all_present_pattern_probability_is_q_to_the_l(l in 1usize..12, q in 0.0f64..1.0) {
        let mask = Mask::all_present(l);
        prop_assert!((pattern_probability(&mask, q) - q.powi(l as i32)).abs() < 1e-12);
    }
}
