//! Property-based tests for the detector's building blocks: ellipses,
//! capability aggregation, and the robust proximity of Eq. (9).

use pmu_detect::capability::{union_probability, union_probability_inclusion_exclusion};
use pmu_detect::config::EllipseMethod;
use pmu_detect::ellipse::Ellipse;
use pmu_detect::proximity::{proximity, reconstruct_sample};
use pmu_numerics::{Matrix, Subspace, Vector};
use proptest::prelude::*;

fn points_strategy() -> impl Strategy<Value = Vec<[f64; 2]>> {
    proptest::collection::vec(((0.9f64..1.1), (-0.5f64..0.5)), 5..40)
        .prop_map(|v| v.into_iter().map(|(a, b)| [a, b]).collect())
}

fn span_strategy(n: usize, k: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f64..2.0, n * k)
        .prop_map(move |data| Matrix::from_rows(n, k, data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fitted_ellipses_cover_their_points(points in points_strategy()) {
        // Degenerate (collinear) clouds may legitimately fail; only
        // check coverage when the fit succeeds.
        if let Ok(e) = Ellipse::fit(&points, EllipseMethod::ScaledCovariance, 1.0) {
            for p in &points {
                prop_assert!(e.quad_form(*p) <= 1.0 + 1e-6);
            }
        }
        if let Ok(e) = Ellipse::fit(&points, EllipseMethod::MinVolume, 1.0) {
            for p in &points {
                prop_assert!(e.quad_form(*p) <= 1.0 + 1e-4);
            }
        }
    }

    #[test]
    fn ellipse_margin_only_grows_membership(points in points_strategy(), margin in 1.0f64..3.0) {
        if let (Ok(tight), Ok(loose)) = (
            Ellipse::fit(&points, EllipseMethod::ScaledCovariance, 1.0),
            Ellipse::fit(&points, EllipseMethod::ScaledCovariance, margin),
        ) {
            // Any point inside the tight ellipse is inside the loose one.
            for dx in [-0.05f64, 0.0, 0.05] {
                for dy in [-0.2f64, 0.0, 0.2] {
                    let p = [tight.center[0] + dx, tight.center[1] + dy];
                    if tight.contains(p) {
                        prop_assert!(loose.contains(p));
                    }
                }
            }
        }
    }

    #[test]
    fn union_probability_matches_inclusion_exclusion(
        ps in proptest::collection::vec(0.0f64..1.0, 1..8)
    ) {
        let closed = union_probability(&ps);
        let literal = union_probability_inclusion_exclusion(&ps);
        prop_assert!((closed - literal).abs() < 1e-9, "{} vs {}", closed, literal);
        // Bounds: at least the max input, at most the sum (capped at 1).
        let max = ps.iter().cloned().fold(0.0f64, f64::max);
        let sum: f64 = ps.iter().sum();
        prop_assert!(closed >= max - 1e-12);
        prop_assert!(closed <= sum.min(1.0) + 1e-12);
    }

    #[test]
    fn union_probability_is_monotone(
        ps in proptest::collection::vec(0.0f64..1.0, 1..6),
        extra in 0.0f64..1.0,
    ) {
        let base = union_probability(&ps);
        let mut bigger = ps.clone();
        bigger.push(extra);
        prop_assert!(union_probability(&bigger) >= base - 1e-12);
    }

    #[test]
    fn proximity_zero_for_members_any_group(span in span_strategy(8, 3), coeff in proptest::collection::vec(-2.0f64..2.0, 3)) {
        let s = Subspace::from_span(&span).unwrap();
        if s.dim() == 0 {
            return Ok(());
        }
        // x = basis * coeff lies in the subspace.
        let mut x = Vector::zeros(8);
        for (c, &w) in coeff.iter().enumerate().take(s.dim()) {
            let col = s.basis().column(c);
            x.axpy(w, &col).unwrap();
        }
        // Groups must be large enough that the co-dimension clamp in
        // `proximity` (keeping at least max(2, |D|/3) residual dimensions)
        // still leaves room for the full 3-dim basis: |D| >= 6 here.
        for nodes in [vec![0, 1, 2, 3, 4, 5, 6, 7], vec![0, 2, 3, 4, 6, 7], vec![1, 2, 3, 5, 6, 7]] {
            let x_d = Vector::from_fn(nodes.len(), |k| x[nodes[k]]);
            let p = proximity(&s, &nodes, &x_d).unwrap();
            prop_assert!(p < 1e-12 * x.norm_sqr().max(1.0), "nodes {:?}: {}", nodes, p);
        }
    }

    #[test]
    fn proximity_nonnegative_and_finite(span in span_strategy(8, 3), raw in proptest::collection::vec(-5.0f64..5.0, 8)) {
        let s = Subspace::from_span(&span).unwrap();
        let x = Vector::from(raw);
        let nodes: Vec<usize> = (0..8).collect();
        let p = proximity(&s, &nodes, &x).unwrap();
        prop_assert!(p.is_finite());
        prop_assert!(p >= 0.0);
    }

    #[test]
    fn reconstruction_exact_for_members(span in span_strategy(9, 2), coeff in proptest::collection::vec(-2.0f64..2.0, 2)) {
        let s = Subspace::from_span(&span).unwrap();
        if s.dim() < 2 {
            return Ok(());
        }
        let mut x = Vector::zeros(9);
        for (c, &w) in coeff.iter().enumerate() {
            x.axpy(w, &s.basis().column(c)).unwrap();
        }
        // Observe 5 of 9 coordinates, reconstruct the rest.
        let observed = vec![0usize, 2, 4, 6, 8];
        let x_d = Vector::from_fn(5, |k| x[observed[k]]);
        let full = reconstruct_sample(&s, &observed, &x_d).unwrap();
        for i in 0..9 {
            prop_assert!(
                (full[i] - x[i]).abs() < 1e-7 * x.norm().max(1.0),
                "entry {}: {} vs {}",
                i,
                full[i],
                x[i]
            );
        }
    }
}
