//! Online streaming detection with temporal voting.
//!
//! PMUs report 30–60 samples per second, so a control-center application
//! sees a *stream*, not isolated samples. A single-sample classifier at
//! 30 Hz turns even a 0.1% per-sample false-alarm rate into a spurious
//! alarm every ~30 s. This module wraps [`Detector`] in a k-of-m voter:
//! an outage event is declared only after `k` of the last `m` samples
//! agree (and localized by majority over their line reports), and cleared
//! after a quiet run of the same length. This is the natural production
//! deployment of the paper's per-sample scheme.

use crate::detector::{Detection, Detector};
use crate::scoring::ScoringCache;
use crate::Result;
use pmu_sim::PhasorSample;
use std::collections::VecDeque;

/// Voting configuration of the streaming wrapper.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Window length `m` (samples).
    pub window: usize,
    /// Votes `k` needed within the window to raise (or clear) an event.
    pub votes: usize,
}

impl Default for StreamConfig {
    /// 3-of-5 voting: at 30 samples/s an outage is confirmed within
    /// ~170 ms, while isolated glitches never fire.
    fn default() -> Self {
        StreamConfig { window: 5, votes: 3 }
    }
}

/// The monitor's externally visible state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamState {
    /// No active event.
    Quiet,
    /// A confirmed outage event with the majority-voted line set.
    Outage {
        /// Majority-voted outaged lines.
        lines: Vec<usize>,
    },
}

/// A state transition reported by [`StreamingDetector::push`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// Nothing changed.
    None,
    /// An outage event was raised.
    Raised {
        /// Majority-voted outaged lines.
        lines: Vec<usize>,
        /// Channels the bad-data screen excised in the outage-voting
        /// verdicts of the window (sorted union); the localization above
        /// was computed with these channels masked out.
        suspect_nodes: Vec<usize>,
    },
    /// The active event's localization changed as evidence accumulated
    /// (the event itself stays raised).
    Relocalized {
        /// The refreshed majority-voted line set.
        lines: Vec<usize>,
        /// As in [`StreamEvent::Raised`]: excised channels backing the
        /// refreshed localization.
        suspect_nodes: Vec<usize>,
    },
    /// The active event cleared.
    Cleared,
}

/// A point-in-time health summary of a [`StreamingDetector`].
///
/// Cheap to take (a handful of integer reads) and safe to poll from a
/// supervision loop at every sample. All counters are cumulative since
/// construction; `alarm_streak` is the only instantaneous field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSnapshot {
    /// Samples processed so far.
    pub samples_seen: usize,
    /// Samples the detector could not score. Unscorable samples are
    /// *vote-neutral*: they never help confirm an event and — crucially —
    /// never help clear one (a dark network is absence of evidence, not
    /// evidence of restoration).
    pub missing_samples: usize,
    /// `missing_samples / samples_seen` (0.0 before the first sample).
    pub missing_ratio: f64,
    /// Outage events raised so far.
    pub events_raised: usize,
    /// Outage events cleared so far.
    pub events_cleared: usize,
    /// Length of the current run of consecutive outage-voting samples.
    pub alarm_streak: usize,
    /// Whether an outage event is currently active.
    pub active: bool,
    /// Samples on which the bad-data screen excised at least one suspect
    /// channel (cumulative). These samples *were* scored — on their
    /// surviving channels — so they also count in `samples_seen`.
    pub bad_data_samples: usize,
}

/// The complete serializable state of a [`StreamingDetector`], minus the
/// re-derivable parts.
///
/// A snapshot captures everything `push` reads or writes — the voting
/// configuration, the verdict history (flattened from the deque, oldest
/// first), the event state machine, and the cumulative counters — so a
/// monitor restored from it produces **bit-identical** [`StreamEvent`]s
/// to the uninterrupted original on the same tail of samples. Two things
/// are deliberately excluded:
///
/// - the trained [`Detector`] itself (it ships in the model bundle; the
///   restorer supplies it, and provenance binding happens one layer up,
///   in `pmu-model`'s session-snapshot envelope), and
/// - the per-mask [`ScoringCache`] (a pure memoization of the detector —
///   rebuilding it from an empty cache changes latency, never verdicts).
///
/// The flattened shape (named fields only, `Vec` instead of `VecDeque`,
/// the `Quiet`/`Outage` state as an `active` flag plus a line list) is
/// what the vendored serde derive can express; it is also the stable
/// wire layout the session-snapshot schema version covers.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSnapshot {
    /// Voting window length `m` ([`StreamConfig::window`]).
    pub window: usize,
    /// Votes `k` needed to raise or clear ([`StreamConfig::votes`]).
    pub votes: usize,
    /// Recent per-sample verdicts, oldest first; `None` marks a
    /// vote-neutral unscorable sample. At most `window` entries.
    pub history: Vec<Option<Detection>>,
    /// Whether an outage event is active ([`StreamState::Outage`]).
    pub active: bool,
    /// The active event's majority-voted lines; empty when `!active`.
    pub lines: Vec<usize>,
    /// Samples processed so far.
    pub samples_seen: usize,
    /// Samples absorbed as vote-neutral because they were unscorable.
    pub missing_samples: usize,
    /// Events raised since construction.
    pub events_raised: usize,
    /// Events cleared since construction.
    pub events_cleared: usize,
    /// Current run of consecutive outage-voting samples.
    pub alarm_streak: usize,
    /// Samples on which the bad-data screen excised a suspect channel.
    pub bad_data_samples: usize,
}

/// A k-of-m voting wrapper around a trained [`Detector`].
#[derive(Debug)]
pub struct StreamingDetector {
    detector: Detector,
    cfg: StreamConfig,
    /// Mask-keyed scoring memoization: PMU streams repeat the same
    /// missing-data masks sample after sample, so each restriction is
    /// paid once per mask instead of once per push.
    cache: ScoringCache,
    /// Recent per-sample verdicts (newest at the back); `None` marks a
    /// sample the detector could not score — a vote-neutral window entry.
    history: VecDeque<Option<Detection>>,
    state: StreamState,
    /// Samples processed so far.
    samples_seen: usize,
    /// Samples absorbed as quiet because the detector could not score them.
    missing_samples: usize,
    /// Events raised / cleared since construction.
    events_raised: usize,
    events_cleared: usize,
    /// Current run of consecutive outage-voting samples.
    alarm_streak: usize,
    /// Samples on which the bad-data screen excised a suspect channel.
    bad_data_samples: usize,
}

impl StreamingDetector {
    /// Wrap a trained detector.
    ///
    /// # Panics
    /// Panics when `votes` is zero or exceeds `window` (a configuration
    /// programming error).
    pub fn new(detector: Detector, cfg: StreamConfig) -> Self {
        assert!(
            cfg.votes > 0 && cfg.votes <= cfg.window,
            "StreamConfig: need 0 < votes <= window"
        );
        StreamingDetector {
            detector,
            cfg,
            cache: ScoringCache::new(),
            history: VecDeque::with_capacity(cfg.window),
            state: StreamState::Quiet,
            samples_seen: 0,
            missing_samples: 0,
            events_raised: 0,
            events_cleared: 0,
            alarm_streak: 0,
            bad_data_samples: 0,
        }
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Capture the monitor's complete mutable state as a serializable
    /// [`StreamSnapshot`]. See the snapshot type for what is included
    /// and what is re-derived on restore.
    pub fn snapshot(&self) -> StreamSnapshot {
        let (active, lines) = match &self.state {
            StreamState::Quiet => (false, Vec::new()),
            StreamState::Outage { lines } => (true, lines.clone()),
        };
        StreamSnapshot {
            window: self.cfg.window,
            votes: self.cfg.votes,
            history: self.history.iter().cloned().collect(),
            active,
            lines,
            samples_seen: self.samples_seen,
            missing_samples: self.missing_samples,
            events_raised: self.events_raised,
            events_cleared: self.events_cleared,
            alarm_streak: self.alarm_streak,
            bad_data_samples: self.bad_data_samples,
        }
    }

    /// Rebuild a monitor from a [`StreamSnapshot`] and the trained
    /// detector it was wrapped around. The scoring cache starts empty
    /// (it is a pure memoization), everything else resumes exactly where
    /// [`StreamingDetector::snapshot`] left off: the restored monitor
    /// emits bit-identical [`StreamEvent`]s to an uninterrupted one on
    /// the same tail of samples.
    ///
    /// # Errors
    /// [`DetectError::InvalidSnapshot`](crate::DetectError::InvalidSnapshot)
    /// when the snapshot violates the monitor's invariants: a voting
    /// config [`StreamingDetector::new`] would reject, a history longer
    /// than the window, a counter mismatch (`missing_samples` or the
    /// history length exceeding `samples_seen`), or a quiet state that
    /// still names outaged lines.
    pub fn restore(detector: Detector, snap: &StreamSnapshot) -> Result<Self> {
        let fail = |m: String| Err(crate::DetectError::InvalidSnapshot(m));
        if snap.votes == 0 || snap.votes > snap.window {
            return fail(format!(
                "voting config {}-of-{} (need 0 < votes <= window)",
                snap.votes, snap.window
            ));
        }
        if snap.history.len() > snap.window {
            return fail(format!(
                "history holds {} verdicts, window is {}",
                snap.history.len(),
                snap.window
            ));
        }
        if snap.history.len() > snap.samples_seen || snap.missing_samples > snap.samples_seen
        {
            return fail(format!(
                "counters disagree: {} in history, {} missing, {} seen",
                snap.history.len(),
                snap.missing_samples,
                snap.samples_seen
            ));
        }
        if snap.bad_data_samples > snap.samples_seen {
            return fail(format!(
                "counters disagree: {} bad-data samples, {} seen",
                snap.bad_data_samples, snap.samples_seen
            ));
        }
        if !snap.active && !snap.lines.is_empty() {
            return fail(format!("quiet state carries lines {:?}", snap.lines));
        }
        let state = if snap.active {
            StreamState::Outage { lines: snap.lines.clone() }
        } else {
            StreamState::Quiet
        };
        Ok(StreamingDetector {
            detector,
            cfg: StreamConfig { window: snap.window, votes: snap.votes },
            cache: ScoringCache::new(),
            history: snap.history.iter().cloned().collect(),
            state,
            samples_seen: snap.samples_seen,
            missing_samples: snap.missing_samples,
            events_raised: snap.events_raised,
            events_cleared: snap.events_cleared,
            alarm_streak: snap.alarm_streak,
            bad_data_samples: snap.bad_data_samples,
        })
    }

    /// Current monitor state.
    pub fn state(&self) -> &StreamState {
        &self.state
    }

    /// Samples processed so far.
    pub fn samples_seen(&self) -> usize {
        self.samples_seen
    }

    /// A point-in-time health summary (cumulative counters + streak).
    pub fn health(&self) -> HealthSnapshot {
        HealthSnapshot {
            samples_seen: self.samples_seen,
            missing_samples: self.missing_samples,
            missing_ratio: if self.samples_seen == 0 {
                0.0
            } else {
                self.missing_samples as f64 / self.samples_seen as f64
            },
            events_raised: self.events_raised,
            events_cleared: self.events_cleared,
            alarm_streak: self.alarm_streak,
            active: matches!(self.state, StreamState::Outage { .. }),
            bad_data_samples: self.bad_data_samples,
        }
    }

    /// Feed one sample; returns the state transition (if any).
    ///
    /// Samples the underlying detector cannot score (e.g. almost
    /// everything missing) are **vote-neutral**: they occupy a window slot
    /// but count neither toward raising nor toward clearing. A dark
    /// network cannot confirm an event — and, just as important, it cannot
    /// *clear* one: only scorable quiet verdicts are evidence of
    /// restoration, so a PDC blackout during a confirmed outage leaves the
    /// event standing (the Sec. III-B failure mode).
    ///
    /// # Errors
    /// Propagates only structural errors (wrong sample size, non-finite
    /// observed values); transient insufficiency is absorbed as described.
    pub fn push(&mut self, sample: &PhasorSample) -> Result<StreamEvent> {
        self.samples_seen += 1;
        pmu_obs::counter!("detect.stream_samples").inc();
        let verdict = match self.detector.detect_with_cache(sample, &self.cache) {
            Ok(d) => {
                if !d.suspect_nodes.is_empty() {
                    self.bad_data_samples += 1;
                    pmu_obs::counter!("detect.stream_bad_data").inc();
                }
                Some(d)
            }
            Err(crate::DetectError::InsufficientData { .. }) => {
                self.missing_samples += 1;
                pmu_obs::counter!("detect.stream_missing").inc();
                None
            }
            Err(e) => return Err(e),
        };
        let voted_outage = verdict.as_ref().is_some_and(|d| d.outage);
        self.alarm_streak = if voted_outage { self.alarm_streak + 1 } else { 0 };
        if self.history.len() == self.cfg.window {
            self.history.pop_front();
        }
        self.history.push_back(verdict);

        let outage_votes =
            self.history.iter().flatten().filter(|d| d.outage).count();
        // Only scorable quiet verdicts may clear: unscorable samples are
        // excluded from the quorum entirely.
        let quiet_votes =
            self.history.iter().flatten().filter(|d| !d.outage).count();

        match &self.state {
            StreamState::Quiet if outage_votes >= self.cfg.votes => {
                let lines = self.voted_lines();
                self.events_raised += 1;
                pmu_obs::events::StreamRaised {
                    lines: lines.clone(),
                    samples_seen: self.samples_seen,
                }
                .emit();
                self.state = StreamState::Outage { lines: lines.clone() };
                Ok(StreamEvent::Raised { lines, suspect_nodes: self.voted_suspects() })
            }
            StreamState::Outage { .. } if quiet_votes >= self.cfg.votes => {
                self.events_cleared += 1;
                pmu_obs::events::StreamCleared { samples_seen: self.samples_seen }
                    .emit();
                self.state = StreamState::Quiet;
                Ok(StreamEvent::Cleared)
            }
            StreamState::Outage { lines } if outage_votes >= self.cfg.votes => {
                // Refresh the localization as evidence accumulates.
                let fresh = self.voted_lines();
                if &fresh != lines {
                    pmu_obs::events::StreamRelocalized {
                        lines: fresh.clone(),
                        samples_seen: self.samples_seen,
                    }
                    .emit();
                    self.state = StreamState::Outage { lines: fresh.clone() };
                    return Ok(StreamEvent::Relocalized {
                        lines: fresh,
                        suspect_nodes: self.voted_suspects(),
                    });
                }
                Ok(StreamEvent::None)
            }
            _ => Ok(StreamEvent::None),
        }
    }

    /// [`majority_lines`] over the outage-voting verdicts in the window.
    fn voted_lines(&self) -> Vec<usize> {
        let voters: Vec<&[usize]> = self
            .history
            .iter()
            .flatten()
            .filter(|d| d.outage)
            .map(|d| d.lines.as_slice())
            .collect();
        majority_lines(&voters)
    }

    /// Sorted union of the excised channels across the outage-voting
    /// verdicts in the window — the provenance trail a raise or
    /// relocalization carries when the bad-data screen intervened.
    fn voted_suspects(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .history
            .iter()
            .flatten()
            .filter(|d| d.outage)
            .flat_map(|d| d.suspect_nodes.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Majority vote over per-sample line reports: a line is confirmed when
/// *more than half* of the voters name it (`⌊v/2⌋ + 1` of `v` voters), so
/// a tie at exactly half never confirms. An empty voter set — or voters
/// that all reported empty line sets — yields an empty result.
pub fn majority_lines(voters: &[&[usize]]) -> Vec<usize> {
    if voters.is_empty() {
        return Vec::new();
    }
    let mut counts: Vec<(usize, usize)> = Vec::new();
    for lines in voters {
        for &l in *lines {
            match counts.iter_mut().find(|(line, _)| *line == l) {
                Some((_, c)) => *c += 1,
                None => counts.push((l, 1)),
            }
        }
    }
    let quorum = voters.len() / 2 + 1;
    let mut lines: Vec<usize> = counts
        .into_iter()
        .filter(|&(_, c)| c >= quorum)
        .map(|(l, _)| l)
        .collect();
    lines.sort_unstable();
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::train_default;
    use pmu_grid::cases::ieee14;
    use pmu_sim::missing::outage_endpoints_mask;
    use pmu_sim::{generate_dataset, GenConfig};

    fn monitor() -> (pmu_sim::Dataset, StreamingDetector) {
        let net = ieee14().unwrap();
        let gen = GenConfig { train_len: 20, test_len: 8, ..GenConfig::default() };
        let data = generate_dataset(&net, &gen).unwrap();
        let det = train_default(&data).unwrap();
        let mon = StreamingDetector::new(det, StreamConfig::default());
        (data, mon)
    }

    #[test]
    fn sustained_outage_raises_once_and_localizes() {
        let (data, mut mon) = monitor();
        let case = &data.cases[2];
        let mut raised = 0usize;
        for t in 0..6 {
            match mon.push(&case.test.sample(t % case.test.len())).unwrap() {
                StreamEvent::Raised { lines, suspect_nodes } => {
                    raised += 1;
                    assert!(lines.contains(&case.branch), "raised with {lines:?}");
                    assert!(suspect_nodes.is_empty(), "clean stream flagged {suspect_nodes:?}");
                }
                StreamEvent::Cleared => panic!("spurious clear"),
                StreamEvent::None | StreamEvent::Relocalized { .. } => {}
            }
        }
        assert_eq!(raised, 1, "exactly one raise for a sustained event");
        assert!(matches!(mon.state(), StreamState::Outage { .. }));
        assert_eq!(mon.samples_seen(), 6);
    }

    #[test]
    fn isolated_glitch_does_not_raise() {
        let (data, mut mon) = monitor();
        // Normal, normal, one outage sample, normal...: 1-of-5 never fires
        // under 3-of-5 voting.
        let seq = [0usize, 1, usize::MAX, 2, 3, 4];
        for &t in &seq {
            let sample = if t == usize::MAX {
                data.cases[0].test.sample(0)
            } else {
                data.normal_test.sample(t % data.normal_test.len())
            };
            let ev = mon.push(&sample).unwrap();
            assert_eq!(ev, StreamEvent::None, "glitch must not raise");
        }
        assert_eq!(*mon.state(), StreamState::Quiet);
    }

    #[test]
    fn event_clears_after_restoration() {
        let (data, mut mon) = monitor();
        let case = &data.cases[1];
        for t in 0..4 {
            let _ = mon.push(&case.test.sample(t % case.test.len())).unwrap();
        }
        assert!(matches!(mon.state(), StreamState::Outage { .. }));
        let mut cleared = false;
        for t in 0..6 {
            if mon.push(&data.normal_test.sample(t % data.normal_test.len())).unwrap()
                == StreamEvent::Cleared
            {
                cleared = true;
            }
        }
        assert!(cleared, "event must clear after the line is restored");
        assert_eq!(*mon.state(), StreamState::Quiet);
    }

    #[test]
    fn dark_network_cannot_confirm() {
        use pmu_sim::Mask;
        let (data, mut mon) = monitor();
        let mask = Mask::with_missing(14, &(0..12).collect::<Vec<_>>());
        for t in 0..5 {
            let s = data.cases[0].test.sample(t % data.cases[0].test.len()).masked(&mask);
            let ev = mon.push(&s).unwrap();
            assert_eq!(ev, StreamEvent::None);
        }
        assert_eq!(*mon.state(), StreamState::Quiet);
    }

    /// Regression for the dark-window clearing bug: a PDC blackout during
    /// a confirmed outage used to count its unscorable samples as quiet
    /// votes, clearing the event after `k` dark samples — the exact
    /// failure mode Sec. III-B warns about. Unscorable samples are now
    /// vote-neutral for clearing.
    #[test]
    fn blackout_does_not_clear_active_event() {
        use pmu_sim::Mask;
        let (data, mut mon) = monitor();
        let case = &data.cases[2];
        // Confirm the outage.
        for t in 0..4 {
            let _ = mon.push(&case.test.sample(t % case.test.len())).unwrap();
        }
        assert!(matches!(mon.state(), StreamState::Outage { .. }));
        let raised_before = mon.health().events_raised;
        // PDC blackout: far more than `votes` consecutive unscorable
        // samples. The event must stand through all of them.
        let dark = Mask::with_missing(14, &(0..12).collect::<Vec<_>>());
        for t in 0..8 {
            let s = case.test.sample(t % case.test.len()).masked(&dark);
            let ev = mon.push(&s).unwrap();
            assert_eq!(ev, StreamEvent::None, "dark sample must not transition");
            assert!(
                matches!(mon.state(), StreamState::Outage { .. }),
                "blackout cleared the event after {} dark samples",
                t + 1
            );
        }
        let h = mon.health();
        assert_eq!(h.events_cleared, 0, "no clear during the blackout");
        assert_eq!(h.missing_samples, 8, "health counters stay truthful");
        // Blackout lifts with the line still out: the event persists (no
        // duplicate raise) and localization is intact.
        for t in 0..4 {
            let _ = mon.push(&case.test.sample(t % case.test.len())).unwrap();
        }
        assert!(matches!(mon.state(), StreamState::Outage { .. }));
        assert_eq!(mon.health().events_raised, raised_before, "no duplicate raise");
        // Only genuine restoration — scorable quiet verdicts — clears.
        let mut cleared = false;
        for t in 0..6 {
            if mon.push(&data.normal_test.sample(t % data.normal_test.len())).unwrap()
                == StreamEvent::Cleared
            {
                cleared = true;
            }
        }
        assert!(cleared, "restoration must still clear the event");
        assert_eq!(*mon.state(), StreamState::Quiet);
    }

    /// The relocalization branch: when the majority line set shifts while
    /// an event is active, the monitor reports `Relocalized` instead of
    /// silently mutating its state.
    #[test]
    fn localization_shift_emits_relocalized() {
        let (data, mut mon) = monitor();
        // Pick two cases on different lines.
        let first = &data.cases[1];
        let second = data
            .cases
            .iter()
            .find(|c| c.branch != first.branch)
            .expect("a second distinct outage case");
        for t in 0..4 {
            let _ = mon.push(&first.test.sample(t % first.test.len())).unwrap();
        }
        let StreamState::Outage { lines: initial } = mon.state().clone() else {
            panic!("event not raised");
        };
        let mut relocalized = None;
        for t in 0..8 {
            match mon.push(&second.test.sample(t % second.test.len())).unwrap() {
                StreamEvent::Relocalized { lines, .. } => {
                    relocalized = Some(lines);
                }
                StreamEvent::Raised { .. } => panic!("event was already active"),
                _ => {}
            }
        }
        let lines = relocalized.expect("line-set shift must emit Relocalized");
        assert_ne!(lines, initial);
        assert!(lines.contains(&second.branch), "refreshed to {lines:?}");
        assert_eq!(*mon.state(), StreamState::Outage { lines });
    }

    #[test]
    fn majority_lines_quorum_edges() {
        // Empty voter set.
        assert!(majority_lines(&[]).is_empty());
        // Voters with empty line reports confirm nothing.
        assert!(majority_lines(&[&[], &[], &[]]).is_empty());
        // Tie at exactly half (1 of 2 voters) misses the quorum of 2.
        assert!(majority_lines(&[&[3], &[7]]).is_empty());
        // Strict majority confirms; order-independent, sorted output.
        assert_eq!(majority_lines(&[&[7, 3], &[3, 7], &[5]]), vec![3, 7]);
        // 2 of 4 is exactly half — still short of the quorum of 3.
        assert!(majority_lines(&[&[1], &[1], &[2], &[2]]).is_empty());
        // 3 of 4 clears it.
        assert_eq!(majority_lines(&[&[1], &[1], &[1], &[2]]), vec![1]);
        // A single voter is its own majority.
        assert_eq!(majority_lines(&[&[9, 4]]), vec![4, 9]);
    }

    #[test]
    fn outage_with_dark_endpoints_still_confirmed() {
        let (data, mut mon) = monitor();
        let case = &data.cases[4];
        let mask = outage_endpoints_mask(14, case.endpoints);
        let mut raised_lines = None;
        for t in 0..6 {
            if let StreamEvent::Raised { lines, .. } =
                mon.push(&case.test.sample(t % case.test.len()).masked(&mask)).unwrap()
            {
                raised_lines = Some(lines);
            }
        }
        let lines = raised_lines.expect("event raised despite dark endpoints");
        assert!(lines.contains(&case.branch));
    }

    /// A corrupted channel riding along with a genuine outage: the
    /// bad-data screen excises it per-sample, the raise still localizes
    /// the true line, and both the event's `suspect_nodes` and the
    /// `bad_data_samples` counter carry the provenance.
    #[test]
    fn corrupted_channel_surfaces_in_raise_and_counters() {
        let (data, mut mon) = monitor();
        let case = &data.cases[2];
        // Victim channel far from the outage endpoints.
        let victim = (0..14)
            .find(|v| *v != case.endpoints.0 && *v != case.endpoints.1)
            .unwrap();
        let mut raised_suspects = None;
        for t in 0..6 {
            let clean = case.test.sample(t % case.test.len());
            let phasors: Vec<pmu_numerics::Complex64> = (0..clean.n_nodes())
                .map(|i| {
                    let z = clean.phasor_unchecked(i);
                    if i == victim {
                        pmu_numerics::Complex64::from_polar(z.abs(), z.arg() + 0.9)
                    } else {
                        z
                    }
                })
                .collect();
            let missing = clean.mask().missing_nodes();
            let sample = pmu_sim::PhasorSample::with_mask(
                phasors,
                pmu_sim::Mask::with_missing(clean.n_nodes(), &missing),
            );
            if let StreamEvent::Raised { lines, suspect_nodes } = mon.push(&sample).unwrap()
            {
                assert!(lines.contains(&case.branch), "localized {lines:?}");
                raised_suspects = Some(suspect_nodes);
            }
        }
        let suspects = raised_suspects.expect("outage raised despite corruption");
        assert!(suspects.contains(&victim), "raise carried {suspects:?}");
        let h = mon.health();
        assert!(h.bad_data_samples >= 3, "bad_data_samples={}", h.bad_data_samples);
        assert!(h.bad_data_samples <= h.samples_seen);
        // Snapshot/restore keeps the counter.
        let snap = mon.snapshot();
        let restored = StreamingDetector::restore(mon.detector().clone(), &snap).unwrap();
        assert_eq!(restored.health().bad_data_samples, h.bad_data_samples);
    }

    #[test]
    fn health_snapshot_tracks_counters() {
        use pmu_sim::Mask;
        let (data, mut mon) = monitor();
        assert_eq!(mon.health(), HealthSnapshot {
            samples_seen: 0,
            missing_samples: 0,
            missing_ratio: 0.0,
            events_raised: 0,
            events_cleared: 0,
            alarm_streak: 0,
            active: false,
            bad_data_samples: 0,
        });
        // Two unscorable (near-dark) samples absorbed as quiet votes.
        let dark = Mask::with_missing(14, &(0..12).collect::<Vec<_>>());
        for t in 0..2 {
            let s = data.normal_test.sample(t).masked(&dark);
            mon.push(&s).unwrap();
        }
        let h = mon.health();
        assert_eq!(h.samples_seen, 2);
        assert_eq!(h.missing_samples, 2);
        assert!((h.missing_ratio - 1.0).abs() < 1e-12);
        assert!(!h.active);
        // Sustained outage: raises once, streak grows.
        let case = &data.cases[2];
        for t in 0..4 {
            let _ = mon.push(&case.test.sample(t % case.test.len())).unwrap();
        }
        let h = mon.health();
        assert_eq!(h.events_raised, 1);
        assert_eq!(h.events_cleared, 0);
        assert!(h.active);
        assert!(h.alarm_streak >= 3, "streak={}", h.alarm_streak);
        // Restoration clears the event and resets the streak.
        for t in 0..6 {
            let _ = mon.push(&data.normal_test.sample(t % data.normal_test.len())).unwrap();
        }
        let h = mon.health();
        assert_eq!(h.events_cleared, 1);
        assert!(!h.active);
        assert_eq!(h.alarm_streak, 0);
        assert_eq!(h.samples_seen, 12);
        assert!((h.missing_ratio - 2.0 / 12.0).abs() < 1e-12);
    }

    /// The core fleet-serving guarantee: a monitor snapshotted mid-event
    /// (with unscorable samples in its window) and restored into a fresh
    /// instance replays the remaining stream bit-identically.
    #[test]
    fn snapshot_restore_replays_bit_identically() {
        use pmu_sim::Mask;
        let (data, mut mon) = monitor();
        let case = &data.cases[2];
        // Confirm an event, then darken the window so the snapshot point
        // carries history `None`s, an active event, and a live streak.
        for t in 0..4 {
            let _ = mon.push(&case.test.sample(t % case.test.len())).unwrap();
        }
        let dark = Mask::with_missing(14, &(0..12).collect::<Vec<_>>());
        for t in 0..2 {
            let _ = mon.push(&case.test.sample(t).masked(&dark)).unwrap();
        }
        let snap = mon.snapshot();
        assert!(snap.active, "snapshot taken mid-event");
        assert!(snap.history.iter().any(Option::is_none), "dark entries captured");

        let mut restored = StreamingDetector::restore(mon.detector().clone(), &snap).unwrap();
        assert_eq!(restored.snapshot(), snap, "restore is lossless");
        assert_eq!(restored.health(), mon.health());
        // Replay the same tail through both: outage tail, then clearing.
        let mut tail: Vec<_> =
            (0..3).map(|t| case.test.sample(t % case.test.len())).collect();
        tail.extend((0..6).map(|t| data.normal_test.sample(t % data.normal_test.len())));
        for s in &tail {
            assert_eq!(restored.push(s).unwrap(), mon.push(s).unwrap());
            assert_eq!(restored.health(), mon.health());
            assert_eq!(restored.state(), mon.state());
        }
        assert_eq!(mon.health().events_cleared, 1, "the tail really cleared the event");
    }

    /// The snapshot survives the vendored-serde JSON round trip and still
    /// restores to an equivalent monitor.
    #[test]
    fn snapshot_serde_roundtrip() {
        let (data, mut mon) = monitor();
        for t in 0..5 {
            let _ = mon.push(&data.cases[1].test.sample(t % data.cases[1].test.len()));
        }
        let snap = mon.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        use serde::Deserialize as _;
        let back =
            StreamSnapshot::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back, snap);
        let restored = StreamingDetector::restore(mon.detector().clone(), &back).unwrap();
        assert_eq!(restored.snapshot(), snap);
    }

    #[test]
    fn corrupt_snapshots_are_refused() {
        use crate::DetectError;
        let (data, mut mon) = monitor();
        for t in 0..3 {
            let _ = mon.push(&data.normal_test.sample(t));
        }
        let good = mon.snapshot();
        let det = || mon.detector().clone();
        let invalid = |s: StreamSnapshot| {
            matches!(
                StreamingDetector::restore(det(), &s),
                Err(DetectError::InvalidSnapshot(_))
            )
        };
        assert!(invalid(StreamSnapshot { votes: 0, ..good.clone() }));
        assert!(invalid(StreamSnapshot { votes: 9, window: 5, ..good.clone() }));
        let mut long = good.clone();
        long.history = (0..long.window + 1).map(|_| None).collect();
        long.samples_seen = long.window + 1;
        assert!(invalid(long));
        assert!(invalid(StreamSnapshot { samples_seen: 1, ..good.clone() }));
        assert!(invalid(StreamSnapshot { missing_samples: 99, ..good.clone() }));
        assert!(invalid(StreamSnapshot { bad_data_samples: 99, ..good.clone() }));
        assert!(invalid(StreamSnapshot { lines: vec![3], ..good.clone() }));
        // And the untouched snapshot still restores.
        assert!(StreamingDetector::restore(det(), &good).is_ok());
    }

    #[test]
    #[should_panic(expected = "votes <= window")]
    fn invalid_config_panics() {
        let (_, mon) = monitor();
        let det = mon.detector;
        let _ = StreamingDetector::new(det, StreamConfig { window: 3, votes: 5 });
    }
}
