//! # pmu-detect
//!
//! The paper's primary contribution: a **robust, data-driven power-line
//! outage detector** that keeps working when PMU measurements go missing.
//!
//! ## Pipeline (Sec. IV of the paper)
//!
//! 1. **Node-based subspace learning** ([`subspaces`]): every training case
//!    (normal operation `X⁰`, one window `X^{\e_ij}` per line outage)
//!    yields a signature subspace from its SVD; per node *i* the
//!    union/intersection subspaces `S_i^∪`, `S_i^∩` of Eq. (3) aggregate
//!    the subspaces of all lines touching *i*.
//! 2. **Normal-operation ellipses and detection capabilities**
//!    ([`ellipse`], [`capability`]): each node fits an ellipse `Ω_i` to its
//!    2-D phasor cloud (Eq. 4); the rate at which node *k*'s measurements
//!    leave `Ω_k` during an outage of line `e_ij` is its detection
//!    capability `p_k(F)` (Eq. 5), aggregated per node pair by
//!    inclusion–exclusion (Eq. 7).
//! 3. **Detection groups** ([`groups`]): per PDC cluster, an in-cluster
//!    group `D_C(C)` and an out-of-cluster alternative `D_C(C̄)` of nodes
//!    with near-unit capability (Eq. 8), falling back to the naive
//!    orthogonal-loading choice at mixing fraction 0 (the Fig. 4 ablation).
//! 4. **Robust proximity and localization** ([`proximity`], [`detector`]):
//!    the proximity of a (possibly incomplete) sample to a subspace is the
//!    residual of its observed sub-vector on the row-restricted basis
//!    (Eq. 9–10); proximities are scaled by Eq. (11) and the
//!    proximity-rule prefix over the grid graph yields the outaged
//!    line set `F̂`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod capability;
pub mod config;
pub mod detector;
pub mod ellipse;
pub mod error;
pub mod explain;
pub mod groups;
pub mod proximity;
pub mod recovery;
pub mod scoring;
pub mod stream;
pub mod subspaces;

pub use config::DetectorConfig;
pub use detector::{Detection, Detector};
pub use error::DetectError;
pub use scoring::{RestrictedBank, ScoringCache};

/// Convenience result alias for detector operations.
pub type Result<T> = std::result::Result<T, DetectError>;
