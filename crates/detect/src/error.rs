//! Error type for the detector.

use std::fmt;

/// Errors produced while training or running the detector.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectError {
    /// The training dataset is unusable (no cases, empty windows…).
    InvalidTrainingData(String),
    /// The detector configuration is inconsistent.
    InvalidConfig(String),
    /// A test sample is incompatible with the trained model.
    SampleMismatch {
        /// Nodes the model was trained for.
        expected: usize,
        /// Nodes in the offending sample.
        got: usize,
    },
    /// Too few observed measurements to evaluate any detection group.
    InsufficientData {
        /// Number of observed measurements in the sample.
        observed: usize,
        /// Minimum the detector needs.
        needed: usize,
    },
    /// An *observed* (unmasked) measurement is NaN or infinite. The data
    /// contract of `pmu_sim::sample` is "missing entries are masked,
    /// never NaN" — a non-finite value that reaches the detector is
    /// corrupted input and must not leak into the proximity math.
    NonFinite {
        /// Node whose observed measurement is non-finite.
        node: usize,
    },
    /// An underlying numerical routine failed.
    Numerics(String),
    /// A persisted stream snapshot violates the monitor's invariants
    /// (impossible voting config, oversized history, inconsistent event
    /// state). Restoring such a snapshot would resurrect a monitor that
    /// [`StreamingDetector::new`](crate::stream::StreamingDetector::new)
    /// could never have produced, so it is refused instead.
    InvalidSnapshot(String),
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::InvalidTrainingData(m) => write!(f, "invalid training data: {m}"),
            DetectError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            DetectError::SampleMismatch { expected, got } => {
                write!(f, "sample has {got} nodes, model expects {expected}")
            }
            DetectError::InsufficientData { observed, needed } => {
                write!(f, "only {observed} observed measurements, need at least {needed}")
            }
            DetectError::NonFinite { node } => {
                write!(f, "observed measurement at node {node} is NaN or infinite")
            }
            DetectError::Numerics(m) => write!(f, "numerics failure: {m}"),
            DetectError::InvalidSnapshot(m) => write!(f, "invalid stream snapshot: {m}"),
        }
    }
}

impl std::error::Error for DetectError {}

impl From<pmu_numerics::NumericsError> for DetectError {
    fn from(e: pmu_numerics::NumericsError) -> Self {
        DetectError::Numerics(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DetectError::InvalidTrainingData("x".into()).to_string().contains("x"));
        assert!(DetectError::InvalidConfig("y".into()).to_string().contains("y"));
        assert!(DetectError::SampleMismatch { expected: 14, got: 30 }
            .to_string()
            .contains("14"));
        assert!(DetectError::InsufficientData { observed: 2, needed: 7 }
            .to_string()
            .contains("2"));
        assert!(DetectError::NonFinite { node: 9 }.to_string().contains("node 9"));
        assert!(DetectError::InvalidSnapshot("bad".into()).to_string().contains("bad"));
        let e: DetectError = pmu_numerics::NumericsError::invalid("op", "m").into();
        assert!(matches!(e, DetectError::Numerics(_)));
    }
}
