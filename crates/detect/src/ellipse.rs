//! Normal-operation ellipses — Eq. (4) of the paper.
//!
//! Every node fits an ellipse `Ω_i = { x ∈ R² | (x−c)ᵀ A (x−c) ≤ 1 }` to
//! its 2-D phasor cloud (magnitude, angle) under normal operation, such
//! that *all* training points lie inside. Membership of a fresh point in
//! `Ω_i` is the per-node failure-detection criterion feeding the
//! capability statistics of Eq. (5).
//!
//! Two fitting methods are provided: a covariance ellipse inflated to the
//! farthest training point (fast, the default) and Khachiyan's
//! minimum-volume enclosing ellipsoid (tight; used by the ablation bench).

use crate::config::EllipseMethod;
use crate::error::DetectError;
use crate::Result;
use pmu_numerics::eigen::sym_eigen;
use pmu_numerics::Matrix;

/// A 2-D ellipse `{ x | (x − c)ᵀ A (x − c) ≤ 1 }` with `A` symmetric
/// positive definite.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone)]
pub struct Ellipse {
    /// Center `c`.
    pub center: [f64; 2],
    /// Shape matrix `A`, row-major `[[a00, a01], [a10, a11]]`.
    pub shape: [[f64; 2]; 2],
}

impl Ellipse {
    /// The quadratic form `(x − c)ᵀ A (x − c)`; `≤ 1` means inside.
    pub fn quad_form(&self, x: [f64; 2]) -> f64 {
        let dx = x[0] - self.center[0];
        let dy = x[1] - self.center[1];
        self.shape[0][0] * dx * dx
            + (self.shape[0][1] + self.shape[1][0]) * dx * dy
            + self.shape[1][1] * dy * dy
    }

    /// Is `x` inside (or on) the ellipse?
    pub fn contains(&self, x: [f64; 2]) -> bool {
        self.quad_form(x) <= 1.0
    }

    /// Fit an ellipse to `points` with the requested method and safety
    /// margin (`margin ≥ 1` inflates the semi-axes by that factor).
    ///
    /// # Errors
    /// Returns [`DetectError::InvalidTrainingData`] for fewer than three
    /// points or a degenerate (collinear) cloud.
    pub fn fit(points: &[[f64; 2]], method: EllipseMethod, margin: f64) -> Result<Ellipse> {
        if points.len() < 3 {
            return Err(DetectError::InvalidTrainingData(format!(
                "ellipse fit needs >= 3 points, got {}",
                points.len()
            )));
        }
        let mut e = match method {
            EllipseMethod::ScaledCovariance => fit_scaled_covariance(points)?,
            EllipseMethod::MinVolume => fit_mvee(points)?,
        };
        // Inflate: scaling semi-axes by m scales A by 1/m².
        let s = 1.0 / (margin * margin);
        for row in &mut e.shape {
            for v in row {
                *v *= s;
            }
        }
        Ok(e)
    }
}

/// Covariance ellipse inflated to cover the farthest point.
fn fit_scaled_covariance(points: &[[f64; 2]]) -> Result<Ellipse> {
    let n = points.len();
    let mut cx = 0.0;
    let mut cy = 0.0;
    for p in points {
        cx += p[0];
        cy += p[1];
    }
    cx /= n as f64;
    cy /= n as f64;

    // 2x2 covariance with a noise floor so degenerate clouds still invert.
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for p in points {
        let dx = p[0] - cx;
        let dy = p[1] - cy;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    let denom = (n - 1) as f64;
    sxx /= denom;
    sxy /= denom;
    syy /= denom;
    // Noise floor sized so that the cancellation error in the quadratic
    // form of a near-collinear cloud stays far below 1 (see the collinear
    // regression test).
    let floor = 1e-9 * (1.0 + sxx.abs() + syy.abs());
    sxx += floor;
    syy += floor;

    let det = sxx * syy - sxy * sxy;
    if det <= 0.0 {
        return Err(DetectError::InvalidTrainingData(
            "degenerate (collinear) point cloud".into(),
        ));
    }
    // Inverse covariance.
    let inv = [[syy / det, -sxy / det], [-sxy / det, sxx / det]];

    // Scale so the farthest point has quadratic form exactly 1.
    let mut max_q = 0.0_f64;
    for p in points {
        let dx = p[0] - cx;
        let dy = p[1] - cy;
        let q = inv[0][0] * dx * dx + 2.0 * inv[0][1] * dx * dy + inv[1][1] * dy * dy;
        max_q = max_q.max(q);
    }
    let s = 1.0 / max_q.max(1e-300);
    Ok(Ellipse {
        center: [cx, cy],
        shape: [[inv[0][0] * s, inv[0][1] * s], [inv[1][0] * s, inv[1][1] * s]],
    })
}

/// Khachiyan's algorithm for the minimum-volume enclosing ellipsoid.
fn fit_mvee(points: &[[f64; 2]]) -> Result<Ellipse> {
    const TOL: f64 = 1e-6;
    const MAX_ITER: usize = 500;
    let n = points.len();
    let d = 2usize;

    // Lifted points Q = [x; 1] as a 3×n matrix.
    let q = Matrix::from_fn(d + 1, n, |r, c| if r < d { points[c][r] } else { 1.0 });
    let mut u = vec![1.0 / n as f64; n];

    for _ in 0..MAX_ITER {
        // M = Q diag(u) Qᵀ (3×3).
        let mut m = Matrix::zeros(d + 1, d + 1);
        for c in 0..n {
            for i in 0..=d {
                for j in 0..=d {
                    m[(i, j)] += u[c] * q[(i, c)] * q[(j, c)];
                }
            }
        }
        let inv = pmu_numerics::lu::LuFactors::factorize(&m)
            .and_then(|lu| lu.inverse())
            .map_err(|e| DetectError::InvalidTrainingData(format!("MVEE singular: {e}")))?;
        // jth "distance": qⱼᵀ M⁻¹ qⱼ.
        let mut jmax = 0usize;
        let mut maximum = f64::MIN;
        for c in 0..n {
            let mut acc = 0.0;
            for i in 0..=d {
                for j in 0..=d {
                    acc += q[(i, c)] * inv[(i, j)] * q[(j, c)];
                }
            }
            if acc > maximum {
                maximum = acc;
                jmax = c;
            }
        }
        let step = (maximum - (d + 1) as f64) / (((d + 1) as f64) * (maximum - 1.0));
        if step <= TOL {
            break;
        }
        for (c, w) in u.iter_mut().enumerate() {
            *w *= 1.0 - step;
            if c == jmax {
                *w += step;
            }
        }
    }

    // Center and shape: c = P u; A = (1/d) (P diag(u) Pᵀ − c cᵀ)⁻¹.
    let mut cx = 0.0;
    let mut cy = 0.0;
    for (c, w) in u.iter().enumerate() {
        cx += w * points[c][0];
        cy += w * points[c][1];
    }
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (c, w) in u.iter().enumerate() {
        sxx += w * points[c][0] * points[c][0];
        sxy += w * points[c][0] * points[c][1];
        syy += w * points[c][1] * points[c][1];
    }
    sxx -= cx * cx;
    sxy -= cx * cy;
    syy -= cy * cy;
    let floor = 1e-14 * (1.0 + sxx.abs() + syy.abs());
    sxx += floor;
    syy += floor;
    let det = sxx * syy - sxy * sxy;
    if det <= 0.0 {
        return Err(DetectError::InvalidTrainingData(
            "degenerate (collinear) point cloud".into(),
        ));
    }
    let scale = 1.0 / (d as f64);
    let a = [
        [scale * syy / det, -scale * sxy / det],
        [-scale * sxy / det, scale * sxx / det],
    ];
    // Khachiyan's iterate can stop slightly short of covering every point;
    // inflate so the farthest one is exactly on the boundary.
    let mut e = Ellipse { center: [cx, cy], shape: a };
    let max_q = points.iter().map(|&p| e.quad_form(p)).fold(0.0_f64, f64::max);
    if max_q > 1.0 {
        let s = 1.0 / max_q;
        for row in &mut e.shape {
            for v in row {
                *v *= s;
            }
        }
    }
    Ok(e)
}

/// Semi-axis lengths of an ellipse (descending), from the eigenvalues of
/// its shape matrix (`len = 1/√λ`).
pub fn semi_axes(e: &Ellipse) -> Result<[f64; 2]> {
    let a = Matrix::from_rows(
        2,
        2,
        vec![e.shape[0][0], e.shape[0][1], e.shape[1][0], e.shape[1][1]],
    )?;
    let eig = sym_eigen(&a)?;
    // Eigenvalues descending → axes ascending; report descending axes.
    Ok([1.0 / eig.values[1].max(1e-300).sqrt(), 1.0 / eig.values[0].max(1e-300).sqrt()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_points(cx: f64, cy: f64, rx: f64, ry: f64, n: usize) -> Vec<[f64; 2]> {
        (0..n)
            .map(|k| {
                let t = std::f64::consts::TAU * k as f64 / n as f64;
                [cx + rx * t.cos(), cy + ry * t.sin()]
            })
            .collect()
    }

    #[test]
    fn covariance_fit_covers_all_points() {
        let pts = ring_points(1.0, -0.5, 0.02, 0.01, 40);
        let e = Ellipse::fit(&pts, EllipseMethod::ScaledCovariance, 1.0).unwrap();
        for p in &pts {
            assert!(e.quad_form(*p) <= 1.0 + 1e-9);
        }
        // Center recovered.
        assert!((e.center[0] - 1.0).abs() < 1e-6);
        assert!((e.center[1] + 0.5).abs() < 1e-6);
        // A point far outside is rejected.
        assert!(!e.contains([1.1, -0.5]));
        // The center is inside.
        assert!(e.contains([1.0, -0.5]));
    }

    #[test]
    fn mvee_covers_and_is_tighter_than_loose_cov() {
        let pts = ring_points(0.0, 0.0, 1.0, 0.5, 24);
        let mv = Ellipse::fit(&pts, EllipseMethod::MinVolume, 1.0).unwrap();
        for p in &pts {
            assert!(mv.quad_form(*p) <= 1.0 + 1e-6, "point escaped MVEE");
        }
        // For a symmetric ring the MVEE semi-axes approach (1.0, 0.5).
        let axes = semi_axes(&mv).unwrap();
        assert!((axes[0] - 1.0).abs() < 0.1, "major {}", axes[0]);
        assert!((axes[1] - 0.5).abs() < 0.1, "minor {}", axes[1]);
    }

    #[test]
    fn margin_inflates() {
        let pts = ring_points(0.0, 0.0, 1.0, 1.0, 16);
        let tight = Ellipse::fit(&pts, EllipseMethod::ScaledCovariance, 1.0).unwrap();
        let loose = Ellipse::fit(&pts, EllipseMethod::ScaledCovariance, 2.0).unwrap();
        // A point on the tight boundary is well inside the loose one.
        let p = [1.0, 0.0];
        assert!(tight.quad_form(p) > 0.5);
        assert!(loose.quad_form(p) < tight.quad_form(p) * 0.3);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(Ellipse::fit(&[[0.0, 0.0]], EllipseMethod::ScaledCovariance, 1.0).is_err());
        assert!(Ellipse::fit(
            &[[0.0, 0.0], [1.0, 1.0]],
            EllipseMethod::MinVolume,
            1.0
        )
        .is_err());
        // Collinear clouds still produce an ellipse thanks to the noise
        // floor (a needle), and contain their own points.
        let collinear: Vec<[f64; 2]> = (0..10).map(|k| [k as f64, 2.0 * k as f64]).collect();
        let e = Ellipse::fit(&collinear, EllipseMethod::ScaledCovariance, 1.0).unwrap();
        for p in &collinear {
            assert!(e.quad_form(*p) <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn anisotropic_cloud_orientation() {
        // Points along y = x should produce an ellipse elongated along the
        // diagonal: (1,1)/√2 direction has small quadratic form growth.
        let mut pts = Vec::new();
        for k in 0..60 {
            let t = (k as f64 / 59.0) * 2.0 - 1.0;
            pts.push([t, t + 0.01 * (k as f64 * 0.7).sin()]);
        }
        let e = Ellipse::fit(&pts, EllipseMethod::ScaledCovariance, 1.0).unwrap();
        let along = e.quad_form([e.center[0] + 0.1, e.center[1] + 0.1]);
        let across = e.quad_form([e.center[0] + 0.1, e.center[1] - 0.1]);
        assert!(across > 10.0 * along, "across {across} vs along {along}");
    }

    #[test]
    fn capability_counting_usage() {
        // Normal cloud near (1.0, 0): every normal point inside; shifted
        // cloud simulating an outage mostly outside (the Eq. 5 numerator).
        let normal = ring_points(1.0, 0.0, 0.005, 0.005, 30);
        let e = Ellipse::fit(&normal, EllipseMethod::ScaledCovariance, 1.05).unwrap();
        assert!(normal.iter().all(|&p| e.contains(p)));
        let outage = ring_points(1.0, 0.08, 0.005, 0.005, 30);
        let outside = outage.iter().filter(|&&p| !e.contains(p)).count();
        assert_eq!(outside, 30, "shifted cloud must be fully outside");
    }
}
