//! Subspace-based missing-data recovery.
//!
//! The paper deliberately avoids *depending* on missing-sample
//! reconstruction for detection (its refs. \[8\]–\[9\] do, and inherit the
//! recovery's latency and error), but the learned subspaces make a
//! recovery estimator available essentially for free: a sample lying in a
//! learned subspace is fully determined by enough of its coordinates
//! (`x̂_R = U_R U_D⁺ x_D`, the regressor of Eq. 9's source \[12\]).
//!
//! This module packages that as a standalone `SubspaceRecovery` usable by
//! downstream applications (e.g. state estimation) and — in the spirit of
//! the paper's comparison — by the MLR baseline, so the cost of
//! "recover-then-classify" can be measured against detection-group
//! robustness (see `repro ablations` and the recovery integration tests).

use crate::config::DetectorConfig;
use crate::error::DetectError;
use crate::proximity::{proximity, reconstruct_sample};
use crate::subspaces::{case_subspace, learn_subspaces, LearnedSubspaces};
use crate::Result;
use pmu_numerics::Vector;
use pmu_sim::dataset::Dataset;
use pmu_sim::{MeasurementKind, PhasorSample};

/// A trained subspace recovery model.
#[derive(Debug, Clone)]
pub struct SubspaceRecovery {
    subspaces: LearnedSubspaces,
    kind: MeasurementKind,
    /// Per-node training means (fallback when nothing can be inferred).
    means: Vec<f64>,
}

/// The outcome of recovering one sample.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// The full measurement vector: observed entries verbatim, missing
    /// ones estimated.
    pub values: Vec<f64>,
    /// Indices that were estimated rather than observed.
    pub estimated: Vec<usize>,
    /// Which learned subspace produced the estimate (`None` = normal
    /// operation, `Some(ci)` = outage case `ci`).
    pub source_case: Option<usize>,
}

impl SubspaceRecovery {
    /// Learn recovery subspaces from a dataset (the same windows the
    /// detector trains on).
    ///
    /// # Errors
    /// Propagates subspace-learning failures.
    pub fn train(data: &Dataset, cfg: &DetectorConfig) -> Result<Self> {
        let mut subspaces = learn_subspaces(data, cfg)?;
        // Recovery benefits from a richer normal basis than detection
        // (no decision threshold involved, so overfitting is harmless).
        let t = data.normal_train.len();
        let dim = (data.n_nodes() / 4).max(cfg.subspace_dim).min((t * 2 / 3).max(1));
        subspaces.normal = case_subspace(data.normal_train.matrix(cfg.kind), dim)?;
        let m = data.normal_train.matrix(cfg.kind);
        let means = (0..m.rows())
            .map(|r| m.row(r).iter().sum::<f64>() / m.cols().max(1) as f64)
            .collect();
        Ok(SubspaceRecovery { subspaces, kind: cfg.kind, means })
    }

    /// Number of nodes covered.
    pub fn n_nodes(&self) -> usize {
        self.means.len()
    }

    /// Recover the missing entries of a sample.
    ///
    /// The best-matching learned subspace (normal or any outage case,
    /// judged by proximity on the observed coordinates) supplies the
    /// reconstruction; when fewer observed coordinates remain than the
    /// basis needs, the training means fill in.
    ///
    /// # Errors
    /// Returns [`DetectError::SampleMismatch`] for a wrong-sized sample.
    pub fn recover(&self, sample: &PhasorSample) -> Result<Recovered> {
        let n = self.n_nodes();
        if sample.n_nodes() != n {
            return Err(DetectError::SampleMismatch { expected: n, got: sample.n_nodes() });
        }
        let observed = sample.mask().observed();
        let estimated = sample.mask().missing_nodes();
        if estimated.is_empty() {
            let values = (0..n)
                .map(|i| sample.value(i, self.kind).expect("complete sample"))
                .collect();
            return Ok(Recovered { values, estimated, source_case: None });
        }
        // Mean fallback when almost everything is dark.
        if observed.len() < 3 {
            let values = (0..n)
                .map(|i| sample.value(i, self.kind).unwrap_or(self.means[i]))
                .collect();
            return Ok(Recovered { values, estimated, source_case: None });
        }

        let x_d = Vector::from(
            sample.values_for(&observed, self.kind).expect("observed unmasked"),
        );
        // Pick the best-matching subspace on the observed coordinates.
        let mut best: (Option<usize>, f64) =
            (None, proximity(&self.subspaces.normal, &observed, &x_d)?);
        for (ci, s) in self.subspaces.per_case.iter().enumerate() {
            let r = proximity(s, &observed, &x_d)?;
            if r < best.1 {
                best = (Some(ci), r);
            }
        }
        let space = match best.0 {
            None => &self.subspaces.normal,
            Some(ci) => &self.subspaces.per_case[ci],
        };
        let full = reconstruct_sample(space, &observed, &x_d)?;
        Ok(Recovered {
            values: full.into_vec(),
            estimated,
            source_case: best.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu_grid::cases::ieee14;
    use pmu_sim::missing::outage_endpoints_mask;
    use pmu_sim::{generate_dataset, GenConfig, Mask};

    fn setup() -> (Dataset, SubspaceRecovery) {
        let net = ieee14().unwrap();
        let gen = GenConfig { train_len: 24, test_len: 6, ..GenConfig::default() };
        let data = generate_dataset(&net, &gen).unwrap();
        let rec = SubspaceRecovery::train(&data, &DetectorConfig::default()).unwrap();
        (data, rec)
    }

    /// RMS error of the estimated entries against ground truth.
    fn recovery_rmse(
        rec: &SubspaceRecovery,
        sample: &PhasorSample,
        mask: &Mask,
    ) -> f64 {
        let masked = sample.masked(mask);
        let out = rec.recover(&masked).unwrap();
        let mut acc = 0.0;
        for &i in &out.estimated {
            let truth = sample.value(i, MeasurementKind::Angle).unwrap();
            acc += (out.values[i] - truth) * (out.values[i] - truth);
        }
        (acc / out.estimated.len().max(1) as f64).sqrt()
    }

    #[test]
    fn complete_sample_passes_through() {
        let (data, rec) = setup();
        let s = data.normal_test.sample(0);
        let out = rec.recover(&s).unwrap();
        assert!(out.estimated.is_empty());
        for i in 0..14 {
            assert_eq!(out.values[i], s.value(i, MeasurementKind::Angle).unwrap());
        }
    }

    #[test]
    fn normal_sample_recovery_beats_mean_imputation() {
        let (data, rec) = setup();
        let mask = Mask::with_missing(14, &[3, 8]);
        let s = data.normal_test.sample(1);
        let rmse = recovery_rmse(&rec, &s, &mask);
        // Mean-imputation error baseline.
        let mut mean_err = 0.0;
        for &i in &[3usize, 8] {
            let truth = s.value(i, MeasurementKind::Angle).unwrap();
            mean_err += (rec.means[i] - truth) * (rec.means[i] - truth);
        }
        let mean_rmse = (mean_err / 2.0).sqrt();
        assert!(
            rmse < mean_rmse,
            "subspace recovery {rmse:.2e} must beat mean imputation {mean_rmse:.2e}"
        );
        // Absolute error near the noise floor (1e-3 rad).
        assert!(rmse < 5e-3, "rmse {rmse}");
    }

    #[test]
    fn outage_sample_recovery_uses_case_subspace() {
        let (data, rec) = setup();
        let case = &data.cases[3];
        let mask = outage_endpoints_mask(14, case.endpoints);
        let s = case.test.sample(0);
        let out = rec.recover(&s.masked(&mask)).unwrap();
        // The matching outage subspace (not normal) supplies the estimate.
        assert!(out.source_case.is_some(), "outage sample matched normal subspace");
        let rmse = recovery_rmse(&rec, &s, &mask);
        assert!(rmse < 1e-2, "outage recovery rmse {rmse}");
    }

    #[test]
    fn heavy_missing_falls_back_to_means() {
        let (data, rec) = setup();
        let mask = Mask::with_missing(14, &(0..12).collect::<Vec<_>>());
        let out = rec.recover(&data.normal_test.sample(0).masked(&mask)).unwrap();
        assert_eq!(out.estimated.len(), 12);
        assert!(out.values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn wrong_size_rejected() {
        let (_, rec) = setup();
        let bad = PhasorSample::complete(vec![pmu_numerics::Complex64::ONE; 3]);
        assert!(matches!(rec.recover(&bad), Err(DetectError::SampleMismatch { .. })));
    }
}
