//! Human-readable detection reports for control-room operators.
//!
//! A raw [`Detection`] is a line set plus
//! residual numbers; an operator acting on it wants to know *why*: which
//! measurements were missing, which detection group stood in, how decisive
//! the ranking was. This module renders that story as plain text.

use crate::detector::{Detection, Detector};
use pmu_sim::PhasorSample;
use std::fmt::Write;

/// A structured explanation of one detection.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The verdict being explained.
    pub outage: bool,
    /// Identified lines.
    pub lines: Vec<usize>,
    /// Missing measurements in the sample.
    pub missing_nodes: Vec<usize>,
    /// PDC clusters with at least one dark member (these used their
    /// out-of-cluster alternative groups per Eq. 10).
    pub dark_clusters: Vec<usize>,
    /// Top-ranked suspect nodes with their scaled proximities.
    pub top_suspects: Vec<(usize, f64)>,
    /// How decisively the best node beat the runner-up (ratio ≥ 1;
    /// larger = more decisive).
    pub ranking_margin: f64,
    /// Normal residual vs threshold.
    pub residual_ratio: f64,
}

/// Build an explanation from a sample and its detection.
pub fn explain(det: &Detector, sample: &PhasorSample, detection: &Detection) -> Explanation {
    let missing_nodes = sample.mask().missing_nodes();
    let clustering = det.clustering();
    let mut dark_clusters: Vec<usize> =
        missing_nodes.iter().map(|&n| clustering.cluster_of(n)).collect();
    dark_clusters.sort_unstable();
    dark_clusters.dedup();

    let top_suspects: Vec<(usize, f64)> =
        detection.node_ranking.iter().take(5).copied().collect();
    let ranking_margin = match (detection.node_ranking.first(), detection.node_ranking.get(1))
    {
        (Some(&(_, best)), Some(&(_, second))) if best > 0.0 => second / best,
        _ => 1.0,
    };
    Explanation {
        outage: detection.outage,
        lines: detection.lines.clone(),
        missing_nodes,
        dark_clusters,
        top_suspects,
        ranking_margin,
        residual_ratio: detection.normal_residual / detection.threshold.max(1e-300),
    }
}

/// Render the explanation as an operator-facing text block.
pub fn render(e: &Explanation) -> String {
    let mut s = String::new();
    if e.outage {
        let _ = writeln!(s, "OUTAGE DETECTED — lines {:?}", e.lines);
    } else {
        let _ = writeln!(s, "normal operation");
    }
    let _ = writeln!(
        s,
        "  normal-subspace residual at {:.1}x the decision threshold",
        e.residual_ratio
    );
    if e.missing_nodes.is_empty() {
        let _ = writeln!(s, "  all PMU measurements present");
    } else {
        let _ = writeln!(
            s,
            "  {} measurements missing (nodes {:?}); clusters {:?} used their \
             out-of-cluster detection groups",
            e.missing_nodes.len(),
            e.missing_nodes,
            e.dark_clusters
        );
    }
    if e.outage {
        let _ = writeln!(s, "  suspect nodes (scaled proximity, lower = closer):");
        for (node, score) in &e.top_suspects {
            let _ = writeln!(s, "    node {node:>4}  {score:.3e}");
        }
        let _ = writeln!(
            s,
            "  ranking margin: runner-up {:.1}x the best suspect",
            e.ranking_margin
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::train_default;
    use pmu_grid::cases::ieee14;
    use pmu_sim::missing::outage_endpoints_mask;
    use pmu_sim::{generate_dataset, GenConfig};

    fn setup() -> (pmu_sim::Dataset, Detector) {
        let net = ieee14().unwrap();
        let gen = GenConfig { train_len: 16, test_len: 4, ..GenConfig::default() };
        let data = generate_dataset(&net, &gen).unwrap();
        let det = train_default(&data).unwrap();
        (data, det)
    }

    #[test]
    fn explains_an_outage_with_missing_data() {
        let (data, det) = setup();
        let case = &data.cases[1];
        let mask = outage_endpoints_mask(14, case.endpoints);
        let sample = case.test.sample(0).masked(&mask);
        let d = det.detect(&sample).unwrap();
        let e = explain(&det, &sample, &d);
        assert_eq!(e.outage, d.outage);
        assert_eq!(e.missing_nodes.len(), 2);
        assert!(!e.dark_clusters.is_empty());
        assert!(e.ranking_margin >= 1.0);
        let text = render(&e);
        assert!(text.contains("measurements missing"));
        if d.outage {
            assert!(text.contains("OUTAGE DETECTED"));
            assert!(text.contains("suspect nodes"));
        }
    }

    #[test]
    fn explains_normal_operation() {
        let (data, det) = setup();
        let sample = data.normal_test.sample(0);
        let d = det.detect(&sample).unwrap();
        let e = explain(&det, &sample, &d);
        let text = render(&e);
        if !d.outage {
            assert!(text.contains("normal operation"));
            assert!(text.contains("all PMU measurements present"));
            assert!(e.residual_ratio < 1.0);
        }
    }
}
