//! The end-to-end detector — Sec. IV-C of the paper.
//!
//! Training learns, in order: PDC clusters, case/node subspaces (Eq. 3),
//! per-node ellipses (Eq. 4), detection capabilities (Eq. 5–7), detection
//! groups (Eq. 8), and a normal-operation decision threshold from training
//! residuals. Detection on a (possibly incomplete) sample then:
//!
//! 1. evaluates the proximity of the observed data to `S⁰` and to the
//!    best-matching outage subspace — a sample is *normal* when its `S⁰`
//!    residual stays under the learned threshold and no outage subspace
//!    explains the data decisively better (this is what lets the scheme
//!    tell data problems apart from physical failures);
//! 2. per node *i*, selects the detection group per Eq. (10) (in-cluster
//!    when the node's cluster is fully observed, out-of-cluster
//!    otherwise), computes proximities to `S_i^∪`, `S_i^∩` and `S⁰`
//!    restricted to the group (Eq. 9), and scales them per Eq. (11).
//!    The proximity to the union `S_i^∪ = ⋃_k S^{\e_ik}` is the minimum
//!    of the per-member proximities — the distance to a union of sets is
//!    the minimum of the member distances;
//! 3. ranks nodes by scaled proximity, extends the best node into a
//!    connected *proximity-rule* prefix, and emits the candidate line set
//!    `F̂` by scoring each in-prefix line's own outage subspace.

// Indexed loops are the clearest expression of the dense numerical
// kernels in this module.
#![allow(clippy::needless_range_loop)]

use crate::capability::{fit_node_ellipses, learn_capabilities, CapabilityMatrix};
use crate::config::DetectorConfig;
use crate::error::DetectError;
use crate::groups::{build_groups, DetectionGroups};
use crate::proximity::proximity;
use crate::subspaces::{learn_subspaces, LearnedSubspaces};
use crate::Result;
use pmu_grid::cluster::{partition_clusters, Clustering};
use pmu_grid::Network;
use pmu_numerics::stats::quantile;
use pmu_numerics::{Matrix, Vector};
use pmu_sim::dataset::Dataset;
use pmu_sim::{PhasorSample, PhasorWindow};

/// Floor protecting the Eq. (11) division.
const PROX_EPS: f64 = 1e-18;

/// The result of running the detector on one sample.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// `true` when the sample is classified as containing an outage.
    pub outage: bool,
    /// Branch indices of the identified outaged lines (`F̂`); empty for a
    /// normal classification.
    pub lines: Vec<usize>,
    /// Nodes ranked by scaled proximity, ascending (most suspicious
    /// first); only meaningful when `outage`.
    pub node_ranking: Vec<(usize, f64)>,
    /// The `S⁰` residual of the observed data (per residual dimension).
    pub normal_residual: f64,
    /// The best per-case outage-subspace residual of the observed data.
    pub best_case_residual: f64,
    /// The decision threshold the `S⁰` residual was compared against.
    pub threshold: f64,
}

/// A trained outage detector.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone)]
pub struct Detector {
    cfg: DetectorConfig,
    n: usize,
    /// Branch index of each learned outage case (aligned with the learned
    /// per-case subspaces).
    case_branch: Vec<usize>,
    /// Endpoints of each learned case.
    case_endpoints: Vec<(usize, usize)>,
    /// Cases incident to each node (the paper's `F_i`).
    incident_cases: Vec<Vec<usize>>,
    /// Bus adjacency over in-service lines.
    adjacency: Vec<Vec<usize>>,
    clustering: Clustering,
    subspaces: LearnedSubspaces,
    capabilities: CapabilityMatrix,
    groups: DetectionGroups,
    /// Hard threshold: `S⁰` residual above this is an outage outright.
    threshold: f64,
    /// Soft threshold (the largest calibration residual): the ratio test
    /// against the best outage subspace only applies above this floor, so
    /// noise-level residual fluctuations can never trip it.
    threshold_soft: f64,
    /// Calibrated ratio cut for the ratio test (≤ `cfg.decision_ratio`):
    /// on held-out normal samples with *light* random masks, the best
    /// outage subspace never undercut `S⁰` by more than this factor.
    ratio_cut: f64,
    /// As `ratio_cut`, calibrated against *heavy* masks (a dark PDC
    /// cluster); applied when a large share of the sample is missing.
    ratio_cut_heavy: f64,
}

impl Detector {
    /// Train a detector on a dataset.
    ///
    /// # Errors
    /// Returns configuration and training-data validation errors, and
    /// propagates numerical failures from the learning stages.
    pub fn train(data: &Dataset, cfg: &DetectorConfig) -> Result<Self> {
        cfg.validate()?;
        let net = &data.network;
        let n = net.n_buses();
        let mut trace_span = pmu_obs::span("detect.train")
            .with("system", net.name.as_str())
            .with("buses", n)
            .with("cases", data.cases.len());
        if data.normal_train.n_nodes() != n {
            return Err(DetectError::InvalidTrainingData(
                "normal window node count differs from network".into(),
            ));
        }
        let n_clusters = cfg.n_clusters.min(n);
        let clustering = partition_clusters(net, n_clusters)
            .map_err(|e| DetectError::InvalidTrainingData(e.to_string()))?;
        let mut subspaces = learn_subspaces(data, cfg)?;
        // Hold out the tail of the normal window for threshold calibration
        // and refit S⁰ on the head only, so calibration sees honest
        // residuals (the OU load process drifts over the window).
        let t_total = data.normal_train.len();
        let holdout_start = (t_total * 2 / 3).clamp(1, t_total.saturating_sub(2));
        if t_total >= 6 {
            let head: Vec<usize> = (0..holdout_start).collect();
            let head_m = data.normal_train.matrix(cfg.kind).select_columns(&head);
            let t = head.len();
            let normal_dim = cfg
                .normal_dim
                .unwrap_or_else(|| cfg.subspace_dim.max(n / 6))
                .min((t / 2).max(cfg.subspace_dim));
            subspaces.normal = crate::subspaces::case_subspace(&head_m, normal_dim)?;
        }
        let ellipses = fit_node_ellipses(&data.normal_train, cfg)?;
        let capabilities = learn_capabilities(data, &ellipses, cfg)?;

        // PCA loading matrix for the naive-group ablation: normal + all
        // outage training windows concatenated. hcat_all preallocates the
        // full width once; folding pairwise hcat here is O(cases²) copies.
        let mut parts: Vec<&Matrix> = Vec::with_capacity(1 + data.cases.len());
        parts.push(data.normal_train.matrix(cfg.kind));
        for case in &data.cases {
            parts.push(case.train.matrix(cfg.kind));
        }
        let concat = Matrix::hcat_all(&parts)?;
        let groups = build_groups(&clustering, &capabilities, &concat, cfg)?;

        let calib = calibrate(&subspaces, &data.normal_train, holdout_start, cfg)?;
        let (threshold, threshold_soft, ratio_cut, ratio_cut_heavy) =
            (calib.hard, calib.soft, calib.ratio_cut, calib.ratio_cut_heavy);

        let case_branch: Vec<usize> = data.cases.iter().map(|c| c.branch).collect();
        let case_endpoints: Vec<(usize, usize)> =
            data.cases.iter().map(|c| c.endpoints).collect();
        let mut incident_cases: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ci, &(a, b)) in case_endpoints.iter().enumerate() {
            incident_cases[a].push(ci);
            incident_cases[b].push(ci);
        }
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        for br in net.branches().iter().filter(|b| b.status) {
            adjacency[br.from].push(br.to);
            adjacency[br.to].push(br.from);
        }

        trace_span.record("threshold", threshold);
        Ok(Detector {
            cfg: cfg.clone(),
            n,
            case_branch,
            case_endpoints,
            incident_cases,
            adjacency,
            clustering,
            subspaces,
            capabilities,
            groups,
            threshold,
            threshold_soft,
            ratio_cut,
            ratio_cut_heavy,
        })
    }

    /// Number of monitored nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// The learned normal/outage decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The calibration floor: the largest `S⁰` residual observed on
    /// held-out normal samples (complete and masked). `threshold()` is
    /// this value times the configured margin.
    pub fn threshold_soft(&self) -> f64 {
        self.threshold_soft
    }

    /// The calibrated ratio cut used by the best-case/normal ratio test.
    pub fn ratio_cut(&self) -> f64 {
        self.ratio_cut
    }

    /// The learned capability matrix (exposed for analysis and benches).
    pub fn capabilities(&self) -> &CapabilityMatrix {
        &self.capabilities
    }

    /// The learned detection groups (exposed for analysis and benches).
    pub fn groups(&self) -> &DetectionGroups {
        &self.groups
    }

    /// The PDC clustering in effect.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// The learned subspaces (exposed for analysis and benches).
    pub fn subspaces(&self) -> &LearnedSubspaces {
        &self.subspaces
    }

    /// Serialize the trained model to JSON. Training is the expensive
    /// step (many power-flow solves feed it); a control center trains in
    /// the day-ahead planning stage and ships the serialized model to the
    /// online application.
    ///
    /// # Errors
    /// Returns [`DetectError::InvalidTrainingData`] when serialization
    /// fails (cannot happen for a well-formed model).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| DetectError::InvalidTrainingData(format!("serialize: {e}")))
    }

    /// Deserialize a trained model from [`Detector::to_json`] output.
    ///
    /// # Errors
    /// Returns [`DetectError::InvalidTrainingData`] for malformed input.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json)
            .map_err(|e| DetectError::InvalidTrainingData(format!("deserialize: {e}")))
    }

    /// Classify one (possibly incomplete) sample.
    ///
    /// # Errors
    /// Returns [`DetectError::SampleMismatch`] for a wrong-sized sample,
    /// [`DetectError::NonFinite`] when any observed entry is NaN or
    /// infinite, and [`DetectError::InsufficientData`] when fewer than
    /// `subspace_dim + 2` measurements are observed.
    pub fn detect(&self, sample: &PhasorSample) -> Result<Detection> {
        if sample.n_nodes() != self.n {
            return Err(DetectError::SampleMismatch { expected: self.n, got: sample.n_nodes() });
        }
        let observed = sample.mask().observed();
        // The sample contract says missing data is masked, never NaN; a
        // non-finite *observed* entry is corruption and would poison every
        // residual downstream, so reject before any proximity math runs.
        for &node in &observed {
            if !sample.phasor_unchecked(node).is_finite() {
                return Err(DetectError::NonFinite { node });
            }
        }
        let needed = self.cfg.subspace_dim + 2;
        if observed.len() < needed {
            return Err(DetectError::InsufficientData { observed: observed.len(), needed });
        }

        // --- 1. Normal / outage decision over all observed data. ---
        let x_obs = Vector::from(
            sample
                .values_for(&observed, self.cfg.kind)
                .expect("observed nodes are unmasked"),
        );
        let normal_residual = proximity(&self.subspaces.normal, &observed, &x_obs)?;
        let mut best_case_residual = f64::INFINITY;
        for s in &self.subspaces.per_case {
            let r = proximity(s, &observed, &x_obs)?;
            if r < best_case_residual {
                best_case_residual = r;
            }
        }
        let over_threshold = normal_residual > self.threshold;
        // The ratio cuts are calibrated so that *no* held-out normal sample
        // (complete or masked) fires them, so they need no residual floor.
        // Heavy missing data gets its own (stricter) cut.
        let cut = if sample.mask().n_missing() * 6 > self.n {
            self.ratio_cut_heavy
        } else {
            self.ratio_cut
        };
        let ratio_hit = best_case_residual < cut * normal_residual;
        if !(over_threshold || ratio_hit) {
            return Ok(Detection {
                outage: false,
                lines: Vec::new(),
                node_ranking: Vec::new(),
                normal_residual,
                best_case_residual,
                threshold: self.threshold,
            });
        }

        // --- 2. Per-node scaled proximities (Eq. 9–11). ---
        let mut scored: Vec<(usize, f64)> = Vec::with_capacity(self.n);
        let mut groups_used: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for node in 0..self.n {
            if self.incident_cases[node].is_empty() {
                continue; // No learned outage behaviour for this node.
            }
            let d = self.group_for(node, sample);
            if d.len() < 2 {
                continue;
            }
            let x_d = Vector::from(
                sample.values_for(&d, self.cfg.kind).expect("group members observed"),
            );
            // prox to S_i^∪ = min over the member case subspaces.
            let mut ru = f64::INFINITY;
            for &ci in &self.incident_cases[node] {
                let r = proximity(&self.subspaces.per_case[ci], &d, &x_d)?;
                if r < ru {
                    ru = r;
                }
            }
            let score = if self.cfg.scale_proximities {
                let rn = proximity(&self.subspaces.intersection[node], &d, &x_d)?;
                let r0 = proximity(&self.subspaces.normal, &d, &x_d)?;
                ru * rn / r0.max(PROX_EPS)
            } else {
                ru
            };
            scored.push((node, score));
            groups_used[node] = d;
        }
        if scored.is_empty() {
            return Err(DetectError::InsufficientData { observed: observed.len(), needed });
        }
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

        // --- 3. Proximity rule: connected prefix of the ranking. ---
        // Line scoring restricted to the union of the top-ranked nodes'
        // detection groups: group formation (Fig. 4) and the
        // cluster-aware alternatives (Eq. 10) carry through to
        // localization quality, while the union keeps enough coordinates
        // to disambiguate neighbouring lines.
        let mut loc_group: Vec<usize> = Vec::new();
        for &(node, _) in scored.iter().take(3) {
            for &k in &groups_used[node] {
                if !loc_group.contains(&k) {
                    loc_group.push(k);
                }
            }
        }
        // "Ideally all nodes with high detection capabilities in D_C
        // should be included in the detection group" (Sec. V-B): add every
        // observed node whose learned capability for the best candidate is
        // above threshold. The naive ablation (fraction = 0) has no
        // capability knowledge and honestly skips this.
        if self.cfg.capability_fraction > 0.0 {
            let best_node = scored[0].0;
            for &k in &observed {
                if self.capabilities.get(best_node, k) >= self.cfg.capability_threshold
                    && !loc_group.contains(&k)
                {
                    loc_group.push(k);
                }
            }
        }
        loc_group.sort_unstable();
        let lines = self.localize(&scored, &loc_group, sample)?;

        Ok(Detection {
            outage: true,
            lines,
            node_ranking: scored,
            normal_residual,
            best_case_residual,
            threshold: self.threshold,
        })
    }

    /// Eq. (10) group selection for `node` given the sample's mask, with
    /// observed-only filtering and capability-ranked top-up to the minimum
    /// size.
    fn group_for(&self, node: usize, sample: &PhasorSample) -> Vec<usize> {
        let c = self.clustering.cluster_of(node);
        let cluster_dark = sample.mask().any_missing_of(self.clustering.members(c));
        let base = self.groups.select(c, cluster_dark);
        let mut d: Vec<usize> =
            base.iter().copied().filter(|&k| !sample.mask().is_missing(k)).collect();
        if d.len() < self.cfg.min_group_size {
            // Top-up source honours the Fig. 4 ablation: the proposed
            // scheme (fraction > 0) uses learned capabilities, the naive
            // scheme falls back to plain node order.
            let order: Vec<usize> = if self.cfg.capability_fraction > 0.0 {
                self.capabilities.ranked_detectors(node)
            } else {
                (0..self.n).collect()
            };
            for &k in &order {
                if d.len() >= self.cfg.min_group_size {
                    break;
                }
                if !sample.mask().is_missing(k) && !d.contains(&k) {
                    d.push(k);
                }
            }
        }
        d.sort_unstable();
        d
    }

    /// Proximity-rule localization: grow a connected prefix from the
    /// best-ranked node, then score each candidate line by its own outage
    /// subspace and keep those within `edge_ratio` of the best.
    fn localize(
        &self,
        scored: &[(usize, f64)],
        best_group: &[usize],
        sample: &PhasorSample,
    ) -> Result<Vec<usize>> {
        let (best, best_score) = scored[0];
        let limit = (best_score.max(PROX_EPS)) * self.cfg.prefix_ratio;
        let in_band: Vec<usize> = scored
            .iter()
            .filter(|&&(_, s)| s <= limit)
            .map(|&(n, _)| n)
            .collect();
        // Connected component of `best` inside the band.
        let mut component = vec![best];
        let mut frontier = vec![best];
        while let Some(u) = frontier.pop() {
            for &v in &self.adjacency[u] {
                if in_band.contains(&v) && !component.contains(&v) {
                    component.push(v);
                    frontier.push(v);
                }
            }
        }

        // Candidate cases, widening progressively: both endpoints inside
        // the component; any endpoint inside the proximity band; incident
        // to the best node. The final case-subspace scoring below is what
        // separates true from spurious candidates, so a wider candidate
        // set improves recall without inflating false alarms.
        let mut cand: Vec<usize> = (0..self.case_branch.len())
            .filter(|&ci| {
                let (a, b) = self.case_endpoints[ci];
                component.contains(&a) && component.contains(&b)
            })
            .collect();
        if cand.is_empty() {
            cand = (0..self.case_branch.len())
                .filter(|&ci| {
                    let (a, b) = self.case_endpoints[ci];
                    in_band.contains(&a) || in_band.contains(&b)
                })
                .collect();
        }
        if cand.is_empty() {
            cand = self.incident_cases[best].clone();
        }
        if cand.is_empty() {
            return Ok(Vec::new());
        }

        // Score candidates by their case subspace on the best node's group.
        let x_d = Vector::from(
            sample
                .values_for(best_group, self.cfg.kind)
                .expect("group members observed"),
        );
        let mut scored_cases: Vec<(usize, f64)> = Vec::with_capacity(cand.len());
        for ci in cand {
            let r = proximity(&self.subspaces.per_case[ci], best_group, &x_d)?;
            scored_cases.push((ci, r));
        }
        scored_cases.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let best_edge = scored_cases[0].1.max(PROX_EPS);
        Ok(scored_cases
            .into_iter()
            .filter(|&(_, s)| s <= best_edge * self.cfg.edge_ratio)
            .map(|(ci, _)| self.case_branch[ci])
            .collect())
    }
}

/// Calibrated decision quantities.
struct Calibration {
    /// `S⁰` residual above this ⇒ outage outright.
    hard: f64,
    /// Ratio test applies only above this floor.
    soft: f64,
    /// Ratio cut for the best-case/normal comparison (light missing data).
    ratio_cut: f64,
    /// Ratio cut under heavy (cluster-scale) missing data.
    ratio_cut_heavy: f64,
}

/// Calibrate the normal/outage decision on held-out normal samples
/// (`t ≥ holdout_start`), each evaluated complete and under a few random
/// missing-data masks so the statistics match what detection will see.
fn calibrate(
    subspaces: &LearnedSubspaces,
    normal: &PhasorWindow,
    holdout_start: usize,
    cfg: &DetectorConfig,
) -> Result<Calibration> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let n = normal.n_nodes();
    let m = normal.matrix(cfg.kind);
    let t_total = m.cols();
    let start = holdout_start.min(t_total.saturating_sub(1));
    let k_missing = (n / 15).max(2).min(n.saturating_sub(cfg.subspace_dim + 2));
    let mut rng = StdRng::seed_from_u64(0xCA11B8);

    let mut residuals: Vec<f64> = Vec::new();
    let mut ratios_light: Vec<f64> = Vec::new();
    let mut ratios_heavy: Vec<f64> = Vec::new();
    // Cluster-scale missing data (a dark PDC) is a first-class scenario:
    // calibrate against heavy masks too.
    let k_heavy = (n / 2).max(k_missing).min(n.saturating_sub(cfg.subspace_dim + 2));
    for t in start..t_total {
        // Complete, light-mask, and heavy-mask variants per held-out sample.
        for variant in 0..8 {
            let observed: Vec<usize> = if variant == 0 {
                (0..n).collect()
            } else {
                let k = if variant >= 5 { k_heavy } else { k_missing };
                let mut obs: Vec<usize> = (0..n).collect();
                for _ in 0..k {
                    if obs.len() > cfg.subspace_dim + 2 {
                        let pos = rng.gen_range(0..obs.len());
                        obs.remove(pos);
                    }
                }
                obs
            };
            let x = Vector::from_fn(observed.len(), |i| m[(observed[i], t)]);
            let r0 = proximity(&subspaces.normal, &observed, &x)?;
            residuals.push(r0);
            let mut best = f64::INFINITY;
            for s in &subspaces.per_case {
                let r = proximity(s, &observed, &x)?;
                if r < best {
                    best = r;
                }
            }
            if r0 > 1e-18 && best.is_finite() {
                if variant >= 5 {
                    ratios_heavy.push(best / r0);
                } else {
                    ratios_light.push(best / r0);
                }
            }
        }
    }
    // The configured quantile is a lower bound on the soft threshold; the
    // observed maximum dominates it for well-behaved calibration sets.
    let q = quantile(&residuals, cfg.normal_quantile)?;
    let max_resid = residuals.iter().fold(0.0_f64, |a, &b| a.max(b));
    let soft = max_resid.max(q).max(1e-15);
    let hard = (soft * cfg.threshold_margin).max(1e-15);
    // The ratio tests must never have fired on held-out normal data: cut
    // below the smallest observed normal ratio, capped by the config.
    let cut_from = |ratios: &[f64]| {
        let min_ratio = ratios.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        if min_ratio.is_finite() {
            (0.9 * min_ratio).clamp(0.05, cfg.decision_ratio)
        } else {
            cfg.decision_ratio
        }
    };
    let ratio_cut = cut_from(&ratios_light);
    let ratio_cut_heavy = cut_from(&ratios_heavy).min(ratio_cut);
    Ok(Calibration { hard, soft, ratio_cut, ratio_cut_heavy })
}

/// Convenience: train on a dataset with the default configuration and the
/// network's own cluster count heuristic (≈ one PDC per 10 buses, min 2).
///
/// # Errors
/// As [`Detector::train`].
pub fn train_default(data: &Dataset) -> Result<Detector> {
    Detector::train(data, &default_config_for(&data.network))
}

/// Size-aware default configuration: cluster count and detection-group
/// size scale gently with the grid.
pub fn default_config_for(net: &Network) -> DetectorConfig {
    DetectorConfig {
        n_clusters: cluster_heuristic(net),
        min_group_size: (net.n_buses() / 4).max(8),
        ..DetectorConfig::default()
    }
}

/// ≈ one PDC per 10 buses, between 2 and 8 (Fig. 1 scale).
pub fn cluster_heuristic(net: &Network) -> usize {
    (net.n_buses() / 10).clamp(2, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu_grid::cases::ieee14;
    use pmu_sim::missing::outage_endpoints_mask;
    use pmu_sim::{generate_dataset, GenConfig};

    fn dataset() -> Dataset {
        let net = ieee14().unwrap();
        let cfg = GenConfig { train_len: 20, test_len: 6, ..GenConfig::default() };
        generate_dataset(&net, &cfg).unwrap()
    }

    fn detector(data: &Dataset) -> Detector {
        train_default(data).unwrap()
    }

    #[test]
    fn normal_samples_classified_normal() {
        let data = dataset();
        let det = detector(&data);
        let mut normal_ok = 0usize;
        for t in 0..data.normal_test.len() {
            let d = det.detect(&data.normal_test.sample(t)).unwrap();
            if !d.outage {
                normal_ok += 1;
                assert!(d.lines.is_empty());
            }
        }
        assert!(
            normal_ok >= data.normal_test.len() - 1,
            "{normal_ok}/{} normal samples passed",
            data.normal_test.len()
        );
    }

    #[test]
    fn outage_samples_flagged_and_localized() {
        let data = dataset();
        let det = detector(&data);
        let mut flagged = 0usize;
        let mut hit = 0usize;
        for case in &data.cases {
            let d = det.detect(&case.test.sample(0)).unwrap();
            if d.outage {
                flagged += 1;
                if d.lines.contains(&case.branch) {
                    hit += 1;
                }
            }
        }
        let e = data.n_cases();
        assert!(flagged * 10 >= e * 9, "only {flagged}/{e} outages flagged");
        assert!(hit * 10 >= e * 8, "only {hit}/{e} outages localized");
    }

    #[test]
    fn robust_to_missing_outage_endpoints() {
        let data = dataset();
        let det = detector(&data);
        let mut hit = 0usize;
        for case in &data.cases {
            let mask = outage_endpoints_mask(14, case.endpoints);
            let sample = case.test.sample(0).masked(&mask);
            let d = det.detect(&sample).unwrap();
            if d.outage && d.lines.contains(&case.branch) {
                hit += 1;
            }
        }
        let e = data.n_cases();
        assert!(hit * 10 >= e * 7, "only {hit}/{e} localized with endpoints dark");
    }

    #[test]
    fn missing_data_on_normal_sample_not_an_outage() {
        use pmu_sim::Mask;
        let data = dataset();
        let det = detector(&data);
        let mut false_alarms = 0usize;
        let trials = data.normal_test.len();
        for t in 0..trials {
            let mask = Mask::with_missing(14, &[t % 14, (t + 5) % 14]);
            let d = det.detect(&data.normal_test.sample(t).masked(&mask)).unwrap();
            if d.outage {
                false_alarms += 1;
            }
        }
        assert!(false_alarms <= 1, "{false_alarms}/{trials} false alarms");
    }

    #[test]
    fn rejects_bad_samples() {
        use pmu_sim::Mask;
        let data = dataset();
        let det = detector(&data);
        // Wrong size.
        let bad = PhasorSample::complete(vec![pmu_numerics::Complex64::ONE; 5]);
        assert!(matches!(det.detect(&bad), Err(DetectError::SampleMismatch { .. })));
        // Nearly everything missing.
        let mask = Mask::with_missing(14, &(0..12).collect::<Vec<_>>());
        let s = data.normal_test.sample(0).masked(&mask);
        assert!(matches!(det.detect(&s), Err(DetectError::InsufficientData { .. })));
    }

    #[test]
    fn non_finite_observed_entries_rejected() {
        use pmu_numerics::Complex64;
        use pmu_sim::Mask;
        let data = dataset();
        let det = detector(&data);
        let clean = data.normal_test.sample(0);
        let poison = |node: usize, z: Complex64| {
            let phasors: Vec<Complex64> = (0..clean.n_nodes())
                .map(|i| if i == node { z } else { clean.phasor_unchecked(i) })
                .collect();
            PhasorSample::complete(phasors)
        };
        // NaN and infinity are both rejected, naming the offending node.
        let nan = poison(5, Complex64::new(f64::NAN, 0.0));
        assert_eq!(det.detect(&nan).unwrap_err(), DetectError::NonFinite { node: 5 });
        let inf = poison(2, Complex64::new(0.0, f64::INFINITY));
        assert_eq!(det.detect(&inf).unwrap_err(), DetectError::NonFinite { node: 2 });
        // A non-finite value behind the mask is invisible: masked entries
        // are missing, not observed, and must not trigger the check.
        let masked_nan = poison(5, Complex64::new(f64::NAN, f64::NAN))
            .masked(&Mask::with_missing(14, &[5]));
        assert!(det.detect(&masked_nan).is_ok());
    }

    #[test]
    fn detection_reports_diagnostics() {
        let data = dataset();
        let det = detector(&data);
        let d = det.detect(&data.cases[0].test.sample(0)).unwrap();
        assert!(d.outage);
        assert!(d.best_case_residual.is_finite());
        assert_eq!(d.threshold, det.threshold());
        assert!(!d.node_ranking.is_empty());
        // Ranking is ascending.
        for w in d.node_ranking.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // Accessors exist and are consistent.
        assert_eq!(det.n_nodes(), 14);
        assert_eq!(det.capabilities().n_nodes(), 14);
        assert!(!det.groups().in_cluster.is_empty());
        assert!(det.clustering().n_clusters() >= 2);
        assert_eq!(det.subspaces().per_case.len(), data.n_cases());
    }

    #[test]
    fn best_ranked_node_is_near_outage() {
        let data = dataset();
        let det = detector(&data);
        let mut near = 0usize;
        for case in &data.cases {
            let d = det.detect(&case.test.sample(1)).unwrap();
            if !d.outage {
                continue;
            }
            let best = d.node_ranking[0].0;
            let (a, b) = case.endpoints;
            let neighborhood: Vec<usize> = {
                let net = ieee14().unwrap();
                let mut v = vec![a, b];
                v.extend(net.neighbors(a));
                v.extend(net.neighbors(b));
                v
            };
            if neighborhood.contains(&best) {
                near += 1;
            }
        }
        assert!(
            near * 10 >= data.n_cases() * 8,
            "best node near outage in only {near}/{} cases",
            data.n_cases()
        );
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use pmu_grid::cases::ieee14;
    use pmu_sim::{generate_dataset, GenConfig};

    #[test]
    fn json_roundtrip_preserves_detections() {
        let net = ieee14().unwrap();
        let gen = GenConfig { train_len: 16, test_len: 5, ..GenConfig::default() };
        let data = generate_dataset(&net, &gen).unwrap();
        let det = train_default(&data).unwrap();

        let json = det.to_json().unwrap();
        assert!(json.len() > 1000, "model JSON suspiciously small");
        let restored = Detector::from_json(&json).unwrap();

        assert_eq!(restored.n_nodes(), det.n_nodes());
        assert_eq!(restored.threshold(), det.threshold());
        assert_eq!(restored.ratio_cut(), det.ratio_cut());
        // Identical verdicts on every test sample.
        for case in &data.cases {
            let s = case.test.sample(0);
            let a = det.detect(&s).unwrap();
            let b = restored.detect(&s).unwrap();
            assert_eq!(a.outage, b.outage);
            assert_eq!(a.lines, b.lines);
            assert_eq!(a.normal_residual, b.normal_residual);
        }
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(Detector::from_json("{not json").is_err());
        assert!(Detector::from_json("{}").is_err());
    }
}
