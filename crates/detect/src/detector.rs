//! The end-to-end detector — Sec. IV-C of the paper.
//!
//! Training learns, in order: PDC clusters, case/node subspaces (Eq. 3),
//! per-node ellipses (Eq. 4), detection capabilities (Eq. 5–7), detection
//! groups (Eq. 8), and a normal-operation decision threshold from training
//! residuals. Detection on a (possibly incomplete) sample then:
//!
//! 1. evaluates the proximity of the observed data to `S⁰` and to the
//!    best-matching outage subspace — a sample is *normal* when its `S⁰`
//!    residual stays under the learned threshold and no outage subspace
//!    explains the data decisively better (this is what lets the scheme
//!    tell data problems apart from physical failures);
//! 2. per node *i*, selects the detection group per Eq. (10) (in-cluster
//!    when the node's cluster is fully observed, out-of-cluster
//!    otherwise), computes proximities to `S_i^∪`, `S_i^∩` and `S⁰`
//!    restricted to the group (Eq. 9), and scales them per Eq. (11).
//!    The proximity to the union `S_i^∪ = ⋃_k S^{\e_ik}` is the minimum
//!    of the per-member proximities — the distance to a union of sets is
//!    the minimum of the member distances;
//! 3. ranks nodes by scaled proximity, extends the best node into a
//!    connected *proximity-rule* prefix, and emits the candidate line set
//!    `F̂` by scoring each in-prefix line's own outage subspace.

// Indexed loops are the clearest expression of the dense numerical
// kernels in this module.
#![allow(clippy::needless_range_loop)]

use crate::capability::{fit_node_ellipses, learn_capabilities, CapabilityMatrix};
use crate::config::DetectorConfig;
use crate::error::DetectError;
use crate::groups::{build_groups, DetectionGroups};
use crate::proximity::{proximity, proximity_fast};
use crate::scoring::{NodeScorer, NodeScorers, RestrictedBank, ScoringCache};
use crate::subspaces::{learn_subspaces_reusing, LearnedSubspaces};
use crate::Result;
use pmu_grid::cluster::{partition_clusters, Clustering};
use pmu_grid::Network;
use pmu_numerics::stats::quantile;
use pmu_numerics::{par, Matrix, Vector};
use pmu_sim::dataset::Dataset;
use pmu_sim::{PhasorSample, PhasorWindow};
use std::collections::HashMap;

/// Floor protecting the Eq. (11) division.
const PROX_EPS: f64 = 1e-18;

/// Leverage floor for the bad-data screen: a channel whose leverage
/// `h_i` approaches 1 is (near-)perfectly explained by `S⁰` alone and its
/// residual carries no information, so `1 - h_i` is clamped here before
/// normalizing.
const MIN_LEVERAGE_GAP: f64 = 0.05;

/// Ascending node ranking plus the detection group each node was scored
/// with (indexed by node).
type NodeRanking = (Vec<(usize, f64)>, Vec<Vec<usize>>);

/// The result of running the detector on one sample.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// `true` when the sample is classified as containing an outage.
    pub outage: bool,
    /// Branch indices of the identified outaged lines (`F̂`); empty for a
    /// normal classification.
    pub lines: Vec<usize>,
    /// Nodes ranked by scaled proximity, ascending (most suspicious
    /// first); only meaningful when `outage`.
    pub node_ranking: Vec<(usize, f64)>,
    /// The `S⁰` residual of the observed data (per residual dimension).
    pub normal_residual: f64,
    /// The best per-case outage-subspace residual of the observed data.
    pub best_case_residual: f64,
    /// The decision threshold the `S⁰` residual was compared against.
    pub threshold: f64,
    /// Observed channels the bad-data screen flagged and excised (in
    /// peel-off order); the verdict above was computed with these channels
    /// masked out. Empty when the screen is off or nothing fired.
    pub suspect_nodes: Vec<usize>,
}

/// A trained outage detector.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone)]
pub struct Detector {
    cfg: DetectorConfig,
    n: usize,
    /// Branch index of each learned outage case (aligned with the learned
    /// per-case subspaces).
    case_branch: Vec<usize>,
    /// Endpoints of each learned case.
    case_endpoints: Vec<(usize, usize)>,
    /// Cases incident to each node (the paper's `F_i`).
    incident_cases: Vec<Vec<usize>>,
    /// Bus adjacency over in-service lines.
    adjacency: Vec<Vec<usize>>,
    clustering: Clustering,
    subspaces: LearnedSubspaces,
    capabilities: CapabilityMatrix,
    groups: DetectionGroups,
    /// Hard threshold: `S⁰` residual above this is an outage outright.
    threshold: f64,
    /// Soft threshold (the largest calibration residual): the ratio test
    /// against the best outage subspace only applies above this floor, so
    /// noise-level residual fluctuations can never trip it.
    threshold_soft: f64,
    /// Calibrated ratio cut for the ratio test (≤ `cfg.decision_ratio`):
    /// on held-out normal samples with *light* random masks, the best
    /// outage subspace never undercut `S⁰` by more than this factor.
    ratio_cut: f64,
    /// As `ratio_cut`, calibrated against *heavy* masks (a dark PDC
    /// cluster); applied when a large share of the sample is missing.
    ratio_cut_heavy: f64,
    /// Packed stage-1 scorer for the full-observation mask: every learned
    /// subspace row-restricted, clamped, and concatenated into one
    /// projector tensor at training time (ships inside the model bundle).
    scorer_full: RestrictedBank,
    /// Capability-ranked detector order per node, precomputed so group
    /// top-up needs no per-call sort of the capability matrix.
    capability_order: Vec<Vec<usize>>,
}

impl Detector {
    /// Train a detector on a dataset.
    ///
    /// # Errors
    /// Returns configuration and training-data validation errors, and
    /// propagates numerical failures from the learning stages.
    pub fn train(data: &Dataset, cfg: &DetectorConfig) -> Result<Self> {
        Self::train_reusing(data, cfg, &[])
    }

    /// [`Detector::train`] with warm-started per-case subspaces:
    /// `reuse[ci]`, when `Some`, replaces the decomposition of case
    /// `ci`'s training window. Everything downstream — node
    /// unions/intersections, ellipses, capabilities, groups, calibration,
    /// the packed scorer bank — is recomputed from scratch, so provided
    /// the reused bases are exactly what training would compute (the
    /// caller's contract; see
    /// [`learn_subspaces_reusing`](crate::subspaces::learn_subspaces_reusing)),
    /// the result is bit-identical to a cold [`Detector::train`].
    ///
    /// # Errors
    /// As [`Detector::train`].
    pub fn train_reusing(
        data: &Dataset,
        cfg: &DetectorConfig,
        reuse: &[Option<&pmu_numerics::Subspace>],
    ) -> Result<Self> {
        cfg.validate()?;
        let net = &data.network;
        let n = net.n_buses();
        let mut trace_span = pmu_obs::span("detect.train")
            .with("system", net.name.as_str())
            .with("buses", n)
            .with("cases", data.cases.len());
        if data.normal_train.n_nodes() != n {
            return Err(DetectError::InvalidTrainingData(
                "normal window node count differs from network".into(),
            ));
        }
        let n_clusters = cfg.n_clusters.min(n);
        let clustering = partition_clusters(net, n_clusters)
            .map_err(|e| DetectError::InvalidTrainingData(e.to_string()))?;
        let mut subspaces = learn_subspaces_reusing(data, cfg, reuse)?;
        // Hold out the tail of the normal window for threshold calibration
        // and refit S⁰ on the head only, so calibration sees honest
        // residuals (the OU load process drifts over the window).
        let t_total = data.normal_train.len();
        let holdout_start = (t_total * 2 / 3).clamp(1, t_total.saturating_sub(2));
        if t_total >= 6 {
            let head: Vec<usize> = (0..holdout_start).collect();
            let head_m = data.normal_train.matrix(cfg.kind).select_columns(&head);
            let t = head.len();
            let normal_dim = cfg
                .normal_dim
                .unwrap_or_else(|| cfg.subspace_dim.max(n / 6))
                .min((t / 2).max(cfg.subspace_dim));
            subspaces.normal = crate::subspaces::case_subspace(&head_m, normal_dim)?;
        }
        let ellipses = fit_node_ellipses(&data.normal_train, cfg)?;
        let capabilities = learn_capabilities(data, &ellipses, cfg)?;

        // PCA loading matrix for the naive-group ablation: normal + all
        // outage training windows concatenated. hcat_all preallocates the
        // full width once; folding pairwise hcat here is O(cases²) copies.
        let mut parts: Vec<&Matrix> = Vec::with_capacity(1 + data.cases.len());
        parts.push(data.normal_train.matrix(cfg.kind));
        for case in &data.cases {
            parts.push(case.train.matrix(cfg.kind));
        }
        let concat = Matrix::hcat_all(&parts)?;
        let groups = build_groups(&clustering, &capabilities, &concat, cfg)?;

        let calib = calibrate(&subspaces, &data.normal_train, holdout_start, cfg)?;
        let (threshold, threshold_soft, ratio_cut, ratio_cut_heavy) =
            (calib.hard, calib.soft, calib.ratio_cut, calib.ratio_cut_heavy);

        let case_branch: Vec<usize> = data.cases.iter().map(|c| c.branch).collect();
        let case_endpoints: Vec<(usize, usize)> =
            data.cases.iter().map(|c| c.endpoints).collect();
        let mut incident_cases: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ci, &(a, b)) in case_endpoints.iter().enumerate() {
            incident_cases[a].push(ci);
            incident_cases[b].push(ci);
        }
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        for br in net.branches().iter().filter(|b| b.status) {
            adjacency[br.from].push(br.to);
            adjacency[br.to].push(br.from);
        }

        let full: Vec<usize> = (0..n).collect();
        let scorer_full = RestrictedBank::build(&subspaces, &full)?;
        let capability_order: Vec<Vec<usize>> =
            (0..n).map(|i| capabilities.ranked_detectors(i)).collect();

        trace_span.record("threshold", threshold);
        Ok(Detector {
            cfg: cfg.clone(),
            n,
            case_branch,
            case_endpoints,
            incident_cases,
            adjacency,
            clustering,
            subspaces,
            capabilities,
            groups,
            threshold,
            threshold_soft,
            ratio_cut,
            ratio_cut_heavy,
            scorer_full,
            capability_order,
        })
    }

    /// Number of monitored nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// The learned normal/outage decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The calibration floor: the largest `S⁰` residual observed on
    /// held-out normal samples (complete and masked). `threshold()` is
    /// this value times the configured margin.
    pub fn threshold_soft(&self) -> f64 {
        self.threshold_soft
    }

    /// The calibrated ratio cut used by the best-case/normal ratio test.
    pub fn ratio_cut(&self) -> f64 {
        self.ratio_cut
    }

    /// The learned capability matrix (exposed for analysis and benches).
    pub fn capabilities(&self) -> &CapabilityMatrix {
        &self.capabilities
    }

    /// The learned detection groups (exposed for analysis and benches).
    pub fn groups(&self) -> &DetectionGroups {
        &self.groups
    }

    /// The PDC clustering in effect.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// The learned subspaces (exposed for analysis and benches).
    pub fn subspaces(&self) -> &LearnedSubspaces {
        &self.subspaces
    }

    /// Serialize the trained model to JSON. Training is the expensive
    /// step (many power-flow solves feed it); a control center trains in
    /// the day-ahead planning stage and ships the serialized model to the
    /// online application.
    ///
    /// # Errors
    /// Returns [`DetectError::InvalidTrainingData`] when serialization
    /// fails (cannot happen for a well-formed model).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| DetectError::InvalidTrainingData(format!("serialize: {e}")))
    }

    /// Deserialize a trained model from [`Detector::to_json`] output.
    ///
    /// # Errors
    /// Returns [`DetectError::InvalidTrainingData`] for malformed input.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json)
            .map_err(|e| DetectError::InvalidTrainingData(format!("deserialize: {e}")))
    }

    /// This detector with a different stage-2 shortlist setting.
    ///
    /// The shortlist is a pure scoring-time strategy — no trained state
    /// depends on it — so A/B comparisons (parity suite, benches) derive
    /// both variants from one training run. `k = 0` disables the
    /// shortlist (always exhaustive ranking).
    #[must_use]
    pub fn with_shortlist(mut self, k: usize, margin: f64) -> Self {
        self.cfg.shortlist_k = k;
        self.cfg.shortlist_margin = margin;
        self
    }

    /// This detector with the bad-data screen toggled.
    ///
    /// Like the shortlist, the screen is a pure scoring-time strategy —
    /// no trained state depends on it — so the overhead bench and the
    /// corruption-sweep evaluation derive both variants from one
    /// training run.
    #[must_use]
    pub fn with_robust_screen(mut self, on: bool) -> Self {
        self.cfg.robust_screen = on;
        self
    }

    /// Classify one (possibly incomplete) sample.
    ///
    /// Convenience wrapper over [`Detector::detect_with_cache`] with a
    /// throwaway cache; callers scoring streams or batches should hold a
    /// [`ScoringCache`] so per-mask restrictions are paid once.
    ///
    /// # Errors
    /// Returns [`DetectError::SampleMismatch`] for a wrong-sized sample,
    /// [`DetectError::NonFinite`] when any observed entry is NaN or
    /// infinite, and [`DetectError::InsufficientData`] when fewer than
    /// `subspace_dim + 2` measurements are observed.
    pub fn detect(&self, sample: &PhasorSample) -> Result<Detection> {
        self.detect_with_cache(sample, &ScoringCache::new())
    }

    /// Classify one sample, memoizing mask restrictions in `cache`.
    ///
    /// Stage 1 scores the observed sub-vector against every learned
    /// subspace through the packed projector bank (the precomputed
    /// full-observation bank when nothing is missing, a cached per-mask
    /// bank otherwise); stage 2 ranks through the cached per-mask node
    /// scorers. Output is bit-identical to
    /// [`Detector::detect_reference`] when the shortlist is off.
    ///
    /// # Errors
    /// As [`Detector::detect`].
    pub fn detect_with_cache(
        &self,
        sample: &PhasorSample,
        cache: &ScoringCache,
    ) -> Result<Detection> {
        self.detect_budget(sample, cache, self.cfg.robust_budget)
    }

    /// [`Detector::detect_with_cache`] with an explicit peel-off budget —
    /// the bad-data screen re-enters here on the excised sample with
    /// `budget - 1`, so the recursion is bounded by `robust_budget`.
    fn detect_budget(
        &self,
        sample: &PhasorSample,
        cache: &ScoringCache,
        budget: usize,
    ) -> Result<Detection> {
        let observed = self.guard(sample)?;
        let x_obs = Vector::from(
            sample
                .values_for(&observed, self.cfg.kind)
                .expect("observed nodes are unmasked"),
        );
        // Stage timing clocks are only read while metrics are on, so the
        // disabled path stays one load + branch per stage.
        let t1 = pmu_obs::metrics_enabled().then(std::time::Instant::now);
        let prox = if sample.mask().n_missing() == 0 {
            self.scorer_full.proximities_one(&x_obs)?
        } else {
            let bank =
                cache.bank_for(&self.subspaces, sample.mask().fingerprint(), &observed)?;
            bank.proximities_one(&x_obs)?
        };
        if let Some(t) = t1 {
            pmu_obs::histogram!("detect.stage1_us").observe(t.elapsed().as_secs_f64() * 1e6);
        }
        self.finish_budget(sample, &observed, &prox, cache, budget)
    }

    /// Classify a batch of samples through the packed stage-1 path.
    ///
    /// Samples are grouped by missing-mask fingerprint; each group's
    /// stage-1 residuals against every learned subspace come from **one**
    /// cache-blocked matmul over the packed projector bank, and the
    /// per-sample ranking/localization tail fans out over the worker pool.
    /// Per-sample results are returned in input order and are bit-identical
    /// to calling [`Detector::detect_with_cache`] sample by sample.
    pub fn detect_batch_with_cache(
        &self,
        samples: &[PhasorSample],
        cache: &ScoringCache,
    ) -> Vec<Result<Detection>> {
        let mut out: Vec<Option<Result<Detection>>> = samples.iter().map(|_| None).collect();
        // Group scorable samples by mask fingerprint, input order kept
        // within each group.
        let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut order: Vec<u64> = Vec::new();
        for (i, s) in samples.iter().enumerate() {
            match self.guard(s) {
                Ok(_) => {
                    let fp = s.mask().fingerprint();
                    let slot = groups.entry(fp).or_default();
                    if slot.is_empty() {
                        order.push(fp);
                    }
                    slot.push(i);
                }
                Err(e) => out[i] = Some(Err(e)),
            }
        }
        for fp in order {
            let idxs = &groups[&fp];
            let observed = samples[idxs[0]].mask().observed();
            let t1 = pmu_obs::metrics_enabled().then(std::time::Instant::now);
            let stage1 = (|| -> Result<Matrix> {
                let holder;
                let bank: &RestrictedBank = if samples[idxs[0]].mask().n_missing() == 0 {
                    &self.scorer_full
                } else {
                    holder = cache.bank_for(&self.subspaces, fp, &observed)?;
                    &holder
                };
                let mut x = Matrix::zeros(observed.len(), idxs.len());
                for (c, &i) in idxs.iter().enumerate() {
                    let vals = samples[i]
                        .values_for(&observed, self.cfg.kind)
                        .expect("observed nodes are unmasked");
                    for (r, v) in vals.into_iter().enumerate() {
                        x[(r, c)] = v;
                    }
                }
                bank.proximities(&x)
            })();
            if let Some(t) = t1 {
                // One packed matmul scored the whole group: a
                // count-weighted observation of the per-sample share
                // keeps the stage-1 quantiles per-sample like the
                // scalar path's.
                pmu_obs::histogram!("detect.stage1_us").observe_n(
                    t.elapsed().as_secs_f64() * 1e6 / idxs.len() as f64,
                    idxs.len() as u64,
                );
            }
            match stage1 {
                Ok(prox) => {
                    let cols: Vec<(usize, Vec<f64>)> = idxs
                        .iter()
                        .enumerate()
                        .map(|(c, &i)| {
                            (i, (0..prox.rows()).map(|b| prox[(b, c)]).collect())
                        })
                        .collect();
                    let results = par::par_map(&cols, |(i, col)| {
                        self.finish(&samples[*i], &observed, col, cache)
                    });
                    for ((i, _), r) in cols.iter().zip(results) {
                        out[*i] = Some(r);
                    }
                }
                // Stage-1 failures past the guard are exotic (numerical
                // breakdown); re-run those samples through the scalar
                // entry point so each reports its own error.
                Err(_) => {
                    for &i in idxs {
                        out[i] = Some(self.detect_with_cache(&samples[i], cache));
                    }
                }
            }
        }
        out.into_iter().map(|r| r.expect("every sample classified")).collect()
    }

    /// The retained per-line reference scorer: classify one sample with
    /// fresh row-restriction and re-orthonormalization per proximity call,
    /// no packing, no caching, no shortlist. Exists as the ground truth
    /// the packed path is pinned against (parity suite) and for A/B
    /// benchmarks; production callers should use [`Detector::detect`].
    ///
    /// # Errors
    /// As [`Detector::detect`].
    pub fn detect_reference(&self, sample: &PhasorSample) -> Result<Detection> {
        self.detect_reference_budget(sample, self.cfg.robust_budget)
    }

    /// [`Detector::detect_reference`] with an explicit peel-off budget;
    /// the bad-data screen recurses through the reference machinery so
    /// packed/reference parity holds with the screen on.
    fn detect_reference_budget(
        &self,
        sample: &PhasorSample,
        budget: usize,
    ) -> Result<Detection> {
        let observed = self.guard(sample)?;
        let needed = self.cfg.subspace_dim + 2;

        // --- 1. Normal / outage decision over all observed data. ---
        let x_obs = Vector::from(
            sample
                .values_for(&observed, self.cfg.kind)
                .expect("observed nodes are unmasked"),
        );
        let normal_residual = proximity(&self.subspaces.normal, &observed, &x_obs)?;
        let mut best_case_residual = f64::INFINITY;
        for s in &self.subspaces.per_case {
            let r = proximity(s, &observed, &x_obs)?;
            if r < best_case_residual {
                best_case_residual = r;
            }
        }
        if let Some(d) =
            self.decide_normal(sample, normal_residual, best_case_residual)
        {
            return Ok(d);
        }

        // Outage verdict: run the bad-data screen before ranking — an
        // excision discards the ranking anyway. Fresh restriction here
        // (the reference path caches nothing by design); same floats as
        // the cached construction.
        if self.screen_applies(budget, observed.len(), best_case_residual) {
            let (capped, _) = crate::proximity::restricted_capped(
                &self.subspaces.normal,
                &observed,
            )?;
            if let Some(node) = self.lnr_suspect(capped.basis(), &observed, &x_obs) {
                match self.detect_reference_budget(&self.excised(sample, node), budget - 1)
                {
                    // Keep the excision only when it made the sample well
                    // explained (normal, or inside a learned case
                    // subspace). A structural anomaly — e.g. an unmodeled
                    // multi-line outage — stays far from everything no
                    // matter which channel is removed, and must keep its
                    // un-excised verdict.
                    Ok(mut d) if !d.outage || d.best_case_residual <= d.threshold => {
                        d.suspect_nodes.insert(0, node);
                        return Ok(d);
                    }
                    Ok(_) => {}
                    // Excision starved the sample: keep the un-excised
                    // verdict below rather than fail a scorable sample.
                    Err(DetectError::InsufficientData { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
        }

        // --- 2. Per-node scaled proximities (Eq. 9–11). ---
        let mut scored: Vec<(usize, f64)> = Vec::with_capacity(self.n);
        let mut groups_used: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for node in 0..self.n {
            if self.incident_cases[node].is_empty() {
                continue; // No learned outage behaviour for this node.
            }
            let d = self.group_for(node, sample);
            if d.len() < 2 {
                continue;
            }
            let x_d = Vector::from(
                sample.values_for(&d, self.cfg.kind).expect("group members observed"),
            );
            // prox to S_i^∪ = min over the member case subspaces. Stage 2
            // ranks through the shared Gram-solve scorer (both detection
            // paths use the same formula, so packed parity holds without
            // forcing the slow QR construction on the hot path).
            let mut ru = f64::INFINITY;
            for &ci in &self.incident_cases[node] {
                let r = proximity_fast(&self.subspaces.per_case[ci], &d, &x_d)?;
                if r < ru {
                    ru = r;
                }
            }
            let score = if self.cfg.scale_proximities {
                let rn = proximity_fast(&self.subspaces.intersection[node], &d, &x_d)?;
                let r0 = proximity_fast(&self.subspaces.normal, &d, &x_d)?;
                ru * rn / r0.max(PROX_EPS)
            } else {
                ru
            };
            scored.push((node, score));
            groups_used[node] = d;
        }
        if scored.is_empty() {
            return Err(DetectError::InsufficientData { observed: observed.len(), needed });
        }
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));

        // --- 3. Proximity rule: connected prefix of the ranking. ---
        let loc_group = self.localization_group(&scored, &groups_used, &observed);
        let lines = self.localize(&scored, &loc_group, sample)?;

        Ok(Detection {
            outage: true,
            lines,
            node_ranking: scored,
            normal_residual,
            best_case_residual,
            threshold: self.threshold,
            suspect_nodes: Vec::new(),
        })
    }

    /// Structural validation shared by every entry point: size, observed
    /// finiteness, minimum observability. Returns the observed-node list.
    fn guard(&self, sample: &PhasorSample) -> Result<Vec<usize>> {
        if sample.n_nodes() != self.n {
            return Err(DetectError::SampleMismatch { expected: self.n, got: sample.n_nodes() });
        }
        let observed = sample.mask().observed();
        // The sample contract says missing data is masked, never NaN; a
        // non-finite *observed* entry is corruption and would poison every
        // residual downstream, so reject before any proximity math runs.
        for &node in &observed {
            if !sample.phasor_unchecked(node).is_finite() {
                return Err(DetectError::NonFinite { node });
            }
        }
        let needed = self.cfg.subspace_dim + 2;
        if observed.len() < needed {
            return Err(DetectError::InsufficientData { observed: observed.len(), needed });
        }
        Ok(observed)
    }

    /// The stage-1 normal/outage decision: `Some(detection)` when the
    /// sample is classified normal, `None` when stages 2–3 must run.
    fn decide_normal(
        &self,
        sample: &PhasorSample,
        normal_residual: f64,
        best_case_residual: f64,
    ) -> Option<Detection> {
        let over_threshold = normal_residual > self.threshold;
        // The ratio cuts are calibrated so that *no* held-out normal sample
        // (complete or masked) fires them, so they need no residual floor.
        // Heavy missing data gets its own (stricter) cut.
        let cut = if sample.mask().n_missing() * 6 > self.n {
            self.ratio_cut_heavy
        } else {
            self.ratio_cut
        };
        let ratio_hit = best_case_residual < cut * normal_residual;
        if over_threshold || ratio_hit {
            return None;
        }
        Some(Detection {
            outage: false,
            lines: Vec::new(),
            node_ranking: Vec::new(),
            normal_residual,
            best_case_residual,
            threshold: self.threshold,
            suspect_nodes: Vec::new(),
        })
    }

    /// Whether the bad-data screen should run: configured on, budget
    /// left, enough observed channels that excising one still leaves a
    /// scorable sample (`needed = subspace_dim + 2`, plus one spare so
    /// the robust scale is estimated from more than noise) — and, the
    /// discriminating gate, *no learned case subspace explains the data
    /// either*. A genuine outage lands near its own case subspace
    /// (residual at noise level, under the calibrated threshold), so the
    /// screen never touches it and clean detections stay bit-identical;
    /// a corrupted channel is far from `S⁰` *and* every outage subspace.
    fn screen_applies(
        &self,
        budget: usize,
        n_observed: usize,
        best_case_residual: f64,
    ) -> bool {
        self.cfg.robust_screen
            && budget > 0
            && n_observed > self.cfg.subspace_dim + 3
            && best_case_residual > self.threshold
    }

    /// `sample` with `node` additionally masked out — the excision step
    /// of the peel-off loop.
    fn excised(&self, sample: &PhasorSample, node: usize) -> PhasorSample {
        let mut missing = sample.mask().missing_nodes();
        missing.push(node);
        missing.sort_unstable();
        sample.masked(&pmu_sim::Mask::with_missing(self.n, &missing))
    }

    /// The largest-normalized-residual bad-data test against `S⁰`
    /// (the classic LNR identification step, transplanted from weighted
    /// least squares onto the subspace residual): project the observed
    /// sub-vector onto the capped restricted base `u`, normalize each
    /// channel's residual by its leverage `sqrt(1 - h_i)`, and flag the
    /// largest when it dominates the robust scale — the *median* of the
    /// other normalized residuals, so a second corrupted channel cannot
    /// mask the first the way an RMS scale would — by `robust_threshold`.
    /// A genuine outage spreads its `S⁰` residual over the electrical
    /// neighbourhood (modest ratio); a corrupted channel concentrates it
    /// in one coordinate (huge ratio). Ties break to the lowest node.
    /// Pure math — both detection paths call this with identical inputs,
    /// so parity holds bit for bit.
    fn lnr_suspect(
        &self,
        u: &Matrix,
        observed: &[usize],
        x_obs: &Vector,
    ) -> Option<usize> {
        let m = observed.len();
        let k = u.cols();
        // y = Uᵀ x.
        let mut y = vec![0.0_f64; k];
        for i in 0..m {
            let row = u.row(i);
            let xi = x_obs[i];
            for a in 0..k {
                y[a] += row[a] * xi;
            }
        }
        let mut best_i = 0usize;
        let mut best_nr = 0.0_f64;
        let mut nrs = vec![0.0_f64; m];
        for i in 0..m {
            let row = u.row(i);
            let mut proj = 0.0;
            let mut leverage = 0.0;
            for a in 0..k {
                proj += row[a] * y[a];
                leverage += row[a] * row[a];
            }
            let nr =
                (x_obs[i] - proj).abs() / (1.0 - leverage).max(MIN_LEVERAGE_GAP).sqrt();
            nrs[i] = nr;
            if nr > best_nr {
                best_nr = nr;
                best_i = i;
            }
        }
        // Robust scale: median of the normalized residuals excluding the
        // champion (upper median for even counts — deterministic).
        nrs.swap_remove(best_i);
        nrs.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
        let scale = nrs[nrs.len() / 2];
        (best_nr > self.cfg.robust_threshold * scale).then(|| observed[best_i])
    }

    /// Stages 2–3 of the cached path, starting from the stage-1
    /// proximities (`prox[0]` = `S⁰`, `prox[1 + ci]` = case `ci`,
    /// `prox[1 + n_cases + i]` = node-`i` intersection). Entry point for
    /// the batch path; starts the bad-data screen with a full budget.
    fn finish(
        &self,
        sample: &PhasorSample,
        observed: &[usize],
        prox: &[f64],
        cache: &ScoringCache,
    ) -> Result<Detection> {
        self.finish_budget(sample, observed, prox, cache, self.cfg.robust_budget)
    }

    /// [`Detector::finish`] with the remaining peel-off budget threaded
    /// through.
    fn finish_budget(
        &self,
        sample: &PhasorSample,
        observed: &[usize],
        prox: &[f64],
        cache: &ScoringCache,
        budget: usize,
    ) -> Result<Detection> {
        let n_cases = self.subspaces.per_case.len();
        let normal_residual = prox[0];
        let case_prox = &prox[1..=n_cases];
        let mut best_case_residual = f64::INFINITY;
        for &r in case_prox {
            if r < best_case_residual {
                best_case_residual = r;
            }
        }
        if let Some(d) =
            self.decide_normal(sample, normal_residual, best_case_residual)
        {
            return Ok(d);
        }

        // Outage verdict: bad-data screen before the (soon-to-be-wasted)
        // ranking. The capped `S⁰` restriction is cache-keyed on the mask
        // fingerprint, and the excised re-score below re-enters
        // `detect_budget` under the reduced mask's own fingerprint — one
        // extra cache-keyed matmul group per peel-off iteration.
        if self.screen_applies(budget, observed.len(), best_case_residual) {
            let x_obs = Vector::from(
                sample
                    .values_for(observed, self.cfg.kind)
                    .expect("observed nodes are unmasked"),
            );
            let basis = cache.robust_basis_for(
                &self.subspaces,
                sample.mask().fingerprint(),
                observed,
            )?;
            if let Some(node) = self.lnr_suspect(basis.basis(), observed, &x_obs) {
                match self.detect_budget(&self.excised(sample, node), cache, budget - 1) {
                    // Keep the excision only when it made the sample well
                    // explained (normal, or inside a learned case
                    // subspace). A structural anomaly — e.g. an unmodeled
                    // multi-line outage — stays far from everything no
                    // matter which channel is removed, and must keep its
                    // un-excised verdict.
                    Ok(mut d) if !d.outage || d.best_case_residual <= d.threshold => {
                        pmu_obs::counter!("detect.bad_data_excised").inc();
                        d.suspect_nodes.insert(0, node);
                        return Ok(d);
                    }
                    Ok(_) => {}
                    // Excision starved the sample: keep the un-excised
                    // verdict rather than fail a scorable sample.
                    Err(DetectError::InsufficientData { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
        }

        let t2 = pmu_obs::metrics_enabled().then(std::time::Instant::now);
        let (scored, groups_used) = self.rank_nodes(sample, observed, prox, cache)?;
        if let Some(t) = t2 {
            pmu_obs::histogram!("detect.stage2_us").observe(t.elapsed().as_secs_f64() * 1e6);
        }
        if scored.is_empty() {
            let needed = self.cfg.subspace_dim + 2;
            return Err(DetectError::InsufficientData { observed: observed.len(), needed });
        }

        let t3 = pmu_obs::metrics_enabled().then(std::time::Instant::now);
        let loc_group = self.localization_group(&scored, &groups_used, observed);
        let lines = self.localize(&scored, &loc_group, sample)?;
        if let Some(t) = t3 {
            pmu_obs::histogram!("detect.stage3_us").observe(t.elapsed().as_secs_f64() * 1e6);
        }

        Ok(Detection {
            outage: true,
            lines,
            node_ranking: scored,
            normal_residual,
            best_case_residual,
            threshold: self.threshold,
            suspect_nodes: Vec::new(),
        })
    }

    /// Stage-2 node ranking through the per-mask node scorers, with the
    /// optional stage-1 shortlist. Returns the ascending ranking plus each
    /// node's group.
    fn rank_nodes(
        &self,
        sample: &PhasorSample,
        observed: &[usize],
        prox: &[f64],
        cache: &ScoringCache,
    ) -> Result<NodeRanking> {
        let n_cases = self.subspaces.per_case.len();
        let case_prox = &prox[1..=n_cases];
        let scorers = cache
            .node_scorers_for(sample.mask().fingerprint(), || self.build_node_scorers(sample))?;
        let candidates: Vec<usize> =
            (0..self.n).filter(|&i| scorers[i].is_some()).collect();
        let k = self.cfg.shortlist_k;
        let shortlist_on = k > 0 && k < candidates.len();

        // Gather the sample's observed scalar measurements once: detection
        // groups overlap heavily across nodes, and the per-entry angle
        // conversion (atan2) is expensive enough to dominate stage 2 when
        // repeated for every group.
        let mut vals = vec![0.0_f64; self.n];
        for &i in observed {
            vals[i] = sample.value(i, self.cfg.kind).expect("observed node");
        }

        // Exact Eq. (9)–(11) score of one node through its pre-factored
        // scorer — the same floats the reference path computes on the
        // same group.
        let score_one = |node: usize| -> Result<f64> {
            let sc = scorers[node].as_ref().expect("candidate has a scorer");
            let group = sc.group();
            let x_d = Vector::from_fn(group.len(), |j| vals[group[j]]);
            let p = sc.proximities_one(&x_d)?;
            // prox to S_i^∪ = min over the member case subspaces.
            let mut ru = f64::INFINITY;
            for &r in &p[..sc.n_cases()] {
                if r < ru {
                    ru = r;
                }
            }
            Ok(if self.cfg.scale_proximities {
                let rn = p[sc.n_cases()];
                let r0 = p[sc.n_cases() + 1];
                ru * rn / r0.max(PROX_EPS)
            } else {
                ru
            })
        };
        // Shortlist proxy: the Eq. (11) expression evaluated on the *full
        // observed set* — every factor is already paid for by the packed
        // stage-1 bank (cases, intersection, normal blocks). Same units as
        // the exact group-restricted score, so the decisive-margin test
        // below compares like with like.
        let proxy = |node: usize| -> f64 {
            let mut ru = f64::INFINITY;
            for &ci in &self.incident_cases[node] {
                let r = case_prox[ci];
                if r < ru {
                    ru = r;
                }
            }
            if self.cfg.scale_proximities {
                let rn = prox[1 + n_cases + node];
                ru * rn / prox[0].max(PROX_EPS)
            } else {
                ru
            }
        };

        let pick: Vec<usize> = if shortlist_on {
            let mut by_proxy: Vec<(usize, f64)> =
                candidates.iter().map(|&i| (i, proxy(i))).collect();
            by_proxy.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let mut pick: Vec<usize> = by_proxy.iter().take(k).map(|&(i, _)| i).collect();
            // Capability guard: a node no observed sensor can vouch for
            // (Eq. 5–7) has an untrustworthy proxy — never prune it. The
            // flag is mask-only state, precomputed with the scorers.
            for &i in &candidates {
                if pick.contains(&i) {
                    continue;
                }
                if scorers[i].as_ref().expect("candidate").low_capability() {
                    pick.push(i);
                }
            }
            pick.sort_unstable();
            pick
        } else {
            candidates.clone()
        };

        let mut scored: Vec<(usize, f64)> = Vec::with_capacity(pick.len());
        for &node in &pick {
            scored.push((node, score_one(node)?));
        }
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));

        if shortlist_on {
            // A pruned node can threaten the *ranking* only by displacing
            // the top-3 that seeds the localization group and the band
            // anchor. Its proxy is in score units, so compare directly —
            // any candidate whose proxy lands within `shortlist_margin ×`
            // of the third-best exact score gets scored exactly too
            // (partial fallback); the rest cannot plausibly reach the top.
            let third = scored[scored.len().min(3) - 1].1;
            let limit = third.max(PROX_EPS) * self.cfg.shortlist_margin;
            let offenders: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|i| pick.binary_search(i).is_err())
                .filter(|&i| proxy(i) <= limit)
                .collect();
            if !offenders.is_empty() {
                for &node in &offenders {
                    scored.push((node, score_one(node)?));
                }
                scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
            }

            // Localization reads the proximity-band connected component of
            // the best node (`localize`), so the scored set must contain
            // exactly the nodes that component can reach. Grow it lazily:
            // walk the grid from the best node, exact-scoring unscored
            // neighbours on demand, continuing through any that land
            // inside the band. A node the walk never reaches cannot enter
            // the exhaustive component either (every path to it crosses an
            // out-of-band node), so its score is irrelevant to `localize`.
            let mut score_of: Vec<Option<f64>> = vec![None; self.n];
            for &(node, s) in &scored {
                score_of[node] = Some(s);
            }
            let band = scored[0].1.max(PROX_EPS) * self.cfg.prefix_ratio;
            let mut in_comp = vec![false; self.n];
            in_comp[scored[0].0] = true;
            let mut frontier = vec![scored[0].0];
            while let Some(u) = frontier.pop() {
                for &v in &self.adjacency[u] {
                    if in_comp[v] || scorers[v].is_none() {
                        continue;
                    }
                    let s = match score_of[v] {
                        Some(s) => s,
                        None => {
                            let s = score_one(v)?;
                            score_of[v] = Some(s);
                            scored.push((v, s));
                            s
                        }
                    };
                    if s <= band {
                        in_comp[v] = true;
                        frontier.push(v);
                    }
                }
            }
            // `localize` widens to the *full* band when no learned case
            // has both endpoints inside the component — rare, but it then
            // needs every node's score, so rescore exhaustively rather
            // than risk a divergent line set.
            if !self.case_endpoints.iter().any(|&(a, b)| in_comp[a] && in_comp[b]) {
                for &node in &candidates {
                    if score_of[node].is_none() {
                        scored.push((node, score_one(node)?));
                    }
                }
            }
            scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
            // "Hit" = the shortlist actually pruned exact scoring work;
            // "fallback" = between the top-3 guard, the component walk and
            // the empty-candidate rescue, every candidate got scored
            // anyway (the exhaustive cost, plus the proxy sort).
            if scored.len() < candidates.len() {
                pmu_obs::counter!("detect.shortlist_hits").inc();
            } else {
                pmu_obs::counter!("detect.shortlist_fallbacks").inc();
            }
        }
        // Localization only reads the groups of the top-3 ranked nodes;
        // materializing every scored node's group is pure allocation churn.
        let mut groups_used: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for &(node, _) in scored.iter().take(3) {
            groups_used[node] = scorers[node].as_ref().expect("scored").group().to_vec();
        }
        Ok((scored, groups_used))
    }

    /// Build the per-mask stage-2 scorers: every node's Eq. (10) group and
    /// packed subspace restrictions. Group selection depends only on the
    /// mask, so the result is cached per mask fingerprint.
    fn build_node_scorers(&self, sample: &PhasorSample) -> Result<NodeScorers> {
        let observed = sample.mask().observed();
        let mut out: NodeScorers = Vec::with_capacity(self.n);
        for node in 0..self.n {
            if self.incident_cases[node].is_empty() {
                out.push(None); // No learned outage behaviour for this node.
                continue;
            }
            let d = self.group_for(node, sample);
            if d.len() < 2 {
                out.push(None);
                continue;
            }
            let best_cap = observed
                .iter()
                .map(|&s| self.capabilities.get(node, s))
                .fold(0.0_f64, f64::max);
            out.push(Some(NodeScorer::build(
                &self.subspaces,
                &self.incident_cases[node],
                node,
                d,
                best_cap < self.cfg.capability_threshold,
            )?));
        }
        Ok(out)
    }

    /// The stage-3 coordinate set: union of the top-ranked nodes' groups
    /// plus capability-selected extras.
    ///
    /// Line scoring restricted to the union of the top-ranked nodes'
    /// detection groups: group formation (Fig. 4) and the cluster-aware
    /// alternatives (Eq. 10) carry through to localization quality, while
    /// the union keeps enough coordinates to disambiguate neighbouring
    /// lines.
    fn localization_group(
        &self,
        scored: &[(usize, f64)],
        groups_used: &[Vec<usize>],
        observed: &[usize],
    ) -> Vec<usize> {
        let mut loc_group: Vec<usize> = Vec::new();
        for &(node, _) in scored.iter().take(3) {
            for &k in &groups_used[node] {
                if !loc_group.contains(&k) {
                    loc_group.push(k);
                }
            }
        }
        // "Ideally all nodes with high detection capabilities in D_C
        // should be included in the detection group" (Sec. V-B): add every
        // observed node whose learned capability for the best candidate is
        // above threshold. The naive ablation (fraction = 0) has no
        // capability knowledge and honestly skips this.
        if self.cfg.capability_fraction > 0.0 {
            let best_node = scored[0].0;
            for &k in observed {
                if self.capabilities.get(best_node, k) >= self.cfg.capability_threshold
                    && !loc_group.contains(&k)
                {
                    loc_group.push(k);
                }
            }
        }
        loc_group.sort_unstable();
        loc_group
    }

    /// Eq. (10) group selection for `node` given the sample's mask, with
    /// observed-only filtering and capability-ranked top-up to the minimum
    /// size.
    fn group_for(&self, node: usize, sample: &PhasorSample) -> Vec<usize> {
        let c = self.clustering.cluster_of(node);
        let cluster_dark = sample.mask().any_missing_of(self.clustering.members(c));
        let base = self.groups.select(c, cluster_dark);
        let mut d: Vec<usize> =
            base.iter().copied().filter(|&k| !sample.mask().is_missing(k)).collect();
        if d.len() < self.cfg.min_group_size {
            // Top-up source honours the Fig. 4 ablation: the proposed
            // scheme (fraction > 0) uses learned capabilities — ranked
            // once at training time — the naive scheme falls back to
            // plain node order.
            let plain: Vec<usize>;
            let order: &[usize] = if self.cfg.capability_fraction > 0.0 {
                &self.capability_order[node]
            } else {
                plain = (0..self.n).collect();
                &plain
            };
            for &k in order {
                if d.len() >= self.cfg.min_group_size {
                    break;
                }
                if !sample.mask().is_missing(k) && !d.contains(&k) {
                    d.push(k);
                }
            }
        }
        d.sort_unstable();
        d
    }

    /// Proximity-rule localization: grow a connected prefix from the
    /// best-ranked node, then score each candidate line by its own outage
    /// subspace and keep those within `edge_ratio` of the best. Candidate
    /// scoring runs through the Gram-solve fast path
    /// ([`proximity_fast`]) — the localization group varies per sample
    /// (it follows the ranking), so there is nothing to cache; both the
    /// packed and the reference detection paths share this exact code.
    fn localize(
        &self,
        scored: &[(usize, f64)],
        best_group: &[usize],
        sample: &PhasorSample,
    ) -> Result<Vec<usize>> {
        let (best, best_score) = scored[0];
        let limit = (best_score.max(PROX_EPS)) * self.cfg.prefix_ratio;
        let in_band: Vec<usize> = scored
            .iter()
            .filter(|&&(_, s)| s <= limit)
            .map(|&(n, _)| n)
            .collect();
        // Connected component of `best` inside the band.
        let mut component = vec![best];
        let mut frontier = vec![best];
        while let Some(u) = frontier.pop() {
            for &v in &self.adjacency[u] {
                if in_band.contains(&v) && !component.contains(&v) {
                    component.push(v);
                    frontier.push(v);
                }
            }
        }

        // Candidate cases, widening progressively: both endpoints inside
        // the component; any endpoint inside the proximity band; incident
        // to the best node. The final case-subspace scoring below is what
        // separates true from spurious candidates, so a wider candidate
        // set improves recall without inflating false alarms.
        let mut cand: Vec<usize> = (0..self.case_branch.len())
            .filter(|&ci| {
                let (a, b) = self.case_endpoints[ci];
                component.contains(&a) && component.contains(&b)
            })
            .collect();
        if cand.is_empty() {
            cand = (0..self.case_branch.len())
                .filter(|&ci| {
                    let (a, b) = self.case_endpoints[ci];
                    in_band.contains(&a) || in_band.contains(&b)
                })
                .collect();
        }
        if cand.is_empty() {
            cand = self.incident_cases[best].clone();
        }
        if cand.is_empty() {
            return Ok(Vec::new());
        }

        // Score candidates by their case subspace on the best node's group.
        let x_d = Vector::from(
            sample
                .values_for(best_group, self.cfg.kind)
                .expect("group members observed"),
        );
        let mut scored_cases: Vec<(usize, f64)> = Vec::with_capacity(cand.len());
        for ci in cand {
            let r = proximity_fast(&self.subspaces.per_case[ci], best_group, &x_d)?;
            scored_cases.push((ci, r));
        }
        scored_cases.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let best_edge = scored_cases[0].1.max(PROX_EPS);
        Ok(scored_cases
            .into_iter()
            .filter(|&(_, s)| s <= best_edge * self.cfg.edge_ratio)
            .map(|(ci, _)| self.case_branch[ci])
            .collect())
    }
}

/// Calibrated decision quantities.
struct Calibration {
    /// `S⁰` residual above this ⇒ outage outright.
    hard: f64,
    /// Ratio test applies only above this floor.
    soft: f64,
    /// Ratio cut for the best-case/normal comparison (light missing data).
    ratio_cut: f64,
    /// Ratio cut under heavy (cluster-scale) missing data.
    ratio_cut_heavy: f64,
}

/// Calibrate the normal/outage decision on held-out normal samples
/// (`t ≥ holdout_start`), each evaluated complete and under a few random
/// missing-data masks so the statistics match what detection will see.
fn calibrate(
    subspaces: &LearnedSubspaces,
    normal: &PhasorWindow,
    holdout_start: usize,
    cfg: &DetectorConfig,
) -> Result<Calibration> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let n = normal.n_nodes();
    let m = normal.matrix(cfg.kind);
    let t_total = m.cols();
    let start = holdout_start.min(t_total.saturating_sub(1));
    let k_missing = (n / 15).max(2).min(n.saturating_sub(cfg.subspace_dim + 2));
    let mut rng = StdRng::seed_from_u64(0xCA11B8);

    let mut residuals: Vec<f64> = Vec::new();
    let mut ratios_light: Vec<f64> = Vec::new();
    let mut ratios_heavy: Vec<f64> = Vec::new();
    // Cluster-scale missing data (a dark PDC) is a first-class scenario:
    // calibrate against heavy masks too.
    let k_heavy = (n / 2).max(k_missing).min(n.saturating_sub(cfg.subspace_dim + 2));
    for t in start..t_total {
        // Complete, light-mask, and heavy-mask variants per held-out sample.
        for variant in 0..8 {
            let observed: Vec<usize> = if variant == 0 {
                (0..n).collect()
            } else {
                let k = if variant >= 5 { k_heavy } else { k_missing };
                let mut obs: Vec<usize> = (0..n).collect();
                for _ in 0..k {
                    if obs.len() > cfg.subspace_dim + 2 {
                        let pos = rng.gen_range(0..obs.len());
                        obs.remove(pos);
                    }
                }
                obs
            };
            let x = Vector::from_fn(observed.len(), |i| m[(observed[i], t)]);
            let r0 = proximity(&subspaces.normal, &observed, &x)?;
            residuals.push(r0);
            let mut best = f64::INFINITY;
            for s in &subspaces.per_case {
                let r = proximity(s, &observed, &x)?;
                if r < best {
                    best = r;
                }
            }
            if r0 > 1e-18 && best.is_finite() {
                if variant >= 5 {
                    ratios_heavy.push(best / r0);
                } else {
                    ratios_light.push(best / r0);
                }
            }
        }
    }
    // The configured quantile is a lower bound on the soft threshold; the
    // observed maximum dominates it for well-behaved calibration sets.
    let q = quantile(&residuals, cfg.normal_quantile)?;
    let max_resid = residuals.iter().fold(0.0_f64, |a, &b| a.max(b));
    let soft = max_resid.max(q).max(1e-15);
    let hard = (soft * cfg.threshold_margin).max(1e-15);
    // The ratio tests must never have fired on held-out normal data: cut
    // below the smallest observed normal ratio, capped by the config.
    let cut_from = |ratios: &[f64]| {
        let min_ratio = ratios.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        if min_ratio.is_finite() {
            (0.9 * min_ratio).clamp(0.05, cfg.decision_ratio)
        } else {
            cfg.decision_ratio
        }
    };
    let ratio_cut = cut_from(&ratios_light);
    let ratio_cut_heavy = cut_from(&ratios_heavy).min(ratio_cut);
    Ok(Calibration { hard, soft, ratio_cut, ratio_cut_heavy })
}

/// Convenience: train on a dataset with the default configuration and the
/// network's own cluster count heuristic (≈ one PDC per 10 buses, min 2).
///
/// # Errors
/// As [`Detector::train`].
pub fn train_default(data: &Dataset) -> Result<Detector> {
    Detector::train(data, &default_config_for(&data.network))
}

/// Size-aware default configuration: cluster count and detection-group
/// size scale gently with the grid, and large systems (where stage 2 is
/// the dominant cost) rank through the stage-1 shortlist — the margin
/// fallback keeps localization identical to the exhaustive ranking.
pub fn default_config_for(net: &Network) -> DetectorConfig {
    let n = net.n_buses();
    DetectorConfig {
        n_clusters: cluster_heuristic(net),
        min_group_size: (n / 4).max(8),
        shortlist_k: if n >= 40 { n / 3 } else { 0 },
        ..DetectorConfig::default()
    }
}

/// ≈ one PDC per 10 buses, between 2 and 8 (Fig. 1 scale).
pub fn cluster_heuristic(net: &Network) -> usize {
    (net.n_buses() / 10).clamp(2, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu_grid::cases::ieee14;
    use pmu_sim::missing::outage_endpoints_mask;
    use pmu_sim::{generate_dataset, GenConfig};

    fn dataset() -> Dataset {
        let net = ieee14().unwrap();
        let cfg = GenConfig { train_len: 20, test_len: 6, ..GenConfig::default() };
        generate_dataset(&net, &cfg).unwrap()
    }

    fn detector(data: &Dataset) -> Detector {
        train_default(data).unwrap()
    }

    #[test]
    fn normal_samples_classified_normal() {
        let data = dataset();
        let det = detector(&data);
        let mut normal_ok = 0usize;
        for t in 0..data.normal_test.len() {
            let d = det.detect(&data.normal_test.sample(t)).unwrap();
            if !d.outage {
                normal_ok += 1;
                assert!(d.lines.is_empty());
            }
        }
        assert!(
            normal_ok >= data.normal_test.len() - 1,
            "{normal_ok}/{} normal samples passed",
            data.normal_test.len()
        );
    }

    #[test]
    fn outage_samples_flagged_and_localized() {
        let data = dataset();
        let det = detector(&data);
        let mut flagged = 0usize;
        let mut hit = 0usize;
        for case in &data.cases {
            let d = det.detect(&case.test.sample(0)).unwrap();
            if d.outage {
                flagged += 1;
                if d.lines.contains(&case.branch) {
                    hit += 1;
                }
            }
        }
        let e = data.n_cases();
        assert!(flagged * 10 >= e * 9, "only {flagged}/{e} outages flagged");
        assert!(hit * 10 >= e * 8, "only {hit}/{e} outages localized");
    }

    #[test]
    fn robust_to_missing_outage_endpoints() {
        let data = dataset();
        let det = detector(&data);
        let mut hit = 0usize;
        for case in &data.cases {
            let mask = outage_endpoints_mask(14, case.endpoints);
            let sample = case.test.sample(0).masked(&mask);
            let d = det.detect(&sample).unwrap();
            if d.outage && d.lines.contains(&case.branch) {
                hit += 1;
            }
        }
        let e = data.n_cases();
        assert!(hit * 10 >= e * 7, "only {hit}/{e} localized with endpoints dark");
    }

    #[test]
    fn missing_data_on_normal_sample_not_an_outage() {
        use pmu_sim::Mask;
        let data = dataset();
        let det = detector(&data);
        let mut false_alarms = 0usize;
        let trials = data.normal_test.len();
        for t in 0..trials {
            let mask = Mask::with_missing(14, &[t % 14, (t + 5) % 14]);
            let d = det.detect(&data.normal_test.sample(t).masked(&mask)).unwrap();
            if d.outage {
                false_alarms += 1;
            }
        }
        assert!(false_alarms <= 1, "{false_alarms}/{trials} false alarms");
    }

    #[test]
    fn rejects_bad_samples() {
        use pmu_sim::Mask;
        let data = dataset();
        let det = detector(&data);
        // Wrong size.
        let bad = PhasorSample::complete(vec![pmu_numerics::Complex64::ONE; 5]);
        assert!(matches!(det.detect(&bad), Err(DetectError::SampleMismatch { .. })));
        // Nearly everything missing.
        let mask = Mask::with_missing(14, &(0..12).collect::<Vec<_>>());
        let s = data.normal_test.sample(0).masked(&mask);
        assert!(matches!(det.detect(&s), Err(DetectError::InsufficientData { .. })));
    }

    #[test]
    fn non_finite_observed_entries_rejected() {
        use pmu_numerics::Complex64;
        use pmu_sim::Mask;
        let data = dataset();
        let det = detector(&data);
        let clean = data.normal_test.sample(0);
        let poison = |node: usize, z: Complex64| {
            let phasors: Vec<Complex64> = (0..clean.n_nodes())
                .map(|i| if i == node { z } else { clean.phasor_unchecked(i) })
                .collect();
            PhasorSample::complete(phasors)
        };
        // NaN and infinity are both rejected, naming the offending node.
        let nan = poison(5, Complex64::new(f64::NAN, 0.0));
        assert_eq!(det.detect(&nan).unwrap_err(), DetectError::NonFinite { node: 5 });
        let inf = poison(2, Complex64::new(0.0, f64::INFINITY));
        assert_eq!(det.detect(&inf).unwrap_err(), DetectError::NonFinite { node: 2 });
        // A non-finite value behind the mask is invisible: masked entries
        // are missing, not observed, and must not trigger the check.
        let masked_nan = poison(5, Complex64::new(f64::NAN, f64::NAN))
            .masked(&Mask::with_missing(14, &[5]));
        assert!(det.detect(&masked_nan).is_ok());
    }

    #[test]
    fn detection_reports_diagnostics() {
        let data = dataset();
        let det = detector(&data);
        let d = det.detect(&data.cases[0].test.sample(0)).unwrap();
        assert!(d.outage);
        assert!(d.best_case_residual.is_finite());
        assert_eq!(d.threshold, det.threshold());
        assert!(!d.node_ranking.is_empty());
        // Ranking is ascending.
        for w in d.node_ranking.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // Accessors exist and are consistent.
        assert_eq!(det.n_nodes(), 14);
        assert_eq!(det.capabilities().n_nodes(), 14);
        assert!(!det.groups().in_cluster.is_empty());
        assert!(det.clustering().n_clusters() >= 2);
        assert_eq!(det.subspaces().per_case.len(), data.n_cases());
    }

    /// `sample` with `node`'s phasor angle rotated by `delta` radians —
    /// a finite, observed, single-channel corruption.
    fn corrupt_angle(sample: &PhasorSample, node: usize, delta: f64) -> PhasorSample {
        use pmu_numerics::Complex64;
        use pmu_sim::Mask;
        let phasors: Vec<Complex64> = (0..sample.n_nodes())
            .map(|i| {
                let z = sample.phasor_unchecked(i);
                if i == node {
                    Complex64::from_polar(z.abs(), z.arg() + delta)
                } else {
                    z
                }
            })
            .collect();
        let missing = sample.mask().missing_nodes();
        PhasorSample::with_mask(phasors, Mask::with_missing(sample.n_nodes(), &missing))
    }

    #[test]
    fn robust_screen_excises_corrupted_channel() {
        let data = dataset();
        let det = detector(&data);
        let det_off = det.clone().with_robust_screen(false);
        let mut excised = 0usize;
        let mut recovered = 0usize;
        let mut baseline_hit = 0usize;
        for case in &data.cases {
            let clean = case.test.sample(0);
            if !det_off.detect(&clean).unwrap().outage {
                continue;
            }
            // Corrupt a channel far from the outage (graph-wise: neither
            // endpoint nor a neighbour of one).
            let (a, b) = case.endpoints;
            let net = ieee14().unwrap();
            let near: Vec<usize> = {
                let mut v = vec![a, b];
                v.extend(net.neighbors(a));
                v.extend(net.neighbors(b));
                v
            };
            let victim = (0..14).find(|i| !near.contains(i)).unwrap();
            let bad = corrupt_angle(&clean, victim, 0.8);
            let d = det.detect(&bad).unwrap();
            if d.suspect_nodes.contains(&victim) {
                excised += 1;
                if d.outage && d.lines.contains(&case.branch) {
                    recovered += 1;
                }
            }
            if det_off.detect(&clean).unwrap().lines.contains(&case.branch) {
                baseline_hit += 1;
            }
        }
        assert!(
            excised * 10 >= data.n_cases() * 7,
            "screen excised the corrupted channel in only {excised}/{} cases",
            data.n_cases()
        );
        assert!(
            recovered * 10 >= baseline_hit * 8,
            "excision recovered localization in only {recovered} cases \
             (clean baseline {baseline_hit})"
        );
    }

    #[test]
    fn robust_screen_clears_corruption_induced_false_alarm() {
        // A corrupted channel during *normal* operation trips the outage
        // decision; the screen must excise it and restore the normal
        // verdict instead of raising a phantom outage.
        let data = dataset();
        let det = detector(&data);
        let mut cleared = 0usize;
        let trials = data.normal_test.len();
        for t in 0..trials {
            let clean = data.normal_test.sample(t);
            if det.detect(&clean).unwrap().outage {
                continue; // already a (rare) clean false alarm; skip
            }
            let bad = corrupt_angle(&clean, (t * 3) % 14, 1.0);
            let d = det.detect(&bad).unwrap();
            if !d.outage && !d.suspect_nodes.is_empty() {
                cleared += 1;
            }
        }
        assert!(
            cleared * 10 >= trials * 7,
            "screen cleared only {cleared}/{trials} corruption-induced alarms"
        );
    }

    #[test]
    fn robust_screen_is_bit_identical_when_nothing_fires() {
        // Clean samples (normal and outage) must produce byte-identical
        // detections with the screen on and off — the screen only runs on
        // outage verdicts and must not fire on genuine data.
        let data = dataset();
        let det = detector(&data);
        let det_off = det.clone().with_robust_screen(false);
        for t in 0..data.normal_test.len() {
            let s = data.normal_test.sample(t);
            let on = det.detect(&s).unwrap();
            let off = det_off.detect(&s).unwrap();
            assert!(on.suspect_nodes.is_empty(), "screen fired on clean normal t={t}");
            assert_eq!(on, off, "screen-on diverged on clean normal t={t}");
        }
        for (ci, case) in data.cases.iter().enumerate() {
            let s = case.test.sample(0);
            let on = det.detect(&s).unwrap();
            let off = det_off.detect(&s).unwrap();
            assert!(on.suspect_nodes.is_empty(), "screen fired on clean outage {ci}");
            assert_eq!(on, off, "screen-on diverged on clean outage {ci}");
        }
    }

    #[test]
    fn robust_screen_peels_multiple_channels_within_budget() {
        let data = dataset();
        let det = detector(&data);
        let case = &data.cases[0];
        let clean = case.test.sample(0);
        let (a, b) = case.endpoints;
        let victims: Vec<usize> =
            (0..14).filter(|&i| i != a && i != b).take(2).collect();
        let mut bad = clean.clone();
        for (j, &v) in victims.iter().enumerate() {
            bad = corrupt_angle(&bad, v, 0.7 + 0.3 * j as f64);
        }
        let d = det.detect(&bad).unwrap();
        for v in &victims {
            assert!(
                d.suspect_nodes.contains(v),
                "victim {v} not excised: suspects {:?}",
                d.suspect_nodes
            );
        }
        assert!(d.suspect_nodes.len() <= DetectorConfig::default().robust_budget);
    }

    #[test]
    fn best_ranked_node_is_near_outage() {
        let data = dataset();
        let det = detector(&data);
        let mut near = 0usize;
        for case in &data.cases {
            let d = det.detect(&case.test.sample(1)).unwrap();
            if !d.outage {
                continue;
            }
            let best = d.node_ranking[0].0;
            let (a, b) = case.endpoints;
            let neighborhood: Vec<usize> = {
                let net = ieee14().unwrap();
                let mut v = vec![a, b];
                v.extend(net.neighbors(a));
                v.extend(net.neighbors(b));
                v
            };
            if neighborhood.contains(&best) {
                near += 1;
            }
        }
        assert!(
            near * 10 >= data.n_cases() * 8,
            "best node near outage in only {near}/{} cases",
            data.n_cases()
        );
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use pmu_grid::cases::ieee14;
    use pmu_sim::{generate_dataset, GenConfig};

    #[test]
    fn json_roundtrip_preserves_detections() {
        let net = ieee14().unwrap();
        let gen = GenConfig { train_len: 16, test_len: 5, ..GenConfig::default() };
        let data = generate_dataset(&net, &gen).unwrap();
        let det = train_default(&data).unwrap();

        let json = det.to_json().unwrap();
        assert!(json.len() > 1000, "model JSON suspiciously small");
        let restored = Detector::from_json(&json).unwrap();

        assert_eq!(restored.n_nodes(), det.n_nodes());
        assert_eq!(restored.threshold(), det.threshold());
        assert_eq!(restored.ratio_cut(), det.ratio_cut());
        // Identical verdicts on every test sample.
        for case in &data.cases {
            let s = case.test.sample(0);
            let a = det.detect(&s).unwrap();
            let b = restored.detect(&s).unwrap();
            assert_eq!(a.outage, b.outage);
            assert_eq!(a.lines, b.lines);
            assert_eq!(a.normal_residual, b.normal_residual);
        }
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(Detector::from_json("{not json").is_err());
        assert!(Detector::from_json("{}").is_err());
    }
}
