//! Packed scoring state for the detection hot path.
//!
//! The reference scorer ([`crate::proximity::proximity`]) rebuilds the
//! row-restricted, dimension-clamped subspace on *every* call — an
//! `O(cases × samples)` stream of restrict/QR work that dominates batch
//! detection at IEEE-118 scale. This module packages the pieces that make
//! the packed path fast without changing a single output bit:
//!
//! - [`RestrictedBank`] — every stage-1 subspace (normal `S⁰`, one per
//!   outage case, one per-node intersection `S_i^∩`), row-restricted to a
//!   fixed observed-node set, clamped exactly as the reference path
//!   clamps, and packed into one [`ProjectorBank`] so a whole batch of
//!   samples is scored with a single cache-blocked matmul. The
//!   intersection blocks double as *score-unit* shortlist proxies for the
//!   stage-2 pruning rule. The full-observation bank is precomputed at
//!   training time and ships inside the model bundle.
//! - [`NodeScorer`] — one node's stage-2 state under one mask: its
//!   Eq. (10) detection group plus the incident-case / intersection /
//!   normal restrictions, each held as a pre-factored Gram block (the
//!   [`proximity_fast`](crate::proximity) construction with the
//!   per-group Cholesky work hoisted out of the sample loop). Group
//!   selection depends only on the missing-data mask, so a whole batch
//!   reuses the same scorers.
//! - [`ScoringCache`] — runtime memoization: stage-1 banks and stage-2
//!   node-scorer sets, both keyed on the missing mask's fingerprint, so
//!   streaming and batch detection pay each restriction once per mask
//!   instead of once per sample.
//!
//! ## Bit-compatibility contract
//!
//! The stage-1 bank reuses [`restricted_capped`](crate::proximity) — the
//! exact construction inside the reference scorer — so a packed stage-1
//! score is the *same float* `proximity` computes. The stage-2 scorers
//! replay `proximity_fast` term by term (same Gram assembly order, same
//! shared Cholesky, same solve), so a cached stage-2 score is the same
//! float the reference path computes through `proximity_fast`. The parity
//! suite (`tests/packed_parity.rs`) pins both end to end.

use crate::error::DetectError;
use crate::proximity::{cholesky_lower, gram_eligible, gram_quad, restricted_capped};
use crate::subspaces::LearnedSubspaces;
use crate::Result;
use pmu_numerics::{Matrix, ProjectorBank, Subspace, Vector};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Banks cached per missing-data mask. A deployment cycles through the
/// recurring masks of its fault surface — all-present, every single-PDC
/// blackout, the per-case outage-endpoint masks the evaluation sweeps
/// replay — which at IEEE-118 scale is a few hundred distinct masks, so
/// the cap must hold the full cycle (32 used to thrash: every overflow
/// cleared the map wholesale and the next cycle rebuilt every bank,
/// which made the packed path *slower* than the reference scorer).
const BANK_CACHE_CAP: usize = 256;

/// Per-mask stage-2 node-scorer sets; same mask-recurrence argument as
/// the stage-1 banks.
const NODE_CACHE_CAP: usize = 256;

/// Evict one pseudo-randomly chosen entry. Random replacement is immune
/// to the cyclic-scan pathology that defeats LRU here (a batch sweeping
/// `> cap` masks in a fixed order evicts every entry exactly before its
/// reuse, degenerating to a 0% hit rate); random keeps an expected
/// `cap / distinct` fraction of any cycle resident. Which entry goes is
/// a caching decision only — detection outputs never depend on it (a
/// re-evicted mask just re-pays one restriction pass).
fn evict_one<V>(map: &mut HashMap<u64, V>, salt: u64) {
    let mut x = salt ^ 0x9E37_79B9_7F4A_7C15;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let idx = (x as usize) % map.len().max(1);
    if let Some(&k) = map.keys().nth(idx) {
        map.remove(&k);
    }
}

/// Divide each packed block residual by its co-dimension, in place.
fn normalize_rows(out: &mut Matrix, codims: &[f64]) {
    for (b, &codim) in codims.iter().enumerate().take(out.rows()) {
        for v in out.row_mut(b) {
            *v /= codim;
        }
    }
}

/// All stage-1 subspaces restricted to one observed-node set and packed
/// for batched residuals: block 0 is `S⁰`, block `1 + ci` is outage case
/// `ci`, block `1 + n_cases + i` is node `i`'s intersection `S_i^∩`.
/// Stored in the trained model for the full-observation mask and built on
/// demand (then cached) for every other mask.
#[derive(serde::Serialize, serde::Deserialize)]
#[derive(Debug, Clone)]
pub struct RestrictedBank {
    /// Ascending observed-node indices this bank is restricted to.
    observed: Vec<usize>,
    /// Packed clamped bases, blocks ordered normal / cases / intersections.
    bank: ProjectorBank,
    /// Residual co-dimensions, aligned with the blocks.
    codims: Vec<f64>,
    /// Number of outage-case blocks (blocks `1..=n_cases`).
    n_cases: usize,
}

impl RestrictedBank {
    /// Restrict and clamp every stage-1 subspace to `observed`, then pack.
    ///
    /// # Errors
    /// As the reference scorer: fewer than 2 observed nodes, or numerical
    /// failures.
    pub fn build(subspaces: &LearnedSubspaces, observed: &[usize]) -> Result<Self> {
        let n_cases = subspaces.per_case.len();
        let n_blocks = 1 + n_cases + subspaces.intersection.len();
        let mut bases: Vec<Matrix> = Vec::with_capacity(n_blocks);
        let mut codims: Vec<f64> = Vec::with_capacity(n_blocks);
        for s in std::iter::once(&subspaces.normal)
            .chain(&subspaces.per_case)
            .chain(&subspaces.intersection)
        {
            let (capped, codim) = restricted_capped(s, observed)?;
            bases.push(capped.basis().clone());
            codims.push(codim);
        }
        let refs: Vec<&Matrix> = bases.iter().collect();
        let bank = ProjectorBank::from_bases(&refs)
            .map_err(|e| DetectError::InvalidTrainingData(e.to_string()))?;
        Ok(RestrictedBank { observed: observed.to_vec(), bank, codims, n_cases })
    }

    /// The observed-node set this bank is restricted to.
    pub fn observed(&self) -> &[usize] {
        &self.observed
    }

    /// Number of packed subspaces (1 normal + cases + intersections).
    pub fn n_blocks(&self) -> usize {
        self.bank.n_blocks()
    }

    /// Number of outage-case blocks (blocks `1..=n_cases()`).
    pub fn n_cases(&self) -> usize {
        self.n_cases
    }

    /// Stage-1 proximities of one observed sub-vector: entry 0 is the
    /// `S⁰` proximity, entry `1 + ci` the case-`ci` proximity, entry
    /// `1 + n_cases + i` the node-`i` intersection proximity.
    ///
    /// # Errors
    /// Shape mismatches from the packed kernel.
    pub fn proximities_one(&self, x_d: &Vector) -> Result<Vec<f64>> {
        let m = Matrix::from_fn(x_d.len(), 1, |r, _| x_d[r]);
        let r = self.residuals(&m)?;
        Ok((0..self.n_blocks()).map(|b| r[(b, 0)]).collect())
    }

    /// Stage-1 proximities for a whole batch (`|observed| × n_samples`
    /// columns): returns `n_blocks × n_samples`, rows ordered as in
    /// [`Self::proximities_one`]. This is the packed hot path — one
    /// cache-blocked matmul for the entire batch.
    ///
    /// # Errors
    /// Shape mismatches from the packed kernel.
    pub fn proximities(&self, x: &Matrix) -> Result<Matrix> {
        self.residuals(x)
    }

    fn residuals(&self, x: &Matrix) -> Result<Matrix> {
        let mut out = self
            .bank
            .block_residuals(x)
            .map_err(|e| DetectError::InvalidTrainingData(e.to_string()))?;
        normalize_rows(&mut out, &self.codims);
        Ok(out)
    }
}

/// One subspace restricted to one group, pre-factored for scoring: the
/// cacheable half of [`proximity_fast`](crate::proximity). The Gram
/// variant stores the gathered basis rows and the Cholesky factor so a
/// sample costs one small matvec and a triangular solve; the exact
/// variant keeps the clamped reference construction for the regimes
/// where `proximity_fast` itself falls back.
#[derive(Debug)]
enum BlockScorer {
    /// `bt` is the `k × |group|` row-major restricted basis transpose,
    /// `l` the `k × k` lower Cholesky factor of its Gram matrix.
    Gram { bt: Vec<f64>, l: Vec<f64>, k: usize, codim: f64 },
    /// The clamped QR construction (`restricted_capped`), used when the
    /// basis exceeds the Eq. (9) cap or the Gram matrix is rank-deficient.
    Exact { sub: Subspace, codim: f64 },
}

impl BlockScorer {
    /// Pre-factor `s` restricted to `group`, choosing the same fast/exact
    /// branch `proximity_fast` would choose on this group.
    fn build(s: &Subspace, group: &[usize]) -> Result<Self> {
        if gram_eligible(s, group) {
            let g = group.len();
            let b = s.basis();
            let k = b.cols();
            let mut bt = vec![0.0_f64; k * g];
            let mut gram = vec![0.0_f64; k * k];
            // Same assembly order as `proximity_fast`: rows ascending,
            // upper triangle of the Gram matrix.
            for (i, &row) in group.iter().enumerate() {
                let br = b.row(row);
                for a in 0..k {
                    bt[a * g + i] = br[a];
                    for c in a..k {
                        gram[a * k + c] += br[a] * br[c];
                    }
                }
            }
            if let Some(l) = cholesky_lower(&gram, k) {
                return Ok(BlockScorer::Gram { bt, l, k, codim: (g - k) as f64 });
            }
        }
        let (sub, codim) = restricted_capped(s, group)?;
        Ok(BlockScorer::Exact { sub, codim })
    }

    /// Proximity of the group sub-vector (`x_norm_sqr = ‖x_d‖²`, computed
    /// once per sample by the caller) — the same float `proximity_fast`
    /// returns on the same inputs.
    fn score(&self, x_d: &Vector, x_norm_sqr: f64) -> Result<f64> {
        match self {
            BlockScorer::Gram { bt, l, k, codim } => {
                let g = x_d.len();
                let mut y = vec![0.0_f64; *k];
                for (a, slot) in y.iter_mut().enumerate() {
                    let row = &bt[a * g..(a + 1) * g];
                    let mut acc = 0.0;
                    for i in 0..g {
                        acc += row[i] * x_d[i];
                    }
                    *slot = acc;
                }
                let quad = gram_quad(l, y, *k);
                Ok((x_norm_sqr - quad).max(0.0) / codim)
            }
            BlockScorer::Exact { sub, codim } => Ok(sub.residual_sqr(x_d)? / codim),
        }
    }
}

/// One node's stage-2 scoring state under one mask: the Eq. (10)
/// detection group and the pre-factored restrictions of every subspace
/// Eq. (9)–(11) touch — incident cases (in incident order), `S_i^∩`,
/// `S⁰`.
#[derive(Debug)]
pub(crate) struct NodeScorer {
    /// The node's detection group (ascending, all observed).
    group: Vec<usize>,
    /// Blocks `0..n_cases` are the incident cases; block `n_cases` is
    /// the intersection, block `n_cases + 1` is `S⁰`.
    blocks: Vec<BlockScorer>,
    n_cases: usize,
    /// `true` when no observed sensor has learned capability for this
    /// node under the scorer's mask (Eq. 5–7) — the shortlist must never
    /// prune such a node. Mask-dependent, so cached here with the rest of
    /// the per-mask state.
    low_capability: bool,
}

impl NodeScorer {
    /// Restrict this node's scoring subspaces to `group` and pre-factor.
    ///
    /// # Errors
    /// As the reference scorer on the same group.
    pub(crate) fn build(
        subspaces: &LearnedSubspaces,
        incident: &[usize],
        node: usize,
        group: Vec<usize>,
        low_capability: bool,
    ) -> Result<Self> {
        let n_cases = incident.len();
        let mut blocks: Vec<BlockScorer> = Vec::with_capacity(n_cases + 2);
        for s in incident
            .iter()
            .map(|&ci| &subspaces.per_case[ci])
            .chain([&subspaces.intersection[node], &subspaces.normal])
        {
            blocks.push(BlockScorer::build(s, &group)?);
        }
        Ok(NodeScorer { group, blocks, n_cases, low_capability })
    }

    /// The detection group the scorer is restricted to.
    pub(crate) fn group(&self) -> &[usize] {
        &self.group
    }

    /// Number of incident-case blocks.
    pub(crate) fn n_cases(&self) -> usize {
        self.n_cases
    }

    /// Whether the shortlist capability guard applies to this node.
    pub(crate) fn low_capability(&self) -> bool {
        self.low_capability
    }

    /// Proximities of the group sub-vector to every block, ordered
    /// incident cases / intersection / normal — each bit-identical to
    /// [`proximity_fast`](crate::proximity) on the same inputs.
    ///
    /// # Errors
    /// Shape mismatches from the exact-branch blocks.
    pub(crate) fn proximities_one(&self, x_d: &Vector) -> Result<Vec<f64>> {
        let x_norm_sqr = x_d.norm_sqr();
        self.blocks.iter().map(|b| b.score(x_d, x_norm_sqr)).collect()
    }
}

/// Per-mask stage-2 state: one optional scorer per node (`None` when the
/// node has no learned cases or its group degenerates under the mask).
pub(crate) type NodeScorers = Vec<Option<NodeScorer>>;

/// Runtime scoring caches shared across samples of one stream or batch.
///
/// Interior-mutable (`&self` lookups) so a detector can stay immutable;
/// on overflow both maps evict one pseudo-random entry (see
/// [`evict_one`]) — masks recur heavily in practice, and an eviction
/// merely re-pays one restriction pass for that mask.
#[derive(Default)]
pub struct ScoringCache {
    banks: Mutex<HashMap<u64, Arc<RestrictedBank>>>,
    node_scorers: Mutex<HashMap<u64, Arc<NodeScorers>>>,
    /// Capped `S⁰` restrictions for the bad-data screen. Kept separate
    /// from the banks: the bank packs subspaces into projector form,
    /// which does not expose the basis rows the leverage computation
    /// needs.
    robust: Mutex<HashMap<u64, Arc<Subspace>>>,
}

impl ScoringCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached sizes `(stage-1 banks, stage-2 scorer sets)` — observability
    /// hook.
    pub fn sizes(&self) -> (usize, usize) {
        (
            self.banks.lock().expect("bank cache poisoned").len(),
            self.node_scorers.lock().expect("node cache poisoned").len(),
        )
    }

    /// The stage-1 bank for a mask fingerprint, built from `subspaces`
    /// restricted to `observed` on first sight.
    pub(crate) fn bank_for(
        &self,
        subspaces: &LearnedSubspaces,
        fingerprint: u64,
        observed: &[usize],
    ) -> Result<Arc<RestrictedBank>> {
        {
            let map = self.banks.lock().expect("bank cache poisoned");
            if let Some(b) = map.get(&fingerprint) {
                return Ok(Arc::clone(b));
            }
        }
        // Build outside the lock: restriction is the expensive part and
        // concurrent callers may be working on different masks.
        pmu_obs::counter!("detect.bank_cache_miss").inc();
        let built = Arc::new(RestrictedBank::build(subspaces, observed)?);
        let mut map = self.banks.lock().expect("bank cache poisoned");
        if map.len() >= BANK_CACHE_CAP {
            pmu_obs::counter!("detect.bank_cache_evict").inc();
            evict_one(&mut map, fingerprint);
        }
        let entry = map.entry(fingerprint).or_insert_with(|| Arc::clone(&built));
        Ok(Arc::clone(entry))
    }

    /// The capped `S⁰` restriction the bad-data screen tests against,
    /// cached per mask fingerprint. `restricted_capped` is deterministic,
    /// so a cached basis is bit-identical to the fresh construction the
    /// reference path performs.
    pub(crate) fn robust_basis_for(
        &self,
        subspaces: &LearnedSubspaces,
        fingerprint: u64,
        observed: &[usize],
    ) -> Result<Arc<Subspace>> {
        {
            let map = self.robust.lock().expect("robust cache poisoned");
            if let Some(s) = map.get(&fingerprint) {
                return Ok(Arc::clone(s));
            }
        }
        pmu_obs::counter!("detect.robust_cache_miss").inc();
        let (capped, _) = restricted_capped(&subspaces.normal, observed)?;
        let built = Arc::new(capped);
        let mut map = self.robust.lock().expect("robust cache poisoned");
        if map.len() >= BANK_CACHE_CAP {
            evict_one(&mut map, fingerprint);
        }
        let entry = map.entry(fingerprint).or_insert_with(|| Arc::clone(&built));
        Ok(Arc::clone(entry))
    }

    /// The stage-2 node scorers for a mask fingerprint, built via `build`
    /// on first sight (outside the lock — concurrent first-timers may
    /// build duplicates; one wins, the rest are dropped).
    pub(crate) fn node_scorers_for(
        &self,
        fingerprint: u64,
        build: impl FnOnce() -> Result<NodeScorers>,
    ) -> Result<Arc<NodeScorers>> {
        {
            let map = self.node_scorers.lock().expect("node cache poisoned");
            if let Some(s) = map.get(&fingerprint) {
                return Ok(Arc::clone(s));
            }
        }
        pmu_obs::counter!("detect.node_cache_miss").inc();
        let built = Arc::new(build()?);
        let mut map = self.node_scorers.lock().expect("node cache poisoned");
        if map.len() >= NODE_CACHE_CAP {
            pmu_obs::counter!("detect.node_cache_evict").inc();
            evict_one(&mut map, fingerprint);
        }
        let entry = map.entry(fingerprint).or_insert_with(|| Arc::clone(&built));
        Ok(Arc::clone(entry))
    }
}

impl std::fmt::Debug for ScoringCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (banks, node_scorers) = self.sizes();
        f.debug_struct("ScoringCache")
            .field("banks", &banks)
            .field("node_scorers", &node_scorers)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use crate::proximity::{proximity, proximity_fast};
    use crate::subspaces::learn_subspaces;
    use pmu_grid::cases::ieee14;
    use pmu_sim::{generate_dataset, GenConfig, MeasurementKind};

    fn learned() -> (pmu_sim::Dataset, LearnedSubspaces) {
        let net = ieee14().unwrap();
        let gen = GenConfig { train_len: 12, test_len: 3, ..GenConfig::default() };
        let data = generate_dataset(&net, &gen).unwrap();
        let subs = learn_subspaces(&data, &DetectorConfig::default()).unwrap();
        (data, subs)
    }

    #[test]
    fn bank_matches_reference_proximities_bitwise() {
        let (data, subs) = learned();
        let n_cases = subs.per_case.len();
        for observed in [
            (0..14).collect::<Vec<usize>>(),
            (0..14).filter(|&i| i != 3 && i != 7).collect(),
        ] {
            let bank = RestrictedBank::build(&subs, &observed).unwrap();
            assert_eq!(bank.n_blocks(), 1 + n_cases + subs.intersection.len());
            assert_eq!(bank.n_cases(), n_cases);
            let m = data.normal_test.matrix(MeasurementKind::Angle);
            for t in 0..m.cols() {
                let x_d = Vector::from_fn(observed.len(), |i| m[(observed[i], t)]);
                let got = bank.proximities_one(&x_d).unwrap();
                let want0 = proximity(&subs.normal, &observed, &x_d).unwrap();
                assert_eq!(got[0].to_bits(), want0.to_bits(), "normal t={t}");
                for (ci, s) in subs.per_case.iter().enumerate() {
                    let want = proximity(s, &observed, &x_d).unwrap();
                    assert_eq!(got[1 + ci].to_bits(), want.to_bits(), "case {ci} t={t}");
                }
                for (i, s) in subs.intersection.iter().enumerate() {
                    let want = proximity(s, &observed, &x_d).unwrap();
                    assert_eq!(
                        got[1 + n_cases + i].to_bits(),
                        want.to_bits(),
                        "intersection {i} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_proximities_match_single_columns() {
        let (data, subs) = learned();
        let observed: Vec<usize> = (0..14).filter(|&i| i != 5).collect();
        let bank = RestrictedBank::build(&subs, &observed).unwrap();
        let m = data.normal_test.matrix(MeasurementKind::Angle);
        let x = Matrix::from_fn(observed.len(), m.cols(), |r, c| m[(observed[r], c)]);
        let batch = bank.proximities(&x).unwrap();
        for t in 0..m.cols() {
            let x_d = x.column(t);
            let one = bank.proximities_one(&x_d).unwrap();
            for b in 0..bank.n_blocks() {
                assert_eq!(batch[(b, t)].to_bits(), one[b].to_bits());
            }
        }
    }

    #[test]
    fn node_scorer_matches_reference_bitwise() {
        let (data, subs) = learned();
        // Node 0 with whatever cases touch it; a mid-sized group (forces
        // both Gram blocks and clamped-fallback blocks) and a tiny group
        // (all blocks fall back to the exact construction).
        let incident: Vec<usize> = (0..subs.per_case.len().min(3)).collect();
        for group in
            [vec![0, 1, 2, 4, 6, 8, 9, 11, 13], vec![3usize, 7]]
        {
            let sc = NodeScorer::build(&subs, &incident, 0, group.clone(), false).unwrap();
            assert_eq!(sc.group(), &group[..]);
            assert_eq!(sc.n_cases(), incident.len());
            assert!(!sc.low_capability());
            let m = data.normal_test.matrix(MeasurementKind::Angle);
            for t in 0..m.cols() {
                let x_d = Vector::from_fn(group.len(), |i| m[(group[i], t)]);
                let got = sc.proximities_one(&x_d).unwrap();
                for (b, &ci) in incident.iter().enumerate() {
                    let want =
                        proximity_fast(&subs.per_case[ci], &group, &x_d).unwrap();
                    assert_eq!(got[b].to_bits(), want.to_bits(), "case block {b} t={t}");
                }
                let want_i =
                    proximity_fast(&subs.intersection[0], &group, &x_d).unwrap();
                assert_eq!(got[incident.len()].to_bits(), want_i.to_bits());
                let want_n = proximity_fast(&subs.normal, &group, &x_d).unwrap();
                assert_eq!(got[incident.len() + 1].to_bits(), want_n.to_bits());
            }
        }
    }

    #[test]
    fn cache_returns_identical_objects_per_key() {
        let (_, subs) = learned();
        let cache = ScoringCache::new();
        let observed: Vec<usize> = (0..14).collect();
        let a = cache.bank_for(&subs, 42, &observed).unwrap();
        let b = cache.bank_for(&subs, 42, &observed).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same fingerprint must share the bank");
        let s1 = cache.node_scorers_for(7, || Ok(Vec::new())).unwrap();
        let s2 = cache
            .node_scorers_for(7, || panic!("cached entry must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(cache.sizes(), (1, 1));
        // Distinct fingerprints get distinct entries.
        let s3 = cache.node_scorers_for(8, || Ok(Vec::new())).unwrap();
        assert!(!Arc::ptr_eq(&s1, &s3));
        assert_eq!(cache.sizes(), (1, 2));
    }
}
